/**
 * @file
 * Abstract interface shared by the three directory predictors
 * (Cosmos, MSP, VMSP) plus their statistics and storage accounting.
 *
 * A predictor lives beside one directory. Every incoming coherence
 * message for a home block is presented to it via observe(); the
 * predictor decides whether the message belongs to its alphabet
 * (Cosmos: all messages; MSP/VMSP: requests only), checks the message
 * against its outstanding prediction, learns, and returns the
 * per-message accounting used for the paper's accuracy and coverage
 * metrics.
 */

#ifndef MSPDSM_PRED_PREDICTOR_HH
#define MSPDSM_PRED_PREDICTOR_HH

#include <cstdint>

#include "base/stats.hh"
#include "base/types.hh"
#include "pred/symbol.hh"

namespace mspdsm
{

/**
 * A directory-incoming message as seen by a predictor.
 * `kind` is never ReadVec -- folding is internal to VMSP.
 */
struct PredMsg
{
    SymKind kind; //!< Read, Write, Upgrade, InvAck, or WriteBack
    NodeId src;   //!< requesting / responding processor
};

/** Per-message outcome returned by observe(). */
struct Observation
{
    bool inAlphabet = false; //!< message belongs to predictor's class
    bool predicted = false;  //!< a prediction existed for this slot
    bool correct = false;    //!< ... and it matched the message
};

/** Aggregate accuracy/coverage statistics. */
struct PredStats
{
    Counter observed;  //!< messages in the predictor's alphabet
    Counter predicted; //!< of those, messages for which a prediction
                       //!< had been issued
    Counter correct;   //!< of those, correct predictions

    /** Prediction accuracy %, the paper's Figures 7/8 metric. */
    double accuracyPct() const
    {
        return pct(correct.value(), predicted.value());
    }

    /** Fraction of messages predicted %, the paper's Table 3 metric. */
    double coveragePct() const
    {
        return pct(predicted.value(), observed.value());
    }

    /** Predicted-and-correct over all messages % (Table 3, parens). */
    double correctOfAllPct() const
    {
        return pct(correct.value(), observed.value());
    }
};

/** Storage accounting for the paper's Table 4. */
struct StorageReport
{
    std::uint64_t blocksAllocated = 0; //!< blocks with predictor state
    std::uint64_t pteTotal = 0;        //!< total pattern-table entries
    double avgPte = 0.0;               //!< entries per allocated block
    double avgBytesPerBlock = 0.0;     //!< paper Section 7.3 formulas
};

/**
 * Base class for the three predictors.
 */
class PredictorBase
{
  public:
    /**
     * @param depth history depth (paper evaluates 1, 2, 4)
     * @param numProcs processor count, for id/vector encoding widths
     */
    PredictorBase(std::size_t depth, unsigned numProcs)
        : depth_(depth), numProcs_(numProcs)
    {}

    virtual ~PredictorBase() = default;

    // The concrete predictors memoize interior pointers into their
    // block tables; copying would leave the copy's memo pointing into
    // the original.
    PredictorBase(const PredictorBase &) = delete;
    PredictorBase &operator=(const PredictorBase &) = delete;

    /** Human-readable predictor name ("Cosmos", "MSP", "VMSP"). */
    virtual const char *name() const = 0;

    /**
     * Present one incoming directory message for block @p blk.
     * Updates prediction state and statistics.
     */
    virtual Observation observe(BlockId blk, const PredMsg &msg) = 0;

    /** Storage accounting over all blocks touched so far. */
    virtual StorageReport storage() const = 0;

    /**
     * Drop all learned state (histories, pattern tables) -- the fault
     * layer's predictor-state loss on a node crash. Accuracy counters
     * are measurements, not machine state, and survive. The default
     * is a no-op so stateless test doubles need not care.
     */
    virtual void reset() {}

    /** Accuracy/coverage counters. */
    const PredStats &stats() const { return stats_; }

    /** Configured history depth. */
    std::size_t depth() const { return depth_; }

    /** Configured processor count. */
    unsigned numProcs() const { return numProcs_; }

  protected:
    /** Record one observation into the stats block (branchless). */
    void
    account(const Observation &o)
    {
        stats_.observed.inc(o.inAlphabet);
        stats_.predicted.inc(o.predicted);
        stats_.correct.inc(o.correct);
    }

    /** Bits to encode a processor id (paper: 4 bits for 16 procs). */
    unsigned
    pidBits() const
    {
        unsigned b = 1;
        while ((1u << b) < numProcs_)
            ++b;
        return b;
    }

    std::size_t depth_;
    unsigned numProcs_;
    PredStats stats_;
};

} // namespace mspdsm

#endif // MSPDSM_PRED_PREDICTOR_HH
