/**
 * @file
 * Predictor symbols: the alphabet of the two-level pattern predictors.
 *
 * Cosmos predicts over all incoming directory messages (requests and
 * acknowledgements); MSP restricts the alphabet to request messages;
 * VMSP folds consecutive read requests into a single reader-vector
 * symbol. All three share this Symbol representation.
 */

#ifndef MSPDSM_PRED_SYMBOL_HH
#define MSPDSM_PRED_SYMBOL_HH

#include <cstdint>
#include <string>

#include "base/bitvector.hh"
#include "base/logging.hh"
#include "base/types.hh"

namespace mspdsm
{

/** Kinds of predictor symbols. */
enum class SymKind : std::uint8_t
{
    Read,      //!< read request (GetS) by one processor
    Write,     //!< write request (GetX) by one processor
    Upgrade,   //!< upgrade request by one processor
    InvAck,    //!< invalidation acknowledgement (Cosmos only)
    WriteBack, //!< writeback in response to a recall (Cosmos only)
    ReadVec,   //!< folded vector of readers (VMSP only)
};

/** @return short mnemonic for a symbol kind. */
const char *symKindName(SymKind k);

/**
 * One element of a message-history or pattern-table sequence.
 *
 * For ReadVec symbols the payload is a reader NodeSet; for all other
 * kinds it is the source processor id.
 */
struct Symbol
{
    SymKind kind = SymKind::Read;
    NodeId pid = invalidNode; //!< source processor (non-vector kinds)
    NodeSet vec;              //!< reader vector (ReadVec only)

    /** Build a single-source symbol. */
    static Symbol
    of(SymKind k, NodeId p)
    {
        panic_if(k == SymKind::ReadVec,
                 "ReadVec symbols carry a vector, not a pid");
        Symbol s;
        s.kind = k;
        s.pid = p;
        return s;
    }

    /** Build a reader-vector symbol. */
    static Symbol
    readVec(NodeSet v)
    {
        Symbol s;
        s.kind = SymKind::ReadVec;
        s.vec = v;
        return s;
    }

    bool
    operator==(const Symbol &o) const
    {
        if (kind != o.kind)
            return false;
        if (kind == SymKind::ReadVec)
            return vec == o.vec;
        return pid == o.pid;
    }

    /** Bit position of the kind field in the encoded form. */
    static constexpr unsigned encKindShift = 61;

    /** Mask of the payload field in the encoded form. */
    static constexpr std::uint64_t encPayloadMask =
        (std::uint64_t{1} << encKindShift) - 1;

    /**
     * Pack into a 64-bit code for history-key hashing and pattern
     * storage. Kind occupies the top 3 bits; the payload (pid or
     * reader mask) must fit in the remaining 61, which limits ReadVec
     * symbols to 61 nodes -- comfortably above the 16-node study and
     * enforced by NodeSet. The encoding is injective, so the pattern
     * tables compare and store symbols in this form.
     */
    std::uint64_t
    encode() const
    {
        std::uint64_t payload =
            kind == SymKind::ReadVec ? vec.raw() : std::uint64_t{pid};
        panic_if(payload >> encKindShift,
                 "symbol payload too wide to encode");
        return (std::uint64_t(kind) << encKindShift) | payload;
    }

    /** Kind field of an encoded symbol. */
    static SymKind
    encodedKind(std::uint64_t enc)
    {
        return static_cast<SymKind>(enc >> encKindShift);
    }

    /** Payload field of an encoded symbol. */
    static std::uint64_t
    encodedPayload(std::uint64_t enc)
    {
        return enc & encPayloadMask;
    }

    /** Inverse of encode(). */
    static Symbol
    decode(std::uint64_t enc)
    {
        const SymKind k = encodedKind(enc);
        if (k == SymKind::ReadVec)
            return readVec(NodeSet::fromRaw(encodedPayload(enc)));
        return of(k, static_cast<NodeId>(encodedPayload(enc)));
    }

    /** Render for diagnostics, e.g. "<Read,P3>" or "<ReadVec,{1,2}>". */
    std::string toString() const;
};

} // namespace mspdsm

#endif // MSPDSM_PRED_SYMBOL_HH
