/**
 * @file
 * Shared engine for the per-message sequence predictors (Cosmos and
 * MSP). The two differ only in their alphabet: Cosmos predicts every
 * incoming directory message, MSP only the request messages. VMSP has
 * its own engine (vmsp.hh) because of read-vector folding.
 */

#ifndef MSPDSM_PRED_SEQ_PREDICTOR_HH
#define MSPDSM_PRED_SEQ_PREDICTOR_HH

#include <unordered_map>

#include "pred/pattern_table.hh"
#include "pred/predictor.hh"

namespace mspdsm
{

/**
 * Two-level predictor over a per-block symbol stream where every
 * message in the alphabet is its own symbol <type, pid>.
 */
class SeqPredictor : public PredictorBase
{
  public:
    SeqPredictor(std::size_t depth, unsigned numProcs)
        : PredictorBase(depth, numProcs)
    {}

    Observation observe(BlockId blk, const PredMsg &msg) override;

    StorageReport storage() const override;

    /** Predicted next message for @p blk, if known. */
    std::optional<Symbol> prediction(BlockId blk) const;

  protected:
    /** @return true iff @p kind is in this predictor's alphabet. */
    virtual bool inAlphabet(SymKind kind) const = 0;

    /** Bits for one history entry: type bits + pid bits. */
    virtual unsigned historyEntryBits() const = 0;

    std::unordered_map<BlockId, BlockPattern> blocks_;
};

/**
 * Cosmos: the general message predictor of Mukherjee & Hill, the
 * paper's baseline. Predicts requests *and* acknowledgements, using
 * 3 type bits per symbol.
 */
class Cosmos : public SeqPredictor
{
  public:
    using SeqPredictor::SeqPredictor;

    const char *name() const override { return "Cosmos"; }

  protected:
    bool
    inAlphabet(SymKind) const override
    {
        return true; // every directory-incoming message
    }

    unsigned historyEntryBits() const override { return 3 + pidBits(); }
};

/**
 * MSP: the paper's base Memory Sharing Predictor. Predicts only the
 * request messages (read / write / upgrade), dropping acknowledgements
 * from the pattern tables; 2 type bits per symbol.
 */
class Msp : public SeqPredictor
{
  public:
    using SeqPredictor::SeqPredictor;

    const char *name() const override { return "MSP"; }

  protected:
    bool
    inAlphabet(SymKind kind) const override
    {
        return kind == SymKind::Read || kind == SymKind::Write ||
               kind == SymKind::Upgrade;
    }

    unsigned historyEntryBits() const override { return 2 + pidBits(); }
};

} // namespace mspdsm

#endif // MSPDSM_PRED_SEQ_PREDICTOR_HH
