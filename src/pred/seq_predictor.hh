/**
 * @file
 * Shared engine for the per-message sequence predictors (Cosmos and
 * MSP). The two differ only in their alphabet: Cosmos predicts every
 * incoming directory message, MSP only the request messages. VMSP has
 * its own engine (vmsp.hh) because of read-vector folding.
 */

#ifndef MSPDSM_PRED_SEQ_PREDICTOR_HH
#define MSPDSM_PRED_SEQ_PREDICTOR_HH

#include "base/chunked_vector.hh"
#include "base/flat_map.hh"
#include "pred/pattern_table.hh"
#include "pred/predictor.hh"

namespace mspdsm
{

/**
 * Two-level predictor over a per-block symbol stream where every
 * message in the alphabet is its own symbol <type, pid>.
 */
class SeqPredictor : public PredictorBase
{
  public:
    /**
     * @param alphabet bitmask over SymKind values naming the message
     *        kinds this predictor observes (a data member rather than
     *        a virtual hook: the alphabet test runs per message)
     */
    SeqPredictor(std::size_t depth, unsigned numProcs,
                 unsigned alphabet)
        : PredictorBase(depth, numProcs), alphabet_(alphabet)
    {}

    /**
     * Defined inline: this is the per-message hot path of the whole
     * simulator, and the call sites (directory observation loop,
     * micro benches) must be able to absorb it.
     */
    Observation
    observe(BlockId blk, const PredMsg &msg) override
    {
        Observation obs;
        if (!inAlphabet(msg.kind))
            return obs;
        obs.inAlphabet = true;

        BlockPattern &bp = blockState(blk);

        const Symbol sym = Symbol::of(msg.kind, msg.src);

        const BlockPattern::LearnResult r = bp.observeLearn(sym);
        obs.predicted = r.hadPred;
        obs.correct = r.matched;
        if (r.inserted)
            ++pteTotal_;

        account(obs);
        return obs;
    }

    StorageReport storage() const override;

    /** Predicted next message for @p blk, if known. */
    std::optional<Symbol> prediction(BlockId blk) const;

    /** Bitmask bit for one symbol kind. */
    static constexpr unsigned
    kindBit(SymKind k)
    {
        return 1u << static_cast<unsigned>(k);
    }

    /** @return true iff @p kind is in this predictor's alphabet. */
    bool
    inAlphabet(SymKind kind) const
    {
        return alphabet_ & kindBit(kind);
    }

  protected:
    /** Bits for one history entry: type bits + pid bits. */
    virtual unsigned historyEntryBits() const = 0;

    const unsigned alphabet_;

    /**
     * Find-or-create the per-block state, memoizing the most recent
     * block: directory message streams are bursty per block, so the
     * repeat lookup is the common case. Block records live in a
     * chunked arena (stable addresses, dense first-touch layout); the
     * index map holds only 16-byte slots, so its rehashes move no
     * block state.
     */
    BlockPattern &
    blockState(BlockId blk)
    {
        if (memoBp_ && memoBlk_ == blk)
            return *memoBp_;
        // Group reservation: grow the index an arena chunk at a time,
        // *before* the insert, so a cold block's first observation is
        // one probe pass with no mid-insert rehash.
        index_.reserveGrouped(blockGroup);
        auto [it, fresh] = index_.try_emplace(blk, nullptr);
        if (fresh)
            it->second = &store_.emplace_back(depth_);
        memoBlk_ = blk;
        memoBp_ = it->second;
        return *memoBp_;
    }

    /** Per-block state for @p blk if it exists (const paths). */
    const BlockPattern *
    findBlock(BlockId blk) const
    {
        auto it = index_.find(blk);
        return it == index_.end() ? nullptr : it->second;
    }

    /** Index growth granularity; matches the arena chunk size. */
    static constexpr std::size_t blockGroup = 64;

    FlatMap<BlockId, BlockPattern *> index_; //!< blk -> arena record
    ChunkedVector<BlockPattern, blockGroup> store_;
    std::uint64_t pteTotal_ = 0; //!< entries across all blocks
    BlockId memoBlk_ = 0;
    BlockPattern *memoBp_ = nullptr;
};

/**
 * Cosmos: the general message predictor of Mukherjee & Hill, the
 * paper's baseline. Predicts requests *and* acknowledgements, using
 * 3 type bits per symbol.
 */
class Cosmos final : public SeqPredictor
{
  public:
    Cosmos(std::size_t depth, unsigned numProcs)
        : SeqPredictor(depth, numProcs,
                       // every directory-incoming message
                       kindBit(SymKind::Read) | kindBit(SymKind::Write) |
                           kindBit(SymKind::Upgrade) |
                           kindBit(SymKind::InvAck) |
                           kindBit(SymKind::WriteBack))
    {}

    const char *name() const override { return "Cosmos"; }

  protected:
    unsigned historyEntryBits() const override { return 3 + pidBits(); }
};

/**
 * MSP: the paper's base Memory Sharing Predictor. Predicts only the
 * request messages (read / write / upgrade), dropping acknowledgements
 * from the pattern tables; 2 type bits per symbol.
 */
class Msp final : public SeqPredictor
{
  public:
    Msp(std::size_t depth, unsigned numProcs)
        : SeqPredictor(depth, numProcs,
                       // request messages only
                       kindBit(SymKind::Read) | kindBit(SymKind::Write) |
                           kindBit(SymKind::Upgrade))
    {}

    const char *name() const override { return "MSP"; }

  protected:
    unsigned historyEntryBits() const override { return 2 + pidBits(); }
};

} // namespace mspdsm

#endif // MSPDSM_PRED_SEQ_PREDICTOR_HH
