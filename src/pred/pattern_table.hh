/**
 * @file
 * Per-block two-level prediction state: a bounded history register and
 * a pattern table mapping history keys to predicted successor symbols.
 *
 * Predictions are issued and learned only once the history register is
 * full (depth symbols seen), matching the PAp discipline the paper
 * inherits: a deeper history therefore takes longer to learn, which is
 * exactly the learning-speed effect discussed in Section 7.2.
 */

#ifndef MSPDSM_PRED_PATTERN_TABLE_HH
#define MSPDSM_PRED_PATTERN_TABLE_HH

#include <optional>
#include <unordered_map>

#include "pred/history.hh"
#include "pred/symbol.hh"

namespace mspdsm
{

/**
 * One pattern-table entry: the predicted successor of a history, plus
 * the Speculative-Write-Invalidation premature bit (Section 4.1).
 */
struct PatternEntry
{
    Symbol pred;
    bool premature = false; //!< SWI previously fired too early here
};

/**
 * Two-level prediction state for a single memory block.
 */
class BlockPattern
{
  public:
    explicit BlockPattern(std::size_t depth)
        : hist_(depth)
    {}

    /** @return true once the history register is full. */
    bool warm() const { return hist_.size() == hist_.depth(); }

    /** Current history key (meaningful only when warm()). */
    HistoryKey key() const { return hist_.key(); }

    /** Predicted successor of the current history, if any. */
    std::optional<Symbol>
    lookup() const
    {
        if (!warm())
            return std::nullopt;
        auto it = table_.find(hist_.key());
        if (it == table_.end())
            return std::nullopt;
        return it->second.pred;
    }

    /**
     * Record @p observed as the successor of the current history
     * (when warm) and shift it into the history register.
     */
    void
    learnAndPush(const Symbol &observed)
    {
        if (warm()) {
            PatternEntry &e = table_[hist_.key()];
            if (!(e.pred == observed)) {
                // The premature bit belongs to the entry's predicted
                // *write*: it survives as long as the same processor
                // is still the predicted writer (a producer robbed by
                // SWI re-acquires with GetX instead of Upgrade, which
                // must not launder the bit), and is invalidated by
                // any other replacement.
                const bool same_writer =
                    isWriteKind(e.pred.kind) &&
                    isWriteKind(observed.kind) &&
                    e.pred.pid == observed.pid;
                e.pred = observed;
                if (!same_writer)
                    e.premature = false;
            }
        }
        hist_.push(observed);
    }

    /** @return true for Write/Upgrade symbols. */
    static bool
    isWriteKind(SymKind k)
    {
        return k == SymKind::Write || k == SymKind::Upgrade;
    }

    /** Number of pattern-table entries for this block. */
    std::size_t entries() const { return table_.size(); }

    /** Find an entry by explicit key (speculation bookkeeping). */
    PatternEntry *
    find(const HistoryKey &k)
    {
        auto it = table_.find(k);
        return it == table_.end() ? nullptr : &it->second;
    }

    /** Const overload of find(). */
    const PatternEntry *
    find(const HistoryKey &k) const
    {
        auto it = table_.find(k);
        return it == table_.end() ? nullptr : &it->second;
    }

    /** Erase an entry (misspeculation removal), no-op if absent. */
    void erase(const HistoryKey &k) { table_.erase(k); }

    /** The underlying history register (diagnostics). */
    const History &history() const { return hist_; }

  private:
    History hist_;
    std::unordered_map<HistoryKey, PatternEntry, HistoryKeyHash> table_;
};

} // namespace mspdsm

#endif // MSPDSM_PRED_PATTERN_TABLE_HH
