/**
 * @file
 * Per-block two-level prediction state: a bounded history register and
 * a pattern table mapping history keys to predicted successor symbols.
 *
 * Predictions are issued and learned only once the history register is
 * full (depth symbols seen), matching the PAp discipline the paper
 * inherits: a deeper history therefore takes longer to learn, which is
 * exactly the learning-speed effect discussed in Section 7.2.
 *
 * Hot-path layout, mirroring how a hardware table would be built:
 *  - the history register IS the cached HistoryKey (symbols are kept
 *    in their injective 64-bit encoded form; nothing else is stored);
 *    the key shifts in place and its hash is recomputed once per push
 *    (depth <= 4, so a full rehash is a handful of mixes);
 *  - predictions are stored and compared encoded, so a "does the
 *    observed message match" check is a single integer compare;
 *  - observeLearn() fuses the prediction read with the learn update
 *    (both address the same entry), one table access per message;
 *  - the first few pattern-table entries live inline in the block
 *    record itself -- a stable producer/consumer block at depth 1
 *    needs two at VMSP (the vector after the write, the write after
 *    the vector) and reader-degree+1 at MSP/Cosmos -- so the common
 *    block never allocates and its lookup stays within the cache
 *    lines the block record already occupies. Irregular blocks spill
 *    into an open-addressing FlatMap.
 */

#ifndef MSPDSM_PRED_PATTERN_TABLE_HH
#define MSPDSM_PRED_PATTERN_TABLE_HH

#include <optional>
#include <type_traits>

#include "base/flat_map.hh"
#include "pred/history.hh"
#include "pred/symbol.hh"

namespace mspdsm
{

/**
 * One pattern-table entry: the predicted successor of a history (in
 * Symbol::encode() form), plus the Speculative-Write-Invalidation
 * premature bit (Section 4.1).
 *
 * Deliberately trivial (no default member initializers): entries live
 * in uninitialized inline storage inside every block record, and a
 * cold block's first observation must not pay for constructing four
 * of them. Creation sites value-initialize explicitly
 * (PatternEntry{}).
 */
struct PatternEntry
{
    std::uint64_t pred;     //!< encoded predicted symbol
    bool premature;         //!< SWI previously fired too early here

    /** Decoded prediction, for diagnostics and external consumers. */
    Symbol predSymbol() const { return Symbol::decode(pred); }
};

static_assert(std::is_trivial_v<PatternEntry>,
              "PatternEntry lives in uninitialized inline storage");

/**
 * Two-level prediction state for a single memory block.
 */
class BlockPattern
{
  public:
    /** Outcome of one fused observe: what stood, what changed. */
    struct LearnResult
    {
        /** An entry (i.e. a prediction) stood for this history. */
        bool hadPred = false;
        /** ... and its prediction matched the observed symbol. */
        bool matched = false;
        /** A new pattern-table entry was allocated. */
        bool inserted = false;
    };

    explicit BlockPattern(std::size_t depth)
        : depth_(static_cast<std::uint8_t>(depth))
    {
        panic_if(depth == 0 || depth > maxHistoryDepth,
                 "history depth ", depth, " out of range");
        keyHash_ = HistoryKeyHash{}(key_);
    }

    /** @return true once the history register is full. */
    bool warm() const { return key_.used == depth_; }

    /** Current history key (meaningful only when warm()). */
    const HistoryKey &key() const { return key_; }

    /** Predicted successor of the current history, if any. */
    std::optional<Symbol>
    lookup() const
    {
        const PatternEntry *e = peek();
        if (!e)
            return std::nullopt;
        return e->predSymbol();
    }

    /**
     * Entry holding the current prediction, or null: the copy-free
     * fast path for per-message checks.
     */
    const PatternEntry *
    peek() const
    {
        if (!warm())
            return nullptr;
        return findHashed(key_, keyHash_);
    }

    /**
     * Check the standing prediction against @p observed, record
     * @p observed as the successor of the current history (when warm),
     * and shift it into the history register -- one table access and
     * one symbol encoding in total.
     */
    LearnResult
    observeLearn(const Symbol &observed)
    {
        const std::uint64_t enc = observed.encode();
        LearnResult r;
        if (warm()) {
            PatternEntry *e = findHashed(key_, keyHash_);
            if (!e) {
                e = insert(key_, keyHash_);
                r.inserted = true;
                e->pred = enc;
            } else {
                r.hadPred = true;
                if (e->pred == enc) {
                    r.matched = true;
                } else {
                    // The premature bit belongs to the entry's
                    // predicted *write*: it survives as long as the
                    // same processor is still the predicted writer (a
                    // producer robbed by SWI re-acquires with GetX
                    // instead of Upgrade, which must not launder the
                    // bit), and is invalidated by any other
                    // replacement.
                    const bool same_writer =
                        isWriteKind(Symbol::encodedKind(e->pred)) &&
                        isWriteKind(Symbol::encodedKind(enc)) &&
                        Symbol::encodedPayload(e->pred) ==
                            Symbol::encodedPayload(enc);
                    e->pred = enc;
                    if (!same_writer)
                        e->premature = false;
                }
            }
        }
        pushAndRefresh(enc);
        return r;
    }

    /**
     * Record @p observed as the successor of the current history
     * (when warm) and shift it into the history register.
     * @return true iff a new pattern-table entry was allocated (the
     *         predictors keep their storage totals incrementally)
     */
    bool
    learnAndPush(const Symbol &observed)
    {
        return observeLearn(observed).inserted;
    }

    /** @return true for Write/Upgrade symbols. */
    static bool
    isWriteKind(SymKind k)
    {
        return k == SymKind::Write || k == SymKind::Upgrade;
    }

    /** Number of pattern-table entries for this block. */
    std::size_t
    entries() const
    {
        return inlineCount_ + spill_.size();
    }

    /** Find an entry by explicit key (speculation bookkeeping). */
    PatternEntry *
    find(const HistoryKey &k)
    {
        return findHashed(k, HistoryKeyHash{}(k));
    }

    /** Const overload of find(). */
    const PatternEntry *
    find(const HistoryKey &k) const
    {
        return findHashed(k, HistoryKeyHash{}(k));
    }

    /**
     * Erase an entry (misspeculation removal), no-op if absent.
     * @return true iff an entry was removed
     */
    bool
    erase(const HistoryKey &k)
    {
        const std::size_t h = HistoryKeyHash{}(k);
        for (unsigned i = 0; i < inlineCount_; ++i) {
            if (inlineHash_[i] == static_cast<std::uint32_t>(h) &&
                inlineKeyIs(i, k)) {
                // Entries are unordered; fill the hole from the back.
                const unsigned last = inlineCount_ - 1;
                if (i != last) {
                    inlineHash_[i] = inlineHash_[last];
                    inlineUsed_[i] = inlineUsed_[last];
                    for (unsigned j = 0; j < inlineUsed_[last]; ++j)
                        inlineSlots_[i][j] = inlineSlots_[last][j];
                    inlineVal_[i] = inlineVal_[last];
                }
                --inlineCount_;
                return true;
            }
        }
        return spill_.erase(k) != 0;
    }

    /** Configured history depth. */
    std::size_t depth() const { return depth_; }

  private:
    /**
     * Inline entries cover the regular sharing patterns without any
     * allocation: a stable producer/consumer block needs 2 at VMSP
     * (vector, write) and degree+1 at MSP/Cosmos, so 4 keeps
     * low-degree blocks entirely inside the block record.
     */
    static constexpr unsigned inlineN = 4;

    PatternEntry *
    findHashed(const HistoryKey &k, std::size_t h)
    {
        return const_cast<PatternEntry *>(
            static_cast<const BlockPattern *>(this)->findHashed(k, h));
    }

    /** Compare inline key @p i against @p k (hashes already equal). */
    bool
    inlineKeyIs(unsigned i, const HistoryKey &k) const
    {
        if (inlineUsed_[i] != k.used)
            return false;
        for (std::uint8_t j = 0; j < k.used; ++j)
            if (inlineSlots_[i][j] != k.slots[j])
                return false;
        return true;
    }

    const PatternEntry *
    findHashed(const HistoryKey &k, std::size_t h) const
    {
        const auto h32 = static_cast<std::uint32_t>(h);
        for (unsigned i = 0; i < inlineCount_; ++i)
            if (inlineHash_[i] == h32 && inlineKeyIs(i, k))
                return &inlineVal_[i];
        if (!spill_.empty()) {
            auto it = spill_.findHashed(k, h);
            if (it != spill_.end())
                return &it->second;
        }
        return nullptr;
    }

    /** Insert a default entry for @p k (known absent). */
    PatternEntry *
    insert(const HistoryKey &k, std::size_t h)
    {
        if (inlineCount_ < inlineN) {
            const unsigned i = inlineCount_++;
            inlineHash_[i] = static_cast<std::uint32_t>(h);
            inlineUsed_[i] = k.used;
            for (std::uint8_t j = 0; j < k.used; ++j)
                inlineSlots_[i][j] = k.slots[j];
            inlineVal_[i] = PatternEntry{};
            return &inlineVal_[i];
        }
        return &spill_.tryEmplaceHashed(h, k).first->second;
    }

    /**
     * Shift the encoded symbol into the history key in place and
     * re-hash: the key is the history register.
     */
    void
    pushAndRefresh(std::uint64_t enc)
    {
        if (key_.used == depth_) {
            for (std::uint8_t i = 1; i < depth_; ++i)
                key_.slots[i - 1] = key_.slots[i];
            key_.slots[depth_ - 1] = enc;
        } else {
            key_.slots[key_.used] = enc;
            ++key_.used;
        }
        keyHash_ = HistoryKeyHash{}(key_);
    }

    HistoryKey key_;          //!< history register, encoded oldest-first
    std::size_t keyHash_ = 0; //!< HistoryKeyHash of key_
    std::uint8_t depth_;      //!< configured history depth
    std::uint8_t inlineCount_ = 0;

    /**
     * Inline-entry storage, kept deliberately *uninitialized* (only
     * the first inlineCount_ rows are meaningful): a simulation
     * allocates one block record per touched block, and eagerly
     * value-constructing four keys and entries per record was the
     * bulk of the first-touch cost the pred/observe_cold bench
     * tracks. Keys are stored as raw (used, slots[]) rows rather
     * than HistoryKey so nothing here runs a constructor.
     */
    std::uint32_t inlineHash_[inlineN];
    std::uint8_t inlineUsed_[inlineN];
    std::uint64_t inlineSlots_[inlineN][maxHistoryDepth];
    PatternEntry inlineVal_[inlineN];

    FlatMap<HistoryKey, PatternEntry, HistoryKeyHash> spill_;
};

} // namespace mspdsm

#endif // MSPDSM_PRED_PATTERN_TABLE_HH
