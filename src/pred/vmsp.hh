/**
 * @file
 * VMSP: the Vector Memory Sharing Predictor (paper Section 3.1).
 *
 * VMSP folds every run of read requests between two writes into a
 * single <Read, vector> symbol, exactly as a full-map directory folds
 * its sharer list. This removes read re-ordering from the pattern
 * tables. Writes and upgrades remain individual <type, pid> symbols.
 *
 * Per-message accounting (so that accuracy is comparable with Cosmos
 * and MSP at message granularity):
 *  - an incoming read is predicted iff an entry exists for the current
 *    history; it is correct iff that entry is a read vector containing
 *    the reader;
 *  - an incoming write/upgrade first closes any open read vector
 *    (learning it as the successor of the pre-phase history), then is
 *    checked against the prediction for the updated history.
 *
 * VMSP additionally exposes the hooks the speculation engine needs:
 * the current predicted reader vector, history-key snapshots for
 * premature-invalidation bits, and entry removal on verified
 * misspeculation (paper Section 4.2).
 */

#ifndef MSPDSM_PRED_VMSP_HH
#define MSPDSM_PRED_VMSP_HH

#include <optional>
#include <utility>
#include <vector>

#include "base/chunked_vector.hh"
#include "base/flat_map.hh"
#include "pred/pattern_table.hh"
#include "pred/predictor.hh"

namespace mspdsm
{

/**
 * Vector Memory Sharing Predictor.
 */
class Vmsp final : public PredictorBase
{
  public:
    Vmsp(std::size_t depth, unsigned numProcs)
        : PredictorBase(depth, numProcs)
    {}

    const char *name() const override { return "VMSP"; }

    /**
     * Defined inline: per-message hot path (see SeqPredictor::observe).
     */
    Observation
    observe(BlockId blk, const PredMsg &msg) override
    {
        Observation obs;
        const bool is_read = msg.kind == SymKind::Read;
        const bool is_write = msg.kind == SymKind::Write ||
                              msg.kind == SymKind::Upgrade;
        if (!is_read && !is_write)
            return obs; // acknowledgements are not in VMSP's alphabet
        obs.inAlphabet = true;

        BlockState &st = blockState(blk);

        if (is_read) {
            // The open vector does not advance the history; the read
            // is judged against the prediction standing for this read
            // phase.
            if (const PatternEntry *e = st.pattern.peek()) {
                obs.predicted = true;
                obs.correct =
                    Symbol::encodedKind(e->pred) == SymKind::ReadVec &&
                    NodeSet::fromRaw(Symbol::encodedPayload(e->pred))
                        .contains(msg.src);
            }
            st.openVec.add(msg.src);
            st.openActive = true;
            account(obs);
            return obs;
        }

        // Write or upgrade: first close any open read vector,
        // learning it as the successor of the pre-phase history.
        if (st.openActive) {
            if (st.pattern.learnAndPush(Symbol::readVec(st.openVec)))
                ++pteTotal_;
            st.openVec.clear();
            st.openActive = false;
        }

        const Symbol sym = Symbol::of(msg.kind, msg.src);
        if (st.pattern.warm()) {
            st.lastWriteKey = st.pattern.key();
            st.lastWriteKeyValid = true;
        } else {
            st.lastWriteKeyValid = false;
        }
        const BlockPattern::LearnResult r =
            st.pattern.observeLearn(sym);
        obs.predicted = r.hadPred;
        obs.correct = r.matched;
        if (r.inserted)
            ++pteTotal_;

        account(obs);
        return obs;
    }

    StorageReport storage() const override;

    /**
     * Predicted successor of the current (closed-symbol) history.
     * While a read vector is open this is the prediction for the
     * ongoing read phase.
     */
    std::optional<Symbol> prediction(BlockId blk) const;

    /**
     * Predicted reader vector for the current read phase, if the
     * prediction is a read vector. Convenience for the speculation
     * engine's First-Read and SWI triggers.
     */
    std::optional<NodeSet> predictedReaders(BlockId blk) const;

    /** Readers observed so far in the currently open phase. */
    NodeSet openReaders(BlockId blk) const;

    /** History key indexing the current prediction (for bookkeeping). */
    std::optional<HistoryKey> predictionKey(BlockId blk) const;

    /**
     * Key of the entry whose prediction is the most recently observed
     * write/upgrade for @p blk -- the entry that carries the SWI
     * premature bit for that write.
     */
    std::optional<HistoryKey> lastWriteKey(BlockId blk) const;

    /** Query the SWI premature bit on an entry. */
    bool isPremature(BlockId blk, const HistoryKey &k) const;

    /** Set the SWI premature bit on an entry (no-op if gone). */
    void setPremature(BlockId blk, const HistoryKey &k);

    /** Remove a misspeculated entry from the pattern table. */
    void eraseEntry(BlockId blk, const HistoryKey &k);

    // ---- Fault layer: checkpoint / restore / cold restart.

    /** Opaque deep copy of all per-block state (defined below). */
    class Snapshot;

    /**
     * Deep-copy every block's prediction state. Taken periodically by
     * the fault layer's checkpoint schedule; the copy is what a warm
     * restart merges into the backup home's predictor.
     */
    Snapshot snapshot() const;

    /**
     * Merge a checkpoint: blocks this predictor has no state for are
     * adopted wholesale; blocks it is already tracking keep their
     * (fresher) live state.
     */
    void mergeFrom(const Snapshot &s);

    /** Cold restart: drop all learned state, keep the statistics. */
    void reset() override;

  private:
    struct BlockState
    {
        explicit BlockState(std::size_t depth)
            : pattern(depth)
        {}

        BlockPattern pattern;
        NodeSet openVec;      //!< readers since the last write
        bool openActive = false;
        HistoryKey lastWriteKey;
        bool lastWriteKeyValid = false;
    };

    BlockState *findState(BlockId blk);
    const BlockState *findState(BlockId blk) const;

    /**
     * Find-or-create per-block state with a most-recent-block memo
     * (bursty streams; see SeqPredictor::blockState). Records live in
     * a chunked arena with stable addresses; the index map holds only
     * 16-byte slots.
     */
    BlockState &
    blockState(BlockId blk)
    {
        if (memoSt_ && memoBlk_ == blk)
            return *memoSt_;
        // Group reservation, as in SeqPredictor::blockState: grow the
        // index an arena chunk at a time before the insert so a cold
        // block's first observation is a single probe pass.
        index_.reserveGrouped(blockGroup);
        auto [it, fresh] = index_.try_emplace(blk, nullptr);
        if (fresh)
            it->second = &store_.emplace_back(depth_);
        memoBlk_ = blk;
        memoSt_ = it->second;
        return *memoSt_;
    }

    /** Index growth granularity; matches the arena chunk size. */
    static constexpr std::size_t blockGroup = 64;

    FlatMap<BlockId, BlockState *> index_; //!< blk -> arena record
    ChunkedVector<BlockState, blockGroup> store_;
    std::uint64_t pteTotal_ = 0; //!< entries across all blocks,
                                 //!< maintained incrementally
    BlockId memoBlk_ = 0;
    BlockState *memoSt_ = nullptr;

  public:
    /**
     * A predictor checkpoint: value copies of every block record at
     * snapshot time. Opaque to everything but Vmsp; the fault layer
     * only sizes its replication traffic from blockCount().
     */
    class Snapshot
    {
        friend class Vmsp;
        std::vector<std::pair<BlockId, BlockState>> blocks_;

      public:
        /** Blocks captured (sizes the CkptData replication burst). */
        std::size_t blockCount() const { return blocks_.size(); }
    };
};

} // namespace mspdsm

#endif // MSPDSM_PRED_VMSP_HH
