/**
 * @file
 * VMSP: the Vector Memory Sharing Predictor (paper Section 3.1).
 *
 * VMSP folds every run of read requests between two writes into a
 * single <Read, vector> symbol, exactly as a full-map directory folds
 * its sharer list. This removes read re-ordering from the pattern
 * tables. Writes and upgrades remain individual <type, pid> symbols.
 *
 * Per-message accounting (so that accuracy is comparable with Cosmos
 * and MSP at message granularity):
 *  - an incoming read is predicted iff an entry exists for the current
 *    history; it is correct iff that entry is a read vector containing
 *    the reader;
 *  - an incoming write/upgrade first closes any open read vector
 *    (learning it as the successor of the pre-phase history), then is
 *    checked against the prediction for the updated history.
 *
 * VMSP additionally exposes the hooks the speculation engine needs:
 * the current predicted reader vector, history-key snapshots for
 * premature-invalidation bits, and entry removal on verified
 * misspeculation (paper Section 4.2).
 */

#ifndef MSPDSM_PRED_VMSP_HH
#define MSPDSM_PRED_VMSP_HH

#include <optional>
#include <unordered_map>

#include "pred/pattern_table.hh"
#include "pred/predictor.hh"

namespace mspdsm
{

/**
 * Vector Memory Sharing Predictor.
 */
class Vmsp : public PredictorBase
{
  public:
    Vmsp(std::size_t depth, unsigned numProcs)
        : PredictorBase(depth, numProcs)
    {}

    const char *name() const override { return "VMSP"; }

    Observation observe(BlockId blk, const PredMsg &msg) override;

    StorageReport storage() const override;

    /**
     * Predicted successor of the current (closed-symbol) history.
     * While a read vector is open this is the prediction for the
     * ongoing read phase.
     */
    std::optional<Symbol> prediction(BlockId blk) const;

    /**
     * Predicted reader vector for the current read phase, if the
     * prediction is a read vector. Convenience for the speculation
     * engine's First-Read and SWI triggers.
     */
    std::optional<NodeSet> predictedReaders(BlockId blk) const;

    /** Readers observed so far in the currently open phase. */
    NodeSet openReaders(BlockId blk) const;

    /** History key indexing the current prediction (for bookkeeping). */
    std::optional<HistoryKey> predictionKey(BlockId blk) const;

    /**
     * Key of the entry whose prediction is the most recently observed
     * write/upgrade for @p blk -- the entry that carries the SWI
     * premature bit for that write.
     */
    std::optional<HistoryKey> lastWriteKey(BlockId blk) const;

    /** Query the SWI premature bit on an entry. */
    bool isPremature(BlockId blk, const HistoryKey &k) const;

    /** Set the SWI premature bit on an entry (no-op if gone). */
    void setPremature(BlockId blk, const HistoryKey &k);

    /** Remove a misspeculated entry from the pattern table. */
    void eraseEntry(BlockId blk, const HistoryKey &k);

  private:
    struct BlockState
    {
        explicit BlockState(std::size_t depth)
            : pattern(depth)
        {}

        BlockPattern pattern;
        NodeSet openVec;      //!< readers since the last write
        bool openActive = false;
        HistoryKey lastWriteKey;
        bool lastWriteKeyValid = false;
    };

    BlockState *findState(BlockId blk);
    const BlockState *findState(BlockId blk) const;

    std::unordered_map<BlockId, BlockState> blocks_;
};

} // namespace mspdsm

#endif // MSPDSM_PRED_VMSP_HH
