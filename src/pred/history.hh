/**
 * @file
 * Per-block message history and the hashable key it forms.
 *
 * A History is a bounded FIFO of the most recent `depth` symbols seen
 * for one memory block. Its packed form, HistoryKey, indexes the
 * per-block pattern table. Histories shorter than the configured depth
 * (during warm-up) are valid keys: the predictor can begin predicting
 * as soon as it has seen a single message, exactly as the two-level
 * PAp scheme the paper builds on.
 */

#ifndef MSPDSM_PRED_HISTORY_HH
#define MSPDSM_PRED_HISTORY_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "base/flat_map.hh"
#include "base/logging.hh"
#include "pred/symbol.hh"

namespace mspdsm
{

/**
 * Maximum supported history depth. The paper evaluates 1, 2 and 4;
 * keeping the bound tight matters because HistoryKey is sized by it
 * and the predictors store three keys per block record on the hot
 * path (current, plus two inline pattern entries).
 */
constexpr std::size_t maxHistoryDepth = 4;

/**
 * Packed, hashable history: the encoded symbols newest-last, padded
 * with a sentinel in unused slots.
 */
struct HistoryKey
{
    /** Sentinel for unused slots; cannot collide with Symbol::encode. */
    static constexpr std::uint64_t emptySlot = ~std::uint64_t{0};

    std::array<std::uint64_t, maxHistoryDepth> slots;
    std::uint8_t used = 0;

    HistoryKey() { slots.fill(emptySlot); }

    bool
    operator==(const HistoryKey &o) const
    {
        // Compare only the occupied prefix: depth is 1-4 in practice,
        // so this beats a full 64-byte array compare. Unused slots
        // hold the sentinel on both sides and cannot disagree.
        if (used != o.used)
            return false;
        for (std::uint8_t i = 0; i < used; ++i)
            if (slots[i] != o.slots[i])
                return false;
        return true;
    }
};

/**
 * Avalanche-mix chain over the occupied slots: the pattern tables
 * index an open-addressing FlatMap with a power-of-two mask, so every
 * key bit must reach the low index bits. The length is folded into
 * the seed so prefixes don't collide, and the common depth-1 key
 * costs a single mix.
 */
struct HistoryKeyHash
{
    std::size_t
    operator()(const HistoryKey &k) const
    {
        std::uint64_t h =
            0x9e3779b97f4a7c15ULL ^ (std::uint64_t{k.used} << 56);
        for (std::uint8_t i = 0; i < k.used; ++i)
            h = mix64(h ^ k.slots[i]);
        return static_cast<std::size_t>(h);
    }
};

/**
 * Bounded FIFO of the most recent symbols for one block.
 */
class History
{
  public:
    /** @param depth number of symbols retained, 1..maxHistoryDepth. */
    explicit History(std::size_t depth)
        : depth_(depth)
    {
        panic_if(depth_ == 0 || depth_ > maxHistoryDepth,
                 "history depth ", depth_, " out of range");
    }

    /** Append the newest symbol, evicting the oldest beyond depth. */
    void
    push(const Symbol &s)
    {
        if (size_ == depth_) {
            for (std::size_t i = 1; i < size_; ++i)
                syms_[i - 1] = syms_[i];
            syms_[size_ - 1] = s;
        } else {
            syms_[size_++] = s;
        }
    }

    /** Number of symbols currently held (<= depth). */
    std::size_t size() const { return size_; }

    /** Configured depth. */
    std::size_t depth() const { return depth_; }

    /** @return packed key over the current contents. */
    HistoryKey
    key() const
    {
        HistoryKey k;
        k.used = static_cast<std::uint8_t>(size_);
        for (std::size_t i = 0; i < size_; ++i)
            k.slots[i] = syms_[i].encode();
        return k;
    }

    /** Oldest-first access for diagnostics. */
    const Symbol &at(std::size_t i) const { return syms_[i]; }

  private:
    std::array<Symbol, maxHistoryDepth> syms_;
    std::size_t depth_;
    std::size_t size_ = 0;
};

} // namespace mspdsm

#endif // MSPDSM_PRED_HISTORY_HH
