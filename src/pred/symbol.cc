#include "pred/symbol.hh"

#include <sstream>

namespace mspdsm
{

const char *
symKindName(SymKind k)
{
    switch (k) {
      case SymKind::Read:
        return "Read";
      case SymKind::Write:
        return "Write";
      case SymKind::Upgrade:
        return "Upgrade";
      case SymKind::InvAck:
        return "ack";
      case SymKind::WriteBack:
        return "writeback";
      case SymKind::ReadVec:
        return "ReadVec";
    }
    panic("unknown SymKind ", int(k));
}

std::string
Symbol::toString() const
{
    std::ostringstream oss;
    oss << '<' << symKindName(kind) << ',';
    if (kind == SymKind::ReadVec)
        oss << vec.toString();
    else
        oss << 'P' << pid;
    oss << '>';
    return oss.str();
}

} // namespace mspdsm
