#include "pred/vmsp.hh"

namespace mspdsm
{

Vmsp::BlockState *
Vmsp::findState(BlockId blk)
{
    auto it = index_.find(blk);
    return it == index_.end() ? nullptr : it->second;
}

const Vmsp::BlockState *
Vmsp::findState(BlockId blk) const
{
    auto it = index_.find(blk);
    return it == index_.end() ? nullptr : it->second;
}

std::optional<Symbol>
Vmsp::prediction(BlockId blk) const
{
    const BlockState *st = findState(blk);
    if (!st)
        return std::nullopt;
    return st->pattern.lookup();
}

std::optional<NodeSet>
Vmsp::predictedReaders(BlockId blk) const
{
    auto pred = prediction(blk);
    if (!pred || pred->kind != SymKind::ReadVec || pred->vec.empty())
        return std::nullopt;
    return pred->vec;
}

NodeSet
Vmsp::openReaders(BlockId blk) const
{
    const BlockState *st = findState(blk);
    return st ? st->openVec : NodeSet{};
}

std::optional<HistoryKey>
Vmsp::predictionKey(BlockId blk) const
{
    const BlockState *st = findState(blk);
    if (!st || !st->pattern.warm())
        return std::nullopt;
    return st->pattern.key();
}

std::optional<HistoryKey>
Vmsp::lastWriteKey(BlockId blk) const
{
    const BlockState *st = findState(blk);
    if (!st || !st->lastWriteKeyValid)
        return std::nullopt;
    return st->lastWriteKey;
}

bool
Vmsp::isPremature(BlockId blk, const HistoryKey &k) const
{
    const BlockState *st = findState(blk);
    if (!st)
        return false;
    const PatternEntry *e = st->pattern.find(k);
    return e && e->premature;
}

void
Vmsp::setPremature(BlockId blk, const HistoryKey &k)
{
    BlockState *st = findState(blk);
    if (!st)
        return;
    if (PatternEntry *e = st->pattern.find(k))
        e->premature = true;
}

void
Vmsp::eraseEntry(BlockId blk, const HistoryKey &k)
{
    BlockState *st = findState(blk);
    if (st && st->pattern.erase(k))
        --pteTotal_;
}

StorageReport
Vmsp::storage() const
{
    StorageReport r;
    r.blocksAllocated = store_.size();
    r.pteTotal = pteTotal_;
    if (r.blocksAllocated == 0)
        return r;
    r.avgPte = static_cast<double>(r.pteTotal) /
               static_cast<double>(r.blocksAllocated);

    // Paper Section 7.3: a VMSP history entry is 2 type bits plus an
    // n-bit reader vector (18 bits at n=16). A pattern-table entry
    // holds at most one vector (a vector is always followed by a
    // write/upgrade), so at d=1 the key is 18 bits and the prediction
    // 2+log(n) bits: (18 + 24*pte)/8 bytes per block. For d>1 the key
    // holds one vector plus (d-1) write symbols.
    const double hv = 2.0 + numProcs_;
    const double wr = 2.0 + pidBits();
    const double d = static_cast<double>(depth_);
    const double keyBits = hv + (d - 1.0) * wr;
    const double bits = d * hv + r.avgPte * (keyBits + wr);
    r.avgBytesPerBlock = bits / 8.0;
    return r;
}

Vmsp::Snapshot
Vmsp::snapshot() const
{
    Snapshot s;
    s.blocks_.reserve(index_.size());
    for (const auto &kv : index_)
        s.blocks_.emplace_back(kv.first, *kv.second);
    return s;
}

void
Vmsp::mergeFrom(const Snapshot &s)
{
    for (const auto &kv : s.blocks_) {
        index_.reserveGrouped(blockGroup);
        auto [it, fresh] = index_.try_emplace(kv.first, nullptr);
        if (!fresh) {
            // Live state is fresher than any checkpoint: keep it.
            continue;
        }
        it->second = &store_.emplace_back(kv.second);
        pteTotal_ += kv.second.pattern.entries();
    }
    // Inserts may have rehashed the index, but block records live in
    // the stable arena, so the most-recent-block memo stays valid.
}

void
Vmsp::reset()
{
    index_.clear();
    store_ = ChunkedVector<BlockState, blockGroup>{};
    pteTotal_ = 0;
    memoSt_ = nullptr;
}

} // namespace mspdsm
