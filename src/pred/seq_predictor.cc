#include "pred/seq_predictor.hh"

namespace mspdsm
{

std::optional<Symbol>
SeqPredictor::prediction(BlockId blk) const
{
    const BlockPattern *bp = findBlock(blk);
    if (!bp)
        return std::nullopt;
    return bp->lookup();
}

StorageReport
SeqPredictor::storage() const
{
    StorageReport r;
    r.blocksAllocated = store_.size();
    r.pteTotal = pteTotal_;
    if (r.blocksAllocated == 0)
        return r;
    r.avgPte = static_cast<double>(r.pteTotal) /
               static_cast<double>(r.blocksAllocated);

    // Paper Section 7.3: a history entry is (type + pid) bits; a
    // pattern-table entry stores a depth-long key plus the predicted
    // symbol. For d=1 this yields Cosmos (7 + 14*pte)/8 and
    // MSP (6 + 12*pte)/8 bytes per block.
    const double he = historyEntryBits();
    const double d = static_cast<double>(depth_);
    const double bits = d * he + r.avgPte * (d * he + he);
    r.avgBytesPerBlock = bits / 8.0;
    return r;
}

} // namespace mspdsm
