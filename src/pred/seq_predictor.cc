#include "pred/seq_predictor.hh"

namespace mspdsm
{

Observation
SeqPredictor::observe(BlockId blk, const PredMsg &msg)
{
    Observation obs;
    if (!inAlphabet(msg.kind))
        return obs;
    obs.inAlphabet = true;

    auto [it, fresh] = blocks_.try_emplace(blk, depth_);
    BlockPattern &bp = it->second;
    (void)fresh;

    const Symbol sym = Symbol::of(msg.kind, msg.src);

    if (auto pred = bp.lookup()) {
        obs.predicted = true;
        obs.correct = (*pred == sym);
    }
    bp.learnAndPush(sym);

    account(obs);
    return obs;
}

std::optional<Symbol>
SeqPredictor::prediction(BlockId blk) const
{
    auto it = blocks_.find(blk);
    if (it == blocks_.end())
        return std::nullopt;
    return it->second.lookup();
}

StorageReport
SeqPredictor::storage() const
{
    StorageReport r;
    r.blocksAllocated = blocks_.size();
    for (const auto &[blk, bp] : blocks_)
        r.pteTotal += bp.entries();
    if (r.blocksAllocated == 0)
        return r;
    r.avgPte = static_cast<double>(r.pteTotal) /
               static_cast<double>(r.blocksAllocated);

    // Paper Section 7.3: a history entry is (type + pid) bits; a
    // pattern-table entry stores a depth-long key plus the predicted
    // symbol. For d=1 this yields Cosmos (7 + 14*pte)/8 and
    // MSP (6 + 12*pte)/8 bytes per block.
    const double he = historyEntryBits();
    const double d = static_cast<double>(depth_);
    const double bits = d * he + r.avgPte * (d * he + he);
    r.avgBytesPerBlock = bits / 8.0;
    return r;
}

} // namespace mspdsm
