#include "model/analytic.hh"

#include "base/logging.hh"

namespace mspdsm
{

double
commSpeedup(const ModelParams &mp)
{
    fatal_if(mp.f < 0.0 || mp.f > 1.0, "f out of [0,1]");
    fatal_if(mp.p < 0.0 || mp.p > 1.0, "p out of [0,1]");
    fatal_if(mp.rtl <= 0.0, "rtl must be positive");
    fatal_if(mp.n < 0.0, "n must be non-negative");
    const double denom =
        (1.0 - mp.f) + mp.f * (mp.p / mp.rtl + mp.n * (1.0 - mp.p));
    return 1.0 / denom;
}

double
speedup(const ModelParams &mp)
{
    fatal_if(mp.c < 0.0 || mp.c > 1.0, "c out of [0,1]");
    const double cs = commSpeedup(mp);
    return 1.0 / ((1.0 - mp.c) + mp.c / cs);
}

std::vector<CurvePoint>
sweepCommunicationRatio(ModelParams mp, int points)
{
    fatal_if(points < 2, "need at least two sample points");
    std::vector<CurvePoint> out;
    out.reserve(static_cast<std::size_t>(points));
    for (int i = 0; i < points; ++i) {
        mp.c = static_cast<double>(i) /
               static_cast<double>(points - 1);
        out.push_back(CurvePoint{mp.c, speedup(mp)});
    }
    return out;
}

} // namespace mspdsm
