/**
 * @file
 * The paper's analytic performance model (Section 5, Equations 1-2).
 *
 * The model estimates the speedup of a speculative coherent DSM from
 * five parameters: the application's communication ratio on the
 * critical path (c), the fraction of requests executed speculatively
 * (f), the prediction accuracy (p), the remote-to-local latency ratio
 * (rtl), and the misspeculation penalty factor (n, in units of a
 * remote access).
 */

#ifndef MSPDSM_MODEL_ANALYTIC_HH
#define MSPDSM_MODEL_ANALYTIC_HH

#include <vector>

namespace mspdsm
{

/** Parameters of the Section 5 model. */
struct ModelParams
{
    double c = 0.5;   //!< communication ratio on the critical path
    double f = 1.0;   //!< fraction of requests executed speculatively
    double p = 0.9;   //!< prediction accuracy
    double rtl = 4.0; //!< remote-to-local access latency ratio
    double n = 2.0;   //!< misspeculation penalty factor
};

/**
 * Equation 1: speedup of communication time.
 *
 *   comm-speedup = 1 / ((1-f) + f*(p/rtl + n*(1-p)))
 */
double commSpeedup(const ModelParams &mp);

/**
 * Equation 2: overall application speedup.
 *
 *   speedup = 1 / ((1-c) + c/comm-speedup)
 */
double speedup(const ModelParams &mp);

/** One sampled point of a Figure 6 curve. */
struct CurvePoint
{
    double c;       //!< communication ratio
    double speedup; //!< Equation 2 value
};

/**
 * Sample one Figure 6 curve: speedup as a function of c in [0,1]
 * with everything else held at @p mp.
 * @param points number of evenly spaced samples (>= 2)
 */
std::vector<CurvePoint> sweepCommunicationRatio(ModelParams mp,
                                                int points);

} // namespace mspdsm

#endif // MSPDSM_MODEL_ANALYTIC_HH
