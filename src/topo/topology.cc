#include "topo/topology.hh"

#include "base/logging.hh"

namespace mspdsm
{

const char *
topoKindName(TopoKind k)
{
    switch (k) {
      case TopoKind::Crossbar:
        return "crossbar";
      case TopoKind::Ring:
        return "ring";
      case TopoKind::Mesh2D:
        return "mesh2d";
      case TopoKind::Torus2D:
        return "torus2d";
    }
    panic("unknown TopoKind ", int(k));
}

bool
parseTopoKind(const std::string &name, TopoKind &out)
{
    for (TopoKind k : {TopoKind::Crossbar, TopoKind::Ring,
                       TopoKind::Mesh2D, TopoKind::Torus2D}) {
        if (name == topoKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

const char *
topoKindNames()
{
    return "crossbar, ring, mesh2d, torus2d";
}

Topology::Topology(const ProtoConfig &cfg)
    : n_(cfg.numNodes), kind_(cfg.topo.kind),
      linkLat_(cfg.topo.linkLatency ? cfg.topo.linkLatency
                                    : cfg.netLatency)
{
    panic_if(n_ == 0, "Topology: zero nodes");
    routes_.resize(std::size_t{n_} * n_);
    switch (kind_) {
      case TopoKind::Crossbar:
        buildCrossbar(cfg.netLatency);
        break;
      case TopoKind::Ring:
        buildRing();
        break;
      case TopoKind::Mesh2D:
        buildGrid(false);
        break;
      case TopoKind::Torus2D:
        buildGrid(true);
        break;
    }
}

void
Topology::buildCrossbar(Tick netLatency)
{
    // Dedicated path per pair: zero shared links, flat flight time.
    cols_ = n_;
    for (Route &r : routes_)
        r = Route{0, 0, netLatency};
}

void
Topology::buildRing()
{
    // Directed links: i -> (i+1) % n is link i (clockwise),
    // i -> (i-1+n) % n is link n + i (counter-clockwise).
    cols_ = n_;
    numLinks_ = 2 * n_;
    for (unsigned src = 0; src < n_; ++src) {
        for (unsigned dst = 0; dst < n_; ++dst) {
            if (src == dst)
                continue; // local traffic never enters the fabric
            const unsigned cw = (dst + n_ - src) % n_;
            const unsigned ccw = (src + n_ - dst) % n_;
            Route &r = routes_[std::size_t{src} * n_ + dst];
            r.first = static_cast<std::uint32_t>(linkSeq_.size());
            if (cw <= ccw) {
                for (unsigned i = 0, at = src; i < cw;
                     ++i, at = (at + 1) % n_)
                    linkSeq_.push_back(at);
                r.hops = static_cast<std::uint16_t>(cw);
            } else {
                for (unsigned i = 0, at = src; i < ccw;
                     ++i, at = (at + n_ - 1) % n_)
                    linkSeq_.push_back(n_ + at);
                r.hops = static_cast<std::uint16_t>(ccw);
            }
            r.flight = Tick{r.hops} * linkLat_;
        }
    }
}

void
Topology::buildGrid(bool wrap)
{
    // Most-square factorization: rows = the largest divisor of n that
    // is <= sqrt(n). Primes degenerate to a 1 x n line (mesh) or ring
    // (torus) -- still a valid grid.
    rows_ = 1;
    for (unsigned r = 1; r * r <= n_; ++r)
        if (n_ % r == 0)
            rows_ = r;
    cols_ = n_ / rows_;

    // Links are created on first use and numbered densely; the walk
    // below visits pairs in a fixed order, so the numbering is
    // deterministic. Links are keyed by their directed endpoint pair,
    // which means a *2-extent torus dimension* gets one channel per
    // direction between its row/column pair rather than the physical
    // torus's two parallel channels: with deterministic routing that
    // breaks wrap ties in the positive direction, the second channel
    // could never carry traffic anyway, so modeling it would only add
    // dead geometry (the topology test suite pins the resulting
    // out-degree-3 shape on a 2xN torus).
    std::vector<std::int32_t> adj(std::size_t{n_} * n_, -1);
    auto linkBetween = [&](unsigned a, unsigned b) -> LinkId {
        std::int32_t &slot = adj[std::size_t{a} * n_ + b];
        if (slot < 0)
            slot = static_cast<std::int32_t>(numLinks_++);
        return static_cast<LinkId>(slot);
    };
    auto node = [&](unsigned x, unsigned y) { return y * cols_ + x; };

    // One dimension of a dimension-order walk: move @p at toward
    // @p to along @p extent, appending the crossed links.
    auto walkDim = [&](unsigned &at, unsigned to, unsigned extent,
                       auto &&nodeAt, std::uint16_t &hops) {
        if (at == to)
            return;
        int dir;
        if (!wrap) {
            dir = to > at ? 1 : -1;
        } else {
            const unsigned fwd = (to + extent - at) % extent;
            const unsigned back = (at + extent - to) % extent;
            dir = fwd <= back ? 1 : -1;
        }
        while (at != to) {
            const unsigned next = (at + extent + dir) % extent;
            linkSeq_.push_back(linkBetween(nodeAt(at), nodeAt(next)));
            at = next;
            ++hops;
        }
    };

    for (unsigned src = 0; src < n_; ++src) {
        const unsigned sx = src % cols_;
        const unsigned sy = src / cols_;
        for (unsigned dst = 0; dst < n_; ++dst) {
            if (src == dst)
                continue;
            const unsigned dx = dst % cols_;
            const unsigned dy = dst / cols_;
            Route &r = routes_[std::size_t{src} * n_ + dst];
            r.first = static_cast<std::uint32_t>(linkSeq_.size());
            // Dimension order: X all the way, then Y -- every (src,
            // dst) pair always crosses the same links in the same
            // order, the determinism the golden runs rely on.
            unsigned x = sx;
            unsigned y = sy;
            walkDim(x, dx, cols_,
                    [&](unsigned v) { return node(v, sy); }, r.hops);
            walkDim(y, dy, rows_,
                    [&](unsigned v) { return node(dx, v); }, r.hops);
            r.flight = Tick{r.hops} * linkLat_;
        }
    }
}

} // namespace mspdsm
