/**
 * @file
 * Pluggable interconnect topologies behind the Network.
 *
 * A Topology maps every (src, dst) node pair to a deterministic route:
 * an ordered sequence of directed links plus the route's uncontended
 * wire time. Routes are precomputed at construction into flat arrays,
 * so the per-message cost is one table read and a short walk over the
 * route's link ids -- no virtual dispatch, no std::function, no
 * allocation (the same discipline as the PR 3 message path).
 *
 * Shapes:
 *  - crossbar: the paper's constant-latency switched network. Every
 *    pair has a dedicated path (zero shared links) of netLatency
 *    cycles; contention exists only at the NIs. This is the default
 *    and is bit-identical to the pre-topology network model.
 *  - ring: nodes on a bidirectional cycle; routes take the shorter
 *    direction (ties go clockwise, i.e. increasing node id).
 *  - mesh2d: nodes on a near-square rows x cols grid (the most-square
 *    factorization of the node count; primes degenerate to 1 x N),
 *    dimension-order routed -- X first, then Y -- which is
 *    deadlock-free and deterministic.
 *  - torus2d: the mesh plus wraparound links; each dimension takes
 *    its shorter direction (ties go in the increasing direction),
 *    still dimension-ordered.
 *
 * The Topology itself is immutable shared geometry; the mutable
 * per-link busy times live in the Network alongside the NI state.
 */

#ifndef MSPDSM_TOPO_TOPOLOGY_HH
#define MSPDSM_TOPO_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "proto/config.hh"

namespace mspdsm
{

/** Identifier of one directed link; dense in [0, numLinks()). */
using LinkId = std::uint32_t;

/** @return printable topology name ("crossbar", "ring", ...). */
const char *topoKindName(TopoKind k);

/**
 * Parse a topology name as the --topology flag accepts it.
 * @return false (leaving @p out untouched) on an unknown name
 */
bool parseTopoKind(const std::string &name, TopoKind &out);

/** Comma-separated list of every parseable name (usage text). */
const char *topoKindNames();

/**
 * Precomputed routing of one machine geometry. Construct once per
 * Network from the ProtoConfig; route() and links() are the only
 * calls on the per-message path.
 */
class Topology
{
  public:
    /** One (src, dst) pair's route through the fabric. */
    struct Route
    {
        std::uint32_t first = 0; //!< index of this route's first link
        std::uint16_t hops = 0;  //!< links crossed (0 = dedicated path)
        /**
         * Uncontended wire time of the whole route: hops x
         * linkLatency() for the link topologies, netLatency for the
         * crossbar's dedicated paths.
         */
        Tick flight = 0;
    };

    explicit Topology(const ProtoConfig &cfg);

    /** The route from @p src to @p dst (src == dst is never routed:
     * local traffic bypasses the fabric entirely). */
    const Route &
    route(NodeId src, NodeId dst) const
    {
        return routes_[std::size_t{src} * n_ + dst];
    }

    /** The link ids of @p r, in traversal order. */
    const LinkId *
    links(const Route &r) const
    {
        return linkSeq_.data() + r.first;
    }

    /** Per-hop wire latency (TopoConfig::linkLatency, defaulted). */
    Tick linkLatency() const { return linkLat_; }

    /** Number of directed links (0 for the crossbar). */
    std::uint32_t numLinks() const { return numLinks_; }

    /** The shape this topology was built as. */
    TopoKind kind() const { return kind_; }

    /** Grid rows (mesh2d/torus2d; 1 otherwise). */
    unsigned rows() const { return rows_; }

    /** Grid columns (mesh2d/torus2d; numNodes otherwise). */
    unsigned cols() const { return cols_; }

    /** Hop count of the (src, dst) route (tests, experiments). */
    unsigned hops(NodeId src, NodeId dst) const
    {
        return route(src, dst).hops;
    }

    /** Uncontended flight time of the (src, dst) route. */
    Tick flight(NodeId src, NodeId dst) const
    {
        return route(src, dst).flight;
    }

  private:
    void buildCrossbar(Tick netLatency);
    void buildRing();
    void buildGrid(bool wrap);

    unsigned n_;
    TopoKind kind_;
    Tick linkLat_;
    unsigned rows_ = 1;
    unsigned cols_ = 1;
    std::uint32_t numLinks_ = 0;
    std::vector<Route> routes_;   //!< n x n, row-major by src
    std::vector<LinkId> linkSeq_; //!< all routes' links, concatenated
};

} // namespace mspdsm

#endif // MSPDSM_TOPO_TOPOLOGY_HH
