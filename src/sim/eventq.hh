/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole simulated machine. The kernel
 * is built for the protocol's event profile -- tens of millions of
 * events, almost all scheduled a few hundred ticks out -- so the
 * ordering structure is a hierarchy of timing wheels rather than a
 * binary heap:
 *
 *  - Events are *intrusive*: components derive from Event and own
 *    their event objects, so scheduling allocates nothing and firing
 *    is one virtual call. Events scheduled through the legacy
 *    std::function API are wrapped in pooled LambdaEvents.
 *  - The near wheel covers the current and next 4096-tick "gigatick"
 *    (8192 one-tick buckets), one intrusive FIFO list per tick;
 *    within a tick, events fire in schedule order (the tie-break
 *    determinism the whole test suite depends on). A bitmap over the
 *    buckets makes "next occupied tick" a few word scans.
 *  - Events two to 255 gigaticks out (up to ~1M ticks) sit in the
 *    *far wheel*: 256 buckets of one gigatick each, again intrusive
 *    FIFO lists. When the near window first enters gigatick G-1, the
 *    far bucket for G is cascaded wholesale into the near wheel --
 *    before any tick of G can accept a direct insert, so per-tick
 *    FIFO order is preserved end-to-end. Far scheduling and
 *    cascading are O(1) per event; no comparisons.
 *  - Only events beyond the far horizon (> ~1M ticks, e.g. deadlock
 *    guards) take a small overflow heap ordered by (tick, seq); they
 *    migrate into the far wheel as the window advances.
 */

#ifndef MSPDSM_SIM_EVENTQ_HH
#define MSPDSM_SIM_EVENTQ_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "base/chunked_vector.hh"
#include "base/types.hh"

namespace mspdsm
{

class EventQueue;

/**
 * Base class of everything schedulable. Components embed (or pool)
 * their Event objects; an event may be rescheduled freely once it has
 * fired or been descheduled, but not while it is pending.
 */
class Event
{
  public:
    virtual ~Event() = default;

    /** Invoked by the queue at the scheduled tick. */
    virtual void process() = 0;

    /** True while the event sits in a queue. */
    bool scheduled() const { return scheduled_; }

    /** Scheduled tick (meaningful while scheduled). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    Event *next_ = nullptr; //!< intrusive bucket list link
    Tick when_ = 0;
    std::uint64_t seq_ = 0; //!< schedule order; breaks ties
    bool scheduled_ = false;
};

/**
 * Slab-backed free-list pool for one component's event objects:
 * acquire() recycles or carves a new event from chunked storage
 * (stable addresses), release() returns it. The pool owns the slabs;
 * events must not be released twice or used after release.
 */
template <typename T>
class EventPool
{
  public:
    /** Get an event; @p args are used only when a new one is carved. */
    template <typename... Args>
    T &
    acquire(Args &&...args)
    {
        if (!free_.empty()) {
            T *e = free_.back();
            free_.pop_back();
            return *e;
        }
        return slab_.emplace_back(std::forward<Args>(args)...);
    }

    /** Return an event to the pool. */
    void release(T &e) { free_.push_back(&e); }

    /**
     * Visit every event ever carved from this pool, live or free
     * (free-listed events are never scheduled, so callers that only
     * care about pending ones filter on Event::scheduled()). This is
     * the mass-cancellation primitive: a component going down walks
     * its pool, descheduling and releasing everything still pending.
     */
    template <typename F>
    void
    forEach(F &&f)
    {
        for (std::size_t i = 0; i < slab_.size(); ++i)
            f(slab_[i]);
    }

  private:
    ChunkedVector<T> slab_;
    std::vector<T *> free_;
};

/**
 * Global event queue for one simulation instance.
 */
class EventQueue
{
  public:
    /** Legacy callback type; wrapped in a pooled event. */
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule @p ev to fire at absolute time @p when.
     * @p when must not be in the past and @p ev must not already be
     * scheduled.
     */
    void schedule(Tick when, Event &ev);

    /** Schedule @p ev to fire @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Event &ev)
    {
        schedule(curTick_ + delay, ev);
    }

    /** Schedule @p cb at @p when via a pooled wrapper event. */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(curTick_ + delay, std::move(cb));
    }

    /**
     * Remove a pending event from the queue (any level: near wheel,
     * far wheel, or overflow heap). The event may be rescheduled
     * afterwards. No-op on an event that is not scheduled.
     * @return true iff the event was pending and has been removed
     */
    bool deschedule(Event &ev);

    /** Number of events not yet executed. */
    std::size_t
    pending() const
    {
        return wheelCount_ + farCount_ + heap_.size();
    }

    /**
     * Tick of the earliest pending event without removing it, or
     * maxTick when the queue is empty. Exact even while an event is
     * being processed: remaining same-tick events report curTick().
     * This is the guard the processor's fused-run fast path relies on
     * -- executing trace operations ahead of the clock is only safe
     * while nothing else can fire first -- and a useful diagnostic on
     * its own.
     */
    Tick
    nextTick() const
    {
        if (minValid_) [[likely]]
            return minHint_;
        if (pending() == 0)
            return maxTick;
        minHint_ = wheelCount_ > 0 ? nextWheelTick() : nextFarTick();
        minValid_ = true;
        return minHint_;
    }

    /**
     * The fused fast paths' guard: true iff nothing can fire at or
     * before @p when, so deferred work based at @p when may run
     * immediately. Semantically `when < nextTick()`, with two cost
     * controls on top:
     *
     *  - while the queue minimum is memoized (minHint_), the answer
     *    is exact and costs a compare;
     *  - when answering would need a fresh bitmap scan, the guard is
     *    *budgeted*: after repeated scan-and-fail outcomes it starts
     *    declining without scanning (exponential backoff, reset by
     *    any success). Declining is always sound -- the caller just
     *    takes the pooled-event path, which is behaviourally
     *    identical -- so the backoff trades only elision rate, never
     *    results, and keeps the guard free on workloads too dense to
     *    fuse while staying fully active on quiet ones. The skip
     *    counter is queue state, so runs remain deterministic.
     */
    bool
    canFuseBefore(Tick when)
    {
        // Never fuse past the run's tick limit: pre-fusion, work at
        // such a tick would have been an event run() refuses to fire
        // (the deadlock guard), and fused execution must refuse it
        // identically or a tick-limited run would misreport Completed.
        if (when > runLimit_)
            return false;
        // Never fuse across a fault boundary: state at or after the
        // next scheduled fault tick depends on the fault's sweep
        // (dead-node drops, re-homed directories), so work based
        // there must go through the event path. The pending fault
        // event already makes the memo/scan checks below refuse such
        // ticks; this explicit horizon is the documented hard
        // guarantee, independent of memo state.
        if (when >= faultHorizon_)
            return false;
        if (when >= fuseFloor_)
            return false;
        if (minValid_) [[likely]]
            return when < minHint_;
        if (fuseSkip_ > 0) {
            --fuseSkip_;
            return false;
        }
        if (when < nextTick()) {
            fuseFails_ = 0;
            return true;
        }
        fuseSkip_ = 1u << (fuseFails_ < 6 ? fuseFails_ : 6);
        ++fuseFails_;
        return false;
    }

    /**
     * The exact form of canFuseBefore(): same run-limit and
     * fault-horizon gates, but a cold memo is refreshed with a scan
     * instead of budgeted away. For call sites where a false decline
     * costs a whole schedule/dispatch/deschedule round trip -- one
     * bitmap scan is cheaper than one event -- and whose decline rate
     * is bounded by the event count anyway (a decline ends the
     * caller's fused run, so the scans cannot outnumber the events
     * they are traded against).
     */
    bool
    canFuseBeforeExact(Tick when)
    {
        if (when > runLimit_ || when >= faultHorizon_)
            return false;
        if (when >= fuseFloor_)
            return false;
        return when < nextTick();
    }

    /**
     * Fusion visibility floor: both guards refuse any tick at or past
     * it, exactly as if an event were scheduled there. The network's
     * drain loop publishes a node's next pending action here for the
     * duration of each delivery handler instead of re-arming the
     * drain event around it -- the bound the guards see is identical,
     * but a store replaces a schedule/deschedule pair, and the
     * deschedule's min-memo invalidation (the drain usually *is* the
     * queue minimum) no longer forces a bitmap rescan per delivery.
     * maxTick means no floor; holders must restore it on exit.
     */
    Tick fuseFloor() const { return fuseFloor_; }

    void setFuseFloor(Tick t) { fuseFloor_ = t; }

    /**
     * Record work performed ahead of the clock by a fused fast path.
     * The clock itself only advances on events; a fused chain running
     * against an otherwise empty queue (horizon == maxTick) would be
     * invisible to it, so components note the base tick of fused work
     * and endTick() folds the watermark in.
     */
    void
    noteFused(Tick t)
    {
        if (t > fusedTime_)
            fusedTime_ = t;
    }

    /**
     * The logical end time of the simulation: the clock, or the
     * latest fused work if that ran past the final event.
     */
    Tick endTick() const { return std::max(curTick_, fusedTime_); }

    /**
     * Run until the queue drains or an event beyond @p limit is next.
     * @return true if the queue drained, false if the limit was hit
     *         (which usually indicates a deadlock in the simulated
     *         machine and is treated as an error by callers).
     */
    bool run(Tick limit = maxTick);

    /** Total number of events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Set the earliest tick at which machine state may change
     * abruptly (the next scheduled fault). canFuseBefore() refuses
     * any base tick at or beyond it. maxTick (the default) disables
     * the gate; the fault layer advances it as fault events fire.
     */
    void setFaultHorizon(Tick t) { faultHorizon_ = t; }

    /** The current fault-fusion horizon (maxTick = none). */
    Tick faultHorizon() const { return faultHorizon_; }

  private:
    /**
     * One gigatick: the granularity of the far wheel and half the
     * near wheel. Sized to cover not just the protocol's raw
     * latencies (all < 512) but the NI backlog a contended interface
     * can accumulate.
     */
    static constexpr unsigned gigaBits = 12;
    static constexpr Tick gigaSize = Tick{1} << gigaBits;

    /**
     * Near wheel: one bucket per tick over two gigaticks, so every
     * event within the current or next gigatick inserts directly
     * (the sliding 4096-tick near window of the protocol always fits)
     * and a cascaded gigatick lands beside the live one. 8192 buckets
     * cost 128KB + a 1KB bitmap.
     */
    static constexpr std::size_t wheelSize = 2 * gigaSize;
    static constexpr std::size_t wheelMask = wheelSize - 1;
    static constexpr std::size_t wheelWords = wheelSize / 64;

    /**
     * Far wheel: one bucket per gigatick. Live buckets span gigaticks
     * (cascadedG_, curG + farSize - 1], strictly fewer than farSize
     * values, so a bucket index maps to exactly one live gigatick.
     */
    static constexpr std::size_t farSize = 256;
    static constexpr std::size_t farMask = farSize - 1;
    static constexpr std::size_t farWords = farSize / 64;

    struct Bucket
    {
        Event *head = nullptr;
        Event *tail = nullptr;
    };

    struct FarEntry
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;
    };

    struct FarLater
    {
        bool
        operator()(const FarEntry &a, const FarEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Wrapper carrying a std::function through the intrusive queue. */
    class LambdaEvent final : public Event
    {
      public:
        explicit LambdaEvent(EventQueue *q) : owner_(q) {}

        void
        process() override
        {
            Callback fn = std::move(fn_);
            fn_ = nullptr;
            // Release first: the callback may schedule again and is
            // allowed to reuse this slot.
            owner_->lambdaPool_.release(*this);
            fn();
        }

        Callback fn_;

      private:
        EventQueue *owner_;
    };

    /** Gigatick index of a tick. */
    static constexpr Tick
    gigaOf(Tick t)
    {
        return t >> gigaBits;
    }

    /** Append to the near-wheel bucket for ev.when_ and mark it. */
    void
    enqueueWheel(Event &ev)
    {
        Bucket &b = buckets_[ev.when_ & wheelMask];
        if (b.tail)
            b.tail->next_ = &ev;
        else
            b.head = &ev;
        b.tail = &ev;
        occupied_[(ev.when_ & wheelMask) / 64] |=
            std::uint64_t{1} << (ev.when_ & 63);
        ++wheelCount_;
    }

    /** Append to the far-wheel bucket for ev.when_'s gigatick. */
    void
    enqueueFar(Event &ev)
    {
        const std::size_t b = gigaOf(ev.when_) & farMask;
        Bucket &fb = farBuckets_[b];
        if (fb.tail)
            fb.tail->next_ = &ev;
        else
            fb.head = &ev;
        fb.tail = &ev;
        farOccupied_[b / 64] |= std::uint64_t{1} << (b & 63);
        ++farCount_;
    }

    /** Unlink @p ev from @p b (must be a member). @return emptied */
    static bool unlinkFromBucket(Bucket &b, Event &ev);

    /** Fold far bucket @p b wholesale into the near wheel. */
    void drainFarBucket(std::size_t b);

    /** Smallest occupied wheel tick >= curTick_ (wheel non-empty). */
    Tick nextWheelTick() const;

    /** Earliest far event (far wheel or heap; one of them non-empty). */
    Tick nextFarTick() const;

    /**
     * Move to tick @p t: advance the window, cascading far-wheel
     * buckets and migrating heap events that now fit lower levels.
     */
    void advanceTo(Tick t);

    /** Cascade/migrate after the window entered gigatick @p newG. */
    void cascadeTo(Tick newG);

    std::array<Bucket, wheelSize> buckets_{};
    std::array<std::uint64_t, wheelWords> occupied_{};
    std::array<Bucket, farSize> farBuckets_{};
    std::array<std::uint64_t, farWords> farOccupied_{};
    Tick wheelBase_ = 0; //!< window start; == curTick_ while running
    std::size_t wheelCount_ = 0;
    std::size_t farCount_ = 0;
    /**
     * Far-wheel buckets for gigaticks <= cascadedG_ have been folded
     * into the near wheel; always curG + 1 after an advance, so a
     * gigatick's bucket empties before any of its ticks accepts a
     * direct near-wheel insert (the FIFO invariant).
     */
    Tick cascadedG_ = 1;
    //! Overflow min-heap (std::push_heap/pop_heap on a vector, so
    //! deschedule() can excise entries exactly).
    std::vector<FarEntry> heap_;

    EventPool<LambdaEvent> lambdaPool_;

    Tick curTick_ = 0;
    Tick fusedTime_ = 0; //!< watermark of work done ahead of the clock
    /**
     * Memo of the earliest pending tick, shared by every fused-path
     * guard within one event handler (they would otherwise each pay
     * a bitmap scan). Exact while valid: scheduling can only lower
     * it (folded in eagerly), popping the minimum or descheduling an
     * event at it invalidates it.
     */
    mutable Tick minHint_ = 0;
    mutable bool minValid_ = false;
    Tick runLimit_ = maxTick; //!< active run()'s deadlock-guard limit
    Tick faultHorizon_ = maxTick; //!< next fault tick; fusion ceiling
    Tick fuseFloor_ = maxTick;    //!< drain-published pending work
    unsigned fuseSkip_ = 0;  //!< guard scans to decline outright
    unsigned fuseFails_ = 0; //!< consecutive scan-and-fail outcomes
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace mspdsm

#endif // MSPDSM_SIM_EVENTQ_HH
