/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole simulated machine. The kernel
 * is built for the protocol's event profile -- tens of millions of
 * events, almost all scheduled a few hundred ticks out -- so the
 * ordering structure is a bucketed timing wheel rather than a binary
 * heap:
 *
 *  - Events are *intrusive*: components derive from Event and own
 *    their event objects, so scheduling allocates nothing and firing
 *    is one virtual call. Events scheduled through the legacy
 *    std::function API are wrapped in pooled LambdaEvents.
 *  - The wheel covers the next `wheelSize` ticks, one intrusive FIFO
 *    list per tick; within a tick, events fire in schedule order (the
 *    tie-break determinism the whole test suite depends on). A bitmap
 *    over the buckets makes "next occupied tick" a few word scans.
 *  - Events beyond the wheel horizon wait in a far-heap ordered by
 *    (tick, seq) and migrate into the wheel when the window advances
 *    past their tick minus the horizon; because migration happens
 *    before any same-tick direct insert can occur (a tick accepts
 *    direct inserts only once it is inside the window, and the window
 *    only advances at migration points), FIFO order is preserved
 *    end-to-end.
 */

#ifndef MSPDSM_SIM_EVENTQ_HH
#define MSPDSM_SIM_EVENTQ_HH

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/chunked_vector.hh"
#include "base/types.hh"

namespace mspdsm
{

class EventQueue;

/**
 * Base class of everything schedulable. Components embed (or pool)
 * their Event objects; an event may be rescheduled freely once it has
 * fired, but not while it is pending.
 */
class Event
{
  public:
    virtual ~Event() = default;

    /** Invoked by the queue at the scheduled tick. */
    virtual void process() = 0;

    /** True while the event sits in a queue. */
    bool scheduled() const { return scheduled_; }

    /** Scheduled tick (meaningful while scheduled). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    Event *next_ = nullptr; //!< intrusive bucket list link
    Tick when_ = 0;
    std::uint64_t seq_ = 0; //!< schedule order; breaks ties
    bool scheduled_ = false;
};

/**
 * Slab-backed free-list pool for one component's event objects:
 * acquire() recycles or carves a new event from chunked storage
 * (stable addresses), release() returns it. The pool owns the slabs;
 * events must not be released twice or used after release.
 */
template <typename T>
class EventPool
{
  public:
    /** Get an event; @p args are used only when a new one is carved. */
    template <typename... Args>
    T &
    acquire(Args &&...args)
    {
        if (!free_.empty()) {
            T *e = free_.back();
            free_.pop_back();
            return *e;
        }
        return slab_.emplace_back(std::forward<Args>(args)...);
    }

    /** Return an event to the pool. */
    void release(T &e) { free_.push_back(&e); }

  private:
    ChunkedVector<T> slab_;
    std::vector<T *> free_;
};

/**
 * Global event queue for one simulation instance.
 */
class EventQueue
{
  public:
    /** Legacy callback type; wrapped in a pooled event. */
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule @p ev to fire at absolute time @p when.
     * @p when must not be in the past and @p ev must not already be
     * scheduled.
     */
    void schedule(Tick when, Event &ev);

    /** Schedule @p ev to fire @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Event &ev)
    {
        schedule(curTick_ + delay, ev);
    }

    /** Schedule @p cb at @p when via a pooled wrapper event. */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(curTick_ + delay, std::move(cb));
    }

    /** Number of events not yet executed. */
    std::size_t pending() const { return wheelCount_ + far_.size(); }

    /**
     * Run until the queue drains or an event beyond @p limit is next.
     * @return true if the queue drained, false if the limit was hit
     *         (which usually indicates a deadlock in the simulated
     *         machine and is treated as an error by callers).
     */
    bool run(Tick limit = maxTick);

    /** Total number of events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

  private:
    /**
     * Wheel span in ticks; events beyond it take the far-heap. Sized
     * to cover not just the protocol's raw latencies (all < 512) but
     * the NI backlog a contended interface can accumulate, so the
     * heap is a true fallback. 4096 buckets cost 64KB + a 512-byte
     * bitmap.
     */
    static constexpr std::size_t wheelSize = 4096;
    static constexpr std::size_t wheelMask = wheelSize - 1;
    static constexpr std::size_t wheelWords = wheelSize / 64;

    struct Bucket
    {
        Event *head = nullptr;
        Event *tail = nullptr;
    };

    struct FarEntry
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;
    };

    struct FarLater
    {
        bool
        operator()(const FarEntry &a, const FarEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Wrapper carrying a std::function through the intrusive queue. */
    class LambdaEvent final : public Event
    {
      public:
        explicit LambdaEvent(EventQueue *q) : owner_(q) {}

        void
        process() override
        {
            Callback fn = std::move(fn_);
            fn_ = nullptr;
            // Release first: the callback may schedule again and is
            // allowed to reuse this slot.
            owner_->lambdaPool_.release(*this);
            fn();
        }

        Callback fn_;

      private:
        EventQueue *owner_;
    };

    /** Append to the wheel bucket for ev.when_ and mark it occupied. */
    void
    enqueueWheel(Event &ev)
    {
        Bucket &b = buckets_[ev.when_ & wheelMask];
        if (b.tail)
            b.tail->next_ = &ev;
        else
            b.head = &ev;
        b.tail = &ev;
        occupied_[(ev.when_ & wheelMask) / 64] |=
            std::uint64_t{1} << (ev.when_ & 63);
        ++wheelCount_;
    }

    /** Smallest occupied wheel tick >= curTick_ (wheel non-empty). */
    Tick nextWheelTick() const;

    /**
     * Move to tick @p t: advance the window and pull far-heap events
     * whose tick is now inside it.
     */
    void advanceTo(Tick t);

    std::array<Bucket, wheelSize> buckets_{};
    std::array<std::uint64_t, wheelWords> occupied_{};
    Tick wheelBase_ = 0; //!< window start; == curTick_ while running
    std::size_t wheelCount_ = 0;
    std::priority_queue<FarEntry, std::vector<FarEntry>, FarLater> far_;

    EventPool<LambdaEvent> lambdaPool_;

    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace mspdsm

#endif // MSPDSM_SIM_EVENTQ_HH
