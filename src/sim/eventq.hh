/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole simulated machine. Components
 * schedule std::function callbacks at absolute ticks; ties are broken by
 * insertion order, which keeps runs deterministic for a fixed seed.
 */

#ifndef MSPDSM_SIM_EVENTQ_HH
#define MSPDSM_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/types.hh"

namespace mspdsm
{

/**
 * Global event queue for one simulation instance.
 */
class EventQueue
{
  public:
    /** Callback type executed when an event fires. */
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @p when must not be in the past.
     */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(curTick_ + delay, std::move(cb));
    }

    /** Number of events not yet executed. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Run until the queue drains or @p limit ticks elapse.
     * @return true if the queue drained, false if the limit was hit
     *         (which usually indicates a deadlock in the simulated
     *         machine and is treated as an error by callers).
     */
    bool run(Tick limit = maxTick);

    /** Total number of events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq; //!< insertion order; breaks ties
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace mspdsm

#endif // MSPDSM_SIM_EVENTQ_HH
