#include "sim/eventq.hh"

#include <bit>

#include "base/logging.hh"

namespace mspdsm
{

void
EventQueue::schedule(Tick when, Event &ev)
{
    panic_if(when < curTick_, "event scheduled in the past (", when,
             " < ", curTick_, ")");
    panic_if(ev.scheduled_, "event already scheduled (for tick ",
             ev.when_, ")");
    ev.when_ = when;
    ev.seq_ = nextSeq_++;
    ev.scheduled_ = true;
    ev.next_ = nullptr;
    if (when - wheelBase_ < wheelSize)
        enqueueWheel(ev);
    else
        far_.push(FarEntry{when, ev.seq_, &ev});
}

void
EventQueue::schedule(Tick when, Callback cb)
{
    LambdaEvent &e = lambdaPool_.acquire(this);
    e.fn_ = std::move(cb);
    schedule(when, e);
}

Tick
EventQueue::nextWheelTick() const
{
    // The window holds ticks [wheelBase_, wheelBase_ + wheelSize), one
    // bucket each; scan the occupancy bitmap circularly from the
    // window start.
    const std::size_t start = wheelBase_ & wheelMask;
    std::size_t word = start / 64;
    // Mask off bits below the start position in the first word.
    std::uint64_t bits = occupied_[word] &
                         (~std::uint64_t{0} << (start & 63));
    for (std::size_t scanned = 0; scanned <= wheelWords; ++scanned) {
        if (bits) {
            const std::size_t idx =
                word * 64 +
                static_cast<std::size_t>(std::countr_zero(bits));
            // Circular distance from the window start to the bucket.
            const std::size_t dist = (idx - start) & wheelMask;
            return wheelBase_ + dist;
        }
        word = (word + 1) % wheelWords;
        bits = occupied_[word];
        // Wrapped back to the first word: take only bits below start.
        if (word == start / 64)
            bits &= ~(~std::uint64_t{0} << (start & 63));
    }
    panic("nextWheelTick on an empty wheel");
}

void
EventQueue::advanceTo(Tick t)
{
    curTick_ = t;
    wheelBase_ = t;
    // Pull far events that fit the advanced window. They pop in
    // (when, seq) order, and no direct insert for these ticks can
    // have happened yet, so per-tick FIFO order is preserved.
    while (!far_.empty() && far_.top().when - wheelBase_ < wheelSize) {
        Event *ev = far_.top().ev;
        far_.pop();
        enqueueWheel(*ev);
    }
}

bool
EventQueue::run(Tick limit)
{
    while (wheelCount_ + far_.size() > 0) {
        Tick next;
        if (wheelCount_ > 0) {
            next = nextWheelTick();
        } else {
            next = far_.top().when;
        }
        if (next > limit)
            return false;
        advanceTo(next);

        Bucket &b = buckets_[next & wheelMask];
        while (Event *e = b.head) {
            b.head = e->next_;
            if (!b.head)
                b.tail = nullptr;
            --wheelCount_;
            e->next_ = nullptr;
            e->scheduled_ = false;
            ++executed_;
            // process() may schedule new events, including into this
            // very bucket (same-tick work is drained in FIFO order).
            e->process();
        }
        occupied_[(next & wheelMask) / 64] &=
            ~(std::uint64_t{1} << (next & 63));
    }
    return true;
}

} // namespace mspdsm
