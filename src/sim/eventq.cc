#include "sim/eventq.hh"

#include <algorithm>
#include <bit>

#include "base/logging.hh"

namespace mspdsm
{

void
EventQueue::schedule(Tick when, Event &ev)
{
    panic_if(when < curTick_, "event scheduled in the past (", when,
             " < ", curTick_, ")");
    panic_if(ev.scheduled_, "event already scheduled (for tick ",
             ev.when_, ")");
    ev.when_ = when;
    ev.seq_ = nextSeq_++;
    ev.scheduled_ = true;
    ev.next_ = nullptr;
    if (minValid_ && when < minHint_)
        minHint_ = when;
    // wheelBase_ == curTick_, so the gigatick delta never underflows.
    const Tick gDelta = gigaOf(when) - gigaOf(wheelBase_);
    if (gDelta <= 1) [[likely]]
        enqueueWheel(ev);
    else if (gDelta < farSize)
        enqueueFar(ev);
    else {
        heap_.push_back(FarEntry{when, ev.seq_, &ev});
        std::push_heap(heap_.begin(), heap_.end(), FarLater{});
    }
}

void
EventQueue::schedule(Tick when, Callback cb)
{
    LambdaEvent &e = lambdaPool_.acquire(this);
    e.fn_ = std::move(cb);
    schedule(when, e);
}

bool
EventQueue::unlinkFromBucket(Bucket &b, Event &ev)
{
    Event *prev = nullptr;
    for (Event *e = b.head; e; prev = e, e = e->next_) {
        if (e != &ev)
            continue;
        if (prev)
            prev->next_ = ev.next_;
        else
            b.head = ev.next_;
        if (b.tail == &ev)
            b.tail = prev;
        return b.head == nullptr;
    }
    panic("deschedule: event not found in its bucket");
}

bool
EventQueue::deschedule(Event &ev)
{
    if (!ev.scheduled_)
        return false;
    if (minValid_ && ev.when_ <= minHint_)
        minValid_ = false;
    // The wheel invariants make an event's level a pure function of
    // its tick: gigaticks curG/curG+1 live in the near wheel, the
    // next 254 in the far wheel, everything beyond in the heap.
    const Tick g = gigaOf(ev.when_);
    const Tick curG = gigaOf(wheelBase_);
    if (g <= curG + 1) {
        const std::size_t i = ev.when_ & wheelMask;
        if (unlinkFromBucket(buckets_[i], ev))
            occupied_[i / 64] &= ~(std::uint64_t{1} << (i & 63));
        --wheelCount_;
    } else if (g - curG < farSize) {
        const std::size_t b = g & farMask;
        if (unlinkFromBucket(farBuckets_[b], ev))
            farOccupied_[b / 64] &= ~(std::uint64_t{1} << (b & 63));
        --farCount_;
    } else {
        auto it = heap_.begin();
        for (; it != heap_.end(); ++it)
            if (it->ev == &ev)
                break;
        panic_if(it == heap_.end(),
                 "deschedule: event not found in the overflow heap");
        heap_.erase(it);
        std::make_heap(heap_.begin(), heap_.end(), FarLater{});
    }
    ev.scheduled_ = false;
    ev.next_ = nullptr;
    return true;
}

namespace
{

/**
 * First set bit in a circular @p nwords-word bitmap, scanning from
 * bit @p start upward with wrap-around. @return the bit index, or
 * SIZE_MAX if the bitmap is empty. Shared by the near- and far-wheel
 * "next occupied bucket" scans.
 */
std::size_t
firstOccupiedFrom(const std::uint64_t *words, std::size_t nwords,
                  std::size_t start)
{
    std::size_t word = start / 64;
    // Mask off bits below the start position in the first word.
    std::uint64_t bits = words[word] &
                         (~std::uint64_t{0} << (start & 63));
    for (std::size_t scanned = 0; scanned <= nwords; ++scanned) {
        if (bits) {
            return word * 64 +
                   static_cast<std::size_t>(std::countr_zero(bits));
        }
        word = (word + 1) % nwords;
        bits = words[word];
        // Wrapped back to the first word: take only bits below start.
        if (word == start / 64)
            bits &= ~(~std::uint64_t{0} << (start & 63));
    }
    return ~std::size_t{0};
}

} // namespace

Tick
EventQueue::nextWheelTick() const
{
    // The window holds ticks [wheelBase_, wheelBase_ + wheelSize), one
    // bucket each; scan the occupancy bitmap circularly from the
    // window start.
    const std::size_t start = wheelBase_ & wheelMask;
    const std::size_t idx =
        firstOccupiedFrom(occupied_.data(), wheelWords, start);
    panic_if(idx == ~std::size_t{0}, "nextWheelTick on an empty wheel");
    // Circular distance from the window start to the bucket.
    return wheelBase_ + ((idx - start) & wheelMask);
}

Tick
EventQueue::nextFarTick() const
{
    Tick best = maxTick;
    if (farCount_ > 0) {
        // The first live bucket circularly from the first un-cascaded
        // gigatick holds the smallest far gigatick (live gigaticks
        // span fewer than farSize values); its earliest event is the
        // far wheel's minimum.
        const std::size_t idx = firstOccupiedFrom(
            farOccupied_.data(), farWords, (cascadedG_ + 1) & farMask);
        panic_if(idx == ~std::size_t{0},
                 "far count positive but no live far bucket");
        for (const Event *e = farBuckets_[idx].head; e; e = e->next_)
            best = std::min(best, e->when_);
    }
    if (!heap_.empty())
        best = std::min(best, heap_.front().when);
    panic_if(best == maxTick, "nextFarTick with no far events");
    return best;
}

void
EventQueue::drainFarBucket(std::size_t b)
{
    Bucket &fb = farBuckets_[b];
    Event *e = fb.head;
    fb.head = nullptr;
    fb.tail = nullptr;
    farOccupied_[b / 64] &= ~(std::uint64_t{1} << (b & 63));
    // List order is schedule order, and no tick of this gigatick has
    // accepted a direct near-wheel insert yet, so appending in list
    // order preserves per-tick FIFO.
    while (e) {
        Event *next = e->next_;
        e->next_ = nullptr;
        --farCount_;
        enqueueWheel(*e);
        e = next;
    }
}

void
EventQueue::cascadeTo(Tick newG)
{
    // Fold far buckets for gigaticks (cascadedG_, newG + 1] into the
    // near wheel, in gigatick order. The window only ever advances to
    // the earliest pending tick, and live far events sit within
    // (cascadedG_, cascadedG_ + farSize - 1], so a non-empty far
    // wheel bounds the jump: the iteration below covers at most
    // farSize gigaticks and each index maps to exactly one of them.
    if (farCount_ > 0) {
        panic_if(newG + 1 - cascadedG_ > farSize,
                 "window advanced past live far-wheel events");
        for (Tick g = cascadedG_ + 1; g <= newG + 1 && farCount_ > 0;
             ++g) {
            const std::size_t b = g & farMask;
            if (farOccupied_[b / 64] >> (b & 63) & 1)
                drainFarBucket(b);
        }
    }
    cascadedG_ = newG + 1;

    // Pull overflow-heap events that now fit the wheels. They pop in
    // (when, seq) order and no same-tick insert can have preceded
    // them at the target level, so FIFO order is preserved.
    while (!heap_.empty() && gigaOf(heap_.front().when) - newG < farSize) {
        Event *ev = heap_.front().ev;
        std::pop_heap(heap_.begin(), heap_.end(), FarLater{});
        heap_.pop_back();
        if (gigaOf(ev->when_) <= newG + 1)
            enqueueWheel(*ev);
        else
            enqueueFar(*ev);
    }
}

void
EventQueue::advanceTo(Tick t)
{
    curTick_ = t;
    wheelBase_ = t;
    const Tick newG = gigaOf(t);
    if (newG + 1 > cascadedG_)
        cascadeTo(newG);
}

bool
EventQueue::run(Tick limit)
{
    runLimit_ = limit; // canFuseBefore() honours the guard too
    while (pending() > 0) {
        const Tick next =
            wheelCount_ > 0 ? nextWheelTick() : nextFarTick();
        if (next > limit)
            return false;
        advanceTo(next);

        // The occupancy bit tracks the bucket exactly, including
        // while handlers run: it is cleared the moment a pop empties
        // the bucket and re-set by enqueueWheel when a handler
        // schedules more same-tick work. nextTick() peeks from inside
        // process() -- the fused-run guard -- depend on this.
        Bucket &b = buckets_[next & wheelMask];
        while (Event *e = b.head) {
            b.head = e->next_;
            if (!b.head) {
                b.tail = nullptr;
                occupied_[(next & wheelMask) / 64] &=
                    ~(std::uint64_t{1} << (next & 63));
            }
            --wheelCount_;
            e->next_ = nullptr;
            e->scheduled_ = false;
            ++executed_;
            // While same-tick events remain, the queue minimum is
            // exactly this tick; once the bucket empties it must be
            // recomputed on demand. Handlers' fused-path guards read
            // the hint through nextTick().
            minHint_ = next;
            minValid_ = b.head != nullptr;
            // process() may schedule new events, including into this
            // very bucket (same-tick work is drained in FIFO order).
            e->process();
        }
    }
    return true;
}

} // namespace mspdsm
