#include "sim/eventq.hh"

#include "base/logging.hh"

namespace mspdsm
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    panic_if(when < curTick_, "event scheduled in the past (", when,
             " < ", curTick_, ")");
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

bool
EventQueue::run(Tick limit)
{
    while (!heap_.empty()) {
        // Entry must be copied out before pop: the callback may
        // schedule new events and invalidate the heap top.
        Entry e = heap_.top();
        if (e.when > limit)
            return false;
        heap_.pop();
        curTick_ = e.when;
        ++executed_;
        e.cb();
    }
    return true;
}

} // namespace mspdsm
