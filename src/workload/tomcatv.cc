/**
 * @file
 * tomcatv: row-partitioned stencil (SPEC origin).
 *
 * Paper characterization: processors own sets of rows and share only
 * at set boundaries, one consumer per block; the producer reads a
 * block before writing it, so every block has two readers (producer
 * and consumer) and all three predictors reach 100% accuracy. In a
 * correction phase the producer writes half of its boundary blocks a
 * second time before the consumer reads, so SWI succeeds on only
 * about half of the writes.
 */

#include "workload/suite.hh"

#include "workload/layout.hh"

namespace mspdsm
{

Workload
makeTomcatv(const AppParams &p)
{
    const unsigned n = p.numProcs;
    const unsigned iters = p.iterations ? p.iterations : 20;
    const unsigned blocks_per_proc =
        std::max(4u, static_cast<unsigned>(16 * p.scale));

    // The matrices are one large shared allocation: page interleaving
    // homes a producer's row-set away from the producer, so both the
    // producer's read-before-write and the consumer's read are remote
    // (the configuration the paper's FR numbers imply).
    Layout layout(p.proto);
    std::vector<Region> region(n);
    for (unsigned q = 0; q < n; ++q)
        region[q] =
            layout.allocAt(NodeId((q + n / 2) % n), blocks_per_proc);

    std::vector<TraceBuilder> tb(n);
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned q = 0; q < n; ++q)
            tb[q].barrier();

        // Consumer role: read the left neighbour's boundary written
        // in the previous iteration.
        for (unsigned q = 0; q < n; ++q) {
            const unsigned left = (q + n - 1) % n;
            if (it > 0) {
                for (unsigned i = 0; i < blocks_per_proc; ++i) {
                    tb[q].read(region[left].addr(i));
                    tb[q].compute(6);
                }
            }
            tb[q].compute(400);
        }

        // Main phase: the producer reads then writes each of its own
        // boundary blocks ("the producer first reads then writes").
        for (unsigned q = 0; q < n; ++q) {
            for (unsigned i = 0; i < blocks_per_proc; ++i) {
                tb[q].read(region[q].addr(i));
                tb[q].compute(4);
                tb[q].write(region[q].addr(i));
                tb[q].compute(10);
            }
        }

        // Correction phase: rewrite the upper half of the boundary
        // before the consumer gets to read it (next iteration).
        for (unsigned q = 0; q < n; ++q) {
            tb[q].compute(200);
            for (unsigned i = blocks_per_proc / 2;
                 i < blocks_per_proc; ++i) {
                tb[q].write(region[q].addr(i));
                tb[q].compute(10);
            }
            tb[q].compute(36000); // interior sweep (all cache hits)
        }
    }
    for (unsigned q = 0; q < n; ++q)
        tb[q].barrier();

    Workload w;
    w.name = "tomcatv";
    w.netJitter = 8; // single consumer: nothing to re-order
    for (unsigned q = 0; q < n; ++q)
        w.traces.push_back(tb[q].take());
    return w;
}

} // namespace mspdsm
