/**
 * @file
 * barnes: Barnes-Hut N-body simulation (SPLASH-2 origin).
 *
 * Paper characterization: the octree is rebuilt every iteration, so
 * read-sharing patterns change rapidly -- many message sequences have
 * little or no reuse and the prediction fraction is the suite's
 * lowest. Readers of surviving cells arrive in a different order when
 * the traversal workload shifts, so VMSP gains over MSP; the read
 * sharing is asynchronous with minimal queueing, so acknowledgements
 * arrive in the same order every time and MSP does *not* improve on
 * Cosmos.
 *
 * Cell population used here:
 *  - stable cells (upper tree levels): fixed writer, fixed readers,
 *    stable arrival order -- predictable by everyone;
 *  - wobble cells: fixed writer and reader set, but the read order
 *    changes with the per-iteration workload -- only VMSP holds on;
 *  - churn cells (rebuilt subtrees): fresh writer and reader subset
 *    every iteration -- unpredictable for everyone and responsible
 *    for the low prediction fraction.
 */

#include "workload/suite.hh"

#include "base/random.hh"
#include "workload/layout.hh"

namespace mspdsm
{

Workload
makeBarnes(const AppParams &p)
{
    const unsigned n = p.numProcs;
    const unsigned iters = p.iterations ? p.iterations : 10;
    const unsigned cells =
        std::max(16u, static_cast<unsigned>(200 * p.scale));
    const unsigned stable_cells = cells * 11 / 20;  // 55%
    const unsigned wobble_cells = cells * 3 / 20;   // 15%
    // remaining 30% churn

    Layout layout(p.proto);
    std::vector<Region> cell(cells);
    for (unsigned c = 0; c < cells; ++c)
        cell[c] = layout.allocAt(NodeId(c % n), 1);

    Rng rng(p.seed);

    const unsigned fixed_end = stable_cells + wobble_cells;
    std::vector<unsigned> fixed_writer(fixed_end);
    std::vector<std::vector<unsigned>> fixed_readers(fixed_end);
    for (unsigned c = 0; c < fixed_end; ++c) {
        fixed_writer[c] = static_cast<unsigned>(rng.uniform(0, n - 1));
        std::vector<bool> used(n, false);
        used[fixed_writer[c]] = true;
        const unsigned deg = 3;
        for (unsigned r = 0; r < deg; ++r) {
            unsigned q;
            do {
                q = static_cast<unsigned>(rng.uniform(0, n - 1));
            } while (used[q]);
            used[q] = true;
            fixed_readers[c].push_back(q);
        }
    }

    std::vector<TraceBuilder> tb(n);
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned q = 0; q < n; ++q)
            tb[q].barrier();

        // Tree build: every cell written by its owner.
        std::vector<unsigned> writer(cells);
        for (unsigned c = 0; c < cells; ++c) {
            writer[c] = c < fixed_end
                            ? fixed_writer[c]
                            : static_cast<unsigned>(
                                  rng.uniform(0, n - 1));
        }
        {
            std::vector<PhaseSchedule> sched(n);
            for (unsigned c = 0; c < cells; ++c) {
                const Tick t = rng.uniform(0, 4000);
                sched[writer[c]].at(t,
                                    TraceOp::write(cell[c].addr(0)));
                // Tree construction touches a cell repeatedly as
                // children are inserted: a silent re-write in the
                // base system, but the multiple-writes behaviour
                // that defeats SWI (Section 7.4).
                sched[writer[c]].at(t + 600 + rng.uniform(0, 400),
                                    TraceOp::write(cell[c].addr(0)));
            }
            for (unsigned q = 0; q < n; ++q)
                sched[q].emit(tb[q]);
        }

        for (unsigned q = 0; q < n; ++q)
            tb[q].barrier();

        // Force traversal.
        {
            std::vector<PhaseSchedule> sched(n);
            for (unsigned c = 0; c < cells; ++c) {
                if (c < stable_cells) {
                    // Stable arrival order: rank stagger dominates.
                    unsigned rank = 0;
                    for (unsigned q : fixed_readers[c]) {
                        sched[q].at(1 + rank * 1200 +
                                        rng.uniform(0, 200),
                                    TraceOp::read(cell[c].addr(0)));
                        ++rank;
                    }
                } else if (c < fixed_end) {
                    // Same readers, workload-dependent order.
                    for (unsigned q : fixed_readers[c]) {
                        sched[q].at(rng.uniform(0, 9000),
                                    TraceOp::read(cell[c].addr(0)));
                    }
                } else {
                    // Rebuilt subtree: fresh reader subset.
                    const unsigned deg =
                        1 + static_cast<unsigned>(rng.uniform(0, 3));
                    for (unsigned r = 0; r < deg; ++r) {
                        unsigned q = static_cast<unsigned>(
                            rng.uniform(0, n - 1));
                        if (q == writer[c])
                            q = (q + 1) % n;
                        sched[q].at(rng.uniform(0, 9000),
                                    TraceOp::read(cell[c].addr(0)));
                    }
                }
            }
            for (unsigned q = 0; q < n; ++q)
                sched[q].emit(tb[q]);
        }

        // Barnes is computation-bound: long per-body force work.
        for (unsigned q = 0; q < n; ++q)
            tb[q].compute(200000);
    }
    for (unsigned q = 0; q < n; ++q)
        tb[q].barrier();

    Workload w;
    w.name = "barnes";
    w.netJitter = 0; // "minimal queueing": acks arrive in order
    for (unsigned q = 0; q < n; ++q)
        w.traces.push_back(tb[q].take());
    return w;
}

} // namespace mspdsm
