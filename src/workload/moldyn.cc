/**
 * @file
 * moldyn: CHARMM-like molecular dynamics.
 *
 * Paper characterization: a producer/consumer phase with a small
 * read-sharing degree (force blocks, two consumers) in which the
 * producer re-reads its blocks shortly after writing them -- so SWI
 * misspeculates there and is suppressed -- plus a static migratory
 * phase whose patterns never change, where SWI succeeds and triggers
 * the migratory reads. Both MSP and VMSP reach 98-99%; Cosmos is
 * perturbed by the racing invalidation acks of the two consumers.
 */

#include "workload/suite.hh"

#include "workload/layout.hh"

namespace mspdsm
{

Workload
makeMoldyn(const AppParams &p)
{
    const unsigned n = p.numProcs;
    const unsigned iters = p.iterations ? p.iterations : 15;
    const unsigned force =
        std::max(4u, static_cast<unsigned>(10 * p.scale));
    const unsigned degree = 3; // consumers per force block
    // Migratory blocks come in per-home chunks: a visitor writes the
    // blocks of one chunk back-to-back, so its consecutive writes
    // reach the same home and arm the SWI early-write-invalidate
    // table there (the property a contiguous shared array has on a
    // page-interleaved DSM).
    const unsigned chunk =
        std::max(2u, static_cast<unsigned>(5 * p.scale));
    const unsigned hops = 4; // processors visited per migratory block

    Layout layout(p.proto);
    std::vector<Region> forceR(n);
    for (unsigned q = 0; q < n; ++q)
        forceR[q] = layout.allocAt(NodeId((q + n / 2) % n), force);
    std::vector<Region> mig(n);
    for (unsigned h = 0; h < n; ++h)
        mig[h] = layout.allocAt(NodeId(h), chunk);

    std::vector<TraceBuilder> tb(n);
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned q = 0; q < n; ++q)
            tb[q].barrier();

        // Force computation: write all force blocks back-to-back,
        // then re-read them shortly after ("the producer reads the
        // blocks shortly after writing to them") -- the SWI
        // misspeculation trigger.
        for (unsigned q = 0; q < n; ++q) {
            for (unsigned i = 0; i < force; ++i) {
                tb[q].write(forceR[q].addr(i));
                tb[q].compute(6);
            }
            tb[q].compute(40);
            for (unsigned i = 0; i < force; ++i) {
                tb[q].read(forceR[q].addr(i));
                tb[q].compute(4);
            }
        }

        for (unsigned q = 0; q < n; ++q)
            tb[q].barrier();

        // Consumers read each force block in stable rank order.
        for (unsigned rank = 0; rank < degree; ++rank) {
            for (unsigned q = 0; q < n; ++q) {
                const unsigned prod = (q + n - rank - 1) % n;
                for (unsigned i = 0; i < force; ++i) {
                    tb[q].read(forceR[prod].addr(i));
                    tb[q].compute(6);
                }
                tb[q].compute(700);
            }
        }

        for (unsigned q = 0; q < n; ++q)
            tb[q].barrier();

        // Migratory phase: every block of chunk h visits the same
        // fixed processor sequence h, h+3, h+6, ...; hand-offs are
        // spaced beyond the worst-case miss latency so the request
        // order is stable across iterations, and a visitor works
        // through the whole chunk at each slot (back-to-back writes
        // to one home).
        std::vector<PhaseSchedule> sched(n);
        for (unsigned h = 0; h < n; ++h) {
            for (unsigned j = 0; j < hops; ++j) {
                const unsigned q = (h + j * 3) % n;
                for (unsigned k = 0; k < chunk; ++k) {
                    const Tick t = Tick(j) * 1600 + k * 120;
                    sched[q].at(t, TraceOp::read(mig[h].addr(k)));
                    sched[q].at(t + 30,
                                TraceOp::write(mig[h].addr(k)));
                }
            }
        }
        for (unsigned q = 0; q < n; ++q) {
            sched[q].emit(tb[q]);
            tb[q].compute(32000); // bonded-forces local work
        }
    }
    for (unsigned q = 0; q < n; ++q)
        tb[q].barrier();

    Workload w;
    w.name = "moldyn";
    w.netJitter = 40; // consumer acks race
    for (unsigned q = 0; q < n; ++q)
        w.traces.push_back(tb[q].take());
    return w;
}

} // namespace mspdsm
