/**
 * @file
 * The seven-application workload suite of the paper (Table 2).
 *
 * Each generator synthesizes per-processor traces reproducing the
 * sharing behaviour the paper attributes to that application in
 * Sections 6-7 (see DESIGN.md section 5 for the mapping). Input sizes
 * are scaled down relative to Table 2 so that a full experiment suite
 * runs in minutes; every reported quantity is a percentage or a
 * normalized time, so the scaling preserves the paper's shapes.
 */

#ifndef MSPDSM_WORKLOAD_SUITE_HH
#define MSPDSM_WORKLOAD_SUITE_HH

#include <functional>
#include <string>
#include <vector>

#include "proto/config.hh"
#include "workload/trace.hh"

namespace mspdsm
{

/** Common generator parameters. */
struct AppParams
{
    unsigned numProcs = 16;   //!< must match DsmConfig
    double scale = 1.0;       //!< data-set size multiplier
    unsigned iterations = 0;  //!< 0 = app default
    std::uint64_t seed = 42;  //!< workload-level randomness
    ProtoConfig proto;        //!< block/page geometry for layout
};

/** Generators, one per Table 2 application. */
Workload makeAppbt(const AppParams &p);
Workload makeBarnes(const AppParams &p);
Workload makeEm3d(const AppParams &p);
Workload makeMoldyn(const AppParams &p);
Workload makeOcean(const AppParams &p);
Workload makeTomcatv(const AppParams &p);
Workload makeUnstructured(const AppParams &p);

/** Descriptor of one suite entry. */
struct AppInfo
{
    std::string name;        //!< table/figure row label
    std::string paperInput;  //!< Table 2 input data set
    unsigned paperIters;     //!< Table 2 iteration count
    std::string scaledInput; //!< what this reproduction runs
    unsigned defaultIters;   //!< scaled default
    std::function<Workload(const AppParams &)> make;
};

/** The full suite in the paper's (alphabetical) order. */
const std::vector<AppInfo> &appSuite();

/** Generate one app by name; fatal on unknown name. */
Workload makeApp(const std::string &name, const AppParams &p);

} // namespace mspdsm

#endif // MSPDSM_WORKLOAD_SUITE_HH
