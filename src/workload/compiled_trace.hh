/**
 * @file
 * Trace compilation: the workload front end the processors execute.
 *
 * Generators keep emitting 24-byte TraceOps (convenient to build and
 * to test against), but the simulator never executes them directly
 * any more. Before a run, each Trace is *compiled* into a flat arena
 * of packed 8-byte ops:
 *
 *  - the BlockId is precomputed from the run's AddrMap, so the
 *    per-access address-to-block mapping disappears from the hot
 *    loop (a memory op's payload IS its block);
 *  - consecutive Compute ops are fused into a single delay -- a pure
 *    timing transformation, since back-to-back delays touch no state
 *    the rest of the machine can observe between them;
 *  - memory ops are annotated with a *hit-eligibility* bit: set iff
 *    this trace accessed the block before (for a write: wrote it
 *    before), i.e. iff the access can possibly be served node-locally.
 *    The bit is a pure optimization hint -- the processor only probes
 *    the cache's fast hit path when it is set, and a hinted op that
 *    lost its copy to an invalidation simply falls through to the
 *    demand path -- so mis-annotation can cost time but never
 *    correctness or timing.
 *
 * A round-trip decoder reconstructs the TraceOp stream for tests:
 * decode(compile(t)) == canonicalTrace(t), where the canonical form
 * differs from the original only by compute fusion and block
 * alignment of addresses, both timing-invariant (every generator
 * emits block-aligned addresses already).
 */

#ifndef MSPDSM_WORKLOAD_COMPILED_TRACE_HH
#define MSPDSM_WORKLOAD_COMPILED_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "proto/config.hh"
#include "workload/trace.hh"

namespace mspdsm
{

/**
 * One packed trace operation: 2 bits of kind, 1 bit of hit hint, 61
 * bits of payload (BlockId for memory ops, fused cycle count for
 * Compute, 0 for Barrier). The processors stream billions of these,
 * so the layout is a single word: one load, a mask, and a shift per
 * decoded field.
 */
struct CompiledOp
{
    std::uint64_t bits = 0;

    static constexpr unsigned kindBits = 2;
    static constexpr unsigned hintShift = kindBits;
    static constexpr unsigned payloadShift = kindBits + 1;
    static constexpr std::uint64_t kindMask = (1u << kindBits) - 1;
    static constexpr std::uint64_t payloadMax =
        ~std::uint64_t{0} >> payloadShift;

    static CompiledOp
    make(OpKind k, std::uint64_t payload, bool hint = false)
    {
        CompiledOp op;
        op.bits = static_cast<std::uint64_t>(k) |
                  (std::uint64_t{hint} << hintShift) |
                  (payload << payloadShift);
        return op;
    }

    OpKind kind() const { return static_cast<OpKind>(bits & kindMask); }

    /** Hit-eligibility hint (meaningful for Read/Write). */
    bool hitEligible() const { return bits >> hintShift & 1; }

    /** BlockId (Read/Write) or fused delay in cycles (Compute). */
    std::uint64_t payload() const { return bits >> payloadShift; }

    bool operator==(const CompiledOp &) const = default;
};

static_assert(sizeof(CompiledOp) == 8,
              "packed compiled op is streamed once per executed trace "
              "operation; keep it one word");

/**
 * A per-processor view into the compiled arena: pointer + length,
 * nothing owned. Spans stay valid for the lifetime of the
 * CompiledWorkload they came from.
 */
struct CompiledTrace
{
    const CompiledOp *ops = nullptr;
    std::size_t count = 0;

    const CompiledOp *begin() const { return ops; }
    const CompiledOp *end() const { return ops + count; }
    std::size_t size() const { return count; }
    const CompiledOp &operator[](std::size_t i) const { return ops[i]; }
};

/**
 * A fully compiled workload: one flat arena of packed ops for all
 * processors plus per-processor spans. Immutable after compilation,
 * so one instance can be shared by any number of concurrent runs
 * (the harness workload cache relies on this).
 */
class CompiledWorkload
{
  public:
    /** Compile @p w with the run's address mapping. */
    CompiledWorkload(const Workload &w, const AddrMap &map);

    /** Compile bare traces (no name/jitter; tests and direct runs). */
    CompiledWorkload(const std::vector<Trace> &traces,
                     const AddrMap &map);

    /** Workload name (e.g. "em3d"). */
    const std::string &name() const { return name_; }

    /** Per-app network queueing/contention level. */
    Tick netJitter() const { return netJitter_; }

    /** Number of per-processor traces. */
    std::size_t numTraces() const { return spans_.size(); }

    /** Processor @p i's compiled op span. */
    CompiledTrace
    trace(std::size_t i) const
    {
        const Span &s = spans_[i];
        return CompiledTrace{arena_.data() + s.offset, s.count};
    }

    /** Total packed ops across all processors. */
    std::size_t totalOps() const { return arena_.size(); }

    /** TraceOps in the source workload (compile ratio diagnostics). */
    std::size_t sourceOps() const { return sourceOps_; }

    /** Geometry the block ids were computed with. */
    unsigned blockSize() const { return blockSize_; }

  private:
    struct Span
    {
        std::uint64_t offset = 0;
        std::uint64_t count = 0;
    };

    std::string name_;
    Tick netJitter_ = 0;
    unsigned blockSize_ = 0;
    std::size_t sourceOps_ = 0;
    std::vector<CompiledOp> arena_;
    std::vector<Span> spans_;
};

/**
 * Compile one trace (without workload bookkeeping); appends to
 * @p out and returns the number of ops emitted. Exposed for tests
 * and the compile microbench.
 */
std::size_t compileTrace(const Trace &t, const AddrMap &map,
                         std::vector<CompiledOp> &out);

/**
 * Decode a compiled span back into TraceOps. Addresses come back
 * block-aligned (blk * blockSize); fused computes stay fused.
 */
Trace decodeTrace(const CompiledTrace &t, unsigned blockSize);

/**
 * The canonical form of a trace: consecutive Compute ops merged,
 * zero-cycle computes dropped, and addresses aligned down to their
 * block. decode(compile(t)) == canonicalTrace(t) for every trace;
 * for the repo's generators (which emit aligned addresses and whose
 * builders already drop zero delays) the canonical form is also
 * cycle-for-cycle identical to the original.
 */
Trace canonicalTrace(const Trace &t, const AddrMap &map);

} // namespace mspdsm

#endif // MSPDSM_WORKLOAD_COMPILED_TRACE_HH
