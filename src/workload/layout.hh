/**
 * @file
 * Shared-address-space layout helpers for the workload generators.
 *
 * Home assignment is page-interleaved (ProtoConfig::homeOf), so a
 * generator that wants a region homed at a particular node allocates
 * it on pages belonging to that node. Keeping one producer's output
 * blocks on its own pages matters for the SWI heuristic: the
 * early-write-invalidate table is per home node, so consecutive
 * writes by a producer only trigger SWI when they reach the same
 * home, exactly as in a hardware implementation.
 */

#ifndef MSPDSM_WORKLOAD_LAYOUT_HH
#define MSPDSM_WORKLOAD_LAYOUT_HH

#include <vector>

#include "base/types.hh"
#include "proto/config.hh"
#include "workload/trace.hh"

namespace mspdsm
{

/** A contiguous run of coherence blocks. */
struct Region
{
    Addr base = 0;          //!< byte address of the first block
    unsigned blocks = 0;    //!< number of blocks
    unsigned blockSize = 0; //!< bytes per block

    /** Byte address of block @p i within the region. */
    Addr
    addr(unsigned i) const
    {
        return base + static_cast<Addr>(i) * blockSize;
    }
};

/**
 * Page-granular allocator over the simulated address space.
 */
class Layout
{
  public:
    explicit Layout(const ProtoConfig &cfg)
        : cfg_(cfg)
    {}

    /**
     * Allocate @p nblocks contiguous blocks starting on the next page
     * whose home is @p home. Pages are never shared between regions.
     */
    Region allocAt(NodeId home, unsigned nblocks);

    /** Allocate without a home constraint (spread over nodes). */
    Region alloc(unsigned nblocks);

    /** Pages consumed so far. */
    std::uint64_t pagesUsed() const { return nextPage_; }

  private:
    const ProtoConfig &cfg_;
    std::uint64_t nextPage_ = 0;
};

/**
 * Intended-time scheduler for one processor within one phase.
 *
 * Generators that need cross-processor orderings (staggered consumer
 * ranks, migratory hand-off sequences) register operations at
 * intended offsets from the phase start; emit() sorts them and
 * inserts compute gaps reproducing the offsets. Since memory
 * operations themselves take time, actual issue times slip late;
 * order-critical schedules must therefore space operations by more
 * than the worst-case operation latency (about 1.1k cycles for a
 * three-hop miss under contention).
 */
class PhaseSchedule
{
  public:
    /** Register @p op at offset @p t from the phase start. */
    void
    at(Tick t, TraceOp op)
    {
        items_.push_back(Item{t, seq_++, op});
    }

    /** Sort by offset (stable) and append to @p trace. */
    void emit(class TraceBuilder &trace);

  private:
    struct Item
    {
        Tick t;
        std::uint64_t seq;
        TraceOp op;
    };

    std::vector<Item> items_;
    std::uint64_t seq_ = 0;
};

/**
 * Convenience builder for one processor's trace.
 */
class TraceBuilder
{
  public:
    TraceBuilder &
    compute(Tick c)
    {
        if (c > 0)
            ops_.push_back(TraceOp::compute(c));
        return *this;
    }

    TraceBuilder &
    read(Addr a)
    {
        ops_.push_back(TraceOp::read(a));
        return *this;
    }

    TraceBuilder &
    write(Addr a)
    {
        ops_.push_back(TraceOp::write(a));
        return *this;
    }

    TraceBuilder &
    barrier()
    {
        ops_.push_back(TraceOp::barrier());
        return *this;
    }

    /** Move the accumulated operations out. */
    Trace take() { return std::move(ops_); }

    /** Number of operations so far. */
    std::size_t size() const { return ops_.size(); }

  private:
    Trace ops_;
};

} // namespace mspdsm

#endif // MSPDSM_WORKLOAD_LAYOUT_HH
