/**
 * @file
 * Per-processor memory operation traces.
 *
 * The simulator's processors are trace-driven, blocking and in-order:
 * each executes a sequence of compute delays, shared-memory reads and
 * writes, and global barriers. This is the standard methodology for
 * coherence studies (the paper's own WWT2 runs real binaries, but the
 * predictors only ever see the per-block coherence request stream that
 * such traces induce).
 */

#ifndef MSPDSM_WORKLOAD_TRACE_HH
#define MSPDSM_WORKLOAD_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace mspdsm
{

/** Kinds of trace operations. */
enum class OpKind : std::uint8_t
{
    Compute, //!< spin for `cycles` processor cycles
    Read,    //!< shared-memory read of `addr`
    Write,   //!< shared-memory write of `addr`
    Barrier, //!< global barrier across all processors
};

/** One trace operation. */
struct TraceOp
{
    OpKind kind = OpKind::Compute;
    Addr addr = 0;   //!< byte address (Read/Write)
    Tick cycles = 0; //!< delay (Compute)

    bool operator==(const TraceOp &) const = default;

    static TraceOp
    compute(Tick c)
    {
        TraceOp op;
        op.kind = OpKind::Compute;
        op.cycles = c;
        return op;
    }

    static TraceOp
    read(Addr a)
    {
        TraceOp op;
        op.kind = OpKind::Read;
        op.addr = a;
        return op;
    }

    static TraceOp
    write(Addr a)
    {
        TraceOp op;
        op.kind = OpKind::Write;
        op.addr = a;
        return op;
    }

    static TraceOp
    barrier()
    {
        TraceOp op;
        op.kind = OpKind::Barrier;
        return op;
    }
};

/** A full per-processor trace. */
using Trace = std::vector<TraceOp>;

/**
 * A complete workload: one trace per processor plus identification
 * used by the harness and reports.
 */
struct Workload
{
    std::string name;          //!< e.g. "em3d"
    std::vector<Trace> traces; //!< one per processor
    Tick netJitter = 8;        //!< per-app queueing/contention level
};

} // namespace mspdsm

#endif // MSPDSM_WORKLOAD_TRACE_HH
