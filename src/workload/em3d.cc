/**
 * @file
 * em3d: static bipartite producer/consumer sharing (Split-C origin).
 *
 * Paper characterization (Section 7): "Em3d exhibits producer/consumer
 * sharing with a small read-sharing degree"; the producer writes each
 * boundary block exactly once per iteration and does not touch it
 * again until the next iteration, so SWI invalidates ~98% of the
 * writes and triggers ~95% of the reads. Consumers read in a stable
 * order (staggered rank sub-phases), but the write's concurrent
 * invalidations make the acknowledgements race, which is what drags
 * the general message predictor down while MSP reaches 99%.
 */

#include "workload/suite.hh"

#include "base/random.hh"
#include "workload/layout.hh"

namespace mspdsm
{

Workload
makeEm3d(const AppParams &p)
{
    const unsigned n = p.numProcs;
    const unsigned iters = p.iterations ? p.iterations : 20;
    const unsigned blocks_per_proc =
        std::max(4u, static_cast<unsigned>(24 * p.scale));

    Layout layout(p.proto);
    std::vector<Region> region(n);
    for (unsigned q = 0; q < n; ++q)
        region[q] = layout.allocAt(NodeId(q), blocks_per_proc);

    // Block (q, i) is consumed by procs q+1 .. q+deg (mod n) where
    // the degree alternates 2 and 3: the mean covered-read fraction
    // under First-Read triggering is then (1/2 + 2/3)/2 ~ 0.58,
    // matching the paper's em3d FR coverage.
    auto degree = [](unsigned i) { return 2u + (i & 1u); };

    std::vector<TraceBuilder> tb(n);
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned q = 0; q < n; ++q)
            tb[q].barrier();

        // Produce: each processor rewrites its boundary blocks
        // back-to-back (consecutive writes to the same home arm the
        // SWI early-write-invalidate table).
        for (unsigned q = 0; q < n; ++q) {
            for (unsigned i = 0; i < blocks_per_proc; ++i) {
                tb[q].write(region[q].addr(i));
                tb[q].compute(8);
            }
            tb[q].compute(150);
        }

        for (unsigned q = 0; q < n; ++q)
            tb[q].barrier();

        // Consume in rank sub-phases: rank-r consumers (procs that
        // are r+1 to the producer) read before rank-(r+1) consumers,
        // giving a stable per-block read order across iterations.
        for (unsigned rank = 0; rank < 3; ++rank) {
            for (unsigned q = 0; q < n; ++q) {
                // Proc q is the rank-r consumer of producer q-rank-1.
                const unsigned prod = (q + n - rank - 1) % n;
                for (unsigned i = 0; i < blocks_per_proc; ++i) {
                    if (degree(i) > rank) {
                        tb[q].read(region[prod].addr(i));
                        tb[q].compute(6);
                    }
                }
                tb[q].compute(500); // rank separation
            }
        }

        for (unsigned q = 0; q < n; ++q)
            tb[q].compute(52000); // local graph update per iteration
    }
    for (unsigned q = 0; q < n; ++q)
        tb[q].barrier();

    Workload w;
    w.name = "em3d";
    w.netJitter = 40; // concurrent invalidations race (Section 7.1)
    for (unsigned q = 0; q < n; ++q)
        w.traces.push_back(tb[q].take());
    return w;
}

} // namespace mspdsm
