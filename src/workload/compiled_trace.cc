#include "workload/compiled_trace.hh"

#include "base/flat_map.hh"
#include "base/logging.hh"

namespace mspdsm
{

namespace
{

/** Per-block compile-time access history: bit 0 read-or-written,
 * bit 1 written. Drives the hit-eligibility annotation. */
constexpr std::uint8_t seenBit = 1;
constexpr std::uint8_t wroteBit = 2;

/**
 * compileTrace() with a caller-owned history table, so a workload
 * compile reuses one allocation across all of its traces (clear()
 * keeps capacity) instead of building a fresh table per trace.
 */
std::size_t
compileTraceWith(const Trace &t, const AddrMap &map,
                 std::vector<CompiledOp> &out,
                 FlatMap<BlockId, std::uint8_t> &history)
{
    const std::size_t start = out.size();
    out.reserve(start + t.size());

    for (const TraceOp &op : t) {
        switch (op.kind) {
          case OpKind::Compute: {
            if (op.cycles == 0)
                break; // timing no-op; drop it
            // Validate the operand before any fusion arithmetic:
            // with both addends capped at payloadMax (2^61-1) the
            // uint64 sum below cannot wrap, so the fused check is
            // exact.
            panic_if(op.cycles > CompiledOp::payloadMax,
                     "compute delay overflows the packed op");
            if (out.size() > start &&
                out.back().kind() == OpKind::Compute) {
                // Fuse into the previous delay: two back-to-back
                // delays are indistinguishable from their sum to
                // every other component (nothing observes the
                // processor between them).
                const std::uint64_t fused =
                    out.back().payload() + op.cycles;
                panic_if(fused > CompiledOp::payloadMax,
                         "fused compute delay overflows the packed op");
                out.back() = CompiledOp::make(OpKind::Compute, fused);
                break;
            }
            out.push_back(CompiledOp::make(OpKind::Compute, op.cycles));
            break;
          }
          case OpKind::Read:
          case OpKind::Write: {
            const BlockId blk = map.blockOf(op.addr);
            panic_if(blk > CompiledOp::payloadMax,
                     "block id overflows the packed op");
            const bool write = op.kind == OpKind::Write;
            std::uint8_t &h = history[blk];
            // A read can be served locally once the block has been
            // touched at all (a demand fill, or a speculative push --
            // which only ever targets past readers); a write only
            // ever hits on a Modified copy, which requires an earlier
            // write by this processor.
            const bool hint = write ? (h & wroteBit) : (h & seenBit);
            h |= write ? (seenBit | wroteBit) : seenBit;
            out.push_back(CompiledOp::make(op.kind, blk, hint));
            break;
          }
          case OpKind::Barrier:
            out.push_back(CompiledOp::make(OpKind::Barrier, 0));
            break;
        }
    }
    return out.size() - start;
}

} // namespace

std::size_t
compileTrace(const Trace &t, const AddrMap &map,
             std::vector<CompiledOp> &out)
{
    FlatMap<BlockId, std::uint8_t> history;
    return compileTraceWith(t, map, out, history);
}

CompiledWorkload::CompiledWorkload(const Workload &w, const AddrMap &map)
    : CompiledWorkload(w.traces, map)
{
    name_ = w.name;
    netJitter_ = w.netJitter;
}

CompiledWorkload::CompiledWorkload(const std::vector<Trace> &traces,
                                   const AddrMap &map)
    : blockSize_(map.blockSizeBytes())
{
    std::size_t total = 0;
    for (const Trace &t : traces)
        total += t.size();
    sourceOps_ = total;
    arena_.reserve(total);
    spans_.reserve(traces.size());
    FlatMap<BlockId, std::uint8_t> history;
    for (const Trace &t : traces) {
        Span s;
        s.offset = arena_.size();
        history.clear(); // hit hints are per-trace
        s.count = compileTraceWith(t, map, arena_, history);
        spans_.push_back(s);
    }
}

Trace
decodeTrace(const CompiledTrace &t, unsigned blockSize)
{
    Trace out;
    out.reserve(t.size());
    for (const CompiledOp &op : t) {
        switch (op.kind()) {
          case OpKind::Compute:
            out.push_back(TraceOp::compute(op.payload()));
            break;
          case OpKind::Read:
            out.push_back(TraceOp::read(op.payload() * blockSize));
            break;
          case OpKind::Write:
            out.push_back(TraceOp::write(op.payload() * blockSize));
            break;
          case OpKind::Barrier:
            out.push_back(TraceOp::barrier());
            break;
        }
    }
    return out;
}

Trace
canonicalTrace(const Trace &t, const AddrMap &map)
{
    Trace out;
    out.reserve(t.size());
    const Addr blockSize = map.blockSizeBytes();
    for (const TraceOp &op : t) {
        switch (op.kind) {
          case OpKind::Compute:
            if (op.cycles == 0)
                break;
            if (!out.empty() && out.back().kind == OpKind::Compute) {
                out.back().cycles += op.cycles;
                break;
            }
            out.push_back(op);
            break;
          case OpKind::Read:
          case OpKind::Write: {
            TraceOp aligned = op;
            aligned.addr = map.blockOf(op.addr) * blockSize;
            out.push_back(aligned);
            break;
          }
          case OpKind::Barrier:
            out.push_back(op);
            break;
        }
    }
    return out;
}

} // namespace mspdsm
