#include "workload/layout.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mspdsm
{

Region
Layout::allocAt(NodeId home, unsigned nblocks)
{
    fatal_if(home >= cfg_.numNodes, "allocAt: bad home ", home);
    fatal_if(nblocks == 0, "allocAt: empty region");
    while (nextPage_ % cfg_.numNodes != home)
        ++nextPage_;

    Region r;
    r.base = nextPage_ * static_cast<Addr>(cfg_.pageSize);
    r.blocks = nblocks;
    r.blockSize = cfg_.blockSize;

    const unsigned bpp = cfg_.blocksPerPage();
    const std::uint64_t pages = (nblocks + bpp - 1) / bpp;
    // Multi-page regions keep a single home only if consecutive pages
    // land on the same node, which page interleaving forbids; jump by
    // the full node stride instead so every page has the same home.
    if (pages == 1) {
        ++nextPage_;
    } else {
        // Allocate page k at nextPage_ + k*numNodes; the region is
        // then not byte-contiguous, so refuse and ask callers to
        // split. All generators allocate <= one page per region.
        fatal_if(pages > 1, "region of ", nblocks,
                 " blocks spans pages; allocate per-page regions");
    }
    return r;
}

void
PhaseSchedule::emit(TraceBuilder &trace)
{
    std::stable_sort(items_.begin(), items_.end(),
                     [](const Item &a, const Item &b) {
                         return a.t < b.t;
                     });
    Tick now = 0;
    for (const Item &it : items_) {
        if (it.t > now) {
            trace.compute(it.t - now);
            now = it.t;
        }
        switch (it.op.kind) {
          case OpKind::Compute:
            trace.compute(it.op.cycles);
            now += it.op.cycles;
            break;
          case OpKind::Read:
            trace.read(it.op.addr);
            break;
          case OpKind::Write:
            trace.write(it.op.addr);
            break;
          case OpKind::Barrier:
            trace.barrier();
            break;
        }
    }
    items_.clear();
    seq_ = 0;
}

Region
Layout::alloc(unsigned nblocks)
{
    fatal_if(nblocks == 0, "alloc: empty region");
    Region r;
    r.base = nextPage_ * static_cast<Addr>(cfg_.pageSize);
    r.blocks = nblocks;
    r.blockSize = cfg_.blockSize;
    const unsigned bpp = cfg_.blocksPerPage();
    nextPage_ += (nblocks + bpp - 1) / bpp;
    return r;
}

} // namespace mspdsm
