/**
 * @file
 * ocean: near-neighbour stencil plus a lock-based global reduction
 * (SPLASH-2 origin).
 *
 * Paper characterization: stencil boundaries have a single consumer;
 * a lock-protected reduction sums a value over all processors at the
 * end of every iteration and the lock acquisition order changes every
 * iteration, pulling VMSP slightly below 100%. A large private
 * working set (interior blocks, plus read-only coefficients touched
 * once) keeps the prediction coverage and the per-block pattern-table
 * occupancy low (Table 3: ~86% predicted; Table 4: <1 entry/block).
 */

#include "workload/suite.hh"

#include <numeric>

#include "base/random.hh"
#include "workload/layout.hh"

namespace mspdsm
{

Workload
makeOcean(const AppParams &p)
{
    const unsigned n = p.numProcs;
    const unsigned iters = p.iterations ? p.iterations : 12;
    const unsigned boundary =
        std::max(4u, static_cast<unsigned>(12 * p.scale));
    const unsigned corner = std::max(2u, unsigned(4 * p.scale));
    const unsigned interior =
        std::max(8u, static_cast<unsigned>(40 * p.scale));
    const unsigned readonly =
        std::max(8u, static_cast<unsigned>(60 * p.scale));

    // The grids are one large shared allocation: boundary rows are
    // page-interleaved away from their producers (both the producer's
    // read-modify-write and the consumer's read pay remote latency).
    // Private interior and read-only coefficient blocks are
    // first-touch local.
    Layout layout(p.proto);
    std::vector<Region> bnd(n), cor(n), innr(n), ro(n);
    for (unsigned q = 0; q < n; ++q) {
        bnd[q] = layout.allocAt(NodeId((q + n / 2) % n), boundary);
        cor[q] =
            layout.allocAt(NodeId((q + n / 2 + 1) % n), corner);
        innr[q] = layout.allocAt(NodeId(q), interior);
        ro[q] = layout.allocAt(NodeId(q), readonly);
    }
    // One reduction cell, lock-protected in the original program; at
    // the protocol level a lock-guarded sum is a migratory block.
    const Region sum = layout.allocAt(NodeId(0), 1);

    Rng rng(p.seed);
    std::vector<TraceBuilder> tb(n);

    // Cold start: private data is touched once and never communicates
    // again; read-only data is only ever read.
    for (unsigned q = 0; q < n; ++q) {
        for (unsigned i = 0; i < interior; ++i) {
            tb[q].read(innr[q].addr(i));
            tb[q].write(innr[q].addr(i));
        }
        for (unsigned i = 0; i < readonly; ++i)
            tb[q].read(ro[q].addr(i));
    }

    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned q = 0; q < n; ++q)
            tb[q].barrier();

        // Consume neighbour boundaries: row blocks from the left
        // neighbour, corner blocks from both neighbours.
        for (unsigned q = 0; q < n; ++q) {
            const unsigned left = (q + n - 1) % n;
            const unsigned right = (q + 1) % n;
            if (it > 0) {
                for (unsigned i = 0; i < boundary; ++i) {
                    tb[q].read(bnd[left].addr(i));
                    tb[q].compute(6);
                }
                for (unsigned i = 0; i < corner; ++i) {
                    tb[q].read(cor[left].addr(i));
                    tb[q].compute(6);
                }
                tb[q].compute(260); // second corner reader lags
                for (unsigned i = 0; i < corner; ++i) {
                    tb[q].read(cor[right].addr(i));
                    tb[q].compute(6);
                }
            }
            tb[q].compute(300);
        }

        // Produce: two relaxation sweeps read-modify-write the
        // boundary. The second sweep's accesses are silent cache
        // hits in the base system, but its read is robbed when SWI
        // invalidated early -- ocean's producer "writes multiple
        // times to the block", which is why SWI fails here.
        for (unsigned sweep = 0; sweep < 2; ++sweep) {
            for (unsigned q = 0; q < n; ++q) {
                for (unsigned i = 0; i < boundary; ++i) {
                    tb[q].read(bnd[q].addr(i));
                    tb[q].compute(4);
                    tb[q].write(bnd[q].addr(i));
                    tb[q].compute(8);
                }
                for (unsigned i = 0; i < corner; ++i) {
                    tb[q].read(cor[q].addr(i));
                    tb[q].compute(4);
                    tb[q].write(cor[q].addr(i));
                    tb[q].compute(8);
                }
                tb[q].compute(5600); // interior sweep (cache hits)
            }
        }

        // Reduction: every processor adds to the sum under a lock;
        // the acquisition order is a fresh permutation per iteration.
        std::vector<unsigned> order(n);
        std::iota(order.begin(), order.end(), 0u);
        rng.shuffle(order);
        for (unsigned slot = 0; slot < n; ++slot) {
            const unsigned q = order[slot];
            tb[q].compute(1 + slot * 1300);
            tb[q].read(sum.addr(0));
            tb[q].compute(20);
            tb[q].write(sum.addr(0));
        }
    }
    for (unsigned q = 0; q < n; ++q)
        tb[q].barrier();

    Workload w;
    w.name = "ocean";
    w.netJitter = 30; // moderate queueing: corner acks can race
    for (unsigned q = 0; q < n; ++q)
        w.traces.push_back(tb[q].take());
    return w;
}

} // namespace mspdsm
