/**
 * @file
 * appbt: Gaussian elimination over subcubes (NAS BT origin).
 *
 * Paper characterization: processors own subcubes and share boundary
 * values on subcube surfaces. The elimination proceeds along the cube
 * dimensions in alternating phases, so blocks on a subcube *edge* are
 * consumed by two different processors along the two dimensions; with
 * a history depth of one no predictor can separate the alternating
 * patterns (accuracy caps near 90%), while the invalidation
 * acknowledgement that precedes each read identifies the previous
 * consumer and lets Cosmos pick the next one -- the one application
 * where acks *help*. Data are passed in a strict producer/consumer
 * pipeline: the producer re-reads its boundary (read-modify-write)
 * after the consumer took it, which is what First-Read speculation
 * covers. The producer also revisits each block right after the
 * update sweep (pipeline bookkeeping), which defeats SWI.
 *
 * The boundary arrays are big shared allocations, page-interleaved
 * away from their producers, so both readers of a block pay remote
 * latency in the base system.
 */

#include "workload/suite.hh"

#include "workload/layout.hh"

namespace mspdsm
{

Workload
makeAppbt(const AppParams &p)
{
    const unsigned n = p.numProcs;
    const unsigned iters = p.iterations ? p.iterations : 12;
    // Two phases (dimensions) per iteration.
    const unsigned face =
        std::max(4u, static_cast<unsigned>(14 * p.scale));
    const unsigned edge =
        std::max(2u, static_cast<unsigned>(8 * p.scale));

    Layout layout(p.proto);
    std::vector<Region> faceR(n), edgeR(n);
    for (unsigned q = 0; q < n; ++q) {
        faceR[q] = layout.allocAt(NodeId((q + n / 2) % n), face);
        edgeR[q] =
            layout.allocAt(NodeId((q + n / 2 + 1) % n), edge);
    }

    std::vector<TraceBuilder> tb(n);
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned phase = 0; phase < 2; ++phase) {
            for (unsigned q = 0; q < n; ++q)
                tb[q].barrier();

            // Update sweep: read-modify-write the whole boundary
            // (the read is the producer's FR-covered access); the
            // pipeline revisits each block a couple of steps later
            // (silent while still owner, but robbed -- and flagged
            // premature -- when SWI invalidated early: the
            // reads-upon-writing behaviour that defeats SWI here).
            for (unsigned q = 0; q < n; ++q) {
                auto sweep = [&](const Region &r, unsigned count) {
                    for (unsigned i = 0; i < count; ++i) {
                        if (i >= 2) {
                            tb[q].compute(60);
                            tb[q].read(r.addr(i - 2));
                            tb[q].compute(2);
                        }
                        tb[q].read(r.addr(i));
                        tb[q].compute(4);
                        tb[q].write(r.addr(i));
                        tb[q].compute(6);
                    }
                    for (unsigned i = count - std::min(count, 2u);
                         i < count; ++i) {
                        tb[q].read(r.addr(i));
                        tb[q].compute(2);
                    }
                };
                sweep(faceR[q], face);
                sweep(edgeR[q], edge);
            }

            for (unsigned q = 0; q < n; ++q)
                tb[q].barrier();

            // Consume: the face consumer is fixed (q+1); the edge
            // consumer alternates with the elimination dimension
            // (q+1 in even phases, q+2 in odd ones).
            for (unsigned q = 0; q < n; ++q) {
                const unsigned fprod = (q + n - 1) % n;
                for (unsigned i = 0; i < face; ++i) {
                    tb[q].read(faceR[fprod].addr(i));
                    tb[q].compute(6);
                }
                const unsigned off = (phase % 2 == 0) ? 1 : 2;
                const unsigned eprod = (q + n - off) % n;
                for (unsigned i = 0; i < edge; ++i) {
                    tb[q].read(edgeR[eprod].addr(i));
                    tb[q].compute(6);
                }
                tb[q].compute(42000); // subcube interior elimination
            }
        }
    }
    for (unsigned q = 0; q < n; ++q)
        tb[q].barrier();

    Workload w;
    w.name = "appbt";
    w.netJitter = 8;
    for (unsigned q = 0; q < n; ++q)
        w.traces.push_back(tb[q].take());
    return w;
}

} // namespace mspdsm
