#include "workload/suite.hh"

#include "base/logging.hh"

namespace mspdsm
{

const std::vector<AppInfo> &
appSuite()
{
    static const std::vector<AppInfo> suite = {
        {"appbt", "12x12x12 cubes", 40, "16p, 14+8 boundary blks/proc",
         12, makeAppbt},
        {"barnes", "4K particles", 21, "16p, 200 octree cells", 10,
         makeBarnes},
        {"em3d", "76800 nodes, 15% remote", 50,
         "16p, 24 boundary blks/proc", 20, makeEm3d},
        {"moldyn", "2048 particles", 60,
         "16p, 10 force blks/proc + 16x5 migratory", 15, makeMoldyn},
        {"ocean", "130x130 array", 12,
         "16p, 12+4 boundary blks/proc + reduction", 12, makeOcean},
        {"tomcatv", "128x128 array", 50, "16p, 16 boundary blks/proc",
         20, makeTomcatv},
        {"unstructured", "mesh.2K", 50,
         "16p, 4 wide-shared blks/proc + 16x8 reduction", 10,
         makeUnstructured},
    };
    return suite;
}

Workload
makeApp(const std::string &name, const AppParams &p)
{
    for (const AppInfo &info : appSuite()) {
        if (info.name == name) {
            AppParams q = p;
            if (q.iterations == 0)
                q.iterations = info.defaultIters;
            // Every generator allocates one home region per proc, so
            // the layout geometry must cover numProcs nodes; growing
            // it here protects every caller, not just the harness
            // (which pre-syncs the two so the workload-cache key and
            // the machine geometry agree exactly).
            if (q.proto.numNodes < q.numProcs)
                q.proto.numNodes = q.numProcs;
            return info.make(q);
        }
    }
    fatal("unknown application '", name, "'");
}

} // namespace mspdsm
