/**
 * @file
 * unstructured: CFD over an unstructured mesh, cyclically partitioned.
 *
 * Paper characterization: a producer/consumer phase with *wide* read
 * sharing (on average twelve readers per write) whose read order
 * varies, ruining MSP (< 65%) while VMSP's vectors remove the
 * re-ordering (87% at depth 1); and a sum-reduction phase with
 * migratory sharing in which processors whose contribution is zero
 * skip every other visit, so the migratory hand-off alternates
 * between two interleaved participant lists -- unpredictable at depth
 * 1, captured at depth 4. Producers write exactly once, so SWI
 * invalidates ~90% of writes and, with FR, covers ~92% of reads.
 */

#include "workload/suite.hh"

#include "base/random.hh"
#include "workload/layout.hh"

namespace mspdsm
{

Workload
makeUnstructured(const AppParams &p)
{
    const unsigned n = p.numProcs;
    const unsigned iters = p.iterations ? p.iterations : 10;
    const unsigned pc_blocks =
        std::max(2u, static_cast<unsigned>(4 * p.scale));
    const unsigned readers = std::min(12u, n - 1);
    // Reduction cells in per-home chunks (contiguous array on a
    // page-interleaved DSM): a participant updates a chunk's cells
    // back-to-back, arming SWI at that home. Sized so the reduction
    // contributes about half of all reads (paper Section 7.4).
    const unsigned chunk =
        std::max(2u, static_cast<unsigned>(8 * p.scale));

    Layout layout(p.proto);
    std::vector<Region> pc(n);
    for (unsigned q = 0; q < n; ++q)
        pc[q] = layout.allocAt(NodeId(q), pc_blocks);
    std::vector<Region> red(n);
    for (unsigned h = 0; h < n; ++h)
        red[h] = layout.allocAt(NodeId(h), chunk);

    Rng rng(p.seed);
    std::vector<TraceBuilder> tb(n);

    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned q = 0; q < n; ++q)
            tb[q].barrier();

        // Produce: one write per block per iteration (SWI-friendly).
        for (unsigned q = 0; q < n; ++q) {
            for (unsigned i = 0; i < pc_blocks; ++i) {
                tb[q].write(pc[q].addr(i));
                tb[q].compute(8);
            }
            tb[q].compute(150);
        }

        for (unsigned q = 0; q < n; ++q)
            tb[q].barrier();

        // Wide read sharing: readers follow a loose traversal order
        // that the per-iteration workload perturbs, so neighbouring
        // requests frequently swap ("high read request re-ordering")
        // while the global order stays roughly front-to-back.
        {
            std::vector<PhaseSchedule> sched(n);
            for (unsigned q = 0; q < n; ++q) {
                for (unsigned i = 0; i < pc_blocks; ++i) {
                    for (unsigned r = 1; r <= readers; ++r) {
                        const unsigned reader = (q + r) % n;
                        const Tick t = Tick(r) * 150 +
                                       rng.uniform(0, 700);
                        sched[reader].at(
                            t, TraceOp::read(pc[q].addr(i)));
                    }
                }
            }
            for (unsigned q = 0; q < n; ++q)
                sched[q].emit(tb[q]);
        }

        for (unsigned q = 0; q < n; ++q)
            tb[q].barrier();

        // Sum reduction: every cell of chunk h is visited by the
        // fixed participant list h, h+2, ..., except that two of the
        // six participants compute a zero contribution every other
        // iteration and skip their visit ("some processors ...
        // alternate participating"). The hand-offs around the
        // skippers flip between two sequences -- unpredictable at
        // depth 1, captured by a deeper history (Sections 7.1-7.2).
        {
            std::vector<PhaseSchedule> sched(n);
            for (unsigned h = 0; h < n; ++h) {
                unsigned slot = 0;
                for (unsigned j = 0; j < 6; ++j) {
                    const unsigned q = (h + j * 2) % n;
                    const bool skipper = j == 2 || j == 4;
                    if (skipper && (it % 2) == 1)
                        continue; // zero contribution this time
                    for (unsigned k = 0; k < chunk; ++k) {
                        const Tick t =
                            Tick(slot) * 1600 + k * 120;
                        sched[q].at(t,
                                    TraceOp::read(red[h].addr(k)));
                        sched[q].at(t + 30,
                                    TraceOp::write(red[h].addr(k)));
                    }
                    ++slot;
                }
            }
            for (unsigned q = 0; q < n; ++q)
                sched[q].emit(tb[q]);
        }

        for (unsigned q = 0; q < n; ++q)
            tb[q].compute(40000); // per-face local flux computation
    }
    for (unsigned q = 0; q < n; ++q)
        tb[q].barrier();

    Workload w;
    w.name = "unstructured";
    w.netJitter = 40; // wide sharing: heavy queueing and races
    for (unsigned q = 0; q < n; ++q)
        w.traces.push_back(tb[q].take());
    return w;
}

} // namespace mspdsm
