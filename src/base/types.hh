/**
 * @file
 * Fundamental scalar types shared by every module in the simulator.
 *
 * The simulator measures time in processor clock cycles ("ticks"); all
 * latency parameters in proto/ProtoConfig are expressed in this unit.
 */

#ifndef MSPDSM_BASE_TYPES_HH
#define MSPDSM_BASE_TYPES_HH

#include <cstdint>
#include <limits>

namespace mspdsm
{

/** Simulated time, in processor clock cycles. */
using Tick = std::uint64_t;

/** Largest representable tick; used as "never" for availability times. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Byte address in the simulated global physical address space. */
using Addr = std::uint64_t;

/** Identifier of a node (processor + caches + DSM board). */
using NodeId = std::uint16_t;

/** Sentinel for "no node". */
constexpr NodeId invalidNode = std::numeric_limits<NodeId>::max();

/**
 * Identifier of an aligned coherence block: block address divided by the
 * block size. The directory, predictors, and caches all index state by
 * BlockId rather than raw byte address.
 */
using BlockId = std::uint64_t;

} // namespace mspdsm

#endif // MSPDSM_BASE_TYPES_HH
