#include "base/thread_pool.hh"

#include <algorithm>

namespace mspdsm
{

namespace
{

/**
 * Which pool (if any) the current thread belongs to, and its worker
 * index there: submissions from a worker land in its own queue.
 */
thread_local const ThreadPool *tlsPool = nullptr;
thread_local unsigned tlsWorker = 0;

} // namespace

unsigned
ThreadPool::defaultThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = std::max(1u, threads);
    queues_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<Queue>());
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(idleMtx_);
        stop_ = true;
    }
    idleCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::enqueue(MoveFunc task)
{
    std::size_t target;
    {
        // One critical section for both the round-robin cursor and
        // the count. Counting before publishing matters: a thief may
        // pop the task the moment it is pushed, and its decrement
        // must never see pending_ == 0.
        std::lock_guard<std::mutex> lk(idleMtx_);
        target = tlsPool == this ? tlsWorker
                                 : nextQueue_++ % queues_.size();
        ++pending_;
    }
    {
        std::lock_guard<std::mutex> lk(queues_[target]->mtx);
        queues_[target]->tasks.push_back(std::move(task));
    }
    idleCv_.notify_one();
}

MoveFunc
ThreadPool::take(unsigned self)
{
    // Own queue first, front (submission order)...
    {
        Queue &q = *queues_[self];
        std::lock_guard<std::mutex> lk(q.mtx);
        if (!q.tasks.empty()) {
            MoveFunc t = std::move(q.tasks.front());
            q.tasks.pop_front();
            return t;
        }
    }
    // ...then steal from the back of the others.
    for (std::size_t i = 1; i < queues_.size(); ++i) {
        Queue &q = *queues_[(self + i) % queues_.size()];
        std::lock_guard<std::mutex> lk(q.mtx);
        if (!q.tasks.empty()) {
            MoveFunc t = std::move(q.tasks.back());
            q.tasks.pop_back();
            return t;
        }
    }
    return MoveFunc{};
}

void
ThreadPool::workerLoop(unsigned self)
{
    tlsPool = this;
    tlsWorker = self;
    while (true) {
        MoveFunc task = take(self);
        if (task) {
            {
                std::lock_guard<std::mutex> lk(idleMtx_);
                --pending_;
            }
            task();
            continue;
        }
        std::unique_lock<std::mutex> lk(idleMtx_);
        // Drain-before-exit: stop_ alone is not enough, queued work
        // must be gone too (futures from submit() never dangle).
        if (stop_ && pending_ == 0)
            return;
        idleCv_.wait(lk, [this] { return stop_ || pending_ > 0; });
        if (stop_ && pending_ == 0)
            return;
    }
}

} // namespace mspdsm
