/**
 * @file
 * Fixed-width text table formatter.
 *
 * The benchmark harness prints each of the paper's tables/figure series
 * as an aligned text table; this tiny formatter keeps that output
 * uniform across benches.
 */

#ifndef MSPDSM_BASE_TABLE_HH
#define MSPDSM_BASE_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace mspdsm
{

/**
 * Column-aligned table builder.
 *
 * Usage:
 * @code
 *   Table t({"app", "Cosmos", "MSP", "VMSP"});
 *   t.addRow({"em3d", "75.2", "99.1", "99.0"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a data row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Render the table (header, rule, rows) to @p os. */
    void print(std::ostream &os) const;

    /** Format a double with @p digits fractional digits. */
    static std::string fmt(double v, int digits = 1);

    /** Format an integer. */
    static std::string fmt(std::uint64_t v);

    /** Format a percentage like the paper: "<1" below one, else round. */
    static std::string fmtPct(double pct);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mspdsm

#endif // MSPDSM_BASE_TABLE_HH
