#include "base/random.hh"

namespace mspdsm
{

namespace
{

/** splitmix64 step, used only to expand the seed into xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // xoshiro state must not be all-zero; splitmix64 guarantees a
    // well-mixed non-degenerate state for any seed.
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::bounded(std::uint64_t n)
{
    panic_if(n == 0, "Rng::bounded: empty range");
    // Rejection sampling over the top of the range to remove modulo
    // bias; the rejection region is < 1/2 of the space for any n.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

} // namespace mspdsm
