/**
 * @file
 * Work-stealing thread pool for the experiment harness.
 *
 * The simulator kernel is strictly single-instance (see
 * docs/ARCHITECTURE.md): one EventQueue, no internal locking.
 * Parallelism therefore lives one layer up -- independent DsmSystem
 * runs fan out one per worker. This pool is sized for that shape:
 * tens-to-hundreds of coarse tasks (each milliseconds to minutes),
 * not millions of micro-tasks, so per-queue mutexes are plenty and
 * the stealing exists to keep workers busy when the round-robin
 * distribution turns out uneven (runs have very different lengths).
 *
 * Semantics:
 *  - submit() returns a std::future; exceptions thrown by the task
 *    propagate through future::get();
 *  - tasks submitted from a worker thread go to that worker's own
 *    queue;
 *  - the destructor drains every queued task before joining, so a
 *    future obtained from submit() never dangles.
 *
 * Caveat -- blocking on child futures from inside a task: a worker
 * waiting in future::get() does not drain its queue, so if *every*
 * worker blocks on a task that is still queued, the pool deadlocks
 * (with a free worker left over, stealing keeps things moving).
 * Structure fan-out so the join happens outside the pool, as
 * SweepRunner does: submit all, then gather from the caller.
 */

#ifndef MSPDSM_BASE_THREAD_POOL_HH
#define MSPDSM_BASE_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mspdsm
{

/**
 * Type-erased move-only callable: std::packaged_task (which carries
 * the future's shared state) is move-only and therefore cannot live
 * in a std::function.
 */
class MoveFunc
{
  public:
    MoveFunc() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, MoveFunc>>>
    MoveFunc(F &&f)
        : impl_(std::make_unique<Impl<std::decay_t<F>>>(
              std::forward<F>(f)))
    {}

    MoveFunc(MoveFunc &&) = default;
    MoveFunc &operator=(MoveFunc &&) = default;

    void operator()() { impl_->call(); }

    explicit operator bool() const { return impl_ != nullptr; }

  private:
    struct Base
    {
        virtual ~Base() = default;
        virtual void call() = 0;
    };

    template <typename F>
    struct Impl final : Base
    {
        explicit Impl(F &&f) : f(std::move(f)) {}
        explicit Impl(const F &f) : f(f) {}
        void call() override { f(); }
        F f;
    };

    std::unique_ptr<Base> impl_;
};

/**
 * Fixed-size work-stealing pool.
 *
 * Usage:
 * @code
 *   ThreadPool pool(8);
 *   auto fut = pool.submit([] { return expensiveRun(); });
 *   RunResult r = fut.get();
 * @endcode
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 is clamped to 1. */
    explicit ThreadPool(unsigned threads);

    /** Drains all queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Queue @p f for execution.
     * @return future of the task's result; get() rethrows anything
     *         the task throws.
     */
    template <typename F>
    std::future<std::invoke_result_t<std::decay_t<F>>>
    submit(F &&f)
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        std::packaged_task<R()> task(std::forward<F>(f));
        std::future<R> fut = task.get_future();
        enqueue(MoveFunc(std::move(task)));
        return fut;
    }

    /** Hardware concurrency with a sane floor (never 0). */
    static unsigned defaultThreads();

  private:
    /** One worker's deque; owner pops the front, thieves the back. */
    struct Queue
    {
        std::mutex mtx;
        std::deque<MoveFunc> tasks;
    };

    void enqueue(MoveFunc task);
    void workerLoop(unsigned self);

    /** Pop from own queue, else steal; empty MoveFunc when idle. */
    MoveFunc take(unsigned self);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex idleMtx_;
    std::condition_variable idleCv_;
    std::size_t pending_ = 0; //!< queued, not yet taken (under idleMtx_)
    bool stop_ = false;       //!< destructor has run (under idleMtx_)
    std::size_t nextQueue_ = 0; //!< round-robin cursor (under idleMtx_)
};

} // namespace mspdsm

#endif // MSPDSM_BASE_THREAD_POOL_HH
