/**
 * @file
 * Fixed-capacity node bit vector.
 *
 * Used by the full-map directory (sharer list) and by VMSP (reader
 * vectors). Capacity is limited to 64 nodes, which covers the paper's
 * 16-node system with room for scaling studies; the limit is enforced
 * at construction.
 */

#ifndef MSPDSM_BASE_BITVECTOR_HH
#define MSPDSM_BASE_BITVECTOR_HH

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace mspdsm
{

/**
 * A set of node ids stored as a 64-bit mask.
 *
 * Equality, hashing, and iteration are all O(1)/O(popcount), which the
 * VMSP pattern tables rely on.
 */
class NodeSet
{
  public:
    /** Empty set. */
    NodeSet() = default;

    /** Singleton set. */
    static NodeSet
    of(NodeId n)
    {
        NodeSet s;
        s.add(n);
        return s;
    }

    /** Rebuild from a raw mask (inverse of raw()). */
    static NodeSet
    fromRaw(std::uint64_t bits)
    {
        NodeSet s;
        s.bits_ = bits;
        return s;
    }

    /** Add a node to the set. */
    void
    add(NodeId n)
    {
        panic_if(n >= 64, "NodeSet supports at most 64 nodes, got ", n);
        bits_ |= (std::uint64_t{1} << n);
    }

    /** Remove a node from the set (no-op if absent). */
    void
    remove(NodeId n)
    {
        panic_if(n >= 64, "NodeSet supports at most 64 nodes, got ", n);
        bits_ &= ~(std::uint64_t{1} << n);
    }

    /** @return true iff the node is a member. */
    bool
    contains(NodeId n) const
    {
        return n < 64 && (bits_ >> n) & 1;
    }

    /** @return number of members. */
    int
    count() const
    {
        return std::popcount(bits_);
    }

    /** @return true iff the set is empty. */
    bool empty() const { return bits_ == 0; }

    /** Remove all members. */
    void clear() { bits_ = 0; }

    /** Raw 64-bit mask (for hashing / encoding-size accounting). */
    std::uint64_t raw() const { return bits_; }

    /** Set union. */
    NodeSet
    operator|(const NodeSet &o) const
    {
        NodeSet s;
        s.bits_ = bits_ | o.bits_;
        return s;
    }

    /** Set difference: members of this set not in @p o. */
    NodeSet
    minus(const NodeSet &o) const
    {
        NodeSet s;
        s.bits_ = bits_ & ~o.bits_;
        return s;
    }

    /** Set intersection. */
    NodeSet
    operator&(const NodeSet &o) const
    {
        NodeSet s;
        s.bits_ = bits_ & o.bits_;
        return s;
    }

    bool operator==(const NodeSet &o) const = default;

    /**
     * Allocation-free member iteration in ascending order (the
     * protocol fans invalidations/pushes out per delivered message,
     * so this must not build a std::vector).
     */
    class Iterator
    {
      public:
        explicit Iterator(std::uint64_t bits) : bits_(bits) {}

        NodeId
        operator*() const
        {
            return static_cast<NodeId>(std::countr_zero(bits_));
        }

        Iterator &
        operator++()
        {
            bits_ &= bits_ - 1; // clear the lowest set bit
            return *this;
        }

        bool operator==(const Iterator &o) const = default;

      private:
        std::uint64_t bits_;
    };

    Iterator begin() const { return Iterator(bits_); }
    Iterator end() const { return Iterator(0); }

    /** Members in ascending order (tests/diagnostics; allocates). */
    std::vector<NodeId> toVector() const;

    /** Render as e.g. "{1,4,7}" for diagnostics. */
    std::string toString() const;

  private:
    std::uint64_t bits_ = 0;
};

} // namespace mspdsm

#endif // MSPDSM_BASE_BITVECTOR_HH
