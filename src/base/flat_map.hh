/**
 * @file
 * Open-addressing hash map for the simulator hot path.
 *
 * The predictors perform one or two map lookups per observed coherence
 * message, and the directory/cache controllers one per handled
 * message; with node-based std::unordered_map every lookup chases at
 * least one cache-missing pointer and every insert allocates. FlatMap
 * stores <key, value> slots inline in one power-of-two array with
 * linear probing, a one-byte control array (empty / full / tombstone),
 * and an avalanche-mixed hash, so the common lookup touches one
 * control cache line plus one slot.
 *
 * Semantics deliberately kept from unordered_map: amortized O(1)
 * find/insert/erase, try_emplace forwarding, iteration over live
 * slots. The one difference callers must respect: *rehash invalidates
 * references and iterators* (unordered_map keeps references stable).
 * Simulator code therefore re-fetches entries by key after any
 * operation that may insert -- the discipline the event-driven code
 * already followed for iterator stability.
 *
 * Not thread-safe, like the rest of one simulation instance.
 */

#ifndef MSPDSM_BASE_FLAT_MAP_HH
#define MSPDSM_BASE_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "base/logging.hh"

namespace mspdsm
{

/**
 * Finalizer-style avalanche mix (splitmix64): every input bit affects
 * every output bit, which open addressing with a power-of-two mask
 * needs -- identity hashing of block ids (stride patterns!) would
 * cluster probes catastrophically.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/** Default hash: avalanche mix for integral keys. */
template <typename K>
struct FlatHash
{
    static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                  "provide an explicit hash functor for non-integral "
                  "FlatMap keys");

    std::size_t
    operator()(const K &k) const
    {
        return static_cast<std::size_t>(
            mix64(static_cast<std::uint64_t>(k)));
    }
};

/**
 * Open-addressing hash map: power-of-two capacity, linear probing,
 * tombstone deletion.
 */
template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatMap
{
  public:
    /** Live slot, shaped like unordered_map's value_type. */
    struct Slot
    {
        K first;
        V second;
    };

    template <bool Const>
    class Iter
    {
      public:
        using MapT = std::conditional_t<Const, const FlatMap, FlatMap>;
        using SlotT = std::conditional_t<Const, const Slot, Slot>;

        Iter() = default;
        Iter(MapT *m, std::size_t i) : map_(m), idx_(i) { skip(); }

        /** Conversion iterator -> const_iterator. */
        operator Iter<true>() const
        {
            Iter<true> it;
            it.map_ = map_;
            it.idx_ = idx_;
            return it;
        }

        SlotT &operator*() const { return map_->slots_[idx_]; }
        SlotT *operator->() const { return &map_->slots_[idx_]; }

        Iter &
        operator++()
        {
            ++idx_;
            skip();
            return *this;
        }

        bool
        operator==(const Iter &o) const
        {
            return idx_ == o.idx_;
        }

      private:
        friend class FlatMap;
        friend class Iter<!Const>;

        void
        skip()
        {
            while (map_ && idx_ < map_->cap_ &&
                   map_->ctrl_[idx_] != ctrlFull) {
                ++idx_;
            }
        }

        MapT *map_ = nullptr;
        std::size_t idx_ = 0;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    FlatMap() = default;

    FlatMap(FlatMap &&o) noexcept { swap(o); }

    FlatMap &
    operator=(FlatMap &&o) noexcept
    {
        if (this != &o) {
            destroy();
            swap(o);
        }
        return *this;
    }

    FlatMap(const FlatMap &o) { *this = o; }

    FlatMap &
    operator=(const FlatMap &o)
    {
        if (this != &o) {
            destroy();
            reserve(o.size_);
            for (const Slot &s : o)
                try_emplace(s.first, s.second);
        }
        return *this;
    }

    ~FlatMap() { destroy(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Slots allocated (diagnostics / load-factor tests). */
    std::size_t capacity() const { return cap_; }

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, cap_); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, cap_); }

    iterator
    find(const K &k)
    {
        const std::size_t i = locate(k, Hash{}(k));
        return i == npos ? end() : iterator(this, i);
    }

    const_iterator
    find(const K &k) const
    {
        const std::size_t i = locate(k, Hash{}(k));
        return i == npos ? end()
                         : const_iterator(this, i);
    }

    /**
     * find() with a caller-precomputed hash, for hot paths that keep
     * the hash of a large key (HistoryKey) cached. @p hash must equal
     * Hash{}(k).
     */
    iterator
    findHashed(const K &k, std::size_t hash)
    {
        const std::size_t i = locate(k, hash);
        return i == npos ? end() : iterator(this, i);
    }

    const_iterator
    findHashed(const K &k, std::size_t hash) const
    {
        const std::size_t i = locate(k, hash);
        return i == npos ? end()
                         : const_iterator(this, i);
    }

    bool
    contains(const K &k) const
    {
        return locate(k, Hash{}(k)) != npos;
    }

    /**
     * Insert a value constructed from @p args under @p k unless the
     * key already exists. One fused probe pass covers both the lookup
     * and the insert position (first tombstone on the path, else the
     * terminating empty slot).
     * @return {iterator to the slot, true iff newly inserted}
     */
    template <typename... Args>
    std::pair<iterator, bool>
    try_emplace(const K &k, Args &&...args)
    {
        return tryEmplaceHashed(Hash{}(k), k,
                                std::forward<Args>(args)...);
    }

    /** try_emplace() with a caller-precomputed hash (== Hash{}(k)). */
    template <typename... Args>
    std::pair<iterator, bool>
    tryEmplaceHashed(std::size_t hash, const K &k, Args &&...args)
    {
        if (cap_ == 0)
            rehash(minCap);
        std::size_t i = hash & mask();
        std::size_t tomb = npos;
        while (ctrl_[i] != ctrlEmpty) {
            if (ctrl_[i] == ctrlFull) {
                if (slots_[i].first == k)
                    return {iterator(this, i), false};
            } else if (tomb == npos) {
                tomb = i;
            }
            i = (i + 1) & mask();
        }
        if (tomb != npos) {
            i = tomb;
            --tombs_;
        } else if (needsGrowth(1)) {
            // No tombstone to reuse and the table is getting full:
            // grow (or purge) first, then take the fresh probe path.
            rehash(size_ * 2 >= cap_ ? cap_ * 2 : cap_);
            i = insertSlotFor(hash);
        }
        new (&slots_[i]) Slot{k, V(std::forward<Args>(args)...)};
        ctrl_[i] = ctrlFull;
        ++size_;
        return {iterator(this, i), true};
    }

    /** Find-or-default-construct, as unordered_map::operator[]. */
    V &operator[](const K &k) { return try_emplace(k).first->second; }

    /**
     * Erase the entry for @p k.
     * @return number of entries removed (0 or 1)
     */
    std::size_t
    erase(const K &k)
    {
        const std::size_t i = locate(k, Hash{}(k));
        if (i == npos)
            return 0;
        slots_[i].~Slot();
        ctrl_[i] = ctrlTomb;
        --size_;
        ++tombs_;
        return 1;
    }

    /** Remove every entry, keeping the allocation. */
    void
    clear()
    {
        for (std::size_t i = 0; i < cap_; ++i) {
            if (ctrl_[i] == ctrlFull)
                slots_[i].~Slot();
            ctrl_[i] = ctrlEmpty;
        }
        size_ = 0;
        tombs_ = 0;
    }

    /** Grow so that @p n entries fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t want = minCap;
        while (n * 8 >= want * 7)
            want <<= 1;
        if (want > cap_)
            rehash(want);
    }

    /**
     * True iff inserting @p extra more entries would trigger a grow
     * or purge inside try_emplace (the same 7/8 threshold the insert
     * path itself applies).
     */
    bool
    needsGrowth(std::size_t extra) const
    {
        return (size_ + tombs_ + extra) * 8 >= cap_ * 7;
    }

    /**
     * Batched growth for callers that insert in groups (predictor
     * first-touch paths): when the next insert would grow the table,
     * reserve room for @p group more entries up front instead, so
     * the insert itself is a single probe pass with no mid-insert
     * rehash.
     */
    void
    reserveGrouped(std::size_t group)
    {
        if (needsGrowth(1))
            reserve(size_ + group);
    }

  private:
    static constexpr std::uint8_t ctrlEmpty = 0;
    static constexpr std::uint8_t ctrlFull = 1;
    static constexpr std::uint8_t ctrlTomb = 2;
    static constexpr std::size_t npos = ~std::size_t{0};
    /**
     * Small first allocation: predictor pattern tables hold only a
     * few entries per block, and a simulation touches many thousands
     * of blocks, so the cold-start footprint matters as much as the
     * steady-state probe count.
     */
    static constexpr std::size_t minCap = 8;

    std::size_t
    mask() const
    {
        return cap_ - 1;
    }

    /** Index of the live slot holding @p k, or npos. */
    std::size_t
    locate(const K &k, std::size_t hash) const
    {
        if (cap_ == 0)
            return npos;
        std::size_t i = hash & mask();
        while (true) {
            if (ctrl_[i] == ctrlEmpty)
                return npos;
            if (ctrl_[i] == ctrlFull && slots_[i].first == k)
                return i;
            i = (i + 1) & mask();
        }
    }

    /**
     * Probe position for inserting a key with hash @p hash (known
     * absent): the first tombstone on the probe path if any, else the
     * terminating empty slot -- tombstone reuse keeps erase-heavy
     * tables compact.
     */
    std::size_t
    insertSlotFor(std::size_t hash)
    {
        std::size_t i = hash & mask();
        std::size_t tomb = npos;
        while (ctrl_[i] != ctrlEmpty) {
            if (ctrl_[i] == ctrlTomb && tomb == npos)
                tomb = i;
            i = (i + 1) & mask();
        }
        if (tomb != npos) {
            --tombs_;
            return tomb;
        }
        return i;
    }

    void
    rehash(std::size_t newCap)
    {
        panic_if(newCap & (newCap - 1), "FlatMap capacity not pow2");
        Slot *oldSlots = slots_;
        std::uint8_t *oldCtrl = ctrl_;
        const std::size_t oldCap = cap_;

        slots_ = std::allocator<Slot>().allocate(newCap);
        ctrl_ = new std::uint8_t[newCap]();
        cap_ = newCap;
        tombs_ = 0;

        for (std::size_t i = 0; i < oldCap; ++i) {
            if (oldCtrl[i] != ctrlFull)
                continue;
            const std::size_t j =
                insertSlotFor(Hash{}(oldSlots[i].first));
            new (&slots_[j]) Slot{std::move(oldSlots[i].first),
                                  std::move(oldSlots[i].second)};
            ctrl_[j] = ctrlFull;
            oldSlots[i].~Slot();
        }
        if (oldCap) {
            std::allocator<Slot>().deallocate(oldSlots, oldCap);
            delete[] oldCtrl;
        }
    }

    void
    destroy()
    {
        if (!cap_)
            return;
        for (std::size_t i = 0; i < cap_; ++i)
            if (ctrl_[i] == ctrlFull)
                slots_[i].~Slot();
        std::allocator<Slot>().deallocate(slots_, cap_);
        delete[] ctrl_;
        slots_ = nullptr;
        ctrl_ = nullptr;
        cap_ = size_ = tombs_ = 0;
    }

    void
    swap(FlatMap &o) noexcept
    {
        std::swap(slots_, o.slots_);
        std::swap(ctrl_, o.ctrl_);
        std::swap(cap_, o.cap_);
        std::swap(size_, o.size_);
        std::swap(tombs_, o.tombs_);
    }

    Slot *slots_ = nullptr;
    std::uint8_t *ctrl_ = nullptr;
    std::size_t cap_ = 0;
    std::size_t size_ = 0;
    std::size_t tombs_ = 0;
};

} // namespace mspdsm

#endif // MSPDSM_BASE_FLAT_MAP_HH
