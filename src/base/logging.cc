#include "base/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace mspdsm
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

namespace
{

int g_verbosity = 0;

} // namespace

void
verboseImpl(const std::string &msg)
{
    std::fprintf(stderr, "verbose: %s\n", msg.c_str());
}

int
logVerbosity()
{
    return g_verbosity;
}

void
setLogVerbosity(int level)
{
    g_verbosity = level;
}

} // namespace mspdsm
