/**
 * @file
 * Minimal statistics primitives.
 *
 * Modules expose plain Counter/Average members grouped in Stats structs;
 * the harness reads them directly. This mirrors the way architecture
 * simulators expose per-component stat blocks without a heavyweight
 * registry.
 */

#ifndef MSPDSM_BASE_STATS_HH
#define MSPDSM_BASE_STATS_HH

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>

namespace mspdsm
{

/** Event counter. */
class Counter
{
  public:
    /** Increment by @p n (default 1). */
    void inc(std::uint64_t n = 1) { value_ += n; }

    /** Undo @p n previously counted events (speculative bookings
     * that were rolled back -- e.g. the network's optimistic ingress
     * reservation). Never exceeds what was counted: asserted in debug
     * builds, branch-free in release. */
    void
    dec(std::uint64_t n)
    {
        assert(n <= value_ && "Counter::dec exceeds what was counted");
        value_ -= n;
    }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero (between measurement phases). */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean of a sampled quantity. */
class Average
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++n_;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return n_; }

    /** Mean of samples, or 0 when empty. */
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }

    /** Sum of samples. */
    double sum() const { return sum_; }

    /** Reset to the empty state. */
    void
    reset()
    {
        sum_ = 0.0;
        n_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t n_ = 0;
};

/**
 * Log2-bucketed distribution of a non-negative quantity (latencies,
 * depths, distances). Fixed-size storage -- sampling is an array
 * increment, never an allocation -- so histograms can sit on the
 * per-message hot path and in every per-node stats block without
 * perturbing the zero-allocation or determinism invariants. Bucket 0
 * holds exactly the value 0; bucket k >= 1 holds [2^(k-1), 2^k).
 * Percentiles interpolate linearly inside the covering bucket, and
 * merge() is a bucket-wise sum (order-independent, so per-node
 * aggregation is deterministic regardless of fold order).
 */
class Histogram
{
  public:
    static constexpr unsigned numBuckets = 65;

    /** Bucket index of @p v. */
    static unsigned
    bucketOf(std::uint64_t v)
    {
        return v == 0 ? 0u : static_cast<unsigned>(std::bit_width(v));
    }

    /** Smallest value bucket @p i covers. */
    static std::uint64_t
    bucketLo(unsigned i)
    {
        return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
    }

    /** Largest value bucket @p i covers. */
    static std::uint64_t
    bucketHi(unsigned i)
    {
        if (i == 0)
            return 0;
        if (i >= 64)
            return ~std::uint64_t{0};
        return (std::uint64_t{1} << i) - 1;
    }

    /** Record one value. */
    void
    sample(std::uint64_t v)
    {
        ++buckets_[bucketOf(v)];
        ++count_;
        sum_ += v;
    }

    /** Number of values recorded. */
    std::uint64_t count() const { return count_; }

    /** Sum of values recorded. */
    std::uint64_t sum() const { return sum_; }

    /** Mean of values, or 0 when empty. */
    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /** Occupancy of bucket @p i. */
    std::uint64_t bucket(unsigned i) const { return buckets_[i]; }

    /**
     * The @p p-th percentile (0..100), linearly interpolated within
     * the covering bucket; 0 when empty.
     */
    double
    percentile(double p) const
    {
        if (count_ == 0)
            return 0.0;
        double rank = p / 100.0 * static_cast<double>(count_);
        if (rank < 1.0)
            rank = 1.0;
        std::uint64_t cum = 0;
        for (unsigned i = 0; i < numBuckets; ++i) {
            if (buckets_[i] == 0)
                continue;
            if (static_cast<double>(cum + buckets_[i]) >= rank) {
                const double frac =
                    (rank - static_cast<double>(cum)) /
                    static_cast<double>(buckets_[i]);
                const double lo = static_cast<double>(bucketLo(i));
                const double hi = static_cast<double>(bucketHi(i));
                return lo + (hi - lo) * frac;
            }
            cum += buckets_[i];
        }
        return static_cast<double>(bucketHi(numBuckets - 1));
    }

    /** Fold @p o into this histogram (bucket-wise sum). */
    void
    merge(const Histogram &o)
    {
        for (unsigned i = 0; i < numBuckets; ++i)
            buckets_[i] += o.buckets_[i];
        count_ += o.count_;
        sum_ += o.sum_;
    }

    /** Reset to the empty state. */
    void
    reset()
    {
        buckets_.fill(0);
        count_ = 0;
        sum_ = 0;
    }

  private:
    std::array<std::uint64_t, numBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * Ratio helper: percentage of @p part over @p whole, safe on zero.
 */
inline double
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part) /
                            static_cast<double>(whole);
}

} // namespace mspdsm

#endif // MSPDSM_BASE_STATS_HH
