/**
 * @file
 * Minimal statistics primitives.
 *
 * Modules expose plain Counter/Average members grouped in Stats structs;
 * the harness reads them directly. This mirrors the way architecture
 * simulators expose per-component stat blocks without a heavyweight
 * registry.
 */

#ifndef MSPDSM_BASE_STATS_HH
#define MSPDSM_BASE_STATS_HH

#include <cstdint>

namespace mspdsm
{

/** Event counter. */
class Counter
{
  public:
    /** Increment by @p n (default 1). */
    void inc(std::uint64_t n = 1) { value_ += n; }

    /** Undo @p n previously counted events (speculative bookings
     * that were rolled back -- e.g. the network's optimistic ingress
     * reservation). Never exceeds what was counted. */
    void dec(std::uint64_t n) { value_ -= n; }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero (between measurement phases). */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean of a sampled quantity. */
class Average
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++n_;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return n_; }

    /** Mean of samples, or 0 when empty. */
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }

    /** Sum of samples. */
    double sum() const { return sum_; }

    /** Reset to the empty state. */
    void
    reset()
    {
        sum_ = 0.0;
        n_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t n_ = 0;
};

/**
 * Ratio helper: percentage of @p part over @p whole, safe on zero.
 */
inline double
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part) /
                            static_cast<double>(whole);
}

} // namespace mspdsm

#endif // MSPDSM_BASE_STATS_HH
