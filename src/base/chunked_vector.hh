/**
 * @file
 * Chunked append-only vector: stable addresses, amortized chunk-sized
 * allocation.
 *
 * The predictors keep one state record per memory block touched; a
 * simulation touches tens of thousands. Storing the records inline in
 * a growing array would move them on every growth (and invalidate the
 * pointers the hot path memoizes); storing them in individually
 * allocated nodes costs one malloc per block and scatters them over
 * the heap. A chunked vector allocates fixed-size chunks, never moves
 * an element, and lays records out densely in first-touch order --
 * which is exactly the order trace replay revisits them.
 */

#ifndef MSPDSM_BASE_CHUNKED_VECTOR_HH
#define MSPDSM_BASE_CHUNKED_VECTOR_HH

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace mspdsm
{

/**
 * Append-only vector of T in fixed-size chunks. Element addresses are
 * stable for the container's lifetime; only emplace_back and indexed
 * access are provided.
 */
template <typename T, std::size_t ChunkSize = 64>
class ChunkedVector
{
    static_assert((ChunkSize & (ChunkSize - 1)) == 0,
                  "ChunkSize must be a power of two");

  public:
    ChunkedVector() = default;

    ChunkedVector(ChunkedVector &&o) noexcept
        : chunks_(std::move(o.chunks_)), size_(o.size_)
    {
        o.size_ = 0;
        o.chunks_.clear();
    }

    ChunkedVector &
    operator=(ChunkedVector &&o) noexcept
    {
        if (this != &o) {
            destroy();
            chunks_ = std::move(o.chunks_);
            size_ = o.size_;
            o.chunks_.clear();
            o.size_ = 0;
        }
        return *this;
    }

    ChunkedVector(const ChunkedVector &) = delete;
    ChunkedVector &operator=(const ChunkedVector &) = delete;

    ~ChunkedVector() { destroy(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &
    operator[](std::size_t i)
    {
        return slot(i);
    }

    const T &
    operator[](std::size_t i) const
    {
        return const_cast<ChunkedVector *>(this)->slot(i);
    }

    /** Construct a new element at the end; never moves others. */
    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (size_ == chunks_.size() * ChunkSize) {
            chunks_.push_back(static_cast<T *>(::operator new(
                ChunkSize * sizeof(T), std::align_val_t(alignof(T)))));
        }
        T *p = &slot(size_);
        new (p) T(std::forward<Args>(args)...);
        ++size_;
        return *p;
    }

  private:
    T &
    slot(std::size_t i)
    {
        return chunks_[i / ChunkSize][i % ChunkSize];
    }

    void
    destroy()
    {
        for (std::size_t i = 0; i < size_; ++i)
            slot(i).~T();
        for (T *c : chunks_)
            ::operator delete(c, std::align_val_t(alignof(T)));
        chunks_.clear();
        size_ = 0;
    }

    std::vector<T *> chunks_;
    std::size_t size_ = 0;
};

} // namespace mspdsm

#endif // MSPDSM_BASE_CHUNKED_VECTOR_HH
