#include "base/bitvector.hh"

#include <sstream>

namespace mspdsm
{

std::vector<NodeId>
NodeSet::toVector() const
{
    std::vector<NodeId> v;
    v.reserve(static_cast<std::size_t>(count()));
    std::uint64_t rest = bits_;
    while (rest) {
        int bit = std::countr_zero(rest);
        v.push_back(static_cast<NodeId>(bit));
        rest &= rest - 1;
    }
    return v;
}

std::string
NodeSet::toString() const
{
    std::ostringstream oss;
    oss << '{';
    bool first = true;
    for (NodeId n : toVector()) {
        if (!first)
            oss << ',';
        oss << n;
        first = false;
    }
    oss << '}';
    return oss.str();
}

} // namespace mspdsm
