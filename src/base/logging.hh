/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  -- an internal invariant was violated: a simulator bug.
 *             Aborts so a debugger or core dump can capture the state.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, inconsistent parameters). Exits with
 *             status 1.
 * warn()   -- something questionable happened but the simulation can
 *             proceed.
 * inform() -- a purely informational status message.
 */

#ifndef MSPDSM_BASE_LOGGING_HH
#define MSPDSM_BASE_LOGGING_HH

#include <sstream>
#include <string>

namespace mspdsm
{

/** Internal: report and abort. Never returns. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Internal: report and exit(1). Never returns. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Internal: print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Internal: print an informational message to stdout. */
void informImpl(const std::string &msg);

/** Internal: print a verbose diagnostic to stderr. */
void verboseImpl(const std::string &msg);

/**
 * Global log verbosity: 0 (the default) silences verbose(); any
 * higher level enables it. Wired to the uniform bench CLI via
 * --verbose (bench/bench_common.hh).
 */
int logVerbosity();

/** Set the global log verbosity. */
void setLogVerbosity(int level);

/**
 * Build a message string from a variadic pack via operator<<.
 * Used by the panic/fatal/warn/inform macros below.
 */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace mspdsm

/** Report an internal simulator bug and abort. */
#define panic(...) \
    ::mspdsm::panicImpl(__FILE__, __LINE__, \
                        ::mspdsm::concatMessage(__VA_ARGS__))

/** Report an unrecoverable user/configuration error and exit. */
#define fatal(...) \
    ::mspdsm::fatalImpl(__FILE__, __LINE__, \
                        ::mspdsm::concatMessage(__VA_ARGS__))

/** Report a suspicious but survivable condition. */
#define warn(...) \
    ::mspdsm::warnImpl(::mspdsm::concatMessage(__VA_ARGS__))

/** Report simulation status. */
#define inform(...) \
    ::mspdsm::informImpl(::mspdsm::concatMessage(__VA_ARGS__))

/**
 * Verbose diagnostic, printed to stderr only when the global
 * verbosity is raised (--verbose). Arguments are not evaluated when
 * verbosity is off, so verbose() calls are free on quiet runs; stderr
 * keeps the stdout byte-identity invariants of the sweep binaries.
 */
#define verbose(...) \
    do { \
        if (::mspdsm::logVerbosity() > 0) \
            ::mspdsm::verboseImpl(::mspdsm::concatMessage(__VA_ARGS__)); \
    } while (0)

/** panic() unless the stated invariant holds. */
#define panic_if(cond, ...) \
    do { \
        if (cond) \
            panic(__VA_ARGS__); \
    } while (0)

/** fatal() unless the stated user-facing precondition holds. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) \
            fatal(__VA_ARGS__); \
    } while (0)

#endif // MSPDSM_BASE_LOGGING_HH
