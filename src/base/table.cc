#include "base/table.hh"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "base/logging.hh"

namespace mspdsm
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    fatal_if(headers_.empty(), "Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    fatal_if(cells.size() != headers_.size(),
             "Table row has ", cells.size(), " cells, expected ",
             headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            // Left-align the first column (labels), right-align data.
            if (c == 0) {
                os << row[c]
                   << std::string(width[c] - row[c].size(), ' ');
            } else {
                os << std::string(width[c] - row[c].size(), ' ')
                   << row[c];
            }
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
Table::fmt(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
Table::fmt(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
Table::fmtPct(double pct)
{
    if (pct > 0.0 && pct < 1.0)
        return "<1";
    return std::to_string(static_cast<long long>(std::llround(pct)));
}

} // namespace mspdsm
