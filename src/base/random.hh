/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (network jitter, workload
 * shuffles, lock-acquisition order) draws from Rng instances seeded from
 * a single run-level seed, so repeated runs are bit-identical. The
 * generator is splitmix64-seeded xoshiro256**, which is fast, has a
 * 2^256-1 period, and is fully self-contained (no dependence on
 * std::mt19937 layout across standard libraries).
 */

#ifndef MSPDSM_BASE_RANDOM_HH
#define MSPDSM_BASE_RANDOM_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace mspdsm
{

/**
 * Deterministic random number generator (xoshiro256**).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any seed value is acceptable. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /**
     * Uniform integer in [lo, hi], inclusive on both ends.
     * @param lo lower bound
     * @param hi upper bound, must satisfy hi >= lo
     */
    std::uint64_t
    uniform(std::uint64_t lo, std::uint64_t hi)
    {
        panic_if(hi < lo, "Rng::uniform: hi < lo");
        return lo + bounded(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniformReal()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p in [0, 1]. */
    bool
    chance(double p)
    {
        return uniformReal() < p;
    }

    /** Fisher-Yates shuffle of a vector, in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(bounded(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Spawn an independent child generator (stream splitting). */
    Rng
    split()
    {
        return Rng(next() ^ 0xa0761d6478bd642fULL);
    }

  private:
    /** Uniform value in [0, n), n > 0; uses Lemire's method. */
    std::uint64_t bounded(std::uint64_t n);

    std::uint64_t s_[4];
};

} // namespace mspdsm

#endif // MSPDSM_BASE_RANDOM_HH
