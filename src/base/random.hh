/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (network jitter, workload
 * shuffles, lock-acquisition order) draws from Rng instances seeded from
 * a single run-level seed, so repeated runs are bit-identical. The
 * generator is splitmix64-seeded xoshiro256**, which is fast, has a
 * 2^256-1 period, and is fully self-contained (no dependence on
 * std::mt19937 layout across standard libraries).
 */

#ifndef MSPDSM_BASE_RANDOM_HH
#define MSPDSM_BASE_RANDOM_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace mspdsm
{

/**
 * Deterministic random number generator (xoshiro256**).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any seed value is acceptable. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;

        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);

        return result;
    }

    /**
     * Uniform integer in [lo, hi], inclusive on both ends.
     * @param lo lower bound
     * @param hi upper bound, must satisfy hi >= lo
     */
    std::uint64_t
    uniform(std::uint64_t lo, std::uint64_t hi)
    {
        panic_if(hi < lo, "Rng::uniform: hi < lo");
        return lo + bounded(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniformReal()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p in [0, 1]. */
    bool
    chance(double p)
    {
        return uniformReal() < p;
    }

    /** Fisher-Yates shuffle of a vector, in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(bounded(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Spawn an independent child generator (stream splitting). */
    Rng
    split()
    {
        return Rng(next() ^ 0xa0761d6478bd642fULL);
    }

  private:
    friend class BoundedDraw;

    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** Uniform value in [0, n), n > 0; rejection + modulo. */
    std::uint64_t bounded(std::uint64_t n);

    std::uint64_t s_[4];
};

/**
 * Precomputed-bound uniform sampler: draws exactly the same value
 * stream as Rng::uniform(lo, hi) on the same generator, but hoists
 * the rejection threshold -- a 64-bit divide -- out of the draw.
 * Components that sample a fixed range per event (the network's
 * per-message jitter) construct one of these once instead of paying
 * the divide per message.
 */
class BoundedDraw
{
  public:
    BoundedDraw() = default;

    /** Sampler for uniform integers in [lo, hi], hi >= lo. */
    BoundedDraw(std::uint64_t lo, std::uint64_t hi)
        : lo_(lo), n_(hi - lo + 1)
    {
        // Guard before the divide: for hi < lo (or the full 2^64
        // range) n_ wraps to 0 and the threshold modulo would be UB.
        panic_if(hi < lo, "BoundedDraw: hi < lo");
        panic_if(n_ == 0, "BoundedDraw: full-width range unsupported");
        threshold_ = (0 - n_) % n_;
    }

    /** Draw one value from @p rng (identical to rng.uniform(lo, hi)). */
    std::uint64_t
    operator()(Rng &rng) const
    {
        for (;;) {
            const std::uint64_t r = rng.next();
            if (r >= threshold_)
                return lo_ + r % n_;
        }
    }

  private:
    std::uint64_t lo_ = 0;
    std::uint64_t n_ = 1;
    std::uint64_t threshold_ = 0;
};

} // namespace mspdsm

#endif // MSPDSM_BASE_RANDOM_HH
