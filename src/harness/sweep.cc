#include "harness/sweep.hh"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <ostream>
#include <utility>

#include "base/logging.hh"
#include "base/table.hh"
#include "base/thread_pool.hh"
#include "harness/workload_cache.hh"
#include "topo/topology.hh"

namespace mspdsm
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Execute one job, timing it on its worker. */
SweepRecord
executeJob(const std::string &label, const std::string &app,
           const std::string &kind, const std::string &topology,
           const std::function<RunResult()> &run)
{
    SweepRecord rec;
    rec.label = label;
    rec.app = app;
    rec.kind = kind;
    rec.topology = topology;
    const auto t0 = Clock::now();
    rec.result = run();
    rec.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    return rec;
}

/** Minimal JSON string escape (labels are plain but be safe). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char *
statusName(RunStatus s)
{
    return s == RunStatus::Completed ? "completed" : "tick_limit";
}

} // namespace

SweepRunner::SweepRunner(const SweepOptions &opts) : opts_(opts)
{
    if (opts_.jobs == 0)
        opts_.jobs = ThreadPool::defaultThreads();
}

std::size_t
SweepRunner::add(std::string label, std::function<RunResult()> run,
                 std::string topology)
{
    panic_if(ran_, "SweepRunner::add after results()");
    Job j;
    j.label = std::move(label);
    j.kind = "custom";
    j.topology = std::move(topology);
    j.run = std::move(run);
    jobs_.push_back(std::move(j));
    return jobs_.size() - 1;
}

namespace
{

/** Label suffix for a non-default topology, "" for the crossbar --
 * so every pre-topology sweep's output stays byte-identical. */
std::string
topoSuffix(const ExperimentConfig &ec)
{
    if (ec.topo.kind == TopoKind::Crossbar)
        return "";
    return std::string(" @") + topoKindName(ec.topo.kind);
}

} // namespace

std::size_t
SweepRunner::addAccuracy(const std::string &app, std::size_t depth,
                         const ExperimentConfig &ec)
{
    panic_if(ran_, "SweepRunner::add after results()");
    Job j;
    j.label = app + " acc d=" + std::to_string(depth) + topoSuffix(ec);
    j.app = app;
    j.kind = "accuracy";
    j.topology = topoKindName(ec.topo.kind);
    // Capture by value: the job owns its full configuration, so the
    // run is seeded identically no matter which worker executes it.
    j.run = [app, depth, ec] { return runAccuracy(app, depth, ec); };
    jobs_.push_back(std::move(j));
    return jobs_.size() - 1;
}

std::size_t
SweepRunner::addSpec(const std::string &app, SpecMode mode,
                     const ExperimentConfig &ec)
{
    panic_if(ran_, "SweepRunner::add after results()");
    Job j;
    j.label = app + " " + specModeName(mode) + topoSuffix(ec);
    j.app = app;
    j.kind = "spec";
    j.topology = topoKindName(ec.topo.kind);
    j.run = [app, mode, ec] { return runSpec(app, mode, ec); };
    jobs_.push_back(std::move(j));
    return jobs_.size() - 1;
}

const std::vector<SweepRecord> &
SweepRunner::results()
{
    if (ran_)
        return records_;
    ran_ = true;

    const auto t0 = Clock::now();
    records_.reserve(jobs_.size());
    if (opts_.jobs <= 1 || jobs_.size() <= 1) {
        for (const Job &j : jobs_)
            records_.push_back(
                executeJob(j.label, j.app, j.kind, j.topology, j.run));
    } else {
        ThreadPool pool(opts_.jobs);
        std::vector<std::future<SweepRecord>> futs;
        futs.reserve(jobs_.size());
        for (const Job &j : jobs_) {
            futs.push_back(pool.submit([&j] {
                return executeJob(j.label, j.app, j.kind, j.topology,
                                  j.run);
            }));
        }
        // Gather in submission order regardless of completion order.
        for (std::future<SweepRecord> &f : futs)
            records_.push_back(f.get());
    }
    wallSeconds_ = std::chrono::duration<double>(Clock::now() - t0).count();
    jobs_.clear();
    return records_;
}

std::size_t
SweepRunner::guardTrips()
{
    std::size_t n = 0;
    for (const SweepRecord &r : results())
        if (!r.result.completed())
            ++n;
    return n;
}

void
SweepRunner::printSummary(std::ostream &os)
{
    results();
    // No wall-time columns here: bench stdout must be byte-identical
    // across repeated runs (the repo's determinism invariant); the
    // per-run and sweep timings live in the JSON record instead.
    Table t({"run", "kind", "status", "ticks", "msgs"});
    for (const SweepRecord &r : records_) {
        t.addRow({r.label, r.kind,
                  r.result.completed() ? "ok" : "TICK-LIMIT",
                  Table::fmt(r.result.execTicks),
                  Table::fmt(r.result.messages)});
    }
    t.print(os);
}

void
SweepRunner::writeJson(std::ostream &os, const std::string &tool)
{
    results();
    // Workload-cache observability: a sweep over N configurations of
    // one (app, params) must show one generation and N-1 hits here
    // (the counters are process-wide; bench binaries run one sweep
    // per process).
    const WorkloadCacheStats wc = WorkloadCache::stats();
    os << "{\n  \"schema\": \"mspdsm-sweep-v1\",\n";
    os << "  \"tool\": \"" << jsonEscape(tool) << "\",\n";
    os << "  \"jobs\": " << opts_.jobs << ",\n";
    os << "  \"wall_seconds\": " << wallSeconds_ << ",\n";
    os << "  \"workload_generations\": " << wc.generations << ",\n";
    os << "  \"workload_cache_hits\": " << wc.hits << ",\n";
    os << "  \"workload_gen_failures\": " << wc.failures << ",\n";
    os << "  \"workload_gen_seconds\": " << wc.genSeconds << ",\n";
    os << "  \"guard_trips\": " << guardTrips() << ",\n";
    os << "  \"runs\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const SweepRecord &r = records_[i];
        const RunResult &res = r.result;
        os << "    {\"label\": \"" << jsonEscape(r.label)
           << "\", \"app\": \"" << jsonEscape(r.app)
           << "\", \"kind\": \"" << r.kind
           << "\", \"topology\": \"" << jsonEscape(r.topology)
           << "\", \"status\": \"" << statusName(res.status)
           << "\", \"tick_limit\": "
           << (res.completed() ? "false" : "true")
           << ", \"exec_ticks\": " << res.execTicks
           << ", \"messages\": " << res.messages
           // Transport efficiency; additive mspdsm-sweep-v1 fields
           // (the event floor the batched NI drain attacks).
           << ", \"events_dispatched\": " << res.eventsDispatched
           << ", \"events_per_message\": " << res.eventsPerMessage()
           << ", \"reads\": " << res.reads
           << ", \"writes\": " << res.writes
           // Interconnect contention; additive mspdsm-sweep-v1 fields
           // (zero on an uncontended fabric, never omitted).
           << ", \"queueing_cycles\": " << res.queueingCycles
           << ", \"link_queueing_cycles\": " << res.linkQueueingCycles
           // Fault/recovery outcome; uniform schema, all-zero with
           // "faulted": false when the run had no fault plan.
           << ", \"faulted\": "
           << (res.fault.faulted ? "true" : "false")
           << ", \"kill_tick\": " << res.fault.killTick
           << ", \"restart_tick\": " << res.fault.restartTick
           << ", \"recovered_tick\": " << res.fault.recoveredTick
           << ", \"ops_at_kill\": " << res.fault.opsAtKill
           << ", \"ops_at_restart\": " << res.fault.opsAtRestart
           << ", \"stale_dropped\": " << res.fault.staleDropped
           << ", \"dead_dropped\": " << res.fault.deadDropped
           << ", \"nacks_sent\": " << res.fault.nacksSent
           << ", \"rehome_syncs\": " << res.fault.rehomeSyncs
           << ", \"ckpt_snapshots\": " << res.fault.ckptSnapshots
           << ", \"ckpt_messages\": " << res.fault.ckptMessages
           << ", \"retries\": " << res.fault.retries
           << ", \"nacks_seen\": " << res.fault.nacksSeen
           << ", \"timeouts\": " << res.fault.timeouts
           << ", \"stale_fills\": " << res.fault.staleFills
           << ", \"dir_aborts\": " << res.fault.dirAborts
           // Robustness-layer counters (shard replication, fail-back,
           // lossy-link transport); same uniform always-emitted rule.
           << ", \"shard_deltas\": " << res.fault.shardDeltas
           << ", \"shard_syncs\": " << res.fault.shardSyncs
           << ", \"failbacks\": " << res.fault.failbacks
           << ", \"misrouted_dropped\": "
           << res.fault.misroutedDropped
           << ", \"link_drops\": " << res.fault.linkDrops
           << ", \"retransmits\": " << res.fault.retransmits
           // Always-on demand-miss latency distribution (tail shape
           // the mean hides); additive, zero in traffic-free runs.
           << ", \"miss_lat_p50\": " << res.missLatP50
           << ", \"miss_lat_p90\": " << res.missLatP90
           << ", \"miss_lat_p99\": " << res.missLatP99
           // Interval time-series (gated sampler; interval 0 and an
           // empty array when the run was not sampled).
           << ", \"series_interval\": " << res.seriesInterval
           << ", \"series\": [";
        for (std::size_t k = 0; k < res.series.size(); ++k) {
            const IntervalSample &s = res.series[k];
            os << (k ? ", " : "") << "{\"tick\": " << s.tick
               << ", \"ops\": " << s.ops
               << ", \"messages\": " << s.messages
               << ", \"events\": " << s.eventsDispatched
               << ", \"pred_lookups\": " << s.predLookups
               << ", \"pred_hits\": " << s.predHits
               << ", \"outstanding_misses\": " << s.outstandingMisses
               << ", \"retransmits_in_flight\": "
               << s.retransmitsInFlight << "}";
        }
        os << "]"
           << ", \"seconds\": " << r.seconds << "}"
           << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

bool
SweepRunner::writeJsonFile(const std::string &path,
                           const std::string &tool)
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeJson(f, tool);
    return true;
}

} // namespace mspdsm
