/**
 * @file
 * Parallel sweep engine for the experiment binaries.
 *
 * Every paper figure/table is a sweep over independent configurations
 * (app x predictor depth x speculation mode). A DsmSystem instance is
 * fully self-contained -- its own event queue, RNG streams seeded from
 * the run-level seed, no global state -- so the runs fan out one per
 * worker thread with bit-identical results to a serial sweep
 * (tests/harness/test_sweep.cc pins this).
 *
 * SweepRunner collects RunResults in submission order regardless of
 * completion order, reports tick-limit guard trips structurally (a
 * status column in the summary table and a per-run field in the sweep
 * JSON), and serializes the whole sweep as the mspdsm-sweep-v1 schema
 * CI uploads next to BENCH_core.json.
 */

#ifndef MSPDSM_HARNESS_SWEEP_HH
#define MSPDSM_HARNESS_SWEEP_HH

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace mspdsm
{

/** Sweep-level knobs. */
struct SweepOptions
{
    /** Worker threads; <= 1 runs the sweep serially in the caller. */
    unsigned jobs = 1;
};

/** One completed run within a sweep. */
struct SweepRecord
{
    std::string label; //!< e.g. "em3d acc d=1" or "ocean SWI-DSM"
    std::string app;   //!< application name ("" for custom jobs)
    std::string kind;  //!< "accuracy", "spec", or "custom"
    /** Interconnect topology the run simulated ("crossbar", "ring",
     * "mesh2d", "torus2d"); additive mspdsm-sweep-v1 JSON field. */
    std::string topology;
    RunResult result;
    double seconds = 0.0; //!< wall time of this run on its worker
};

/**
 * Deferred-execution sweep: add() queues configurations, results()
 * runs everything (parallel for jobs > 1) and returns the records in
 * submission order.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(const SweepOptions &opts);

    /**
     * Queue an arbitrary job.
     * @param label row label for the summary table / JSON
     * @param run executed on a worker; its copy captures the full run
     *        configuration, so per-run seeds stay deterministic
     * @param topology topology name recorded for this run. Explicit
     *        on purpose: the runner cannot see inside the closure, so
     *        a defaulted "crossbar" would silently mislabel any
     *        custom job that simulates another fabric.
     * @return submission index of this job
     */
    std::size_t add(std::string label, std::function<RunResult()> run,
                    std::string topology);

    /** Queue runAccuracy(app, depth, ec). */
    std::size_t addAccuracy(const std::string &app, std::size_t depth,
                            const ExperimentConfig &ec);

    /** Queue runSpec(app, mode, ec). */
    std::size_t addSpec(const std::string &app, SpecMode mode,
                        const ExperimentConfig &ec);

    /**
     * Execute all queued jobs (first call) and return the records in
     * submission order. Further add() calls are rejected afterwards.
     */
    const std::vector<SweepRecord> &results();

    /** Result of job @p i (runs the sweep if still pending). */
    const RunResult &
    result(std::size_t i)
    {
        return results()[i].result;
    }

    /** Number of runs that tripped the tick-limit deadlock guard. */
    std::size_t guardTrips();

    /** Wall-clock of the whole sweep, seconds (0 before results()). */
    double wallSeconds() const { return wallSeconds_; }

    /** Worker threads the sweep ran with. */
    unsigned jobs() const { return opts_.jobs; }

    /**
     * Print the per-run summary table (run, kind, status, ticks,
     * msgs): the structured view of every guard trip.
     */
    void printSummary(std::ostream &os);

    /** Serialize the sweep as mspdsm-sweep-v1 JSON. */
    void writeJson(std::ostream &os, const std::string &tool);

    /**
     * writeJson() to @p path.
     * @return false if the file could not be opened.
     */
    bool writeJsonFile(const std::string &path, const std::string &tool);

  private:
    struct Job
    {
        std::string label;
        std::string app;
        std::string kind;
        std::string topology;
        std::function<RunResult()> run;
    };

    SweepOptions opts_;
    std::vector<Job> jobs_;
    std::vector<SweepRecord> records_;
    bool ran_ = false;
    double wallSeconds_ = 0.0;
};

} // namespace mspdsm

#endif // MSPDSM_HARNESS_SWEEP_HH
