/**
 * @file
 * Experiment drivers shared by the bench/ binaries.
 *
 * Two run modes mirror the paper's methodology:
 *  - accuracy runs: Base-DSM (no speculation) with Cosmos, MSP and
 *    VMSP attached as passive observers of the same execution
 *    (Figures 7-8, Tables 3-4);
 *  - speculation runs: VMSP depth 1 driving Base-DSM / FR-DSM /
 *    SWI-DSM (Figure 9, Table 5).
 */

#ifndef MSPDSM_HARNESS_EXPERIMENT_HH
#define MSPDSM_HARNESS_EXPERIMENT_HH

#include <string>
#include <vector>

#include "dsm/system.hh"
#include "workload/suite.hh"

namespace mspdsm
{

/** Knobs common to all experiments. */
struct ExperimentConfig
{
    double scale = 1.0;      //!< workload size multiplier
    unsigned iterations = 0; //!< 0 = application default
    std::uint64_t seed = 42;
    unsigned numProcs = 16;
    /** Interconnect topology (--topology / --link-latency). */
    TopoConfig topo = {};
    /** Deadlock-guard override; 0 keeps the DsmConfig default. */
    Tick tickLimit = 0;

    // ---- Fault injection (--fail-* flags). All defaults are inert:
    // failNode == invalidNode builds no fault plan at all and the run
    // is bit-identical to a pre-fault-layer run.

    /** Node to fail-stop; invalidNode disables fault injection. */
    NodeId failNode = invalidNode;
    /** Tick at which failNode is killed. */
    Tick failTick = 0;
    /** Tick at which failNode restarts; 0 = never restarted. */
    Tick recoverTick = 0;
    /** Adopter of the victim's shard; invalidNode = (victim+1)%n. */
    NodeId backupNode = invalidNode;
    /** Warm-restart the predictor from replicated checkpoints. */
    bool warmRestart = false;
    /** Predictor checkpoint period, ticks; 0 disables. */
    Tick ckptInterval = 0;

    // ---- PR 8 robustness knobs. Each default keeps the run
    // bit-identical to one that never heard of the flag.

    /** Stream directory-shard deltas to the backup (ShardSync). */
    bool replicateShards = false;
    /** Cache retry FSM bound (--retry-limit). */
    unsigned retryLimit = 16;
    /** Cache stale-request re-issue timeout (--stale-timeout). */
    Tick staleTimeout = 20000;
    /**
     * Additional fault events beyond the legacy failNode scalars
     * (--kill N@T / --restart N@T, repeatable): concurrent and
     * cascading failures. Any entry here builds a fault plan even if
     * failNode is unset.
     */
    std::vector<FaultEvent> extraFaults;
    /** Deterministic link-loss schedule (--lossy-link). */
    std::vector<LinkLossRule> linkLoss;
    /** Transmissions allowed per message under loss. */
    unsigned retransmitBudget = 8;
    /** Drop-to-reinjection latency, ticks. */
    Tick retransmitDelay = 400;

    // ---- Observability (--trace / --sample-interval). All defaults
    // are inert: an empty ObsConfig builds no ObsManager and the run
    // is bit-identical to an uninstrumented one.

    /** Chrome trace-event JSON output path; empty disables tracing. */
    std::string tracePath;
    /** Trace tick window [traceFrom, traceTo]. */
    Tick traceFrom = 0;
    Tick traceTo = maxTick;
    /** Interval time-series period, ticks; 0 disables the sampler. */
    Tick sampleInterval = 0;
};

/**
 * Run @p app under Base-DSM with the three predictors observing at
 * history depth @p depth.
 * @return RunResult whose observers[] hold Cosmos, MSP, VMSP in that
 *         order.
 */
RunResult runAccuracy(const std::string &app, std::size_t depth,
                      const ExperimentConfig &ec = {});

/**
 * Run @p app with a depth-1 VMSP and the given speculation mode
 * (the paper's Section 7.4 configuration).
 */
RunResult runSpec(const std::string &app, SpecMode mode,
                  const ExperimentConfig &ec = {});

/** Generate the workload an experiment would run (for inspection). */
Workload buildWorkload(const std::string &app,
                       const ExperimentConfig &ec = {});

} // namespace mspdsm

#endif // MSPDSM_HARNESS_EXPERIMENT_HH
