/**
 * @file
 * Cross-run compiled-workload cache.
 *
 * Every paper figure/table sweeps one application across many
 * configurations (history depths, speculation modes), and before this
 * cache each run regenerated and recompiled the same traces from
 * scratch -- fig8_history built the em3d workload three times, once
 * per depth, and the whole suite repeated that per app. Workload
 * generation is pure (a function of the app name, AppParams, and the
 * block/page geometry) and a CompiledWorkload is immutable, so one
 * compiled instance can back any number of concurrent runs.
 *
 * The cache is process-wide and thread-safe: SweepRunner workers
 * racing for the same key wait on a shared future while the first
 * requester generates (generation happens outside the table lock, so
 * distinct apps still generate in parallel). Entries are never
 * evicted -- a sweep touches a handful of workloads, each a few
 * hundred KB of packed ops -- but clear() exists for tests.
 */

#ifndef MSPDSM_HARNESS_WORKLOAD_CACHE_HH
#define MSPDSM_HARNESS_WORKLOAD_CACHE_HH

#include <memory>
#include <string>

#include "workload/compiled_trace.hh"
#include "workload/suite.hh"

namespace mspdsm
{

/** Observability counters for the cache (sweep JSON, CI). */
struct WorkloadCacheStats
{
    std::uint64_t generations = 0; //!< makeApp+compile actually run
    std::uint64_t hits = 0;        //!< requests served from the cache
    std::uint64_t failures = 0;    //!< generations that threw (the
                                   //!< entry is dropped so later
                                   //!< requests retry)
    double genSeconds = 0.0;       //!< wall time spent generating
};

class WorkloadCache
{
  public:
    /**
     * The compiled workload for (@p app, @p p), generated and
     * compiled at most once per process for any given key. The key
     * covers the app name, every AppParams field, and the geometry
     * fields of AppParams::proto that generation or compilation can
     * observe (block size, page size, node count).
     */
    static std::shared_ptr<const CompiledWorkload>
    get(const std::string &app, const AppParams &p);

    /** Counters since process start (or the last clear()). */
    static WorkloadCacheStats stats();

    /** Drop all entries and reset the counters (tests). */
    static void clear();
};

} // namespace mspdsm

#endif // MSPDSM_HARNESS_WORKLOAD_CACHE_HH
