#include "harness/workload_cache.hh"

#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <tuple>

namespace mspdsm
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Everything generation and compilation can observe. */
using Key = std::tuple<std::string, unsigned, double, unsigned,
                       std::uint64_t, unsigned, unsigned, unsigned>;

Key
makeKey(const std::string &app, const AppParams &p)
{
    return {app,          p.numProcs,        p.scale,
            p.iterations, p.seed,            p.proto.blockSize,
            p.proto.pageSize, p.proto.numNodes};
}

struct Cache
{
    std::mutex mu;
    // Each entry is a shared_future so racing workers block on the
    // first requester's generation instead of duplicating it; the
    // generation itself runs outside the lock.
    std::map<Key,
             std::shared_future<std::shared_ptr<const CompiledWorkload>>>
        entries;
    WorkloadCacheStats stats;
};

Cache &
cache()
{
    static Cache c;
    return c;
}

} // namespace

std::shared_ptr<const CompiledWorkload>
WorkloadCache::get(const std::string &app, const AppParams &p)
{
    Cache &c = cache();
    std::promise<std::shared_ptr<const CompiledWorkload>> promise;
    std::shared_future<std::shared_ptr<const CompiledWorkload>> fut;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(c.mu);
        auto [it, inserted] =
            c.entries.try_emplace(makeKey(app, p), promise.get_future());
        if (inserted) {
            owner = true;
            ++c.stats.generations;
        } else {
            ++c.stats.hits;
        }
        fut = it->second;
    }
    if (owner) {
        try {
            const auto t0 = Clock::now();
            auto cw = std::make_shared<const CompiledWorkload>(
                makeApp(app, p), AddrMap(p.proto));
            const double secs =
                std::chrono::duration<double>(Clock::now() - t0).count();
            {
                std::lock_guard<std::mutex> lock(c.mu);
                c.stats.genSeconds += secs;
            }
            promise.set_value(std::move(cw));
        } catch (...) {
            // Hand the failure to everyone already waiting, then
            // drop the entry so later requests retry instead of
            // inheriting a permanently broken promise.
            promise.set_exception(std::current_exception());
            {
                std::lock_guard<std::mutex> lock(c.mu);
                c.entries.erase(makeKey(app, p));
                --c.stats.generations;
            }
            throw;
        }
    }
    return fut.get();
}

WorkloadCacheStats
WorkloadCache::stats()
{
    Cache &c = cache();
    std::lock_guard<std::mutex> lock(c.mu);
    return c.stats;
}

void
WorkloadCache::clear()
{
    Cache &c = cache();
    std::lock_guard<std::mutex> lock(c.mu);
    c.entries.clear();
    c.stats = WorkloadCacheStats{};
}

} // namespace mspdsm
