#include "harness/workload_cache.hh"

#include <bit>
#include <chrono>
#include <cmath>
#include <future>
#include <map>
#include <mutex>
#include <tuple>

#include "base/logging.hh"

namespace mspdsm
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Everything generation and compilation can observe. */
using Key = std::tuple<std::string, unsigned, std::uint64_t, unsigned,
                       std::uint64_t, unsigned, unsigned, unsigned>;

Key
makeKey(const std::string &app, const AppParams &p)
{
    // scale enters the ordered map key as its bit pattern: keying on
    // the raw double would let a NaN (for which operator< is always
    // false) violate the map's strict weak ordering and silently
    // corrupt lookups, so non-finite scales are rejected outright.
    panic_if(!std::isfinite(p.scale), "non-finite AppParams::scale ",
             p.scale, " for app ", app);
    // Normalize -0.0 so the two equal zeros keep sharing one entry.
    const double scale = p.scale == 0.0 ? 0.0 : p.scale;
    return {app,          p.numProcs,
            std::bit_cast<std::uint64_t>(scale),
            p.iterations, p.seed,            p.proto.blockSize,
            p.proto.pageSize, p.proto.numNodes};
}

struct Cache
{
    std::mutex mu;
    // Each entry is a shared_future so racing workers block on the
    // first requester's generation instead of duplicating it; the
    // generation itself runs outside the lock.
    std::map<Key,
             std::shared_future<std::shared_ptr<const CompiledWorkload>>>
        entries;
    WorkloadCacheStats stats;
};

Cache &
cache()
{
    static Cache c;
    return c;
}

} // namespace

std::shared_ptr<const CompiledWorkload>
WorkloadCache::get(const std::string &app, const AppParams &p)
{
    Cache &c = cache();
    std::promise<std::shared_ptr<const CompiledWorkload>> promise;
    std::shared_future<std::shared_ptr<const CompiledWorkload>> fut;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(c.mu);
        auto [it, inserted] =
            c.entries.try_emplace(makeKey(app, p), promise.get_future());
        if (inserted) {
            owner = true;
            ++c.stats.generations;
        }
        fut = it->second;
    }
    if (owner) {
        try {
            const auto t0 = Clock::now();
            auto cw = std::make_shared<const CompiledWorkload>(
                makeApp(app, p), AddrMap(p.proto));
            const double secs =
                std::chrono::duration<double>(Clock::now() - t0).count();
            {
                std::lock_guard<std::mutex> lock(c.mu);
                c.stats.genSeconds += secs;
            }
            promise.set_value(std::move(cw));
        } catch (...) {
            // Unpublish before handing the failure to the waiters
            // already blocked on the future: once the entry is gone,
            // no later requester can inherit the broken future (they
            // re-insert and retry as owners). The generation stays
            // counted -- it really ran -- and the failure is tallied
            // separately so the sweep JSON counters stay consistent.
            {
                std::lock_guard<std::mutex> lock(c.mu);
                c.entries.erase(makeKey(app, p));
                ++c.stats.failures;
            }
            promise.set_exception(std::current_exception());
            throw;
        }
    }
    // A hit is a request the cache actually served: count it only
    // once the shared future delivers a workload, so waiters that
    // inherit the owner's exception (they rethrow here and retry)
    // never inflate the counter.
    auto cw = fut.get();
    if (!owner) {
        std::lock_guard<std::mutex> lock(c.mu);
        ++c.stats.hits;
    }
    return cw;
}

WorkloadCacheStats
WorkloadCache::stats()
{
    Cache &c = cache();
    std::lock_guard<std::mutex> lock(c.mu);
    return c.stats;
}

void
WorkloadCache::clear()
{
    Cache &c = cache();
    std::lock_guard<std::mutex> lock(c.mu);
    c.entries.clear();
    c.stats = WorkloadCacheStats{};
}

} // namespace mspdsm
