#include "harness/experiment.hh"

namespace mspdsm
{

namespace
{

AppParams
toAppParams(const ExperimentConfig &ec)
{
    AppParams p;
    p.numProcs = ec.numProcs;
    p.scale = ec.scale;
    p.iterations = ec.iterations;
    p.seed = ec.seed;
    return p;
}

DsmConfig
baseConfig(const ExperimentConfig &ec, const Workload &w)
{
    DsmConfig cfg;
    cfg.proto.numNodes = ec.numProcs;
    cfg.proto.seed = ec.seed;
    cfg.proto.netJitter = w.netJitter;
    if (ec.tickLimit)
        cfg.tickLimit = ec.tickLimit;
    return cfg;
}

} // namespace

Workload
buildWorkload(const std::string &app, const ExperimentConfig &ec)
{
    return makeApp(app, toAppParams(ec));
}

RunResult
runAccuracy(const std::string &app, std::size_t depth,
            const ExperimentConfig &ec)
{
    const Workload w = buildWorkload(app, ec);
    DsmConfig cfg = baseConfig(ec, w);
    cfg.pred = PredKind::None;
    cfg.spec = SpecMode::None;
    cfg.observers = {{PredKind::Cosmos, depth},
                     {PredKind::Msp, depth},
                     {PredKind::Vmsp, depth}};
    DsmSystem sys(cfg);
    // A tripped deadlock guard (RunStatus::TickLimit) is reported
    // structurally: the sweep layer surfaces it in the summary table
    // and JSON record instead of a stderr warning.
    return sys.run(w.traces);
}

RunResult
runSpec(const std::string &app, SpecMode mode,
        const ExperimentConfig &ec)
{
    const Workload w = buildWorkload(app, ec);
    DsmConfig cfg = baseConfig(ec, w);
    cfg.pred = PredKind::Vmsp;
    cfg.historyDepth = 1;
    cfg.spec = mode;
    DsmSystem sys(cfg);
    return sys.run(w.traces);
}

} // namespace mspdsm
