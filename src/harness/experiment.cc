#include "harness/experiment.hh"

#include "harness/workload_cache.hh"

namespace mspdsm
{

namespace
{

AppParams
toAppParams(const ExperimentConfig &ec)
{
    AppParams p;
    p.numProcs = ec.numProcs;
    p.scale = ec.scale;
    p.iterations = ec.iterations;
    p.seed = ec.seed;
    // Generate for exactly the machine being simulated (makeApp
    // would grow a too-small geometry itself, but syncing here keeps
    // the workload-cache key and the run's AddrMap in exact
    // agreement, and differently-sized machines never share a
    // compiled workload).
    p.proto.numNodes = ec.numProcs;
    return p;
}

DsmConfig
baseConfig(const ExperimentConfig &ec, Tick netJitter)
{
    DsmConfig cfg;
    cfg.proto.numNodes = ec.numProcs;
    cfg.proto.seed = ec.seed;
    cfg.proto.netJitter = netJitter;
    cfg.proto.topo = ec.topo;
    if (ec.tickLimit)
        cfg.tickLimit = ec.tickLimit;
    cfg.retryLimit = ec.retryLimit;
    cfg.staleTimeout = ec.staleTimeout;
    if (ec.failNode != invalidNode) {
        cfg.faults.events.push_back(
            {ec.failTick, ec.failNode, FaultKind::Kill});
        if (ec.recoverTick > 0)
            cfg.faults.events.push_back(
                {ec.recoverTick, ec.failNode, FaultKind::Restart});
    }
    for (const FaultEvent &fe : ec.extraFaults)
        cfg.faults.events.push_back(fe);
    cfg.faults.linkLoss = ec.linkLoss;
    if (!cfg.faults.empty()) {
        // Plan-wide knobs only matter once something above made the
        // plan non-empty; setting them on an empty plan is still
        // inert (FaultManager is never built).
        cfg.faults.backup = ec.backupNode;
        cfg.faults.warmRestart = ec.warmRestart;
        cfg.faults.ckptInterval = ec.ckptInterval;
        cfg.faults.replicateShards = ec.replicateShards;
        cfg.faults.retransmitBudget = ec.retransmitBudget;
        cfg.faults.retransmitDelay = ec.retransmitDelay;
    }
    cfg.obs.tracePath = ec.tracePath;
    cfg.obs.traceFrom = ec.traceFrom;
    cfg.obs.traceTo = ec.traceTo;
    cfg.obs.sampleInterval = ec.sampleInterval;
    return cfg;
}

} // namespace

Workload
buildWorkload(const std::string &app, const ExperimentConfig &ec)
{
    return makeApp(app, toAppParams(ec));
}

RunResult
runAccuracy(const std::string &app, std::size_t depth,
            const ExperimentConfig &ec)
{
    // One immutable compiled workload per (app, params), shared by
    // every run of a sweep -- fig8's three depths, table3's learning
    // curves -- instead of regenerating per configuration.
    const auto cw = WorkloadCache::get(app, toAppParams(ec));
    DsmConfig cfg = baseConfig(ec, cw->netJitter());
    cfg.pred = PredKind::None;
    cfg.spec = SpecMode::None;
    cfg.observers = {{PredKind::Cosmos, depth},
                     {PredKind::Msp, depth},
                     {PredKind::Vmsp, depth}};
    DsmSystem sys(cfg);
    // A tripped deadlock guard (RunStatus::TickLimit) is reported
    // structurally: the sweep layer surfaces it in the summary table
    // and JSON record instead of a stderr warning.
    return sys.run(*cw);
}

RunResult
runSpec(const std::string &app, SpecMode mode,
        const ExperimentConfig &ec)
{
    const auto cw = WorkloadCache::get(app, toAppParams(ec));
    DsmConfig cfg = baseConfig(ec, cw->netJitter());
    cfg.pred = PredKind::Vmsp;
    cfg.historyDepth = 1;
    cfg.spec = mode;
    DsmSystem sys(cfg);
    return sys.run(*cw);
}

} // namespace mspdsm
