#include "harness/experiment.hh"

#include <iostream>

namespace mspdsm
{

namespace
{

/**
 * Surface a tripped deadlock guard: sweep binaries keep running the
 * remaining configurations, but a run whose statistics are a partial
 * snapshot must never be published silently.
 */
RunResult
checkedRun(DsmSystem &sys, const Workload &w, const std::string &app)
{
    RunResult r = sys.run(w.traces);
    if (!r.completed()) {
        std::cerr << "WARNING: " << app
                  << " hit the tick limit (deadlock guard); "
                     "results below are partial\n";
    }
    return r;
}

AppParams
toAppParams(const ExperimentConfig &ec)
{
    AppParams p;
    p.numProcs = ec.numProcs;
    p.scale = ec.scale;
    p.iterations = ec.iterations;
    p.seed = ec.seed;
    return p;
}

DsmConfig
baseConfig(const ExperimentConfig &ec, const Workload &w)
{
    DsmConfig cfg;
    cfg.proto.numNodes = ec.numProcs;
    cfg.proto.seed = ec.seed;
    cfg.proto.netJitter = w.netJitter;
    return cfg;
}

} // namespace

Workload
buildWorkload(const std::string &app, const ExperimentConfig &ec)
{
    return makeApp(app, toAppParams(ec));
}

RunResult
runAccuracy(const std::string &app, std::size_t depth,
            const ExperimentConfig &ec)
{
    const Workload w = buildWorkload(app, ec);
    DsmConfig cfg = baseConfig(ec, w);
    cfg.pred = PredKind::None;
    cfg.spec = SpecMode::None;
    cfg.observers = {{PredKind::Cosmos, depth},
                     {PredKind::Msp, depth},
                     {PredKind::Vmsp, depth}};
    DsmSystem sys(cfg);
    return checkedRun(sys, w, app);
}

RunResult
runSpec(const std::string &app, SpecMode mode,
        const ExperimentConfig &ec)
{
    const Workload w = buildWorkload(app, ec);
    DsmConfig cfg = baseConfig(ec, w);
    cfg.pred = PredKind::Vmsp;
    cfg.historyDepth = 1;
    cfg.spec = mode;
    DsmSystem sys(cfg);
    return checkedRun(sys, w, app);
}

} // namespace mspdsm
