#include "net/network.hh"

#include <algorithm>

#include "base/logging.hh"
#include "dsm/cache.hh"
#include "dsm/directory.hh"
#include "dsm/fault.hh"
#include "obs/obs.hh"

namespace mspdsm
{

Network::Network(EventQueue &eq, const ProtoConfig &cfg, Rng rng)
    : eq_(eq), cfg_(cfg), rng_(rng),
      jitter_(0, cfg.netJitter),
      topo_(cfg),
      sinks_(cfg.numNodes),
      egressFree_(cfg.numNodes, 0),
      ingressFree_(cfg.numNodes, 0),
      linkFree_(topo_.numLinks(), 0),
      pairLast_(std::size_t{cfg.numNodes} * cfg.numNodes, 0),
      ingress_(cfg.numNodes)
{
    for (NodeId n = 0; n < cfg.numNodes; ++n) {
        ingress_[n].drain.net = this;
        ingress_[n].drain.node = n;
    }
    localFlush_.net = this;
}

void
Network::attach(NodeId n, CacheCtrl &cache, Directory &dir)
{
    panic_if(n >= sinks_.size(), "attach: node ", n, " out of range");
    sinks_[n] = Sink{&cache, &dir, nullptr, nullptr};
}

void
Network::attach(NodeId n, RawDeliver fn, void *ctx)
{
    panic_if(n >= sinks_.size(), "attach: node ", n, " out of range");
    panic_if(!fn, "attach: null delivery hook for node ", n);
    sinks_[n] = Sink{nullptr, nullptr, fn, ctx};
}

void
Network::ReadyRing::grow()
{
    std::vector<ReadyMsg> bigger(buf_.empty() ? 8 : buf_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i)
        bigger[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    buf_.swap(bigger);
    head_ = 0;
}

void
Network::deliver(const CohMsg &msg, Tick base)
{
    // Before the fault screens: a message dropped or bounced below
    // still physically reached this NI, and the tracer's per-pair
    // pairing state must advance for every transmission it recorded
    // a send for.
    if (obs_) [[unlikely]]
        obs_->msgDelivered(msg, base);
    if (faults_) [[unlikely]] {
        // Epoch screen: a message stamped before its sender's crash
        // must not mutate post-recovery state. Dropping it here --
        // the single delivery funnel for both the evented and the
        // fused paths -- is what makes "all in-flight traffic of the
        // victim is lost" an invariant rather than a per-handler
        // case analysis.
        if (msg.srcEpoch != faults_->epoch(msg.src)) {
            faults_->noteStaleDropped();
            return;
        }
        if (faults_->dead(msg.dst)) {
            if (isRequest(msg.type)) {
                // Bounce requests so the sender's retry FSM backs
                // off and re-resolves the (re-homed) home instead of
                // waiting out its full timeout. The Nack is sent as
                // the dead node with its *current* epoch, so it
                // passes the stale screen above.
                faults_->noteNackSent();
                CohMsg nack;
                nack.type = MsgType::Nack;
                nack.src = msg.dst;
                nack.dst = msg.src;
                nack.blk = msg.blk;
                sendAt(base, nack);
            } else {
                faults_->noteDeadDropped();
            }
            return;
        }
        if (routesToDirectory(msg.type) &&
            faults_->currentHome(msg.blk) != msg.dst) {
            // Home screen: the indirection table swung (re-home,
            // cascade, or fail-back) while this message was in
            // flight, so the destination directory no longer hosts
            // the block's shard. Requests bounce (the sender's retry
            // FSM re-resolves the home); acks and writebacks for the
            // abandoned transaction vanish.
            if (isRequest(msg.type)) {
                faults_->noteNackSent();
                CohMsg nack;
                nack.type = MsgType::Nack;
                nack.src = msg.dst;
                nack.dst = msg.src;
                nack.blk = msg.blk;
                sendAt(base, nack);
            } else {
                faults_->noteMisrouted();
            }
            return;
        }
    }
    const Sink &s = sinks_[msg.dst];
    if (s.cache) [[likely]] {
        // A full node: route by message type. Requests and
        // acknowledgements go to the home directory, commands and
        // data responses to the cache controller.
        if (routesToDirectory(msg.type))
            s.dir->handle(msg, base);
        else
            s.cache->handle(msg, base);
        return;
    }
    s.fn(s.ctx, msg);
}

void
Network::sendAt(Tick base, CohMsg msg)
{
    sendImpl(base, msg, 0);
}

void
Network::sendImpl(Tick base, CohMsg msg, unsigned attempt)
{
    panic_if(msg.src >= cfg_.numNodes || msg.dst >= cfg_.numNodes,
             "send: bad endpoints in ", msg.toString());
    panic_if(!sinks_[msg.dst].attached(), "send: node ", msg.dst,
             " has no sink");
    panic_if(base < eq_.curTick(), "sendAt: base tick in the past");
    if (faults_ && attempt == 0) [[unlikely]]
        msg.srcEpoch = faults_->epoch(msg.src);
    sent_.inc();

    const Tick now = base;

    if (msg.src == msg.dst) {
        // Local traffic (processor to its own home directory and
        // back) crosses only the node's bus. Deliberately NOT fused:
        // a sender may have logically-earlier work left after this
        // call (a directory grant sends its reply before its SWI
        // bookkeeping sends a recall), and an inline delivery here
        // could run a whole downstream chain ahead of it. Deliveries
        // only fuse where the caller stack is empty -- the drain
        // dispatch.
        const LocalPending p{now + 1, pushSeq_++, msg};
        if (localQ_.size() > localHead_ && p.due < localQ_.back().due)
            [[unlikely]] {
            // Out-of-order push: an on-the-clock sender slipped under
            // locals queued by a fused sender running ahead of it.
            // Insert in (due, seq) order -- seq ties are impossible
            // (pushSeq_ is unique and increasing), and equal dues
            // sort the newcomer after, so scanning on strict due
            // keeps the order stable.
            auto it = localQ_.end();
            const auto first = localQ_.begin() +
                               static_cast<std::ptrdiff_t>(localHead_);
            while (it != first && p.due < (it - 1)->due)
                --it;
            localQ_.insert(it, p);
        } else {
            localQ_.push_back(p);
        }
        if (obs_) [[unlikely]]
            obs_->msgSent(msg, now, now + 1);
        armLocal(now + 1);
        return;
    }

    const Tick occ = carriesData(msg.type) ? cfg_.niData
                                           : cfg_.niControl;

    // Egress NI: serialize injection.
    const Tick inject_start = std::max(now, egressFree_[msg.src]);
    queued_.inc(inject_start - now);
    const Tick departure = inject_start + occ;
    egressFree_[msg.src] = departure;

    // Flight time: the topology's route. A crossbar route is a
    // dedicated path (zero shared links, flat netLatency); a link
    // route walks its hops in order, the message head contending for
    // each link as it goes. Links, like the egress NI, reserve in
    // *injection* order right here in sendAt -- on the clock or
    // fused-ahead, the reservation sequence is the sendAt call
    // sequence, which fusion never reorders (the fusion-exactness
    // invariant), so link state evolves identically either way.
    const Topology::Route &rt = topo_.route(msg.src, msg.dst);
    Tick head = departure;
    if (rt.hops == 0) [[likely]] {
        head += rt.flight;
    } else {
        // Cut-through: the head moves on after the hop's wire
        // latency while the link stays occupied for the message's
        // transfer time, serializing any later message's head.
        const LinkId *ls = topo_.links(rt);
        const Tick lat = topo_.linkLatency();
        for (std::uint16_t h = 0; h < rt.hops; ++h) {
            const Tick start = std::max(head, linkFree_[ls[h]]);
            linkQueued_.inc(start - head);
            linkFree_[ls[h]] = start + occ;
            if (loss_ && lossDropped(ls[h], start)) [[unlikely]] {
                // The transmission occupied every link up to and
                // including the drop point; those reservations stand.
                // It never arrives, so no jitter draw and no pair-FIFO
                // clamp -- point-to-point order across a drop is NOT
                // preserved, which is exactly the reordering the
                // epoch/Nack-retry FSMs must already tolerate.
                dropTransmission(msg, attempt, start);
                return;
            }
            head = start + lat;
        }
    }

    // Queueing jitter on top. Point-to-point order between one
    // (src,dst) pair is preserved by clamping arrival times to be
    // monotone per pair -- a property the protocol relies on (e.g. a
    // data grant must not be overtaken by a subsequent recall from
    // the same home). Messages from *different* sources still race.
    Tick arrival = head;
    if (cfg_.netJitter > 0)
        arrival += jitter_(rng_);
    const std::size_t pair = msg.src * cfg_.numNodes + msg.dst;
    if (arrival <= pairLast_[pair])
        arrival = pairLast_[pair] + 1;
    pairLast_[pair] = arrival;

    // Hand the message to the destination's ingress FIFO. Its drain
    // event books the ingress NI in (arrival, push seq) order -- the
    // exact firing order of the retired per-message arrival events --
    // and delivers; no per-message event is scheduled at all.
    if (obs_) [[unlikely]]
        obs_->msgSent(msg, now, arrival);
    pushIngress(msg.dst, arrival, msg);
}

void
Network::setLinkLoss(const std::vector<LinkLossRule> &rules,
                     unsigned budget, Tick delay)
{
    if (rules.empty())
        return;
    fatal_if(topo_.numLinks() == 0,
             "link-loss rules need a link topology; the crossbar has "
             "no shared links to drop on");
    fatal_if(budget == 0, "transport retransmit budget must be >= 1");
    fatal_if(delay == 0, "transport retransmit delay must be >= 1");
    loss_ = std::make_unique<LossState>();
    loss_->budget = budget;
    loss_->delay = delay;
    loss_->rules.reserve(rules.size());
    for (const LinkLossRule &r : rules) {
        fatal_if(r.everyNth == 0,
                 "link-loss rule with everyNth == 0 (use no rule "
                 "instead of a never-firing one)");
        fatal_if(r.link >= topo_.numLinks(), "link-loss rule names "
                 "link ", r.link, " but the topology has only ",
                 topo_.numLinks());
        fatal_if(r.from >= r.to, "link-loss rule window [", r.from,
                 ", ", r.to, ") is empty");
        loss_->rules.push_back({r.from, r.to, r.link, r.everyNth});
    }
}

std::uint64_t
Network::linkDrops() const
{
    return loss_ ? loss_->drops.value() : 0;
}

std::uint64_t
Network::retransmits() const
{
    return loss_ ? loss_->resends.value() : 0;
}

bool
Network::lossDropped(std::uint32_t link, Tick start)
{
    bool drop = false;
    for (LossState::Rule &r : loss_->rules) {
        if (r.link != link || start < r.from || start >= r.to)
            continue;
        if (++r.crossings % r.everyNth == 0)
            drop = true;
    }
    return drop;
}

void
Network::dropTransmission(const CohMsg &msg, unsigned attempt, Tick when)
{
    loss_->drops.inc();
    fatal_if(attempt + 1 >= loss_->budget,
             "transport: retransmit budget (", loss_->budget,
             ") exhausted for ", msg.toString(),
             " -- the loss schedule starves this flow");
    RetransmitEvent *ev = loss_->freeList;
    if (ev)
        loss_->freeList = ev->nextFree;
    else
        ev = &loss_->pool.emplace_back();
    ev->net = this;
    ev->msg = msg;
    ev->attempt = attempt + 1;
    eq_.schedule(when + loss_->delay, *ev);
}

void
Network::RetransmitEvent::process()
{
    net->retransmitFired(*this);
}

void
Network::retransmitFired(RetransmitEvent &ev)
{
    const CohMsg msg = ev.msg;
    const unsigned attempt = ev.attempt;
    ev.nextFree = loss_->freeList;
    loss_->freeList = &ev;
    loss_->resends.inc();
    sendImpl(eq_.curTick(), msg, attempt);
}

void
Network::pushIngress(NodeId dst, Tick arrival, const CohMsg &msg)
{
    NodeIngress &in = ingress_[dst];

    if (in.slotValid && arrival < in.slotArrival) [[unlikely]] {
        // Undercut: the optimistic reservation below went to the
        // wrong message. Unwind it -- restore the NI horizon and the
        // queueing cycles it booked, and put its message back among
        // the unreserved arrivals under its original (arrival, seq)
        // key -- then let the canonical path below re-order both
        // messages. The slot is always the ready tail while valid
        // (reserveHead retires it before stacking anything on top),
        // so dropping the tail removes exactly the speculative entry.
        ingressFree_[dst] = in.slotPrevFree;
        queued_.dec(in.slotQueued);
        in.pq.push_back(
            Pending{in.slotArrival, in.slotSeq, in.ready.back().msg});
        std::push_heap(in.pq.begin(), in.pq.end(), PendingLater{});
        in.ready.popBack();
        in.slotValid = false;
    }

    if (in.pq.empty() && !in.slotValid) {
        // Optimistic single-slot reservation -- the dense-run common
        // case (the overwhelming share of arrivals find their
        // destination otherwise quiet). Reserve immediately, with no
        // heap round trip and no event-horizon guard: the
        // reservation arithmetic depends only on per-destination
        // order, so it is exact unless a later send undercuts this
        // arrival -- and the rollback above restores state
        // bit-for-bit, so being wrong costs an unwind instead of
        // every fast push costing a proof. Raw-sink destinations get
        // the same treatment: the final reservation order is strict
        // (arrival, seq) either way, so the cross-source jitter
        // races tests drive through raw hooks are preserved.
        const Tick occ = carriesData(msg.type) ? cfg_.niData
                                               : cfg_.niControl;
        in.slotValid = true;
        in.slotArrival = arrival;
        in.slotPrevFree = ingressFree_[dst];
        in.slotQueued =
            std::max(arrival, in.slotPrevFree) - arrival;
        in.slotSeq = pushSeq_++;
        in.ready.push(reserveIngress(dst, arrival, occ), msg);
    } else {
        in.pq.push_back(Pending{arrival, pushSeq_++, msg});
        std::push_heap(in.pq.begin(), in.pq.end(), PendingLater{});
        // Send-time early reservation -- the retired fused-send
        // elision: when the guard proves nothing can fire at or
        // before the head's arrival, no later send can undercut it,
        // so its reservation can run right now and the drain wakes
        // at the *delivery* tick directly. Not while a live slot
        // sits at the ready tail, though: reserveHead would stack a
        // canonical reservation on top of a speculative one and
        // break the rollback; the drain's catch-up sweep retires the
        // slot the moment its arrival passes.
        if (!in.slotValid)
            while (!in.pq.empty() && fusible(dst)
                   && eq_.canFuseBefore(in.pq.front().arrival))
                reserveHead(dst, in);
    }

    // Keep the node's next *delivery* visible: the head reserved
    // delivery when one is in flight, else the pending head's
    // projected delivery tick. Unreserved arrivals need no wake of
    // their own -- reservation is deferred arithmetic that the
    // delivery dispatch batches, and if a later send undercuts the
    // head this very function re-publishes the earlier tick. Inside
    // this destination's own drain loop the bound goes to the fusion
    // floor (the loop re-arms the drain itself on exit); otherwise
    // the drain is armed, where the max() only matters after an
    // external deschedule (the fault-suite scenario): this push
    // heals it.
    const Tick next = !in.ready.empty() ? in.ready.front().delivered
                                        : projectedDelivery(dst, in);
    if (dst == draining_) {
        if (next < eq_.fuseFloor())
            eq_.setFuseFloor(next);
    } else {
        armDrain(in, std::max(next, eq_.curTick()));
    }
}

void
Network::reserveHead(NodeId n, NodeIngress &in)
{
    // A canonical reservation stacking on top retires the optimistic
    // slot. Every caller reaching here with a live slot has the
    // pending head's arrival in the past (the drain's catch-up
    // sweep), and pq arrivals never undercut a live slot (such a
    // push unwinds it first), so the slot's own arrival is in the
    // past too -- beyond any future send's reach.
    in.slotValid = false;
    const Pending &p = in.pq.front();
    const Tick occ = carriesData(p.msg.type) ? cfg_.niData
                                             : cfg_.niControl;
    in.ready.push(reserveIngress(n, p.arrival, occ), p.msg);
    std::pop_heap(in.pq.begin(), in.pq.end(), PendingLater{});
    in.pq.pop_back();
}

void
Network::drainFired(NodeId n)
{
    NodeIngress &in = ingress_[n];
    const Tick curT = eq_.curTick();
    Tick now = curT;
    // The drain event is off the queue for the whole loop (it just
    // fired, and pushIngress routes this node's bound to the fusion
    // floor while draining_ names it). Re-arming it around every
    // delivery cost a schedule/deschedule pair per message and
    // invalidated the queue's min-memo each time -- the floor gives
    // the guards the identical bound for one store.
    draining_ = n;
    for (;;) {
        // Batched ingress reservation: book the NI for every arrival
        // whose time has come, in (arrival, push seq) order. During a
        // backlog this folds what used to be one arrival event per
        // message into the delivery dispatch they queued behind.
        while (!in.pq.empty() && in.pq.front().arrival <= now)
            reserveHead(n, in);

        if (in.ready.empty()) {
            if (in.pq.empty())
                break; // idle: the next push re-arms the drain
            const Tick a = in.pq.front().arrival; // > now
            if (!eq_.canFuseBefore(a)) {
                // Sleep straight to the head's projected delivery
                // tick; pushIngress re-arms earlier if a later send
                // undercuts the head. The projection sits past a,
                // hence past now and curT -- no clamp needed.
                armDrain(in, projectedDelivery(n, in));
                break;
            }
            // Nothing can fire at or before a, so no send -- on the
            // clock or fused ahead of it -- can beat this arrival to
            // the NI: reserve it now and sleep straight through to
            // its delivery tick (the retired fused-send elision,
            // generalized to every quiet arrival).
            reserveHead(n, in);
            continue;
        }

        const Tick d = in.ready.front().delivered;
        if (d > now) {
            // Fuse the delivery inline at base d if its window is
            // event-free. The drain itself is off the queue, so the
            // guard answers about foreign events only -- no
            // deschedule dance around its own arm.
            if (!(fusible(n) && eq_.canFuseBeforeExact(d))) {
                armDrain(in, d);
                break;
            }
            // The occupancy window is event-free: deliver inline at
            // base d instead of sleeping to it (the retired
            // arrival-stage fusion, now chaining across deliveries).
            eq_.noteFused(d);
            now = d;
        }

        // Deliver the head. Copy and pop first -- the handler may
        // send to this very node -- and publish the node's next
        // action on the fusion floor *before* handing control away,
        // so every other component's fusion guard sees this node's
        // pending work (the visibility invariant; ARCHITECTURE.md,
        // "Batched NI drain").
        const CohMsg msg = in.ready.front().msg;
        in.ready.pop();
        if (in.ready.empty())
            in.slotValid = false; // the slot (ready tail) delivered
        const Tick next = !in.ready.empty()
                              ? in.ready.front().delivered
                              : (!in.pq.empty()
                                     ? projectedDelivery(n, in)
                                     : maxTick);
        eq_.setFuseFloor(next);
        if (now > curT) {
            FuseScope scope(this);
            deliver(msg, d);
        } else {
            deliver(msg, d);
        }
        eq_.setFuseFloor(maxTick);
        // Loop on: the handler may have queued more work for this
        // node, and further due or fusible deliveries fold into this
        // same dispatch instead of costing one each.
    }
    draining_ = noNode;
}

void
Network::localFlushFired()
{
    // Deliver everything due on this tick in (due, seq) order -- the
    // same order the retired per-message events fired in for any one
    // node's stream. Handlers may push new locals mid-loop; those are
    // due next tick at the earliest and never fold into this flush.
    // Copy-then-index throughout: deliver() can push new locals,
    // which may insert into (and reallocate) the suffix under us.
    const Tick now = eq_.curTick();
    while (localHead_ < localQ_.size() && localQ_[localHead_].due <= now) {
        const CohMsg msg = localQ_[localHead_].msg;
        ++localHead_;
        deliver(msg, now);
    }
    if (localHead_ == localQ_.size()) {
        localQ_.clear(); // keeps capacity: steady state allocates nothing
        localHead_ = 0;
    } else {
        if (localHead_ >= 64) {
            // Backstop for a queue that never fully drains: slide
            // the live suffix down so the flushed prefix cannot grow
            // without bound.
            localQ_.erase(localQ_.begin(),
                          localQ_.begin() +
                              static_cast<std::ptrdiff_t>(localHead_));
            localHead_ = 0;
        }
        armLocal(localQ_[localHead_].due);
    }
}

} // namespace mspdsm
