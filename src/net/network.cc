#include "net/network.hh"

#include <algorithm>

#include "base/logging.hh"
#include "dsm/cache.hh"
#include "dsm/directory.hh"
#include "dsm/fault.hh"

namespace mspdsm
{

Network::Network(EventQueue &eq, const ProtoConfig &cfg, Rng rng)
    : eq_(eq), cfg_(cfg), rng_(rng),
      jitter_(0, cfg.netJitter),
      topo_(cfg),
      sinks_(cfg.numNodes),
      egressFree_(cfg.numNodes, 0),
      ingressFree_(cfg.numNodes, 0),
      linkFree_(topo_.numLinks(), 0),
      pairLast_(std::size_t{cfg.numNodes} * cfg.numNodes, 0)
{
}

void
Network::attach(NodeId n, CacheCtrl &cache, Directory &dir)
{
    panic_if(n >= sinks_.size(), "attach: node ", n, " out of range");
    sinks_[n] = Sink{&cache, &dir, nullptr, nullptr};
}

void
Network::attach(NodeId n, RawDeliver fn, void *ctx)
{
    panic_if(n >= sinks_.size(), "attach: node ", n, " out of range");
    panic_if(!fn, "attach: null delivery hook for node ", n);
    sinks_[n] = Sink{nullptr, nullptr, fn, ctx};
}

void
Network::deliver(const CohMsg &msg, Tick base)
{
    if (faults_) [[unlikely]] {
        // Epoch screen: a message stamped before its sender's crash
        // must not mutate post-recovery state. Dropping it here --
        // the single delivery funnel for both the evented and the
        // fused paths -- is what makes "all in-flight traffic of the
        // victim is lost" an invariant rather than a per-handler
        // case analysis.
        if (msg.srcEpoch != faults_->epoch(msg.src)) {
            faults_->noteStaleDropped();
            return;
        }
        if (faults_->dead(msg.dst)) {
            if (isRequest(msg.type)) {
                // Bounce requests so the sender's retry FSM backs
                // off and re-resolves the (re-homed) home instead of
                // waiting out its full timeout. The Nack is sent as
                // the dead node with its *current* epoch, so it
                // passes the stale screen above.
                faults_->noteNackSent();
                CohMsg nack;
                nack.type = MsgType::Nack;
                nack.src = msg.dst;
                nack.dst = msg.src;
                nack.blk = msg.blk;
                sendAt(base, nack);
            } else {
                faults_->noteDeadDropped();
            }
            return;
        }
    }
    const Sink &s = sinks_[msg.dst];
    if (s.cache) [[likely]] {
        // A full node: route by message type. Requests and
        // acknowledgements go to the home directory, commands and
        // data responses to the cache controller.
        if (routesToDirectory(msg.type))
            s.dir->handle(msg, base);
        else
            s.cache->handle(msg, base);
        return;
    }
    s.fn(s.ctx, msg);
}

void
Network::sendAt(Tick base, CohMsg msg)
{
    panic_if(msg.src >= cfg_.numNodes || msg.dst >= cfg_.numNodes,
             "send: bad endpoints in ", msg.toString());
    panic_if(!sinks_[msg.dst].attached(), "send: node ", msg.dst,
             " has no sink");
    panic_if(base < eq_.curTick(), "sendAt: base tick in the past");
    if (faults_) [[unlikely]]
        msg.srcEpoch = faults_->epoch(msg.src);
    sent_.inc();

    const Tick now = base;

    if (msg.src == msg.dst) {
        // Local traffic (processor to its own home directory and
        // back) crosses only the node's bus. Deliberately NOT fused:
        // a sender may have logically-earlier work left after this
        // call (a directory grant sends its reply before its SWI
        // bookkeeping sends a recall), and an inline delivery here
        // could run a whole downstream chain ahead of it. Deliveries
        // only fuse where the caller stack is empty -- the event
        // handler in fired().
        NetEvent &e = pool_.acquire(this);
        e.msg = msg;
        e.arrived = true; // straight to delivery
        eq_.schedule(now + 1, e);
        return;
    }

    const Tick occ = carriesData(msg.type) ? cfg_.niData
                                           : cfg_.niControl;

    // Egress NI: serialize injection.
    const Tick inject_start = std::max(now, egressFree_[msg.src]);
    queued_.inc(inject_start - now);
    const Tick departure = inject_start + occ;
    egressFree_[msg.src] = departure;

    // Flight time: the topology's route. A crossbar route is a
    // dedicated path (zero shared links, flat netLatency); a link
    // route walks its hops in order, the message head contending for
    // each link as it goes. Links, like the egress NI, reserve in
    // *injection* order right here in sendAt -- on the clock or
    // fused-ahead, the reservation sequence is the sendAt call
    // sequence, which fusion never reorders (the fusion-exactness
    // invariant), so link state evolves identically either way.
    const Topology::Route &rt = topo_.route(msg.src, msg.dst);
    Tick head = departure;
    if (rt.hops == 0) [[likely]] {
        head += rt.flight;
    } else {
        // Cut-through: the head moves on after the hop's wire
        // latency while the link stays occupied for the message's
        // transfer time, serializing any later message's head.
        const LinkId *ls = topo_.links(rt);
        const Tick lat = topo_.linkLatency();
        for (std::uint16_t h = 0; h < rt.hops; ++h) {
            const Tick start = std::max(head, linkFree_[ls[h]]);
            linkQueued_.inc(start - head);
            linkFree_[ls[h]] = start + occ;
            head = start + lat;
        }
    }

    // Queueing jitter on top. Point-to-point order between one
    // (src,dst) pair is preserved by clamping arrival times to be
    // monotone per pair -- a property the protocol relies on (e.g. a
    // data grant must not be overtaken by a subsequent recall from
    // the same home). Messages from *different* sources still race.
    Tick arrival = head;
    if (cfg_.netJitter > 0)
        arrival += jitter_(rng_);
    const std::size_t pair = msg.src * cfg_.numNodes + msg.dst;
    if (arrival <= pairLast_[pair])
        arrival = pairLast_[pair] + 1;
    pairLast_[pair] = arrival;

    // Ingress NI at the destination: reserve at *arrival* time so
    // that messages contend in arrival order. Reserving at send time
    // would force delivery in injection order and suppress exactly
    // the message re-ordering the predictors are sensitive to.
    //
    // Fused fast path: when nothing can fire at or before the
    // arrival, no other message can arrive (and hence reserve the
    // ingress NI) first, so the arrival-ordered reservation may
    // happen right now and the message rides a single delivery
    // event instead of an arrival stage plus a delivery stage. The
    // delivery itself stays an event (never inline from a send; see
    // the local-traffic comment above).
    if (fusible(msg.dst) && eq_.canFuseBefore(arrival)) {
        const Tick delivered = reserveIngress(msg.dst, arrival, occ);
        NetEvent &e = pool_.acquire(this);
        e.msg = msg;
        e.arrived = true;
        eq_.schedule(delivered, e);
        return;
    }
    NetEvent &e = pool_.acquire(this);
    e.msg = msg;
    e.occ = occ;
    e.arrived = false;
    eq_.schedule(arrival, e);
}

void
Network::fired(NetEvent &e)
{
    if (!e.arrived) {
        // Arrival at the destination's ingress NI: contend for it,
        // then ride the same event to the delivery tick.
        e.arrived = true;
        const Tick delivered =
            reserveIngress(e.msg.dst, eq_.curTick(), e.occ);
        if (fusible(e.msg.dst) && eq_.canFuseBefore(delivered)) {
            // Fused: the NI occupancy window is event-free, so the
            // delivery runs inline instead of re-riding the event.
            const CohMsg msg = e.msg;
            pool_.release(e);
            FuseScope scope(this);
            eq_.noteFused(delivered);
            deliver(msg, delivered);
            return;
        }
        eq_.schedule(delivered, e);
        return;
    }
    // Delivery. Copy the message and release the event first: the
    // handler may send again and reuse this very slot.
    const CohMsg msg = e.msg;
    pool_.release(e);
    deliver(msg, eq_.curTick());
}

} // namespace mspdsm
