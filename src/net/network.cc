#include "net/network.hh"

#include <algorithm>

#include "base/logging.hh"
#include "dsm/cache.hh"
#include "dsm/directory.hh"

namespace mspdsm
{

Network::Network(EventQueue &eq, const ProtoConfig &cfg, Rng rng)
    : eq_(eq), cfg_(cfg), rng_(rng),
      sinks_(cfg.numNodes),
      egressFree_(cfg.numNodes, 0),
      ingressFree_(cfg.numNodes, 0),
      pairLast_(std::size_t{cfg.numNodes} * cfg.numNodes, 0)
{
}

void
Network::attach(NodeId n, CacheCtrl &cache, Directory &dir)
{
    panic_if(n >= sinks_.size(), "attach: node ", n, " out of range");
    sinks_[n] = Sink{&cache, &dir, nullptr, nullptr};
}

void
Network::attach(NodeId n, RawDeliver fn, void *ctx)
{
    panic_if(n >= sinks_.size(), "attach: node ", n, " out of range");
    panic_if(!fn, "attach: null delivery hook for node ", n);
    sinks_[n] = Sink{nullptr, nullptr, fn, ctx};
}

void
Network::deliver(const CohMsg &msg)
{
    const Sink &s = sinks_[msg.dst];
    if (s.cache) [[likely]] {
        // A full node: route by message type. Requests and
        // acknowledgements go to the home directory, commands and
        // data responses to the cache controller.
        if (routesToDirectory(msg.type))
            s.dir->handle(msg);
        else
            s.cache->handle(msg);
        return;
    }
    s.fn(s.ctx, msg);
}

void
Network::send(CohMsg msg)
{
    panic_if(msg.src >= cfg_.numNodes || msg.dst >= cfg_.numNodes,
             "send: bad endpoints in ", msg.toString());
    panic_if(!sinks_[msg.dst].attached(), "send: node ", msg.dst,
             " has no sink");
    sent_.inc();

    const Tick now = eq_.curTick();

    if (msg.src == msg.dst) {
        // Local traffic (processor to its own home directory and
        // back) crosses only the node's bus.
        NetEvent &e = pool_.acquire(this);
        e.msg = msg;
        e.arrived = true; // straight to delivery
        eq_.schedule(now + 1, e);
        return;
    }

    const Tick occ = carriesData(msg.type) ? cfg_.niData
                                           : cfg_.niControl;

    // Egress NI: serialize injection.
    const Tick inject_start = std::max(now, egressFree_[msg.src]);
    queued_.inc(inject_start - now);
    const Tick departure = inject_start + occ;
    egressFree_[msg.src] = departure;

    // Flight time plus queueing jitter. Point-to-point order between
    // one (src,dst) pair is preserved by clamping arrival times to be
    // monotone per pair -- a property the protocol relies on (e.g. a
    // data grant must not be overtaken by a subsequent recall from
    // the same home). Messages from *different* sources still race.
    Tick flight = cfg_.netLatency;
    if (cfg_.netJitter > 0)
        flight += rng_.uniform(0, cfg_.netJitter);
    Tick arrival = departure + flight;
    const std::size_t pair = msg.src * cfg_.numNodes + msg.dst;
    if (arrival <= pairLast_[pair])
        arrival = pairLast_[pair] + 1;
    pairLast_[pair] = arrival;

    // Ingress NI at the destination: reserve at *arrival* time so
    // that messages contend in arrival order. Reserving at send time
    // would force delivery in injection order and suppress exactly
    // the message re-ordering the predictors are sensitive to.
    NetEvent &e = pool_.acquire(this);
    e.msg = msg;
    e.occ = occ;
    e.arrived = false;
    eq_.schedule(arrival, e);
}

void
Network::fired(NetEvent &e)
{
    if (!e.arrived) {
        // Arrival at the destination's ingress NI: contend for it,
        // then ride the same event to the delivery tick.
        e.arrived = true;
        const Tick arr = eq_.curTick();
        const Tick start = std::max(arr, ingressFree_[e.msg.dst]);
        queued_.inc(start - arr);
        const Tick delivered = start + e.occ;
        ingressFree_[e.msg.dst] = delivered;
        eq_.schedule(delivered, e);
        return;
    }
    // Delivery. Copy the message and release the event first: the
    // handler may send again and reuse this very slot.
    const CohMsg msg = e.msg;
    pool_.release(e);
    deliver(msg);
}

} // namespace mspdsm
