/**
 * @file
 * Topology-parameterized interconnect with per-node network
 * interfaces.
 *
 * Contention is modelled at the network interfaces (the paper's
 * Section 6) and, on the link topologies, at the links themselves. We
 * model each node's NI as two serial resources (egress and ingress):
 * a message occupies the NI for niControl or niData cycles depending
 * on whether it carries a block. Flight time comes from the
 * ProtoConfig-selected Topology (src/topo/): the default crossbar
 * gives every pair a dedicated netLatency-cycle path -- exactly the
 * paper's constant-latency switched network -- while ring/mesh2d/
 * torus2d route each message over a deterministic sequence of links,
 * each a serial resource with per-hop wire latency, so flight time is
 * hop-composed and shared links queue. A bounded uniform jitter
 * representing residual switch/controller queueing tops off every
 * remote flight; jitter is what lets concurrently issued invalidation
 * acks arrive re-ordered.
 *
 * Local messages (src == dst, e.g. a processor accessing its own home
 * directory) bypass the NIs and the fabric and are delivered after a
 * single bus cycle.
 */

#ifndef MSPDSM_NET_NETWORK_HH
#define MSPDSM_NET_NETWORK_HH

#include <deque>
#include <memory>
#include <vector>

#include "base/random.hh"
#include "base/stats.hh"
#include "proto/config.hh"
#include "proto/msg.hh"
#include "sim/eventq.hh"
#include "topo/topology.hh"

namespace mspdsm
{

class CacheCtrl;
class Directory;
class FaultManager;
class ObsManager;
struct LinkLossRule;

/**
 * The interconnect. Owns no protocol state; it only moves CohMsg
 * values between nodes with appropriate delays.
 *
 * Remote message motion is *drain-batched*: each destination keeps an
 * arrival-ordered FIFO of in-flight messages, and a single
 * self-rescheduling drain event per node books the ingress NI for
 * every message whose arrival has come and delivers the due one --
 * O(busy periods) event dispatches instead of the former O(messages)
 * arrival+delivery pair per message. The drain is always scheduled at
 * or before the node's next delivery, so the fused fast paths'
 * canFuseBefore() horizon still sees every pending delivery (see
 * docs/ARCHITECTURE.md, "Batched NI drain"). Only local (src == dst)
 * messages still ride a pooled per-message event.
 *
 * Delivery is statically dispatched: a node attaches its concrete
 * cache controller and home directory, and the network routes each
 * delivered message by type (routesToDirectory()) with two direct
 * calls resolved at link time -- no std::function, no virtual call.
 * Tests and tools that are not a full node attach a raw function
 * pointer plus context instead.
 */
class Network
{
  public:
    /** Raw delivery hook (tests/tools): fn(ctx, msg) at delivery. */
    using RawDeliver = void (*)(void *ctx, const CohMsg &msg);

    /**
     * @param eq event queue driving the simulation
     * @param cfg machine configuration (latencies, node count)
     * @param rng dedicated random stream for jitter
     */
    Network(EventQueue &eq, const ProtoConfig &cfg, Rng rng);

    /**
     * Attach node @p n's protocol agents. Every node must be attached
     * (either overload) before the first send.
     */
    void attach(NodeId n, CacheCtrl &cache, Directory &dir);

    /** Attach a raw delivery hook for node @p n (tests/tools). */
    void attach(NodeId n, RawDeliver fn, void *ctx);

    /** Inject @p msg at its source NI at the current tick. */
    void send(CohMsg msg) { sendAt(eq_.curTick(), msg); }

    /**
     * Inject @p msg at its source NI at tick @p base >= curTick().
     * This is the fused-run fast path's injection point: a processor
     * executing ahead of the clock (legal only while no other event
     * can fire first, so no other send can interleave) issues its
     * next miss with the virtual issue tick as the injection base,
     * and every downstream time -- egress occupancy, flight, jitter
     * draw order, arrival -- comes out exactly as if the send had
     * happened on the clock.
     */
    void sendAt(Tick base, CohMsg msg);

    /** Messages sent so far. */
    std::uint64_t messagesSent() const { return sent_.value(); }

    /** Total cycles messages spent queued behind busy NIs. */
    std::uint64_t queueingCycles() const { return queued_.value(); }

    /** Total cycles message heads spent queued behind busy links
     * (always 0 on the crossbar, which has no shared links). */
    std::uint64_t linkQueueingCycles() const { return linkQueued_.value(); }

    /** The routing geometry in force (tests, experiments). */
    const Topology &topology() const { return topo_; }

    /**
     * Attach the fault layer (null in fault-free runs, the default).
     * With it attached, every send is stamped with its source's
     * restart epoch and every delivery is screened: stale-epoch
     * messages are dropped, messages to a dead node are dropped or
     * (for requests) bounced back as a Nack.
     */
    void setFaults(FaultManager *f) { faults_ = f; }

    /**
     * Node @p n's ingress drain event (tests). The fault suite pins
     * that a failover-style mass cancel cannot strand this node's
     * queued arrivals: the fault path never deschedules the drain,
     * and even a forced deschedule is healed by the next send.
     */
    Event &drainEvent(NodeId n) { return ingress_[n].drain; }

    /** In-flight remote messages bound for node @p n (tests). */
    std::size_t
    inFlightTo(NodeId n) const
    {
        return ingress_[n].pq.size() + ingress_[n].ready.size();
    }

    /**
     * Configure deterministic link loss plus the transport recovery
     * layer that makes it survivable (fault runs only; the rules come
     * from FaultPlan::linkLoss). Each rule drops every Nth message
     * head crossing one directed link inside a tick window; a dropped
     * transmission is re-injected at its source after @p delay cycles
     * and re-pays the full egress/link/ingress path. A message that
     * exceeds @p budget transmissions is fatal -- the schedule is a
     * test input, not weather, so exhaustion means the experiment is
     * misconfigured. Never call this on a fault-free run: the member
     * stays null and every send takes the unchecked path.
     */
    void setLinkLoss(const std::vector<LinkLossRule> &rules,
                     unsigned budget, Tick delay);

    /** Transmissions dropped by the loss schedule (0 when inert). */
    std::uint64_t linkDrops() const;

    /** Re-injections performed by the transport layer. */
    std::uint64_t retransmits() const;

    /**
     * Attach the observability layer (null in untraced runs, the
     * default). With it attached, every transmission that reaches its
     * destination's ingress reports its (send, arrival) pair, and
     * every delivery reports its base tick -- the tracer pairs the
     * two into flow arrows. Dropped transmissions never report a
     * send, so the pairing survives lossy links.
     */
    void setObs(ObsManager *o) { obs_ = o; }

  private:
    /**
     * Per-node delivery sink: either a (cache, directory) pair routed
     * by message type, or a raw hook. Resolved once at attach time.
     */
    struct Sink
    {
        CacheCtrl *cache = nullptr;
        Directory *dir = nullptr;
        RawDeliver fn = nullptr;
        void *ctx = nullptr;

        bool attached() const { return cache || fn; }
    };

    /**
     * One in-flight *local* message (src == dst): a single bus cycle
     * straight to delivery, no NI involvement. All nodes' local
     * traffic shares one due-ordered queue behind one flush event --
     * handlers running on the same tick across the machine each put
     * their loopback on the bus together, so flushing them in one
     * dispatch replaces the densest per-message event population left
     * after the ingress drain. Remote messages ride the
     * per-destination drain instead.
     */
    struct LocalPending
    {
        Tick due;
        std::uint64_t seq; //!< push order; breaks same-tick ties
        CohMsg msg;
    };

    /** The single machine-wide local-delivery flush event. */
    struct LocalFlushEvent final : public Event
    {
        void process() override { net->localFlushFired(); }

        Network *net = nullptr;
    };

    /** A remote message waiting for its ingress NI reservation. */
    struct Pending
    {
        Tick arrival;
        std::uint64_t seq; //!< global push order; breaks arrival ties
        CohMsg msg;
    };

    /** Min-heap order for Pending: earliest (arrival, seq) on top --
     * the same order the retired per-message arrival events fired in
     * (event-queue per-tick FIFO == schedule == push order). */
    struct PendingLater
    {
        bool
        operator()(const Pending &a, const Pending &b) const
        {
            if (a.arrival != b.arrival)
                return a.arrival > b.arrival;
            return a.seq > b.seq;
        }
    };

    /** A reserved message riding out its NI occupancy window. */
    struct ReadyMsg
    {
        Tick delivered;
        CohMsg msg;
    };

    /**
     * FIFO of reserved messages: reservations happen in arrival
     * order against a monotone ingressFree_, so delivery ticks are
     * nondecreasing front to back. A ring over a power-of-two vector;
     * it grows to the busy-period high-water mark once, then the
     * steady-state path is allocation-free.
     */
    class ReadyRing
    {
      public:
        bool empty() const { return count_ == 0; }
        std::size_t size() const { return count_; }
        const ReadyMsg &front() const { return buf_[head_]; }

        const ReadyMsg &
        back() const
        {
            return buf_[(head_ + count_ - 1) & (buf_.size() - 1)];
        }

        void
        push(Tick delivered, const CohMsg &msg)
        {
            if (count_ == buf_.size()) [[unlikely]]
                grow();
            buf_[(head_ + count_) & (buf_.size() - 1)] =
                ReadyMsg{delivered, msg};
            ++count_;
        }

        void
        pop()
        {
            head_ = (head_ + 1) & (buf_.size() - 1);
            --count_;
        }

        /** Drop the tail (optimistic-slot rollback only). */
        void popBack() { --count_; }

      private:
        void grow();

        std::vector<ReadyMsg> buf_;
        std::size_t head_ = 0;
        std::size_t count_ = 0;
    };

    /** The per-destination self-rescheduling drain event. */
    struct DrainEvent final : public Event
    {
        void process() override { net->drainFired(node); }

        Network *net = nullptr;
        NodeId node = 0;
    };

    /**
     * One destination's ingress state: unreserved arrivals ordered by
     * (arrival, push seq), reserved messages in delivery order, and
     * the drain event that works both down. Invariant outside a drain
     * dispatch: whenever either queue is non-empty, the drain is
     * scheduled at or before the node's next delivery.
     */
    struct NodeIngress
    {
        std::vector<Pending> pq; //!< binary heap (PendingLater)
        ReadyRing ready;
        DrainEvent drain;
        /**
         * Single-slot optimistic reservation (see pushIngress). While
         * set, the ready *tail* holds a reservation made without an
         * event-horizon proof; a later send undercutting slotArrival
         * unwinds it from these saved values. The slot retires --
         * becomes indistinguishable from a canonical reservation --
         * when a canonical reservation lands on top of it
         * (reserveHead, which only happens once its arrival is in
         * the past) or when it is popped for delivery.
         */
        bool slotValid = false;
        Tick slotArrival = 0;  //!< the speculative entry's arrival
        Tick slotPrevFree = 0; //!< ingressFree_ before it reserved
        Tick slotQueued = 0;   //!< queueing cycles it booked
        std::uint64_t slotSeq = 0; //!< its (arrival, seq) tie-break
    };

    /** Deliver every local message due this tick; re-arm at next. */
    void localFlushFired();

    /**
     * Arm the local flush for @p t, keeping an already-armed earlier
     * tick (same discipline as armDrain).
     */
    void
    armLocal(Tick t)
    {
        if (localFlush_.scheduled()) {
            if (localFlush_.when() <= t)
                return;
            eq_.deschedule(localFlush_);
        }
        eq_.schedule(t, localFlush_);
    }

    /** Enqueue a remote arrival and keep the drain invariant. */
    void pushIngress(NodeId dst, Tick arrival, const CohMsg &msg);

    /** The drain dispatch: batch reservations, deliver what is due. */
    void drainFired(NodeId n);

    /** Reserve the earliest pending arrival of @p in at node @p n. */
    void reserveHead(NodeId n, NodeIngress &in);

    /**
     * The delivery tick the pending head *will* get when reserved,
     * assuming no earlier arrival is pushed first: the same
     * max(arrival, ingressFree) + occupancy arithmetic reserveHead
     * performs, computed without committing it. Exact unless a later
     * send undercuts the head's arrival -- and pushIngress re-arms
     * the drain earlier whenever that happens, so the drain can
     * sleep straight through to this tick instead of waking at the
     * arrival first.
     */
    Tick
    projectedDelivery(NodeId n, const NodeIngress &in) const
    {
        const Pending &p = in.pq.front();
        const Tick occ = carriesData(p.msg.type) ? cfg_.niData
                                                 : cfg_.niControl;
        return std::max(p.arrival, ingressFree_[n]) + occ;
    }

    /**
     * Schedule the drain at @p t, keeping an already-armed earlier
     * tick (the drain never needs to fire later than any tick it is
     * already set for -- a too-early wake re-arms itself exactly).
     */
    void
    armDrain(NodeIngress &in, Tick t)
    {
        if (in.drain.scheduled()) {
            if (in.drain.when() <= t)
                return;
            eq_.deschedule(in.drain);
        }
        eq_.schedule(t, in.drain);
    }

    /**
     * Hand @p msg to its destination sink as of tick @p base
     * (defined in network.cc). @p base == curTick() when reached by
     * a delivery event, ahead of the clock on the fused fast path.
     */
    void deliver(const CohMsg &msg, Tick base);

    /**
     * True iff node @p n's sink may be driven ahead of the clock: a
     * full protocol node anchors all its timing on the base tick the
     * delivery hands it. Raw test hooks are excluded -- they are
     * entitled to read the clock -- so attaching one pins that node
     * to on-the-tick deliveries.
     *
     * The depth cap bounds fused *chains*: in a quiet system a local
     * transaction's delivery re-enters the processor, which issues
     * the next access, which delivers again -- recursion that could
     * otherwise walk an entire trace in one stack. Past the cap the
     * delivery falls back to the evented drain path, which is
     * behaviourally identical (that is the whole fusion invariant),
     * so the cap trades only constant factors, never results.
     */
    bool
    fusible(NodeId n) const
    {
        return sinks_[n].cache != nullptr && fuseDepth_ < maxFuseDepth;
    }

    /**
     * Contend for the destination's ingress NI as of @p arrival:
     * books the queueing delay and the occupancy window, and returns
     * the delivery tick. Pure arithmetic on (arrival, occ) and the
     * monotone ingressFree_ -- its result depends only on the
     * per-destination reservation *order*, never on the wall tick it
     * runs at, which is what lets the drain defer reservations and
     * batch them (the timing-equivalence argument in
     * docs/ARCHITECTURE.md).
     */
    Tick
    reserveIngress(NodeId dst, Tick arrival, Tick occ)
    {
        const Tick start = std::max(arrival, ingressFree_[dst]);
        queued_.inc(start - arrival);
        const Tick delivered = start + occ;
        ingressFree_[dst] = delivered;
        return delivered;
    }

    /**
     * One scheduled re-injection of a dropped transmission. Pooled
     * (with a free list) like the local-delivery events: loss runs
     * reach a steady state where the pool stops growing.
     */
    struct RetransmitEvent final : public Event
    {
        void process() override;

        Network *net = nullptr;
        CohMsg msg{};
        unsigned attempt = 0; //!< transmissions already burned
        RetransmitEvent *nextFree = nullptr;
    };

    /**
     * The loss schedule and the transport state recovering from it.
     * Allocated only by setLinkLoss; the null pointer is the
     * fault-free inertness guarantee (one branch per hop, no
     * arithmetic change).
     */
    struct LossState
    {
        /** A LinkLossRule plus its live crossing counter. */
        struct Rule
        {
            Tick from;
            Tick to;
            std::uint32_t link;
            unsigned everyNth;
            std::uint64_t crossings = 0; //!< matched heads so far
        };

        std::vector<Rule> rules;
        unsigned budget = 8; //!< max transmissions per message
        Tick delay = 400;    //!< drop-to-reinjection latency
        std::deque<RetransmitEvent> pool;
        RetransmitEvent *freeList = nullptr;
        Counter drops;
        Counter resends;
    };

    /**
     * The shared sendAt body. @p attempt counts transmissions already
     * burned on this message: 0 from the public entry points, >= 1
     * from the retransmit path. Every transmission re-pays egress and
     * link occupancy and counts toward messagesSent() -- retries are
     * real traffic.
     */
    void sendImpl(Tick base, CohMsg msg, unsigned attempt);

    /**
     * Does the loss schedule claim the head crossing @p link at
     * @p start? Walks every matching rule (advancing each crossing
     * counter) so overlapping rules stay deterministic regardless of
     * which one fires.
     */
    bool lossDropped(std::uint32_t link, Tick start);

    /**
     * Account a drop at @p when and schedule the re-injection, or die
     * if the budget is spent. The links reserved up to and including
     * the drop point stay booked -- the transmission occupied them.
     */
    void dropTransmission(const CohMsg &msg, unsigned attempt, Tick when);

    /** Re-inject a dropped message from its source NI. */
    void retransmitFired(RetransmitEvent &ev);

    /** RAII depth guard for an inline (fused) delivery. */
    struct FuseScope
    {
        explicit FuseScope(Network *n) : net(n) { ++net->fuseDepth_; }
        ~FuseScope() { --net->fuseDepth_; }
        Network *net;
    };

    static constexpr unsigned maxFuseDepth = 64;

    /** Sentinel for draining_: no drain loop on the stack. */
    static constexpr NodeId noNode = static_cast<NodeId>(~NodeId{0});

    EventQueue &eq_;
    const ProtoConfig &cfg_;
    Rng rng_;
    BoundedDraw jitter_; //!< [0, netJitter] draw, threshold hoisted
    Topology topo_;      //!< immutable per-pair routes
    std::vector<Sink> sinks_;
    std::vector<Tick> egressFree_; //!< next free tick per source NI
    std::vector<Tick> ingressFree_; //!< next free tick per dest NI
    std::vector<Tick> linkFree_; //!< next free tick per fabric link
    std::vector<Tick> pairLast_; //!< last arrival per (src,dst) pair
    std::vector<NodeIngress> ingress_; //!< per-destination drain state
    /**
     * Machine-wide local traffic, sorted ascending by (due, seq)
     * from localHead_ on; [0, localHead_) is the flushed prefix.
     * Pushes are near-monotone (due is the sender's base + 1 and
     * bases never move backwards), so the common push is an append
     * and the flush pops by bumping the index -- no heap sift either
     * way. The prefix is reclaimed whenever the queue drains empty
     * (the common case, keeping capacity), or compacted in place
     * once it outgrows a small bound.
     */
    std::vector<LocalPending> localQ_;
    std::size_t localHead_ = 0; //!< first unflushed localQ_ entry
    LocalFlushEvent localFlush_;
    FaultManager *faults_ = nullptr; //!< fault layer; null = fault-free
    ObsManager *obs_ = nullptr; //!< observability; null = untraced
    std::unique_ptr<LossState> loss_; //!< null = lossless (the default)
    unsigned fuseDepth_ = 0; //!< live inline deliveries on the stack
    NodeId draining_ = noNode; //!< node whose drain loop is on stack
    std::uint64_t pushSeq_ = 0; //!< global arrival-tie sequencer
    Counter sent_;
    Counter queued_;
    Counter linkQueued_;
};

} // namespace mspdsm

#endif // MSPDSM_NET_NETWORK_HH
