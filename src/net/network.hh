/**
 * @file
 * Point-to-point interconnect with per-node network interfaces.
 *
 * The paper assumes a constant-latency switched network but models
 * contention at the network interfaces (Section 6). We model each
 * node's NI as two serial resources (egress and ingress): a message
 * occupies the NI for niControl or niData cycles depending on whether
 * it carries a block. Flight time is netLatency plus a bounded uniform
 * jitter representing switch/controller queueing; jitter is what lets
 * concurrently issued invalidation acks arrive re-ordered.
 *
 * Local messages (src == dst, e.g. a processor accessing its own home
 * directory) bypass the NIs and the switch and are delivered after a
 * single bus cycle.
 */

#ifndef MSPDSM_NET_NETWORK_HH
#define MSPDSM_NET_NETWORK_HH

#include <functional>
#include <vector>

#include "base/random.hh"
#include "base/stats.hh"
#include "proto/config.hh"
#include "proto/msg.hh"
#include "sim/eventq.hh"

namespace mspdsm
{

/**
 * The interconnect. Owns no protocol state; it only moves CohMsg
 * values between nodes with appropriate delays.
 *
 * Message motion is event-driven through a pool of pre-allocated
 * NetEvents (one per in-flight message, reused), so the per-message
 * fast path performs no allocation: the same event object carries the
 * message through its ingress-arrival and delivery stages.
 */
class Network
{
  public:
    /** Invoked at the delivery tick at the destination node. */
    using Deliver = std::function<void(const CohMsg &)>;

    /**
     * @param eq event queue driving the simulation
     * @param cfg machine configuration (latencies, node count)
     * @param rng dedicated random stream for jitter
     */
    Network(EventQueue &eq, const ProtoConfig &cfg, Rng rng);

    /**
     * Register the destination handler for node @p n. Must be called
     * for every node before the first send.
     */
    void attach(NodeId n, Deliver handler);

    /** Inject @p msg at its source NI at the current tick. */
    void send(CohMsg msg);

    /** Messages sent so far. */
    std::uint64_t messagesSent() const { return sent_.value(); }

    /** Total cycles messages spent queued behind busy NIs. */
    std::uint64_t queueingCycles() const { return queued_.value(); }

  private:
    /** One in-flight message: arrival at the ingress NI, delivery. */
    struct NetEvent final : public Event
    {
        explicit NetEvent(Network *n) : net(n) {}

        void process() override { net->fired(*this); }

        Network *net;
        CohMsg msg;
        Tick occ = 0;        //!< ingress NI occupancy of this message
        bool arrived = false; //!< past the ingress-arrival stage
    };

    /** Stage dispatch for a pooled NetEvent. */
    void fired(NetEvent &e);

    EventQueue &eq_;
    const ProtoConfig &cfg_;
    Rng rng_;
    std::vector<Deliver> handlers_;
    std::vector<Tick> egressFree_; //!< next free tick per source NI
    std::vector<Tick> ingressFree_; //!< next free tick per dest NI
    std::vector<Tick> pairLast_; //!< last arrival per (src,dst) pair
    EventPool<NetEvent> pool_;
    Counter sent_;
    Counter queued_;
};

} // namespace mspdsm

#endif // MSPDSM_NET_NETWORK_HH
