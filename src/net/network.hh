/**
 * @file
 * Topology-parameterized interconnect with per-node network
 * interfaces.
 *
 * Contention is modelled at the network interfaces (the paper's
 * Section 6) and, on the link topologies, at the links themselves. We
 * model each node's NI as two serial resources (egress and ingress):
 * a message occupies the NI for niControl or niData cycles depending
 * on whether it carries a block. Flight time comes from the
 * ProtoConfig-selected Topology (src/topo/): the default crossbar
 * gives every pair a dedicated netLatency-cycle path -- exactly the
 * paper's constant-latency switched network -- while ring/mesh2d/
 * torus2d route each message over a deterministic sequence of links,
 * each a serial resource with per-hop wire latency, so flight time is
 * hop-composed and shared links queue. A bounded uniform jitter
 * representing residual switch/controller queueing tops off every
 * remote flight; jitter is what lets concurrently issued invalidation
 * acks arrive re-ordered.
 *
 * Local messages (src == dst, e.g. a processor accessing its own home
 * directory) bypass the NIs and the fabric and are delivered after a
 * single bus cycle.
 */

#ifndef MSPDSM_NET_NETWORK_HH
#define MSPDSM_NET_NETWORK_HH

#include <vector>

#include "base/random.hh"
#include "base/stats.hh"
#include "proto/config.hh"
#include "proto/msg.hh"
#include "sim/eventq.hh"
#include "topo/topology.hh"

namespace mspdsm
{

class CacheCtrl;
class Directory;
class FaultManager;

/**
 * The interconnect. Owns no protocol state; it only moves CohMsg
 * values between nodes with appropriate delays.
 *
 * Message motion is event-driven through a pool of pre-allocated
 * NetEvents (one per in-flight message, reused), so the per-message
 * fast path performs no allocation: the same event object carries the
 * message through its ingress-arrival and delivery stages.
 *
 * Delivery is statically dispatched: a node attaches its concrete
 * cache controller and home directory, and the network routes each
 * delivered message by type (routesToDirectory()) with two direct
 * calls resolved at link time -- no std::function, no virtual call.
 * Tests and tools that are not a full node attach a raw function
 * pointer plus context instead.
 */
class Network
{
  public:
    /** Raw delivery hook (tests/tools): fn(ctx, msg) at delivery. */
    using RawDeliver = void (*)(void *ctx, const CohMsg &msg);

    /**
     * @param eq event queue driving the simulation
     * @param cfg machine configuration (latencies, node count)
     * @param rng dedicated random stream for jitter
     */
    Network(EventQueue &eq, const ProtoConfig &cfg, Rng rng);

    /**
     * Attach node @p n's protocol agents. Every node must be attached
     * (either overload) before the first send.
     */
    void attach(NodeId n, CacheCtrl &cache, Directory &dir);

    /** Attach a raw delivery hook for node @p n (tests/tools). */
    void attach(NodeId n, RawDeliver fn, void *ctx);

    /** Inject @p msg at its source NI at the current tick. */
    void send(CohMsg msg) { sendAt(eq_.curTick(), msg); }

    /**
     * Inject @p msg at its source NI at tick @p base >= curTick().
     * This is the fused-run fast path's injection point: a processor
     * executing ahead of the clock (legal only while no other event
     * can fire first, so no other send can interleave) issues its
     * next miss with the virtual issue tick as the injection base,
     * and every downstream time -- egress occupancy, flight, jitter
     * draw order, arrival -- comes out exactly as if the send had
     * happened on the clock.
     */
    void sendAt(Tick base, CohMsg msg);

    /** Messages sent so far. */
    std::uint64_t messagesSent() const { return sent_.value(); }

    /** Total cycles messages spent queued behind busy NIs. */
    std::uint64_t queueingCycles() const { return queued_.value(); }

    /** Total cycles message heads spent queued behind busy links
     * (always 0 on the crossbar, which has no shared links). */
    std::uint64_t linkQueueingCycles() const { return linkQueued_.value(); }

    /** The routing geometry in force (tests, experiments). */
    const Topology &topology() const { return topo_; }

    /**
     * Attach the fault layer (null in fault-free runs, the default).
     * With it attached, every send is stamped with its source's
     * restart epoch and every delivery is screened: stale-epoch
     * messages are dropped, messages to a dead node are dropped or
     * (for requests) bounced back as a Nack.
     */
    void setFaults(FaultManager *f) { faults_ = f; }

  private:
    /**
     * Per-node delivery sink: either a (cache, directory) pair routed
     * by message type, or a raw hook. Resolved once at attach time.
     */
    struct Sink
    {
        CacheCtrl *cache = nullptr;
        Directory *dir = nullptr;
        RawDeliver fn = nullptr;
        void *ctx = nullptr;

        bool attached() const { return cache || fn; }
    };

    /** One in-flight message: arrival at the ingress NI, delivery. */
    struct NetEvent final : public Event
    {
        explicit NetEvent(Network *n) : net(n) {}

        void process() override { net->fired(*this); }

        Network *net;
        CohMsg msg;
        Tick occ = 0;        //!< ingress NI occupancy of this message
        bool arrived = false; //!< past the ingress-arrival stage
    };

    /** Stage dispatch for a pooled NetEvent. */
    void fired(NetEvent &e);

    /**
     * Hand @p msg to its destination sink as of tick @p base
     * (defined in network.cc). @p base == curTick() when reached by
     * a delivery event, ahead of the clock on the fused fast path.
     */
    void deliver(const CohMsg &msg, Tick base);

    /**
     * True iff node @p n's sink may be driven ahead of the clock: a
     * full protocol node anchors all its timing on the base tick the
     * delivery hands it. Raw test hooks are excluded -- they are
     * entitled to read the clock -- so attaching one pins that node
     * to the pre-fusion event-per-stage behaviour.
     *
     * The depth cap bounds fused *chains*: in a quiet system a local
     * transaction's delivery re-enters the processor, which issues
     * the next access, which delivers again -- recursion that could
     * otherwise walk an entire trace in one stack. Past the cap the
     * send falls back to the pooled event, which is behaviourally
     * identical (that is the whole fusion invariant), so the cap
     * trades only constant factors, never results.
     */
    bool
    fusible(NodeId n) const
    {
        return sinks_[n].cache != nullptr && fuseDepth_ < maxFuseDepth;
    }

    /**
     * Contend for the destination's ingress NI as of @p arrival:
     * books the queueing delay and the occupancy window, and returns
     * the delivery tick. The fused send path and the arrival stage
     * of fired() must model contention tick-for-tick identically for
     * the fusion-exactness argument to hold, so both call this.
     */
    Tick
    reserveIngress(NodeId dst, Tick arrival, Tick occ)
    {
        const Tick start = std::max(arrival, ingressFree_[dst]);
        queued_.inc(start - arrival);
        const Tick delivered = start + occ;
        ingressFree_[dst] = delivered;
        return delivered;
    }

    /** RAII depth guard for an inline (fused) delivery. */
    struct FuseScope
    {
        explicit FuseScope(Network *n) : net(n) { ++net->fuseDepth_; }
        ~FuseScope() { --net->fuseDepth_; }
        Network *net;
    };

    static constexpr unsigned maxFuseDepth = 64;

    EventQueue &eq_;
    const ProtoConfig &cfg_;
    Rng rng_;
    BoundedDraw jitter_; //!< [0, netJitter] draw, threshold hoisted
    Topology topo_;      //!< immutable per-pair routes
    std::vector<Sink> sinks_;
    std::vector<Tick> egressFree_; //!< next free tick per source NI
    std::vector<Tick> ingressFree_; //!< next free tick per dest NI
    std::vector<Tick> linkFree_; //!< next free tick per fabric link
    std::vector<Tick> pairLast_; //!< last arrival per (src,dst) pair
    EventPool<NetEvent> pool_;
    FaultManager *faults_ = nullptr; //!< fault layer; null = fault-free
    unsigned fuseDepth_ = 0; //!< live inline deliveries on the stack
    Counter sent_;
    Counter queued_;
    Counter linkQueued_;
};

} // namespace mspdsm

#endif // MSPDSM_NET_NETWORK_HH
