/**
 * @file
 * Coherence messages exchanged between cache controllers and
 * directories in the full-map write-invalidate protocol (paper
 * Section 2, Figure 1).
 */

#ifndef MSPDSM_PROTO_MSG_HH
#define MSPDSM_PROTO_MSG_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace mspdsm
{

/** Coherence message types. */
enum class MsgType : std::uint8_t
{
    // Requests: cache -> home directory. These are the messages the
    // Memory Sharing Predictors observe and predict.
    GetS,    //!< read: fetch a read-only copy
    GetX,    //!< write: fetch a writable copy
    Upgrade, //!< write to an already-cached read-only copy

    // Commands: home directory -> cache.
    Inval,  //!< invalidate a read-only copy
    Recall, //!< invalidate the writable copy and return the data

    // Acknowledgements: cache -> home directory. Observed by the
    // general message predictor (Cosmos) but not by MSP/VMSP.
    InvAck,    //!< response to Inval
    WriteBack, //!< data response to Recall

    // Data responses: home directory -> requesting cache.
    DataShared, //!< read-only copy
    DataExcl,   //!< writable copy
    UpgradeAck, //!< permission to write to the held copy

    // Speculation: home directory -> predicted consumer cache.
    SpecData, //!< speculatively forwarded read-only copy

    // Fault-injection layer (dsm/fault.hh). None of these exist in a
    // fault-free run, so the paper-reproduction protocol above is
    // untouched when no FaultPlan is configured.
    Nack,       //!< request bounced off a dead node; retry at sender
    RehomeSync, //!< directory-reconstruction sync, cache -> backup home
    CkptData,   //!< predictor checkpoint replication, victim -> backup
    ShardSync,  //!< batched directory-shard delta, home -> backup
};

/** @return mnemonic name of a message type. */
const char *msgTypeName(MsgType t);

/** @return true for GetS / GetX / Upgrade. */
constexpr bool
isRequest(MsgType t)
{
    return t == MsgType::GetS || t == MsgType::GetX ||
           t == MsgType::Upgrade;
}

/** @return true for messages that carry a data block (wider NI slot).
 * Evaluated once per network send, so it lives in the header. */
constexpr bool
carriesData(MsgType t)
{
    return t == MsgType::WriteBack || t == MsgType::DataShared ||
           t == MsgType::DataExcl || t == MsgType::SpecData ||
           t == MsgType::CkptData;
}

/** Why a speculative read-only copy was pushed to a consumer. */
enum class SpecTrigger : std::uint8_t
{
    None,      //!< not speculative
    FirstRead, //!< triggered by the first read of a predicted sequence
    Swi,       //!< triggered by a successful speculative write inval
};

/**
 * @return true for the message types a node's *home directory*
 * handles (requests and acknowledgements); everything else is
 * delivered to the node's cache controller. This is the static
 * routing rule the network's delivery sink applies per message.
 */
constexpr bool
routesToDirectory(MsgType t)
{
    return t == MsgType::GetS || t == MsgType::GetX ||
           t == MsgType::Upgrade || t == MsgType::InvAck ||
           t == MsgType::WriteBack;
}

/**
 * One coherence message. Plain value type; the network delivers
 * copies, never references. Copied per hop on the hot path, so the
 * layout is kept to 16 bytes: the five boolean flags share a single
 * byte of bitfields.
 */
struct CohMsg
{
    MsgType type = MsgType::GetS;

    /** For SpecData: which mechanism triggered the push. */
    SpecTrigger trigger = SpecTrigger::None;

    NodeId src = invalidNode;
    NodeId dst = invalidNode;

    /**
     * Requester-side copy state piggy-backed on requests and InvAck,
     * used by the home for speculation verification (Section 4.2):
     * hadCopy -- the sender held a valid copy when sending;
     * copyWasSpec -- that copy had been placed speculatively;
     * copyReferenced -- the processor had referenced the copy.
     */
    std::uint8_t hadCopy : 1 = 0;
    std::uint8_t copyWasSpec : 1 = 0;
    std::uint8_t copyReferenced : 1 = 0;

    /** Recall initiated by the SWI heuristic rather than a request. */
    std::uint8_t speculative : 1 = 0;

    /**
     * On data responses: the transaction crossed node boundaries, so
     * the requester's stall counts as remote request waiting time
     * rather than computation (Figure 9 breakdown).
     */
    std::uint8_t remoteWork : 1 = 0;

    /**
     * Sender's restart epoch at send time (fault layer). A node's
     * epoch bumps when it is killed, so a message launched before the
     * crash is recognizably stale on delivery and dropped instead of
     * mutating post-recovery state. Occupies what was the struct's
     * padding byte; always 0 in fault-free runs.
     */
    std::uint8_t srcEpoch = 0;

    BlockId blk = 0;

    /** Render for diagnostics. */
    std::string toString() const;
};

static_assert(sizeof(CohMsg) == 16,
              "CohMsg is copied per network hop; keep it two words");

} // namespace mspdsm

#endif // MSPDSM_PROTO_MSG_HH
