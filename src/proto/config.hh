/**
 * @file
 * Timing and geometry configuration of the simulated CC-NUMA machine
 * (paper Table 1).
 *
 * Latency calibration. The paper reports, for a 600 MHz processor:
 * local memory / remote-cache access 104 cycles, network latency 80
 * cycles, round-trip read miss 418 cycles, remote-to-local ratio ~4.
 * We express everything in processor cycles and split the 418-cycle
 * round trip as:
 *
 *   GetS:  niControl + 80 + niControl      (request hop)
 *   home:  dirLookup + memAccess           (directory + memory)
 *   Data:  niData + 80 + niData            (reply hop)
 *
 * with niControl = 20 (header-only message: bus + NI occupancy) and
 * niData = 56 (message carrying a 32-byte block), giving
 * 40 + 80 + 2 + 104 + 112 + 80 = 418. NI occupancy is the contention
 * point: a node's interface serializes message injection/delivery,
 * and small control messages (invalidations, acks) occupy it for less
 * time than data transfers -- which is what allows concurrently
 * issued invalidation acknowledgements to race and arrive re-ordered,
 * the effect that perturbs the general message predictor (Section 3).
 */

#ifndef MSPDSM_PROTO_CONFIG_HH
#define MSPDSM_PROTO_CONFIG_HH

#include <bit>
#include <cstdint>

#include "base/types.hh"

namespace mspdsm
{

/**
 * Machine configuration (paper Table 1 defaults).
 */
struct ProtoConfig
{
    /** Number of nodes (one processor per node in this study). */
    unsigned numNodes = 16;

    /** Coherence block size in bytes. */
    unsigned blockSize = 32;

    /** Page size in bytes; home assignment is page-interleaved. */
    unsigned pageSize = 4096;

    /** Local memory / remote cache access time, processor cycles. */
    Tick memAccess = 104;

    /** One-way network latency, processor cycles. */
    Tick netLatency = 80;

    /** NI/bus occupancy of a header-only (control) message. */
    Tick niControl = 20;

    /** NI/bus occupancy of a message carrying a data block. */
    Tick niData = 56;

    /** Directory state lookup/update. */
    Tick dirLookup = 2;

    /** Processor cache hit. */
    Tick cacheHit = 1;

    /**
     * Maximum uniform random extra delivery delay per message,
     * modelling queueing at switches and controllers. Workloads with
     * heavy contention (e.g. em3d's concurrent invalidations) use a
     * larger value; barnes, whose acknowledgements arrive in-order
     * ("minimal queueing in the system"), uses zero.
     */
    Tick netJitter = 8;

    /** Seed for all randomness in one run. */
    std::uint64_t seed = 1;

    /** Blocks per page. */
    unsigned
    blocksPerPage() const
    {
        return pageSize / blockSize;
    }

    /** Home node of a block: page-interleaved. */
    NodeId
    homeOf(BlockId blk) const
    {
        return static_cast<NodeId>((blk / blocksPerPage()) % numNodes);
    }

    /** Block id containing a byte address. */
    BlockId
    blockOf(Addr a) const
    {
        return a / blockSize;
    }
};

/**
 * Address-to-block and block-to-home mapping with the divisions
 * folded at construction. ProtoConfig::homeOf() costs three integer
 * divides; the cache controller and directory evaluate the mapping
 * once or twice per simulated message, so they snapshot it into an
 * AddrMap (power-of-two geometries -- every configuration the paper
 * uses -- reduce to shifts and masks). Equivalent to the ProtoConfig
 * methods for any geometry.
 */
class AddrMap
{
  public:
    explicit AddrMap(const ProtoConfig &cfg)
        : blockSize_(cfg.blockSize), bpp_(cfg.blocksPerPage()),
          nodes_(cfg.numNodes),
          blockShift_(static_cast<std::uint8_t>(
              std::countr_zero(cfg.blockSize))),
          bppShift_(static_cast<std::uint8_t>(
              std::countr_zero(cfg.blocksPerPage()))),
          nodesMask_(cfg.numNodes - 1),
          blockPow2_(std::has_single_bit(cfg.blockSize)),
          bppPow2_(std::has_single_bit(cfg.blocksPerPage())),
          nodesPow2_(std::has_single_bit(cfg.numNodes))
    {}

    /** Block id containing a byte address (== ProtoConfig::blockOf). */
    BlockId
    blockOf(Addr a) const
    {
        return blockPow2_ ? a >> blockShift_ : a / blockSize_;
    }

    /** Home node of a block (== ProtoConfig::homeOf). */
    NodeId
    homeOf(BlockId blk) const
    {
        const BlockId page = bppPow2_ ? blk >> bppShift_ : blk / bpp_;
        return static_cast<NodeId>(nodesPow2_ ? page & nodesMask_
                                              : page % nodes_);
    }

    /** Block size the mapping was built with, in bytes. */
    unsigned blockSizeBytes() const { return blockSize_; }

  private:
    unsigned blockSize_;
    unsigned bpp_;
    unsigned nodes_;
    std::uint8_t blockShift_;
    std::uint8_t bppShift_;
    unsigned nodesMask_;
    bool blockPow2_;
    bool bppPow2_;
    bool nodesPow2_;
};

} // namespace mspdsm

#endif // MSPDSM_PROTO_CONFIG_HH
