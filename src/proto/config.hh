/**
 * @file
 * Timing and geometry configuration of the simulated CC-NUMA machine
 * (paper Table 1), plus the interconnect-topology selection that
 * parameterizes the network model (src/topo/).
 *
 * Latency calibration. The paper reports, for a 600 MHz processor:
 * local memory / remote-cache access 104 cycles, network latency 80
 * cycles, round-trip read miss 418 cycles, remote-to-local ratio ~4.
 * We express everything in processor cycles. On the default *crossbar*
 * topology -- the paper's constant-latency switched network, where
 * every (src, dst) pair has a dedicated path of netLatency cycles --
 * the 418-cycle round trip splits as:
 *
 *   GetS:  niControl + netLatency + niControl  (request hop)
 *   home:  dirLookup + memAccess               (directory + memory)
 *   Data:  niData + netLatency + niData        (reply hop)
 *
 * with niControl = 20 (header-only message: bus + NI occupancy),
 * netLatency = 80 and niData = 56 (message carrying a 32-byte block),
 * giving 40 + 80 + 2 + 104 + 112 + 80 = 418. NI occupancy is a
 * contention point on every topology: a node's interface serializes
 * message injection/delivery, and small control messages
 * (invalidations, acks) occupy it for less time than data transfers
 * -- which is what allows concurrently issued invalidation
 * acknowledgements to race and arrive re-ordered, the effect that
 * perturbs the general message predictor (Section 3).
 *
 * The non-crossbar topologies (TopoConfig: ring, mesh2d, torus2d)
 * replace the flat netLatency flight time with a deterministic route
 * of links, each a serial resource with per-hop wire latency
 * TopoConfig::linkLatency -- so flight time composes per hop and
 * messages additionally contend for shared links, not just the NIs.
 */

#ifndef MSPDSM_PROTO_CONFIG_HH
#define MSPDSM_PROTO_CONFIG_HH

#include <bit>
#include <cstdint>

#include "base/types.hh"

namespace mspdsm
{

/** Interconnect topology shapes (src/topo/topology.hh builds them). */
enum class TopoKind : std::uint8_t
{
    Crossbar, //!< dedicated path per pair, flat netLatency (paper)
    Ring,     //!< bidirectional ring, shortest direction
    Mesh2D,   //!< near-square 2D mesh, dimension-order (X then Y)
    Torus2D,  //!< 2D torus: mesh plus wraparound, shortest per dim
};

/**
 * Interconnect-topology selection. The default reproduces the paper's
 * constant-latency switched network exactly (bit-identical fixed-seed
 * runs); the other shapes route each message over a deterministic
 * sequence of serially-occupied links.
 */
struct TopoConfig
{
    TopoKind kind = TopoKind::Crossbar;

    /**
     * Per-hop wire latency of a ring/mesh/torus link, cycles;
     * 0 = use ProtoConfig::netLatency (so a one-hop neighbour costs
     * exactly what the crossbar charges every pair). Ignored by the
     * crossbar, whose flight time is always netLatency.
     */
    Tick linkLatency = 0;
};

/**
 * Machine configuration (paper Table 1 defaults).
 */
struct ProtoConfig
{
    /** Number of nodes (one processor per node in this study). */
    unsigned numNodes = 16;

    /** Coherence block size in bytes. */
    unsigned blockSize = 32;

    /** Page size in bytes; home assignment is page-interleaved. */
    unsigned pageSize = 4096;

    /** Local memory / remote cache access time, processor cycles. */
    Tick memAccess = 104;

    /** One-way network latency, processor cycles. */
    Tick netLatency = 80;

    /** NI/bus occupancy of a header-only (control) message. */
    Tick niControl = 20;

    /** NI/bus occupancy of a message carrying a data block. */
    Tick niData = 56;

    /** Directory state lookup/update. */
    Tick dirLookup = 2;

    /** Processor cache hit. */
    Tick cacheHit = 1;

    /**
     * Maximum uniform random extra delivery delay per message,
     * modelling queueing at switches and controllers. Workloads with
     * heavy contention (e.g. em3d's concurrent invalidations) use a
     * larger value; barnes, whose acknowledgements arrive in-order
     * ("minimal queueing in the system"), uses zero.
     */
    Tick netJitter = 8;

    /** Interconnect topology (default: the paper's crossbar model). */
    TopoConfig topo = {};

    /** Seed for all randomness in one run. */
    std::uint64_t seed = 1;

    /** Blocks per page. */
    unsigned
    blocksPerPage() const
    {
        return pageSize / blockSize;
    }

    /** Home node of a block: page-interleaved. */
    NodeId
    homeOf(BlockId blk) const
    {
        return static_cast<NodeId>((blk / blocksPerPage()) % numNodes);
    }

    /** Block id containing a byte address. */
    BlockId
    blockOf(Addr a) const
    {
        return a / blockSize;
    }
};

/**
 * Address-to-block and block-to-home mapping with the divisions
 * folded at construction. ProtoConfig::homeOf() costs three integer
 * divides; the cache controller and directory evaluate the mapping
 * once or twice per simulated message, so they snapshot it into an
 * AddrMap (power-of-two geometries -- every configuration the paper
 * uses -- reduce to shifts and masks). Equivalent to the ProtoConfig
 * methods for any geometry.
 */
class AddrMap
{
  public:
    explicit AddrMap(const ProtoConfig &cfg)
        : blockSize_(cfg.blockSize), bpp_(cfg.blocksPerPage()),
          nodes_(cfg.numNodes),
          blockShift_(static_cast<std::uint8_t>(
              std::countr_zero(cfg.blockSize))),
          bppShift_(static_cast<std::uint8_t>(
              std::countr_zero(cfg.blocksPerPage()))),
          nodesMask_(cfg.numNodes - 1),
          blockPow2_(std::has_single_bit(cfg.blockSize)),
          bppPow2_(std::has_single_bit(cfg.blocksPerPage())),
          nodesPow2_(std::has_single_bit(cfg.numNodes))
    {}

    /** Block id containing a byte address (== ProtoConfig::blockOf). */
    BlockId
    blockOf(Addr a) const
    {
        return blockPow2_ ? a >> blockShift_ : a / blockSize_;
    }

    /**
     * Home node of a block (== ProtoConfig::homeOf in a fault-free
     * machine). With a re-home table attached, the geometric home is
     * one extra indexed load away from the current home -- directory
     * re-homing after a node failure is a table swap, not a geometry
     * rebuild. remap_ is null by default, so fault-free runs pay one
     * predictable branch.
     */
    NodeId
    homeOf(BlockId blk) const
    {
        const NodeId h = geometricHomeOf(blk);
        return remap_ ? remap_[h] : h;
    }

    /** Home node by machine geometry alone, ignoring any re-homing. */
    NodeId
    geometricHomeOf(BlockId blk) const
    {
        const BlockId page = bppPow2_ ? blk >> bppShift_ : blk / bpp_;
        return static_cast<NodeId>(nodesPow2_ ? page & nodesMask_
                                              : page % nodes_);
    }

    /**
     * Attach a per-home indirection table of at least numNodes
     * entries (owned by the fault layer, shared by every AddrMap in
     * the machine so all components re-home atomically when the fault
     * sweep rewrites an entry). Null detaches.
     */
    void setRemap(const NodeId *table) { remap_ = table; }

    /** Block size the mapping was built with, in bytes. */
    unsigned blockSizeBytes() const { return blockSize_; }

  private:
    const NodeId *remap_ = nullptr;
    unsigned blockSize_;
    unsigned bpp_;
    unsigned nodes_;
    std::uint8_t blockShift_;
    std::uint8_t bppShift_;
    unsigned nodesMask_;
    bool blockPow2_;
    bool bppPow2_;
    bool nodesPow2_;
};

} // namespace mspdsm

#endif // MSPDSM_PROTO_CONFIG_HH
