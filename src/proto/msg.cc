#include "proto/msg.hh"

#include <sstream>

#include "base/logging.hh"

namespace mspdsm
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS:
        return "GetS";
      case MsgType::GetX:
        return "GetX";
      case MsgType::Upgrade:
        return "Upgrade";
      case MsgType::Inval:
        return "Inval";
      case MsgType::Recall:
        return "Recall";
      case MsgType::InvAck:
        return "InvAck";
      case MsgType::WriteBack:
        return "WriteBack";
      case MsgType::DataShared:
        return "DataShared";
      case MsgType::DataExcl:
        return "DataExcl";
      case MsgType::UpgradeAck:
        return "UpgradeAck";
      case MsgType::SpecData:
        return "SpecData";
      case MsgType::Nack:
        return "Nack";
      case MsgType::RehomeSync:
        return "RehomeSync";
      case MsgType::CkptData:
        return "CkptData";
      case MsgType::ShardSync:
        return "ShardSync";
    }
    panic("unknown MsgType ", int(t));
}

std::string
CohMsg::toString() const
{
    std::ostringstream oss;
    oss << msgTypeName(type) << "(blk=" << blk << ", " << src << "->"
        << dst << (speculative ? ", spec" : "") << ")";
    return oss.str();
}

} // namespace mspdsm
