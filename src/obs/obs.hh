/**
 * @file
 * Observability layer: transaction tracing and interval time-series.
 *
 * Three instruments see inside a run instead of only its totals:
 *
 *  - *Transaction tracing*: lifecycle hooks threaded through the
 *    processor, cache controller, directory, network, and fault layer
 *    emit Chrome trace-event JSON (Perfetto-loadable): per-node
 *    tracks, B/E spans for demand misses, X spans for SWI episodes,
 *    flow arrows (s/f) for every cross-component message, and instant
 *    events for speculation outcomes, retries, and faults. A tick
 *    window ([from, to]) filters emission so dense runs stay
 *    tractable; spans and flows are emitted at *completion* time, when
 *    both endpoints are known, so the filter can never produce a
 *    dangling begin or an unmatched flow id.
 *  - *Interval time-series*: an every-N-ticks sampler records
 *    cumulative machine counters (ops, messages, events, predictor
 *    lookups/hits) and instantaneous state (outstanding misses,
 *    retransmits in flight), turning e.g. fig11's three-point
 *    before/during/after readout into an actual recovery timeline.
 *  - *Latency histograms* are deliberately NOT here: they are passive
 *    fixed-size accounting (base/stats.hh Histogram) that lives
 *    always-on in the per-component stats blocks.
 *
 * Gating mirrors the fault layer exactly: an empty ObsConfig (the
 * default) constructs no ObsManager at all, every hook site is a
 * null-pointer check, and unconfigured runs stay bit-identical and
 * allocation-free.
 */

#ifndef MSPDSM_OBS_OBS_HH
#define MSPDSM_OBS_OBS_HH

#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "base/types.hh"
#include "proto/msg.hh"
#include "sim/eventq.hh"

namespace mspdsm
{

class CacheCtrl;
class Network;
class PredictorBase;
class Processor;
struct ProtoConfig;

/**
 * Observability configuration. Empty (the default) means no
 * ObsManager is constructed and the machine runs bit-identically to
 * an uninstrumented one.
 */
struct ObsConfig
{
    /** Chrome trace-event JSON output path; empty disables tracing. */
    std::string tracePath;

    /** Only activity inside [traceFrom, traceTo] is emitted. */
    Tick traceFrom = 0;
    Tick traceTo = maxTick;

    /** Time-series sampling period, ticks; 0 disables the sampler. */
    Tick sampleInterval = 0;

    bool
    empty() const
    {
        return tracePath.empty() && sampleInterval == 0;
    }
};

/**
 * One point of the interval time-series. Counter fields are
 * cumulative machine totals as of the sample tick (consumers diff
 * adjacent samples for rates); the last two are instantaneous.
 */
struct IntervalSample
{
    Tick tick = 0;
    std::uint64_t ops = 0;              //!< executed trace ops
    std::uint64_t messages = 0;         //!< network messages sent
    std::uint64_t eventsDispatched = 0; //!< kernel dispatches
    std::uint64_t predLookups = 0;      //!< predictor predictions made
    std::uint64_t predHits = 0;         //!< ... that verified correct
    std::uint64_t outstandingMisses = 0;   //!< MSHRs in flight now
    std::uint64_t retransmitsInFlight = 0; //!< dropped, not yet resent
};

/**
 * Executes an ObsConfig against an assembled machine: owns the trace
 * sink and the sampler. Constructed by DsmSystem only when the config
 * is non-empty; components reach it through a null-checked pointer
 * (setObs), exactly like the fault layer.
 */
class ObsManager
{
  public:
    /**
     * @param eq the machine's event queue
     * @param net the interconnect (sampler reads traffic totals)
     * @param cfg machine configuration (geometry)
     * @param ocfg the instrument configuration; must be non-empty
     * @param caches,procs per-node agents, index == NodeId
     * @param preds per-node speculation predictors (entries may be
     *        null; sampler reads accuracy totals)
     */
    ObsManager(EventQueue &eq, Network &net, const ProtoConfig &cfg,
               ObsConfig ocfg, std::vector<CacheCtrl *> caches,
               std::vector<Processor *> procs,
               std::vector<PredictorBase *> preds);
    ~ObsManager();

    ObsManager(const ObsManager &) = delete;
    ObsManager &operator=(const ObsManager &) = delete;

    // ---- Trace hooks. All are cheap no-ops when tracing is off
    // ---- (only the sampler was configured).

    /**
     * A message was handed to the transport and *will* be delivered
     * (the network calls this after any loss-rule drop, so dropped
     * transmissions never enter the matcher; a retransmit re-enters
     * as a fresh send). @p orderKey is the per-(src,dst) delivery
     * ordering key: the clamped arrival tick for remote messages
     * (strictly monotone per pair), the local due tick for node-local
     * ones (which may slip under fused-ahead entries, mirroring the
     * network's own sorted local queue).
     */
    void msgSent(const CohMsg &msg, Tick sendTick, Tick orderKey);

    /**
     * A message reached the delivery funnel (before any fault
     * screen). Pops the pair's oldest pending send and emits the
     * flow-arrow pair (s at the send tick on the source track, f at
     * @p base on the destination track).
     */
    void msgDelivered(const CohMsg &msg, Tick base);

    /** A demand miss filled: B/E span on the node's track. */
    void missSpan(NodeId n, BlockId blk, bool write, Tick issue,
                  Tick fill);

    /** Speculation lifecycle instant ("spec place"/"use"/"drop"). */
    void specInstant(const char *what, NodeId n, BlockId blk, Tick t);

    /** Retry-FSM instant ("nack backoff"/"timeout retry"). */
    void retryInstant(const char *what, NodeId n, BlockId blk,
                      unsigned attempt, Tick t);

    /** Directory action instant ("grant"/"read reply"). */
    void dirInstant(const char *what, NodeId home, BlockId blk,
                    Tick t);

    /** A completed SWI episode: X span on the home's dir track. */
    void swiSpan(NodeId home, BlockId blk, Tick launch, Tick complete);

    /** Fault-layer instant ("kill"/"restart"/"rehome"/...). */
    void faultInstant(const char *what, NodeId n, Tick t);

    /** Processor lifecycle instant ("trace done"). */
    void procInstant(const char *what, NodeId n, Tick t);

    // ---- Results.

    /** The sampled time-series (empty when the sampler is off). */
    const std::vector<IntervalSample> &series() const { return series_; }

    /** Close the trace sink (idempotent; DsmSystem::run calls it). */
    void finish();

    /** The configuration in force. */
    const ObsConfig &config() const { return cfg_; }

  private:
    /** The self-rescheduling sampling timer. */
    struct SampleEvent final : public Event
    {
        explicit SampleEvent(ObsManager *m) : mgr(m) {}

        void process() override { mgr->sampleFired(); }

        ObsManager *mgr;
    };

    /** A sent-but-not-yet-delivered message awaiting its flow pair. */
    struct PendingSend
    {
        Tick sendTick;
        Tick orderKey;
    };

    void sampleFired();
    void takeSample();

    /** True iff [a, b] lies inside the trace window. */
    bool inWindow(Tick a, Tick b) const
    {
        return a >= cfg_.traceFrom && b <= cfg_.traceTo;
    }

    /** Write the record separator and bump the first-event flag. */
    void emitPrefix();

    /** Emit one instant event on track @p tid. */
    void instant(const char *name, const char *cat, unsigned tid,
                 Tick t, BlockId blk, bool hasBlk);

    /** Directory tracks live above the cache/processor tracks. */
    static constexpr unsigned dirTidBase = 1000;

    EventQueue &eq_;
    Network &net_;
    ObsConfig cfg_;
    unsigned numNodes_;
    std::vector<CacheCtrl *> caches_;
    std::vector<Processor *> procs_;
    std::vector<PredictorBase *> preds_;

    std::FILE *out_ = nullptr; //!< trace sink; null = tracing off
    bool first_ = true;        //!< no event emitted yet (JSON commas)
    std::uint64_t nextFlowId_ = 0;
    //! Per-(src,dst) pending sends in delivery order.
    std::vector<std::deque<PendingSend>> pend_;

    SampleEvent sampleEvent_{this};
    std::vector<IntervalSample> series_;
};

} // namespace mspdsm

#endif // MSPDSM_OBS_OBS_HH
