#include "obs/obs.hh"

#include "base/logging.hh"
#include "dsm/cache.hh"
#include "dsm/processor.hh"
#include "net/network.hh"
#include "pred/predictor.hh"
#include "proto/config.hh"

namespace mspdsm
{

namespace
{

unsigned long long
ull(std::uint64_t v)
{
    return static_cast<unsigned long long>(v);
}

} // namespace

ObsManager::ObsManager(EventQueue &eq, Network &net,
                       const ProtoConfig &cfg, ObsConfig ocfg,
                       std::vector<CacheCtrl *> caches,
                       std::vector<Processor *> procs,
                       std::vector<PredictorBase *> preds)
    : eq_(eq), net_(net), cfg_(std::move(ocfg)),
      numNodes_(cfg.numNodes), caches_(std::move(caches)),
      procs_(std::move(procs)), preds_(std::move(preds))
{
    panic_if(cfg_.empty(), "ObsManager built from an empty config");
    fatal_if(cfg_.traceFrom > cfg_.traceTo, "trace window [",
             cfg_.traceFrom, ", ", cfg_.traceTo, "] is empty");

    if (!cfg_.tracePath.empty()) {
        out_ = std::fopen(cfg_.tracePath.c_str(), "w");
        fatal_if(!out_, "cannot open trace file '", cfg_.tracePath,
                 "' for writing");
        verbose("tracing to ", cfg_.tracePath, ", window [",
                cfg_.traceFrom, ", ", cfg_.traceTo, "]");
        pend_.resize(std::size_t{numNodes_} * numNodes_);
        // Header plus one thread-name metadata record per track, so
        // Perfetto labels the rows. Metadata records carry no ts and
        // are exempt from the tick-window filter.
        std::fputs("{\"traceEvents\":[", out_);
        std::fprintf(out_, "\n{\"name\":\"process_name\",\"ph\":\"M\","
                           "\"pid\":0,\"args\":{\"name\":\"mspdsm\"}}");
        first_ = false;
        for (unsigned n = 0; n < numNodes_; ++n) {
            std::fprintf(out_,
                         ",\n{\"name\":\"thread_name\",\"ph\":\"M\","
                         "\"pid\":0,\"tid\":%u,"
                         "\"args\":{\"name\":\"node %u\"}}",
                         n, n);
            std::fprintf(out_,
                         ",\n{\"name\":\"thread_name\",\"ph\":\"M\","
                         "\"pid\":0,\"tid\":%u,"
                         "\"args\":{\"name\":\"node %u dir\"}}",
                         dirTidBase + n, n);
        }
    }

    if (cfg_.sampleInterval > 0) {
        // Baseline point at tick 0, then one sample per interval. The
        // timer re-arms only while other work is pending, so the
        // queue can drain; the final firing may stretch the run's end
        // tick by at most one interval -- a deterministic, gated
        // artifact the sweep records alongside the series itself.
        takeSample();
        eq_.schedule(eq_.curTick() + cfg_.sampleInterval,
                     sampleEvent_);
    }
}

ObsManager::~ObsManager()
{
    finish();
}

void
ObsManager::finish()
{
    if (!out_)
        return;
    std::fputs("\n]}\n", out_);
    std::fclose(out_);
    out_ = nullptr;
}

void
ObsManager::emitPrefix()
{
    std::fputs(first_ ? "\n" : ",\n", out_);
    first_ = false;
}

void
ObsManager::msgSent(const CohMsg &msg, Tick sendTick, Tick orderKey)
{
    if (!out_)
        return;
    auto &q = pend_[std::size_t{msg.src} * numNodes_ + msg.dst];
    // Keep the pair's queue in delivery order: non-decreasing
    // orderKey, stable on ties. Remote arrivals are strictly monotone
    // per pair (pure append); a node-local send from an on-the-clock
    // sender can slip under locals queued by a fused sender running
    // ahead of it, so the insert scans back exactly like the
    // network's own sorted local queue.
    auto it = q.end();
    while (it != q.begin() && orderKey < (it - 1)->orderKey)
        --it;
    q.insert(it, PendingSend{sendTick, orderKey});
}

void
ObsManager::msgDelivered(const CohMsg &msg, Tick base)
{
    if (!out_)
        return;
    auto &q = pend_[std::size_t{msg.src} * numNodes_ + msg.dst];
    if (q.empty())
        return; // foreign send path (raw test sinks); nothing to pair
    const PendingSend p = q.front();
    q.pop_front();
    if (!inWindow(p.sendTick, base))
        return;
    const std::uint64_t id = nextFlowId_++;
    const char *name = msgTypeName(msg.type);
    emitPrefix();
    std::fprintf(out_,
                 "{\"name\":\"%s\",\"cat\":\"msg\",\"ph\":\"s\","
                 "\"id\":%llu,\"ts\":%llu,\"pid\":0,\"tid\":%u,"
                 "\"args\":{\"blk\":%llu}}",
                 name, ull(id), ull(p.sendTick), unsigned(msg.src),
                 ull(msg.blk));
    emitPrefix();
    std::fprintf(out_,
                 "{\"name\":\"%s\",\"cat\":\"msg\",\"ph\":\"f\","
                 "\"bp\":\"e\",\"id\":%llu,\"ts\":%llu,\"pid\":0,"
                 "\"tid\":%u}",
                 name, ull(id), ull(base), unsigned(msg.dst));
}

void
ObsManager::missSpan(NodeId n, BlockId blk, bool write, Tick issue,
                     Tick fill)
{
    if (!out_ || !inWindow(issue, fill))
        return;
    const char *name = write ? "write miss" : "read miss";
    emitPrefix();
    std::fprintf(out_,
                 "{\"name\":\"%s\",\"cat\":\"miss\",\"ph\":\"B\","
                 "\"ts\":%llu,\"pid\":0,\"tid\":%u,"
                 "\"args\":{\"blk\":%llu}}",
                 name, ull(issue), unsigned(n), ull(blk));
    emitPrefix();
    std::fprintf(out_,
                 "{\"name\":\"%s\",\"cat\":\"miss\",\"ph\":\"E\","
                 "\"ts\":%llu,\"pid\":0,\"tid\":%u}",
                 name, ull(fill), unsigned(n));
}

void
ObsManager::instant(const char *name, const char *cat, unsigned tid,
                    Tick t, BlockId blk, bool hasBlk)
{
    if (!inWindow(t, t))
        return;
    emitPrefix();
    if (hasBlk)
        std::fprintf(out_,
                     "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                     "\"s\":\"t\",\"ts\":%llu,\"pid\":0,\"tid\":%u,"
                     "\"args\":{\"blk\":%llu}}",
                     name, cat, ull(t), tid, ull(blk));
    else
        std::fprintf(out_,
                     "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                     "\"s\":\"t\",\"ts\":%llu,\"pid\":0,\"tid\":%u}",
                     name, cat, ull(t), tid);
}

void
ObsManager::specInstant(const char *what, NodeId n, BlockId blk,
                        Tick t)
{
    if (!out_)
        return;
    instant(what, "spec", n, t, blk, true);
}

void
ObsManager::retryInstant(const char *what, NodeId n, BlockId blk,
                         unsigned attempt, Tick t)
{
    if (!out_ || !inWindow(t, t))
        return;
    emitPrefix();
    std::fprintf(out_,
                 "{\"name\":\"%s\",\"cat\":\"retry\",\"ph\":\"i\","
                 "\"s\":\"t\",\"ts\":%llu,\"pid\":0,\"tid\":%u,"
                 "\"args\":{\"blk\":%llu,\"attempt\":%u}}",
                 what, ull(t), unsigned(n), ull(blk), attempt);
}

void
ObsManager::dirInstant(const char *what, NodeId home, BlockId blk,
                       Tick t)
{
    if (!out_)
        return;
    instant(what, "dir", dirTidBase + home, t, blk, true);
}

void
ObsManager::swiSpan(NodeId home, BlockId blk, Tick launch,
                    Tick complete)
{
    if (!out_ || !inWindow(launch, complete))
        return;
    emitPrefix();
    std::fprintf(out_,
                 "{\"name\":\"swi\",\"cat\":\"swi\",\"ph\":\"X\","
                 "\"ts\":%llu,\"dur\":%llu,\"pid\":0,\"tid\":%u,"
                 "\"args\":{\"blk\":%llu}}",
                 ull(launch), ull(complete - launch),
                 dirTidBase + unsigned(home), ull(blk));
}

void
ObsManager::faultInstant(const char *what, NodeId n, Tick t)
{
    if (!out_)
        return;
    instant(what, "fault", n, t, 0, false);
}

void
ObsManager::procInstant(const char *what, NodeId n, Tick t)
{
    if (!out_)
        return;
    instant(what, "proc", n, t, 0, false);
}

void
ObsManager::sampleFired()
{
    takeSample();
    // Re-arm only while other work is pending: the machine's own
    // events drive the run; the sampler must never keep an otherwise
    // drained queue alive.
    if (eq_.pending() > 0)
        eq_.schedule(eq_.curTick() + cfg_.sampleInterval,
                     sampleEvent_);
}

void
ObsManager::takeSample()
{
    IntervalSample s;
    s.tick = eq_.curTick();
    for (const Processor *p : procs_)
        s.ops += p->stats().ops;
    s.messages = net_.messagesSent();
    s.eventsDispatched = eq_.executed();
    for (const PredictorBase *p : preds_) {
        if (!p)
            continue;
        s.predLookups += p->stats().predicted.value();
        s.predHits += p->stats().correct.value();
    }
    for (const CacheCtrl *c : caches_)
        s.outstandingMisses += c->missOutstanding() ? 1 : 0;
    // Every loss-rule drop schedules exactly one retransmit; the gap
    // between the two lifetime counters is the drops still waiting
    // out their reinjection delay.
    s.retransmitsInFlight = net_.linkDrops() - net_.retransmits();
    series_.push_back(s);
}

} // namespace mspdsm
