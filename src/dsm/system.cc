#include "dsm/system.hh"

#include "base/logging.hh"

namespace mspdsm
{

const char *
predKindName(PredKind k)
{
    switch (k) {
      case PredKind::None:
        return "none";
      case PredKind::Cosmos:
        return "Cosmos";
      case PredKind::Msp:
        return "MSP";
      case PredKind::Vmsp:
        return "VMSP";
    }
    panic("unknown PredKind ", int(k));
}

DsmSystem::DsmSystem(const DsmConfig &cfg)
    : cfg_(cfg)
{
    const unsigned n = cfg_.proto.numNodes;
    fatal_if(n == 0 || n > 61, "node count ", n, " unsupported");
    fatal_if(cfg_.spec != SpecMode::None && cfg_.pred != PredKind::Vmsp,
             "read speculation requires the VMSP predictor");

    Rng root(cfg_.proto.seed);
    net_ = std::make_unique<Network>(eq_, cfg_.proto, root.split());
    barrier_ = std::make_unique<GlobalBarrier>(eq_, n,
                                               cfg_.barrierCost);

    auto make_pred = [n](PredKind kind, std::size_t depth)
        -> std::unique_ptr<PredictorBase> {
        switch (kind) {
          case PredKind::None:
            return nullptr;
          case PredKind::Cosmos:
            return std::make_unique<Cosmos>(depth, n);
          case PredKind::Msp:
            return std::make_unique<Msp>(depth, n);
          case PredKind::Vmsp:
            return std::make_unique<Vmsp>(depth, n);
        }
        panic("unknown PredKind");
    };

    preds_.resize(n);
    vmsps_.assign(n, nullptr);
    obs_.resize(n);
    for (unsigned i = 0; i < n; ++i) {
        preds_[i] = make_pred(cfg_.pred, cfg_.historyDepth);
        if (cfg_.pred == PredKind::Vmsp)
            vmsps_[i] = static_cast<Vmsp *>(preds_[i].get());
        for (const ObserverSpec &os : cfg_.observers) {
            fatal_if(os.kind == PredKind::None,
                     "observer must name a predictor");
            obs_[i].push_back(make_pred(os.kind, os.depth));
        }
    }

    for (unsigned i = 0; i < n; ++i) {
        caches_.emplace_back(NodeId(i), eq_, *net_, cfg_.proto)
            .setRetryPolicy(cfg_.retryLimit, cfg_.staleTimeout);
        // Passive observers see the arrival-ordered message stream;
        // the speculation-driving VMSP is fed separately by the
        // directory in service order (see Directory::specObserve).
        std::vector<PredictorBase *> watching;
        for (auto &o : obs_[i])
            watching.push_back(o.get());
        dirs_.emplace_back(NodeId(i), eq_, *net_, cfg_.proto,
                           std::move(watching), vmsps_[i], cfg_.spec);
    }

    // Static delivery sinks: the network routes each delivered
    // message by type to the node's directory or cache controller
    // with direct calls (see Network::deliver), so nothing on the
    // per-message path goes through a std::function.
    for (unsigned i = 0; i < n; ++i)
        net_->attach(NodeId(i), caches_[i], dirs_[i]);

    for (unsigned i = 0; i < n; ++i)
        procs_.emplace_back(NodeId(i), eq_, caches_[i], *barrier_);

    if (!cfg_.faults.empty()) {
        std::vector<CacheCtrl *> cachev;
        std::vector<Directory *> dirv;
        std::vector<Processor *> procv;
        std::vector<std::vector<PredictorBase *>> nodePreds(n);
        for (unsigned i = 0; i < n; ++i) {
            cachev.push_back(&caches_[i]);
            dirv.push_back(&dirs_[i]);
            procv.push_back(&procs_[i]);
            if (preds_[i])
                nodePreds[i].push_back(preds_[i].get());
            for (auto &o : obs_[i])
                nodePreds[i].push_back(o.get());
        }
        faults_ = std::make_unique<FaultManager>(
            eq_, *net_, cfg_.proto, cfg_.faults, std::move(cachev),
            std::move(dirv), std::move(procv), vmsps_,
            std::move(nodePreds));
    }

    if (!cfg_.obs.empty()) {
        // Same gating discipline as the fault layer: an empty config
        // builds nothing and every hook site stays a null check.
        std::vector<CacheCtrl *> cachev;
        std::vector<Processor *> procv;
        std::vector<PredictorBase *> predv;
        for (unsigned i = 0; i < n; ++i) {
            cachev.push_back(&caches_[i]);
            procv.push_back(&procs_[i]);
            predv.push_back(preds_[i].get());
        }
        obsMgr_ = std::make_unique<ObsManager>(
            eq_, *net_, cfg_.proto, cfg_.obs, std::move(cachev),
            std::move(procv), std::move(predv));
        net_->setObs(obsMgr_.get());
        for (unsigned i = 0; i < n; ++i) {
            caches_[i].setObs(obsMgr_.get());
            dirs_[i].setObs(obsMgr_.get());
            procs_[i].setObs(obsMgr_.get());
        }
        if (faults_)
            faults_->setObs(obsMgr_.get());
    }
}

DsmSystem::~DsmSystem() = default;

RunResult
DsmSystem::run(const std::vector<Trace> &traces)
{
    fatal_if(traces.size() != procs_.size(),
             "expected ", procs_.size(), " traces, got ",
             traces.size());
    // The compilation must outlive this call, not just the nested
    // run(): on a TickLimit trip the queue stays resumable
    // (tests/dsm/test_ticklimit.cc) and the pending step events hold
    // CompiledTrace spans into the workload's arena, so it is parked
    // on the system. Replacing a previous run's arena here is safe:
    // no event dispatches between the assignment and Processor::start
    // rebinding every span in the nested run().
    ownedWorkload_ = std::make_unique<const CompiledWorkload>(
        traces, AddrMap(cfg_.proto));
    return run(*ownedWorkload_);
}

RunResult
DsmSystem::run(const CompiledWorkload &w)
{
    fatal_if(w.numTraces() != procs_.size(),
             "expected ", procs_.size(), " traces, got ",
             w.numTraces());
    fatal_if(w.blockSize() != cfg_.proto.blockSize,
             "workload compiled for ", w.blockSize(),
             "-byte blocks, machine uses ", cfg_.proto.blockSize);

    for (std::size_t i = 0; i < procs_.size(); ++i)
        procs_[i].start(w.trace(i));

    verbose("run: ", procs_.size(), " nodes, spec ",
            specModeName(cfg_.spec),
            faults_ ? ", fault plan armed" : "",
            obsMgr_ ? ", instrumented" : "");
    const bool drained = eq_.run(cfg_.tickLimit);
    verbose("run ", drained ? "drained" : "hit the tick limit",
            " at tick ", eq_.endTick(), ", ", net_->messagesSent(),
            " messages, ", eq_.executed(), " events");

    RunResult r;
    if (!drained) {
        // Hitting the deadlock guard is reported, not fatal: sweep
        // harnesses want to record the failure and move to the next
        // configuration. The statistics below are a partial snapshot.
        r.status = RunStatus::TickLimit;
    } else {
        // A drained queue with an unfinished trace cannot make
        // further progress: that is a protocol bug, not a guard trip.
        // Exception: a fault plan that kills a node and never restarts
        // it legitimately wedges the machine (survivors park at the
        // barrier waiting for the dead node); report partial results.
        for (std::size_t i = 0; i < procs_.size(); ++i) {
            if (procs_[i].done())
                continue;
            panic_if(!faults_ || faults_->deadSet().empty(),
                     "processor ", procs_[i].id(),
                     " did not finish its trace");
            r.status = RunStatus::TickLimit;
            break;
        }
    }
    r.execTicks = eq_.endTick();
    r.barrierEpisodes = barrier_->episodes();
    r.messages = net_->messagesSent();
    // Both counters are queue/network lifetime totals, so the ratio
    // stays consistent across fault restarts and resumed runs.
    r.eventsDispatched = eq_.executed();
    r.queueingCycles = net_->queueingCycles();
    r.linkQueueingCycles = net_->linkQueueingCycles();

    if (faults_) {
        r.fault = faults_->outcome();
        for (std::size_t i = 0; i < procs_.size(); ++i)
            r.fault.opsAtEnd += procs_[i].stats().ops;
        for (std::size_t i = 0; i < caches_.size(); ++i) {
            const CacheStats &cs = caches_[i].stats();
            r.fault.retries += cs.retries.value();
            r.fault.nacksSeen += cs.nacks.value();
            r.fault.timeouts += cs.timeouts.value();
            r.fault.staleFills += cs.staleFills.value();
        }
        for (std::size_t i = 0; i < dirs_.size(); ++i)
            r.fault.dirAborts += dirs_[i].stats().faultAborts.value();
        r.fault.linkDrops = net_->linkDrops();
        r.fault.retransmits = net_->retransmits();
    }

    double wait_sum = 0.0;
    double mem_sum = 0.0;
    for (std::size_t i = 0; i < procs_.size(); ++i) {
        wait_sum += static_cast<double>(procs_[i].stats().requestWait);
        mem_sum += static_cast<double>(procs_[i].stats().memWait);
    }
    r.avgRequestWait = wait_sum / static_cast<double>(procs_.size());
    r.avgMemWait = mem_sum / static_cast<double>(procs_.size());

    for (std::size_t i = 0; i < caches_.size(); ++i) {
        const CacheStats &cs = caches_[i].stats();
        r.reads += cs.demandReads.value() + cs.specServedFr.value() +
                   cs.specServedSwi.value();
        r.writes += cs.demandWrites.value();
        r.specServedFr += cs.specServedFr.value();
        r.specServedSwi += cs.specServedSwi.value();
        r.specDropped += cs.specDropped.value();
        // Merge the always-on distributions (bucket-wise sums, so the
        // node iteration order cannot matter).
        r.missLat.merge(cs.readMissLat);
        r.missLat.merge(cs.writeMissLat);
        r.specUseDist.merge(cs.specUseDist);
        r.retryDepth.merge(cs.retryDepth);
    }
    r.missLatP50 = r.missLat.percentile(50.0);
    r.missLatP90 = r.missLat.percentile(90.0);
    r.missLatP99 = r.missLat.percentile(99.0);

    // Aggregate a predictor family (one instance per node) into one
    // PredStats/StorageReport pair; byte overhead is linear in the
    // entry count, so the weighted average is exact.
    auto aggregate = [this](auto &&instance_of_node, PredStats &ps,
                            StorageReport &st) {
        double bytes_weighted = 0.0;
        for (std::size_t i = 0; i < dirs_.size(); ++i) {
            PredictorBase *p = instance_of_node(i);
            if (!p)
                continue;
            const PredStats &s = p->stats();
            ps.observed.inc(s.observed.value());
            ps.predicted.inc(s.predicted.value());
            ps.correct.inc(s.correct.value());
            const StorageReport sr = p->storage();
            st.pteTotal += sr.pteTotal;
            st.blocksAllocated += sr.blocksAllocated;
            bytes_weighted += sr.avgBytesPerBlock *
                              static_cast<double>(sr.blocksAllocated);
        }
        if (st.blocksAllocated > 0) {
            st.avgPte = static_cast<double>(st.pteTotal) /
                        static_cast<double>(st.blocksAllocated);
            st.avgBytesPerBlock =
                bytes_weighted /
                static_cast<double>(st.blocksAllocated);
        }
    };

    for (std::size_t i = 0; i < dirs_.size(); ++i) {
        const SpecStats &ss = dirs_[i].specStats();
        r.specSentFr += ss.specSentFr.value();
        r.specSentSwi += ss.specSentSwi.value();
        r.specMissFr += ss.specMissFr.value();
        r.specMissSwi += ss.specMissSwi.value();
        r.swiSent += ss.swiSent.value();
        r.swiPremature += ss.swiPremature.value();
        r.swiSuppressed += ss.swiSuppressed.value();
        r.swiLat.merge(ss.swiLat);
    }

    if (obsMgr_) {
        // Close the trace sink now (not at system destruction) so a
        // caller can validate the file as soon as run() returns.
        obsMgr_->finish();
        r.seriesInterval = obsMgr_->config().sampleInterval;
        r.series = obsMgr_->series();
    }

    aggregate([this](std::size_t i) { return preds_[i].get(); },
              r.pred, r.storage);

    for (std::size_t k = 0; k < cfg_.observers.size(); ++k) {
        ObserverResult orr;
        orr.depth = cfg_.observers[k].depth;
        orr.name = predKindName(cfg_.observers[k].kind);
        aggregate(
            [this, k](std::size_t i) { return obs_[i][k].get(); },
            orr.stats, orr.storage);
        r.observers.push_back(std::move(orr));
    }
    return r;
}

} // namespace mspdsm
