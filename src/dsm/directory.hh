/**
 * @file
 * Per-node home directory: full-map write-invalidate protocol FSM
 * (paper Section 2 / Figure 1) with the predictor observation hooks
 * and the speculation engine (Section 4) layered on top.
 *
 * Design rules carried over from the paper:
 *  - the predictor only *observes* incoming messages and *advises*
 *    the directory to perform existing operations early; no protocol
 *    transition is added for speculation;
 *  - speculatively pushed read-only copies are tracked as ordinary
 *    sharers, so a later write invalidates them through the normal
 *    path, and the invalidation acknowledgement piggy-backs the
 *    reference bit used for verification;
 *  - a misspeculated (unreferenced) push removes the offending
 *    pattern-table entry; a premature SWI sets the per-entry
 *    premature bit that suppresses future early invalidations for
 *    that write.
 *
 * The directory serializes transactions per block: requests arriving
 * while a transaction is in flight are deferred in arrival order.
 * Predictors still observe messages at *arrival*, which is the stream
 * the paper's predictors see.
 */

#ifndef MSPDSM_DSM_DIRECTORY_HH
#define MSPDSM_DSM_DIRECTORY_HH

#include <algorithm>
#include <deque>
#include <vector>

#include "base/bitvector.hh"
#include "base/chunked_vector.hh"
#include "base/flat_map.hh"
#include "base/types.hh"
#include "net/network.hh"
#include "pred/predictor.hh"
#include "pred/vmsp.hh"
#include "proto/config.hh"
#include "proto/msg.hh"
#include "sim/eventq.hh"
#include "spec/spec.hh"

namespace mspdsm
{

class ObsManager;

/** Directory states; Busy* are the transient transaction states. */
enum class DirState : std::uint8_t
{
    Idle,
    Shared,
    Excl,
    BusyService, //!< lookup/memory latency before a reply
    BusyInval,   //!< collecting invalidation acks for a write grant
    BusyRecall,  //!< awaiting a writeback (demand or SWI recall)
};

/** Directory-side statistics. */
struct DirStats
{
    Counter reqGetS;    //!< read requests received
    Counter reqGetX;    //!< write requests received
    Counter reqUpgrade; //!< upgrade requests received
    Counter recalls;    //!< demand recalls issued
    Counter invals;     //!< invalidations issued

    // Fault layer; zero in fault-free runs.
    Counter faultAborts; //!< grants abandoned: requester died mid-flight
};

/**
 * The home directory of one node.
 */
class Directory
{
  public:
    /**
     * @param id this node
     * @param eq shared event queue
     * @param net interconnect
     * @param cfg machine configuration
     * @param observers predictors observing this directory's incoming
     *        messages; several can observe one run (they are passive)
     * @param vmsp the predictor driving speculation (must also be in
     *        @p observers so its state advances), or null
     * @param mode speculation mode
     */
    Directory(NodeId id, EventQueue &eq, Network &net,
              const ProtoConfig &cfg,
              std::vector<PredictorBase *> observers, Vmsp *vmsp,
              SpecMode mode);

    /** Network-side handler for requests and acknowledgements. */
    void handle(const CohMsg &msg) { handle(msg, eq_.curTick()); }

    /**
     * handle() as of tick @p base >= curTick(): the fused delivery
     * fast path hands messages over ahead of the clock (legal only
     * while nothing else can fire first); all service latencies and
     * sends this triggers are anchored on @p base.
     */
    void handle(const CohMsg &msg, Tick base);

    /** Protocol statistics. */
    const DirStats &stats() const { return stats_; }

    /** Speculation statistics. */
    const SpecStats &specStats() const { return specStats_; }

    /** Directory state of a block, for tests. */
    DirState blockState(BlockId blk) const;

    /** Sharer set of a block, for tests. */
    NodeSet sharersOf(BlockId blk) const;

    /** Owner of a block (invalidNode when none), for tests. */
    NodeId ownerOf(BlockId blk) const;

    // ---- Fault layer (dsm/fault.hh). All optional: a directory with
    // ---- no fault wiring behaves exactly as before.

    /**
     * Attach the fault layer. With it attached, write transactions
     * record the requester's restart epoch so a grant whose requester
     * died (or died and restarted) mid-flight is abandoned instead of
     * wedging the block on a dead owner, and speculative pushes skip
     * dead consumers.
     */
    void setFaults(FaultManager *f) { faults_ = f; }

    /** Attach the observability layer (dsm/system.cc; may be null). */
    void setObs(ObsManager *o) { obs_ = o; }

    /** Share the fault layer's home re-mapping table. */
    void setHomeRemap(const NodeId *table) { map_.setRemap(table); }

    /**
     * Fail-stop this directory: cancel every pending directory event
     * and drop all entry state. The shard is subsequently served by
     * the backup home (re-map table), reconstructed via adopt().
     */
    void failover();

    /**
     * Backup-side reconstruction: record that surviving node
     * @p holder caches @p blk (@p modified selects Excl-owner vs
     * sharer). Survivors' shards are disjoint from ours, so adopted
     * entries never collide with native ones.
     */
    void adopt(BlockId blk, NodeId holder, bool modified);

    /**
     * Surviving-directory sweep after node @p v fail-stops at
     * @p base: drop @p v's deferred requests, prune it from sharer
     * sets and speculation targets, release blocks it owned, absorb
     * the writeback of a recall it can no longer answer, and stop
     * waiting for its invalidation acks (completing the write
     * transaction if it was the last one).
     */
    void pruneDead(NodeId v, Tick base);

    /**
     * Fail-back: drop every entry of geometric shard @p home that
     * this directory was hosting as the interim backup, cancelling
     * the shard's pending due-actions. In-flight transactions are
     * aborted (counted as faultAborts); their requesters recover
     * through the bounded-retry FSM, which re-resolves the home to
     * the restarted victim.
     */
    void releaseShard(NodeId home);

  private:
    /**
     * Cold half of a directory entry, arena-allocated on first use
     * (see Entry). Holds the deferral queue and the speculation/SWI
     * bookkeeping -- state the coherence FSM does not touch while a
     * block cycles through its steady-state Idle/Shared/Excl
     * transitions.
     */
    struct ColdEntry
    {
        std::deque<CohMsg> deferred;

        // Read-phase speculation state.
        bool phaseTriggered = false;
        SpecTrigger phaseTrig = SpecTrigger::None;
        NodeSet specSent;
        HistoryKey specKey;
        bool specKeyValid = false;
        bool misspecPenalized = false;

        // SWI premature-detection epoch.
        bool swiEpoch = false;
        NodeId swiExOwner = invalidNode;
        HistoryKey swiWriteKey;
        bool swiWriteKeyValid = false;
        bool swiVerdictPending = false; //!< ex-owner wrote again;
                                        //!< judge at grant time
        bool specAnyUsed = false; //!< any consumer progress since SWI
        /**
         * Premature hysteresis: while learning, a block's reader
         * vector can change between premature episodes (robbed reads
         * perturb it), moving the pattern-table premature bit to a
         * different entry and letting SWI retry every round. A
         * premature verdict therefore also backs the *block* off for
         * a number of write completions; stable patterns keep their
         * entry bit and stay suppressed beyond the backoff.
         */
        unsigned swiBackoff = 0;
        unsigned swiPrematureCount = 0; //!< escalates the backoff
        Tick swiLaunch = 0; //!< trySwi tick (SWI latency accounting)

        // Fault layer (only written with a FaultManager attached).
        NodeSet ackWait; //!< nodes whose InvAck is still outstanding
        std::uint8_t curReqEpoch = 0; //!< requester epoch at request
    };

    /**
     * Hot half of a directory entry: exactly the fields busy() /
     * canProcess() / the protocol handlers walk on every message.
     * This is the FlatMap slot the FSM probes, so it stays small
     * (~5x under the former monolithic entry, which dragged two
     * deque headers and two HistoryKeys through cache per probe);
     * everything else hangs off the arena-allocated cold record,
     * attached the first time a block defers a request or
     * participates in speculation.
     */
    struct Entry
    {
        NodeSet sharers;
        ColdEntry *cold = nullptr;
        int pendingAcks = 0;
        int repliesInFlight = 0; //!< read replies being serviced
        NodeId owner = invalidNode;
        NodeId curReq = invalidNode;
        DirState state = DirState::Idle;

        // In-flight transaction.
        MsgType curType = MsgType::GetS;
        bool curUpgradeGrant = false;
        bool curIsSwi = false;
        bool curRemote = false; //!< transaction touched other nodes
        SymKind curWriteSym = SymKind::Write; //!< as the requester
                                              //!< sent it (GetX/Upg)

        /** Deferred requests pending (checked on every message). */
        bool
        hasDeferred() const
        {
            return cold && !cold->deferred.empty();
        }
    };

    static_assert(sizeof(Entry) == 40,
                  "the hot directory entry is probed per handled "
                  "message and is pinned at 40 bytes; move any new "
                  "state to ColdEntry rather than re-bloating it");


    /** A deferred directory action's discriminator. */
    enum class ActKind : std::uint8_t
    {
        Send,        //!< hand msg to the network
        ReadReply,   //!< GetS service done: reply to msg.dst
        Grant,       //!< write transaction done: grant exclusive
        WbGetS,      //!< writeback absorbed for a pending GetS
        SwiComplete, //!< SWI writeback absorbed
    };

    /**
     * One deferred FSM action in this home's due-queue. The embedded
     * CohMsg carries either the full message (Send) or just the
     * block/requester fields the other kinds need. `seq` breaks
     * same-tick ties in schedule order, which is exactly the
     * event-queue FIFO the per-action pooled events gave.
     */
    struct DueAction
    {
        Tick due;
        std::uint64_t seq;
        ActKind kind;
        CohMsg msg;
    };

    /**
     * The home's single flush event: fires at the earliest pending
     * due tick and dispatches *every* action due at that tick in one
     * dispatch -- a transaction's service completion, grant, and
     * writeback absorption that land on the same tick no longer cost
     * one event each. The ingress-drain trick, applied to the FSM.
     */
    struct FlushEvent final : public Event
    {
        explicit FlushEvent(Directory *d) : dir(d) {}

        void process() override { dir->flushFired(); }

        Directory *dir;
    };

    /** Dispatch every due action; re-arm at the next due tick. */
    void flushFired();

    /** Run one popped action with the clock at its due tick. */
    void dispatch(ActKind kind, const CohMsg &msg, Tick base);

    /**
     * Shard replication hook, called whenever a transaction leaves
     * @p blk's entry in a new stable state: mirror the entry at the
     * fault layer (which batches the ShardSync traffic). Free when
     * FaultPlan::replicateShards is off -- one predictable branch.
     */
    void replicate(Entry &e, BlockId blk, Tick base);

    /**
     * Arm the flush event for @p t, keeping an already-armed earlier
     * tick (the flush re-arms itself exactly when it fires early).
     */
    void
    armFlush(Tick t)
    {
        if (flush_.scheduled()) {
            if (flush_.when() <= t)
                return;
            eq_.deschedule(flush_);
        }
        eq_.schedule(t, flush_);
    }

    /** Queue a deferred action of @p kind at absolute tick @p when.
     * The queue is a sorted vector (see dueQ_): the common push
     * appends, and mixed service latencies that land out of order
     * insert by a short scan from the back. Seq ties are impossible
     * (dueSeq_ is unique and increasing) and equal dues sort the
     * newcomer last, so scanning on strict due keeps FIFO order. */
    void
    scheduleKind(ActKind kind, Tick when, const CohMsg &msg)
    {
        const DueAction a{when, dueSeq_++, kind, msg};
        if (dueQ_.size() > dueHead_ && when < dueQ_.back().due)
            [[unlikely]] {
            auto it = dueQ_.end();
            const auto first = dueQ_.begin() +
                               static_cast<std::ptrdiff_t>(dueHead_);
            while (it != first && when < (it - 1)->due)
                --it;
            dueQ_.insert(it, a);
        } else {
            dueQ_.push_back(a);
        }
        armFlush(when);
    }

    /** A CohMsg carrying only the block id (due-queue payloads). */
    static CohMsg
    blkMsg(BlockId blk)
    {
        CohMsg m;
        m.blk = blk;
        return m;
    }

    /**
     * The directory-side fused fast path's guard: a deferred action
     * whose fire tick is already known may run immediately -- with
     * that tick as its timing base -- iff nothing else can fire at or
     * before it (strictly, so an event scheduled earlier for the same
     * tick keeps priority). Under the guard the action's side effects
     * and its schedules/sends are observed by the rest of the machine
     * exactly as from the pooled-event path, one event dispatch
     * cheaper; when the guard fails the caller falls back to
     * scheduleKind(), which is the pre-fusion behaviour tick for
     * tick. The same argument as Processor::step()'s fused run.
     */
    bool
    canRunAt(Tick when)
    {
        // Exact guard: a false decline costs a due-queue round trip
        // and a flush dispatch, which dwarf one bitmap scan.
        return eq_.canFuseBeforeExact(when);
    }

    /**
     * Gate for running a deferred FSM action inline: the horizon
     * guard (canRunAt) plus an empty deferral queue -- deferred
     * requests are logically-earlier work invisible to the event
     * queue, and an inline action must never run ahead of them.
     * Notes the watermark on success.
     */
    bool
    fuseAt(const Entry &e, Tick when)
    {
        if (e.hasDeferred() || !canRunAt(when))
            return false;
        eq_.noteFused(when);
        return true;
    }

    /** GetS service finished: send the data, trigger speculation. */
    void readReplyFired(BlockId blk, NodeId reader, Tick base);

    /** Writeback for a demand GetS absorbed: share to the requester. */
    void wbGetSFired(BlockId blk, Tick base);

    /**
     * Find-or-create the block's entry, memoizing the most recent
     * block: a transaction's request, acks, and grant all address the
     * same entry back to back, so the repeat probe is the common
     * case. The memo is re-assigned from the fresh lookup on every
     * miss, so a rehash (which only ever happens inside this call)
     * can never leave it dangling.
     */
    Entry &
    entry(BlockId blk)
    {
        if (memoEntry_ && memoBlk_ == blk)
            return *memoEntry_;
        Entry &e = entries_[blk];
        memoBlk_ = blk;
        memoEntry_ = &e;
        return e;
    }

    /**
     * The entry's cold record, created on first use. Cold records
     * live in an arena with stable addresses, so the pointer survives
     * FlatMap rehashes (which copy the hot entry by value).
     */
    ColdEntry &
    cold(Entry &e)
    {
        if (!e.cold)
            e.cold = &coldArena_.emplace_back();
        return *e.cold;
    }

    /**
     * Read-only view of the cold record for paths that must not
     * allocate one: a block that never deferred or speculated reads
     * the shared all-defaults instance.
     */
    static const ColdEntry &
    coldView(const Entry &e)
    {
        static const ColdEntry defaults;
        return e.cold ? *e.cold : defaults;
    }

    static bool
    busy(const Entry &e)
    {
        return e.state == DirState::BusyService ||
               e.state == DirState::BusyInval ||
               e.state == DirState::BusyRecall;
    }

    /**
     * Reads pipeline through the directory (state is updated at
     * request processing; only the data reply is in flight), so
     * further reads may proceed while replies are pending. Writes
     * must wait for in-flight read replies: the pair-FIFO network
     * then guarantees an invalidation can never overtake the data it
     * invalidates.
     */
    static bool
    canProcess(const Entry &e, MsgType t)
    {
        if (busy(e))
            return false;
        return t == MsgType::GetS || e.repliesInFlight == 0;
    }

    /**
     * Present an incoming message to the passive observers (arrival
     * order -- the stream the paper's accuracy studies measure).
     */
    void observe(const CohMsg &msg);

    /**
     * Feed the speculation-driving VMSP. Unlike the passive
     * observers, it sees the block's *service* order, and the write
     * observation is deferred to grant time so that speculatively
     * served reads -- which never appear as request messages -- can
     * first be credited into the open reader vector from the
     * reference bits piggy-backed on this write's invalidation
     * acknowledgements (Section 4.2 verification). Without this
     * feedback, successful speculation would erase the very pattern
     * it relies on.
     */
    void specObserve(BlockId blk, SymKind kind, NodeId src);

    // The protocol handlers below take the tick they logically run at
    // (@p base): the event queue's clock when invoked from a message
    // delivery or a pooled event, or a future tick when reached
    // through the fused fast path under canRunAt()'s guard. All their
    // timing -- service latencies, message injection -- is relative
    // to that base.
    void processRequest(Entry &e, const CohMsg &msg, Tick base);
    void onGetS(Entry &e, const CohMsg &msg, Tick base);
    void onWrite(Entry &e, const CohMsg &msg, bool upgrade_grant,
                 Tick base);
    void onInvAck(Entry &e, const CohMsg &msg, Tick base);
    void onWriteBack(Entry &e, const CohMsg &msg, Tick base);

    /**
     * The state machinery of onWriteBack, minus the arrival checks:
     * also invoked by pruneDead() to absorb, at kill time, the
     * writeback a dead owner can no longer send.
     */
    void absorbWriteBack(Entry &e, BlockId blk, Tick base);

    /** Grant exclusive ownership at the end of a write transaction. */
    void grantExcl(Entry &e, BlockId blk, Tick base);

    /** Process deferred requests until busy again or empty. */
    void drain(BlockId blk, Tick base);

    /** Send a message from this node at tick @p when. */
    void sendAt(Tick when, CohMsg msg);

    // --- Speculation (Section 4) -------------------------------------

    /** True iff read speculation is configured and a VMSP is attached. */
    bool specEnabled() const { return mode_ != SpecMode::None && vmsp_; }

    /** SWI bookkeeping when a write transaction completes. */
    void writeCompleted(BlockId blk, NodeId writer, Tick base);

    /** Attempt a speculative write invalidation of @p blk owned by
     * @p writer (called when the writer moves on to another block). */
    void trySwi(BlockId blk, NodeId writer, Tick base);

    /** SWI recall finished: push predicted readers, open the epoch. */
    void completeSwi(Entry &e, BlockId blk, Tick base);

    /** First-Read trigger after serving a read for @p reader. */
    void frCheck(Entry &e, BlockId blk, NodeId reader, Tick base);

    /** Push speculative copies to @p targets at tick @p when. */
    void pushSpec(Entry &e, BlockId blk, NodeSet targets,
                  SpecTrigger trig, const HistoryKey &key, Tick when);

    /** Premature-SWI detection at request arrival (Section 4.1). */
    void prematureCheck(const CohMsg &msg);

    /** Record a premature verdict: entry bits + block backoff. */
    void markPremature(Entry &e, BlockId blk);

    /** Verify a speculative copy from piggy-backed reference state. */
    void verifyCopy(Entry &e, BlockId blk, const CohMsg &msg);

    NodeId id_;
    EventQueue &eq_;
    Network &net_;
    const ProtoConfig &cfg_;
    AddrMap map_; //!< divide-free homeOf snapshot of cfg_
    std::vector<PredictorBase *> observers_;
    Vmsp *vmsp_;
    SpecMode mode_;
    SwiTable swiTable_;
    /** Deferred actions sorted ascending by (due, seq) from
     * dueHead_ on; [0, dueHead_) is the dispatched prefix, reclaimed
     * when the queue drains empty (keeping capacity) or compacted
     * once it outgrows a small bound -- the same consumed-prefix
     * discipline as the network's local queue. */
    std::vector<DueAction> dueQ_;
    std::size_t dueHead_ = 0;  //!< first pending dueQ_ entry
    std::uint64_t dueSeq_ = 0; //!< same-tick FIFO sequencer
    FlushEvent flush_{this};
    FlatMap<BlockId, Entry> entries_;
    BlockId memoBlk_ = 0;
    Entry *memoEntry_ = nullptr;
    //! Cold records, attached on demand; addresses are stable.
    ChunkedVector<ColdEntry> coldArena_;
    FaultManager *faults_ = nullptr; //!< fault layer; null = fault-free
    ObsManager *obs_ = nullptr; //!< observability; null = untraced
    DirStats stats_;
    SpecStats specStats_;
};

} // namespace mspdsm

#endif // MSPDSM_DSM_DIRECTORY_HH
