/**
 * @file
 * Deterministic fault injection and recovery (the robustness layer).
 *
 * A FaultPlan is a fixed schedule of node fail-stops, restarts, and
 * predictor-state losses, executed by the FaultManager as ordinary
 * events on the simulation's event queue -- so fault runs are exactly
 * as deterministic and repeatable as fault-free ones. The machine
 * model:
 *
 *  - A *kill* fail-stops the node: its processor halts (rewinding any
 *    op in flight), its cache loses every line, and its home
 *    directory shard re-homes to a configured backup node by a swap
 *    in the shared AddrMap indirection table (a table write, not a
 *    geometry rebuild). The backup reconstructs the shard's directory
 *    state from the surviving caches -- the same sharing information
 *    a real recovery protocol would collect -- while every surviving
 *    directory prunes the dead node from its own bookkeeping. All of
 *    the victim's in-flight traffic is lost: sends are stamped with
 *    the sender's restart epoch and the network drops stale-epoch
 *    messages at delivery; messages *to* the dead node are dropped,
 *    or bounced as a Nack when they are requests, feeding the cache
 *    controllers' bounded timeout-and-retry FSM.
 *  - A *restart* resumes the victim's processor with a cold cache
 *    (and a bumped epoch, so pre-crash stragglers stay dead). The
 *    directory shard stays at the backup -- there is no fail-back.
 *  - Predictor state at the victim is lost on a kill (restart is
 *    cold) unless the plan enables *warm restart*: the manager then
 *    checkpoints the victim's VMSP every ckptInterval ticks, sending
 *    the replication traffic over the real interconnect (CkptData),
 *    and merges the last checkpoint into the backup's predictor at
 *    kill time -- the replication-cost axis of the fault experiments.
 *
 * A machine without a FaultPlan never constructs a FaultManager and
 * runs bit-identically to the pre-fault-layer code.
 */

#ifndef MSPDSM_DSM_FAULT_HH
#define MSPDSM_DSM_FAULT_HH

#include <memory>
#include <vector>

#include "base/bitvector.hh"
#include "base/chunked_vector.hh"
#include "base/types.hh"
#include "pred/vmsp.hh"
#include "proto/config.hh"
#include "sim/eventq.hh"

namespace mspdsm
{

class CacheCtrl;
class Directory;
class Network;
class Processor;

/** What happens to a node at a scheduled fault tick. */
enum class FaultKind : std::uint8_t
{
    Kill,     //!< fail-stop: processor, cache, and directory shard
    Restart,  //!< resume the processor, cold cache, bumped epoch
    PredLoss, //!< drop the node's predictor state only (no crash)
};

/** One scheduled fault. */
struct FaultEvent
{
    Tick tick = 0;
    NodeId node = invalidNode;
    FaultKind kind = FaultKind::Kill;
};

/** A full fault schedule plus its recovery policy. */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    /**
     * Node adopting a victim's directory shard; invalidNode selects
     * (victim + 1) % numNodes. Deliberately allowed to equal the
     * victim: retries then keep bouncing off the dead node until the
     * cache controller's bounded-retry FSM gives up -- the
     * retry-exhaustion path the tests exercise.
     */
    NodeId backup = invalidNode;

    /** Merge the last predictor checkpoint into the backup on kill. */
    bool warmRestart = false;

    /** Checkpoint period, ticks; 0 disables checkpointing. */
    Tick ckptInterval = 0;

    bool empty() const { return events.empty(); }
};

/**
 * Aggregated fault/recovery outcome of one run; all-zero (with
 * faulted == false) when no FaultPlan was configured, so the sweep
 * JSON schema stays uniform.
 */
struct FaultOutcome
{
    bool faulted = false;      //!< a FaultPlan was configured

    Tick killTick = 0;         //!< last Kill fired
    Tick restartTick = 0;      //!< last Restart fired
    Tick recoveredTick = 0;    //!< victim's first post-restart step

    std::uint64_t opsAtKill = 0;    //!< machine-wide ops when killed
    std::uint64_t opsAtRestart = 0; //!< ... and when restarted
    std::uint64_t opsAtEnd = 0;     //!< ... and when the run drained
                                    //!< (filled by DsmSystem::run)

    std::uint64_t staleDropped = 0; //!< pre-crash messages dropped
    std::uint64_t deadDropped = 0;  //!< non-requests to a dead node
    std::uint64_t nacksSent = 0;    //!< requests bounced off the dead
    std::uint64_t rehomeSyncs = 0;  //!< reconstruction sync messages
    std::uint64_t ckptSnapshots = 0; //!< predictor checkpoints taken
    std::uint64_t ckptMessages = 0;  //!< CkptData replication messages
    std::uint64_t predLosses = 0;    //!< PredLoss events fired

    // Cache-side retry FSM, summed over nodes (system.cc fills these
    // from CacheStats at run end).
    std::uint64_t retries = 0;
    std::uint64_t nacksSeen = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t staleFills = 0;
    std::uint64_t dirAborts = 0; //!< grants abandoned at directories
};

/**
 * Executes a FaultPlan against an assembled machine. Constructed by
 * DsmSystem only when the plan is non-empty; construction wires the
 * network's epoch screen, every node's home re-map table, the cache
 * retry FSMs, and the processors' progress reporting.
 */
class FaultManager
{
  public:
    /**
     * @param eq the machine's event queue
     * @param net the interconnect (epoch stamping/screening)
     * @param cfg machine configuration (geometry)
     * @param plan the fault schedule; must be non-empty
     * @param caches,dirs,procs per-node agents, index == NodeId
     * @param vmsps per-node speculation VMSPs (entries may be null)
     * @param nodePreds all predictors resident at each node (the
     *        speculation VMSP and passive observers); reset on kill
     */
    FaultManager(EventQueue &eq, Network &net, const ProtoConfig &cfg,
                 FaultPlan plan, std::vector<CacheCtrl *> caches,
                 std::vector<Directory *> dirs,
                 std::vector<Processor *> procs,
                 std::vector<Vmsp *> vmsps,
                 std::vector<std::vector<PredictorBase *>> nodePreds);

    FaultManager(const FaultManager &) = delete;
    FaultManager &operator=(const FaultManager &) = delete;

    // ---- Hot-path queries (network delivery screen, directories).

    /** Restart epoch of node @p n (bumped once per kill). */
    std::uint8_t epoch(NodeId n) const { return epoch_[n]; }

    /** True while node @p n is fail-stopped. */
    bool dead(NodeId n) const { return deadSet_.contains(n); }

    /** The currently dead nodes (speculation target filtering). */
    NodeSet deadSet() const { return deadSet_; }

    // ---- Delivery-screen accounting (network).

    void noteStaleDropped() { ++outcome_.staleDropped; }
    void noteDeadDropped() { ++outcome_.deadDropped; }
    void noteNackSent() { ++outcome_.nacksSent; }

    /** A restarted processor's first step() dispatch at tick @p t. */
    void noteProgress(NodeId n, Tick t);

    /** Outcome so far (final after the run drains). */
    const FaultOutcome &outcome() const { return outcome_; }

  private:
    /** One scheduled plan entry riding the event queue. */
    struct PlanEvent final : public Event
    {
        PlanEvent(FaultManager *m, FaultKind k, NodeId n)
            : mgr(m), kind(k), node(n)
        {}

        void process() override { mgr->planFired(*this); }

        FaultManager *mgr;
        FaultKind kind;
        NodeId node;
    };

    /** The periodic predictor-checkpoint timer. */
    struct CkptEvent final : public Event
    {
        explicit CkptEvent(FaultManager *m) : mgr(m) {}

        void process() override { mgr->checkpointFired(); }

        FaultManager *mgr;
    };

    void planFired(PlanEvent &e);
    void killNode(NodeId v);
    void restartNode(NodeId v);
    void predLoss(NodeId v);
    void checkpointFired();

    /** Re-derive the fusion ceiling from still-pending plan events. */
    void updateHorizon();

    /** The node adopting @p v's shard under this plan. */
    NodeId backupFor(NodeId v) const;

    /** Machine-wide executed-op total (phase-throughput sampling). */
    std::uint64_t totalOps() const;

    /** True while any Kill entry is still scheduled. */
    bool killsPending() const;

    EventQueue &eq_;
    Network &net_;
    const ProtoConfig &cfg_;
    AddrMap map_; //!< geometric homes for shard reconstruction
    FaultPlan plan_;
    std::vector<CacheCtrl *> caches_;
    std::vector<Directory *> dirs_;
    std::vector<Processor *> procs_;
    std::vector<Vmsp *> vmsps_;
    std::vector<std::vector<PredictorBase *>> nodePreds_;

    std::vector<NodeId> remap_;       //!< shared per-home indirection
    std::vector<std::uint8_t> epoch_; //!< per-node restart epoch
    NodeSet deadSet_;

    ChunkedVector<PlanEvent> planEvents_; //!< stable addresses
    CkptEvent ckptEvent_{this};
    //! Latest predictor checkpoint per node (warm-restart source).
    std::vector<std::unique_ptr<Vmsp::Snapshot>> ckpts_;

    bool awaitingProgress_ = false; //!< restart fired, no step yet
    FaultOutcome outcome_;
};

} // namespace mspdsm

#endif // MSPDSM_DSM_FAULT_HH
