/**
 * @file
 * Deterministic fault injection and recovery (the robustness layer).
 *
 * A FaultPlan is a fixed schedule of node fail-stops, restarts, and
 * predictor-state losses, executed by the FaultManager as ordinary
 * events on the simulation's event queue -- so fault runs are exactly
 * as deterministic and repeatable as fault-free ones. The machine
 * model:
 *
 *  - A *kill* fail-stops the node: its processor halts (rewinding any
 *    op in flight), its cache loses every line, and its home
 *    directory shard re-homes to a backup node by a swap in the
 *    shared AddrMap indirection table (a table write, not a geometry
 *    rebuild). The backup installs the shard's directory state either
 *    from the surviving caches (the default survivor sweep -- the
 *    same sharing information a real recovery protocol would collect)
 *    or, with replicateShards, directly from the shard mirror the
 *    home streamed to it as batched ShardSync deltas during normal
 *    operation. Every surviving directory prunes the dead node from
 *    its own bookkeeping. All of the victim's in-flight traffic is
 *    lost: sends are stamped with the sender's restart epoch and the
 *    network drops stale-epoch messages at delivery; messages *to*
 *    the dead node are dropped, or bounced as a Nack when they are
 *    requests, feeding the cache controllers' bounded
 *    timeout-and-retry FSM.
 *  - Several nodes may be down at once, and a backup may itself be
 *    killed while hosting re-homed shards: every shard the dead
 *    backup was serving re-homes again to the next live node in a
 *    deterministic succession order (the first live node after the
 *    shard's geometric home, wrapping), and reconstruction re-runs
 *    against the new host.
 *  - A *restart* resumes the victim's processor with a cold cache
 *    (and a bumped epoch, so pre-crash stragglers stay dead) and
 *    *fails back*: the victim re-adopts its original directory shard
 *    through the same indirection table, the interim host releases
 *    the shard's entries, and in-flight messages still aimed at the
 *    interim host are screened at delivery (bounced as Nacks when
 *    they are requests), so the retry FSM re-resolves the home.
 *  - Predictor state at the victim is lost on a kill (restart is
 *    cold) unless the plan enables *warm restart*: the manager then
 *    checkpoints the victim's VMSP every ckptInterval ticks, sending
 *    the replication traffic over the real interconnect (CkptData),
 *    merges the last checkpoint into the backup's predictor at kill
 *    time, and into the victim's own predictor again at fail-back --
 *    the replication-cost axis of the fault experiments.
 *  - *Lossy links*: the plan may carry a deterministic per-link drop
 *    schedule ({tick-range, link, drop-every-Nth}). The network's
 *    transport layer (net/network.hh) recovers each dropped crossing
 *    with a timeout-and-retransmit, bounded by a retransmit budget
 *    whose exhaustion is a structured fatal.
 *
 * A machine without a FaultPlan never constructs a FaultManager and
 * runs bit-identically to the pre-fault-layer code.
 */

#ifndef MSPDSM_DSM_FAULT_HH
#define MSPDSM_DSM_FAULT_HH

#include <map>
#include <memory>
#include <vector>

#include "base/bitvector.hh"
#include "base/chunked_vector.hh"
#include "base/types.hh"
#include "pred/vmsp.hh"
#include "proto/config.hh"
#include "sim/eventq.hh"

namespace mspdsm
{

class CacheCtrl;
class Directory;
class Network;
class ObsManager;
class Processor;

/** What happens to a node at a scheduled fault tick. */
enum class FaultKind : std::uint8_t
{
    Kill,     //!< fail-stop: processor, cache, and directory shard
    Restart,  //!< resume the processor, cold cache, bumped epoch
    PredLoss, //!< drop the node's predictor state only (no crash)
};

/** One scheduled fault. */
struct FaultEvent
{
    Tick tick = 0;
    NodeId node = invalidNode;
    FaultKind kind = FaultKind::Kill;
};

/**
 * One deterministic link-loss rule: while curTick is in [from, to),
 * every everyNth-th message crossing directed link @p link is
 * dropped (crossings are counted per rule, in injection order, so
 * the schedule is exactly repeatable). everyNth == 1 drops every
 * crossing -- the retransmit-budget-exhaustion path.
 */
struct LinkLossRule
{
    Tick from = 0;
    Tick to = maxTick;
    std::uint32_t link = 0; //!< directed LinkId (topo/topology.hh)
    unsigned everyNth = 0;  //!< 0 disables the rule
};

/** A full fault schedule plus its recovery policy. */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    /**
     * Node adopting a victim's directory shard; invalidNode selects
     * the deterministic succession order (the first live node after
     * the victim, wrapping). An explicit backup is honored verbatim
     * and is deliberately allowed to equal the victim: retries then
     * keep bouncing off the dead node until the cache controller's
     * bounded-retry FSM gives up -- the retry-exhaustion path the
     * tests exercise.
     */
    NodeId backup = invalidNode;

    /** Merge the last predictor checkpoint into the backup on kill. */
    bool warmRestart = false;

    /** Checkpoint period, ticks; 0 disables checkpointing. */
    Tick ckptInterval = 0;

    /**
     * Stream incremental directory-shard deltas (batched ShardSync
     * messages over the real interconnect) from every home to its
     * designated backup, so failover installs the replicated shard
     * mirror instead of sweeping the survivors' caches.
     */
    bool replicateShards = false;

    /** Deterministic per-link message-drop schedule. */
    std::vector<LinkLossRule> linkLoss;

    /** Retransmits per message before the transport gives up. */
    unsigned retransmitBudget = 8;

    /** Ack-timeout before a dropped crossing is retransmitted. */
    Tick retransmitDelay = 400;

    bool empty() const { return events.empty() && linkLoss.empty(); }
};

/**
 * Aggregated fault/recovery outcome of one run; all-zero (with
 * faulted == false) when no FaultPlan was configured, so the sweep
 * JSON schema stays uniform.
 */
struct FaultOutcome
{
    bool faulted = false;      //!< a FaultPlan was configured

    Tick killTick = 0;         //!< first Kill fired
    Tick restartTick = 0;      //!< last Restart fired
    Tick recoveredTick = 0;    //!< last victim's first post-restart
                               //!< step (max over restarted nodes)

    std::uint64_t opsAtKill = 0;    //!< machine-wide ops when killed
    std::uint64_t opsAtRestart = 0; //!< ... and when restarted
    std::uint64_t opsAtEnd = 0;     //!< ... and when the run drained
                                    //!< (filled by DsmSystem::run)

    std::uint64_t staleDropped = 0; //!< pre-crash messages dropped
    std::uint64_t deadDropped = 0;  //!< non-requests to a dead node
    std::uint64_t nacksSent = 0;    //!< requests bounced off the dead
    std::uint64_t rehomeSyncs = 0;  //!< reconstruction sync messages
    std::uint64_t ckptSnapshots = 0; //!< predictor checkpoints taken
    std::uint64_t ckptMessages = 0;  //!< CkptData replication messages
    std::uint64_t predLosses = 0;    //!< PredLoss events fired

    // Shard replication (FaultPlan::replicateShards).
    std::uint64_t shardDeltas = 0; //!< directory deltas mirrored
    std::uint64_t shardSyncs = 0;  //!< batched ShardSync messages sent

    // Fail-back and the home screen.
    std::uint64_t failbacks = 0; //!< shards re-adopted at restart
    std::uint64_t misroutedDropped = 0; //!< non-requests screened at a
                                        //!< directory that no longer
                                        //!< hosts the block's shard

    // Transport layer under lossy links (filled from Network).
    std::uint64_t linkDrops = 0;   //!< crossings dropped by loss rules
    std::uint64_t retransmits = 0; //!< transport re-sends recovering
                                   //!< dropped crossings

    // Cache-side retry FSM, summed over nodes (system.cc fills these
    // from CacheStats at run end).
    std::uint64_t retries = 0;
    std::uint64_t nacksSeen = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t staleFills = 0;
    std::uint64_t dirAborts = 0; //!< grants abandoned at directories
};

/**
 * Executes a FaultPlan against an assembled machine. Constructed by
 * DsmSystem only when the plan is non-empty; construction wires the
 * network's epoch screen, every node's home re-map table, the cache
 * retry FSMs, and the processors' progress reporting.
 */
class FaultManager
{
  public:
    /**
     * @param eq the machine's event queue
     * @param net the interconnect (epoch stamping/screening)
     * @param cfg machine configuration (geometry)
     * @param plan the fault schedule; must be non-empty
     * @param caches,dirs,procs per-node agents, index == NodeId
     * @param vmsps per-node speculation VMSPs (entries may be null)
     * @param nodePreds all predictors resident at each node (the
     *        speculation VMSP and passive observers); reset on kill
     */
    FaultManager(EventQueue &eq, Network &net, const ProtoConfig &cfg,
                 FaultPlan plan, std::vector<CacheCtrl *> caches,
                 std::vector<Directory *> dirs,
                 std::vector<Processor *> procs,
                 std::vector<Vmsp *> vmsps,
                 std::vector<std::vector<PredictorBase *>> nodePreds);

    FaultManager(const FaultManager &) = delete;
    FaultManager &operator=(const FaultManager &) = delete;

    // ---- Hot-path queries (network delivery screen, directories).

    /** Restart epoch of node @p n (bumped once per kill). */
    std::uint8_t epoch(NodeId n) const { return epoch_[n]; }

    /** True while node @p n is fail-stopped. */
    bool dead(NodeId n) const { return deadSet_.contains(n); }

    /** The currently dead nodes (speculation target filtering). */
    NodeSet deadSet() const { return deadSet_; }

    /**
     * The node currently serving @p blk's directory shard (geometric
     * home chased through the live indirection table). The network's
     * delivery screen compares this against the destination to catch
     * messages launched before a re-home or fail-back swung the
     * table.
     */
    NodeId
    currentHome(BlockId blk) const
    {
        return remap_[map_.geometricHomeOf(blk)];
    }

    // ---- Delivery-screen accounting (network).

    void noteStaleDropped() { ++outcome_.staleDropped; }
    void noteDeadDropped() { ++outcome_.deadDropped; }
    void noteNackSent() { ++outcome_.nacksSent; }
    void noteMisrouted() { ++outcome_.misroutedDropped; }

    // ---- Shard replication (directories call in; see
    // ---- Directory::replicate).

    /** True when homes stream shard deltas to their backups. */
    bool replicating() const { return plan_.replicateShards; }

    /**
     * A directory transaction left @p blk in a new stable state:
     * mirror it, and every shardSyncBatch deltas ship one batched
     * ShardSync message from the block's acting home to its backup
     * as of tick @p base.
     *
     * @param excl true iff the block has an exclusive owner
     * @param owner the owner when @p excl
     * @param sharers read-only holders (speculative copies included,
     *        conservatively) when not @p excl
     */
    void noteShardDelta(BlockId blk, bool excl, NodeId owner,
                        NodeSet sharers, Tick base);

    /** A restarted processor's first step() dispatch at tick @p t. */
    void noteProgress(NodeId n, Tick t);

    /** Outcome so far (final after the run drains). */
    const FaultOutcome &outcome() const { return outcome_; }

    /** Attach the observability layer (dsm/system.cc; may be null). */
    void setObs(ObsManager *o) { obs_ = o; }

  private:
    /** One scheduled plan entry riding the event queue. */
    struct PlanEvent final : public Event
    {
        PlanEvent(FaultManager *m, FaultKind k, NodeId n)
            : mgr(m), kind(k), node(n)
        {}

        void process() override { mgr->planFired(*this); }

        FaultManager *mgr;
        FaultKind kind;
        NodeId node;
    };

    /** The periodic predictor-checkpoint timer. */
    struct CkptEvent final : public Event
    {
        explicit CkptEvent(FaultManager *m) : mgr(m) {}

        void process() override { mgr->checkpointFired(); }

        FaultManager *mgr;
    };

    void planFired(PlanEvent &e);
    void killNode(NodeId v);
    void restartNode(NodeId v);
    void predLoss(NodeId v);
    void checkpointFired();

    /** Re-derive the fusion ceiling from still-pending plan events. */
    void updateHorizon();

    /** The node adopting @p v's shard under this plan. */
    NodeId backupFor(NodeId v) const;

    /**
     * Deterministic succession order: the first live node after
     * @p from, wrapping; @p from itself if every other node is dead.
     */
    NodeId successor(NodeId from) const;

    /**
     * Install geometric shard @p h's directory state at dirs_[to] as
     * of tick @p now: from the replicated mirror when the plan
     * replicates shards, otherwise by sweeping the surviving caches
     * (one RehomeSync message per contributing node).
     */
    void rehome(NodeId h, NodeId to, Tick now);

    /** Machine-wide executed-op total (phase-throughput sampling). */
    std::uint64_t totalOps() const;

    /** True while any Kill entry is still scheduled. */
    bool killsPending() const;

    EventQueue &eq_;
    Network &net_;
    const ProtoConfig &cfg_;
    AddrMap map_; //!< geometric homes for shard reconstruction
    FaultPlan plan_;
    std::vector<CacheCtrl *> caches_;
    std::vector<Directory *> dirs_;
    std::vector<Processor *> procs_;
    std::vector<Vmsp *> vmsps_;
    std::vector<std::vector<PredictorBase *>> nodePreds_;

    std::vector<NodeId> remap_;       //!< shared per-home indirection
    std::vector<std::uint8_t> epoch_; //!< per-node restart epoch
    NodeSet deadSet_;

    ChunkedVector<PlanEvent> planEvents_; //!< stable addresses
    CkptEvent ckptEvent_{this};
    //! Latest predictor checkpoint per node (warm-restart source).
    std::vector<std::unique_ptr<Vmsp::Snapshot>> ckpts_;

    /** Deltas batched into one ShardSync message. */
    static constexpr unsigned shardSyncBatch = 8;

    /** Replicated view of one directory entry's stable state. */
    struct MirrorEntry
    {
        NodeSet sharers;
        NodeId owner = invalidNode;
        bool excl = false;
    };

    //! Per-geometric-home shard mirrors (replicateShards only;
    //! ordered maps keep failover installs deterministic).
    std::vector<std::map<BlockId, MirrorEntry>> mirror_;
    //! Deltas accumulated per home since the last ShardSync flush.
    std::vector<unsigned> deltaBacklog_;

    NodeSet awaiting_; //!< restarted nodes with no step dispatch yet
    ObsManager *obs_ = nullptr; //!< observability; null = untraced
    FaultOutcome outcome_;
};

} // namespace mspdsm

#endif // MSPDSM_DSM_FAULT_HH
