#include "dsm/processor.hh"

#include "base/logging.hh"

namespace mspdsm
{

void
GlobalBarrier::arrive(std::function<void()> resume)
{
    waiting_.push_back(std::move(resume));
    if (waiting_.size() < parties_)
        return;
    ++episodes_;
    std::vector<std::function<void()>> ready;
    ready.swap(waiting_);
    eq_.scheduleAfter(cost_, [ready = std::move(ready)] {
        for (const auto &fn : ready)
            fn();
    });
}

void
Processor::step()
{
    panic_if(!trace_, "processor ", id_, " started without a trace");
    if (pc_ >= trace_->size()) {
        done_ = true;
        stats_.finishTick = eq_.curTick();
        return;
    }

    const TraceOp &op = (*trace_)[pc_++];
    ++stats_.ops;

    switch (op.kind) {
      case OpKind::Compute:
        eq_.scheduleAfter(op.cycles, [this] { step(); });
        return;
      case OpKind::Read:
      case OpKind::Write: {
        const Tick issued = eq_.curTick();
        cache_.access(op.addr, op.kind == OpKind::Write,
                      [this, issued](bool remote) {
            const Tick stall = eq_.curTick() - issued;
            stats_.memWait += stall;
            if (remote)
                stats_.requestWait += stall;
            step();
        });
        return;
      }
      case OpKind::Barrier:
        barrier_.arrive([this] { step(); });
        return;
    }
    panic("unknown trace op kind");
}

} // namespace mspdsm
