#include "dsm/processor.hh"

#include <algorithm>

#include "base/logging.hh"
#include "dsm/fault.hh"
#include "obs/obs.hh"

namespace mspdsm
{

bool
GlobalBarrier::removeWaiter(const Event &resume)
{
    auto it = std::find(waiting_.begin(), waiting_.end(), &resume);
    if (it == waiting_.end())
        return false;
    waiting_.erase(it);
    return true;
}

void
GlobalBarrier::arrive(Event &resume, Tick base)
{
    waiting_.push_back(&resume);
    if (waiting_.size() < parties_)
        return;
    ++episodes_;
    // Scheduling in arrival order at the same tick preserves the
    // resume order (same-tick ties break by schedule order).
    for (Event *e : waiting_)
        eq_.schedule(base + cost_, *e);
    waiting_.clear();
}

/**
 * Execute a fused run of compiled ops.
 *
 * The loop maintains a virtual time vt >= curTick(). The invariant
 * that makes executing an op at vt exact is: either vt == curTick()
 * (the op runs on the clock, as always), or vt is strictly below the
 * earliest pending event (the horizon). In the latter case no event
 * -- no message delivery, no invalidation, no other processor's step
 * -- can fire between the clock and vt, so every side effect the op
 * performs "early" (line-state mutation, statistics, the MSHR fill,
 * a request injected with base tick vt) is observed by the rest of
 * the machine exactly as if the op had run on the clock at vt, with
 * identical event sequence numbers. Whenever the next op's virtual
 * completion would reach the horizon, the processor schedules its
 * step event at vt instead -- which is precisely the pre-fusion
 * behaviour -- and the run ends.
 *
 * The horizon is computed at most once per invocation: the loop only
 * schedules or sends on its way out, so the pending set -- and hence
 * nextTick() -- cannot change while the run is in progress.
 */
void
Processor::step(Tick now)
{
    panic_if(!started_, "processor ", id_, " started without a trace");
    if (resumeNotify_) [[unlikely]] {
        // First dispatch after a restart: this is the node resuming
        // useful work, the endpoint of the time-to-recover metric.
        resumeNotify_ = false;
        faults_->noteProgress(id_, now);
    }
    Tick vt = now;
    // Exact guard: a false decline here does not just take a slower
    // path, it ends the whole fused run and costs a step-event round
    // trip, so the scan is always worth it.
    const auto advanceOk = [&](Tick to) {
        return eq_.canFuseBeforeExact(to);
    };

    for (;;) {
        if (pc_ == trace_.count) {
            // The trace ends at vt, possibly ahead of the clock
            // (fused run or fused completion): finish inline and let
            // the watermark carry the end time -- scheduling a resync
            // event here would only advance the clock to a tick
            // endTick() already accounts for.
            done_ = true;
            stats_.finishTick = vt;
            eq_.noteFused(vt);
            if (obs_) [[unlikely]]
                obs_->procInstant("trace done", id_, vt);
            return;
        }

        const CompiledOp op = trace_.ops[pc_];
        switch (op.kind()) {
          case OpKind::Compute:
            ++pc_;
            ++stats_.ops;
            vt += op.payload();
            if (advanceOk(vt))
                continue;
            eq_.schedule(vt, stepEvent_);
            return;

          case OpKind::Read:
          case OpKind::Write: {
            const bool write = op.kind() == OpKind::Write;
            const BlockId blk = op.payload();
            ++pc_;
            ++stats_.ops;
            if (op.hitEligible()) {
                if (const Tick lat = cache_.tryHit(blk, write, vt)) {
                    stats_.memWait += lat;
                    vt += lat;
                    if (advanceOk(vt))
                        continue;
                    eq_.schedule(vt, stepEvent_);
                    return;
                }
                access_.issued = vt;
                cache_.issueMiss(blk, write, access_, vt);
                return;
            }
            // Not annotated hit-eligible: first-ever touch of the
            // block by this trace, which cannot be cache-resident
            // (even speculative pushes only target past readers) --
            // but stay exact rather than clever: the full access
            // path re-checks and completes rare hits through the
            // cache's own timer, bit-identically.
            access_.issued = vt;
            cache_.accessAt(blk, write, access_, vt);
            return;
          }

          case OpKind::Barrier:
            if (vt > now) {
                // Arrival order is resume order: rejoin the clock
                // before arriving.
                eq_.schedule(vt, stepEvent_);
                return;
            }
            ++pc_;
            ++stats_.ops;
            barrier_.arrive(stepEvent_, now);
            return;
        }
        panic("unknown compiled op kind");
    }
}

void
Processor::accessDone(AccessRecord &r, bool remote, Tick base)
{
    const Tick stall = base - r.issued;
    stats_.memWait += stall;
    if (remote)
        stats_.requestWait += stall;
    step(base);
}

void
Processor::kill()
{
    if (!started_ || done_)
        return;
    if (barrier_.removeWaiter(stepEvent_)) {
        // Parked at a barrier: rewind the arrival so the restarted
        // processor re-arrives (the episode still needs all parties).
        --pc_;
        --stats_.ops;
        resumeAt_ = 0;
        return;
    }
    if (stepEvent_.scheduled()) {
        // Between ops (compute expiry, fused-hit resume, or a
        // released barrier's resume): remember when it would have
        // continued; no op is lost.
        resumeAt_ = stepEvent_.when();
        eq_.deschedule(stepEvent_);
        return;
    }
    // Blocked on a memory access; the cache kill squashes it and its
    // completion never fires. Rewind so the restarted processor
    // re-issues it against its cold cache.
    --pc_;
    --stats_.ops;
    resumeAt_ = 0;
}

void
Processor::restart(Tick base)
{
    if (!started_ || done_)
        return;
    panic_if(stepEvent_.scheduled(),
             "processor ", id_, " restarted while running");
    resumeNotify_ = faults_ != nullptr;
    eq_.schedule(std::max(base, resumeAt_), stepEvent_);
    resumeAt_ = 0;
}

} // namespace mspdsm
