#include "dsm/processor.hh"

#include "base/logging.hh"

namespace mspdsm
{

void
GlobalBarrier::arrive(Event &resume)
{
    waiting_.push_back(&resume);
    if (waiting_.size() < parties_)
        return;
    ++episodes_;
    // Scheduling in arrival order at the same tick preserves the
    // resume order (same-tick ties break by schedule order).
    for (Event *e : waiting_)
        eq_.scheduleAfter(cost_, *e);
    waiting_.clear();
}

void
Processor::step()
{
    panic_if(!trace_, "processor ", id_, " started without a trace");
    if (pc_ >= trace_->size()) {
        done_ = true;
        stats_.finishTick = eq_.curTick();
        return;
    }

    const TraceOp &op = (*trace_)[pc_++];
    ++stats_.ops;

    switch (op.kind) {
      case OpKind::Compute:
        eq_.scheduleAfter(op.cycles, stepEvent_);
        return;
      case OpKind::Read:
      case OpKind::Write: {
        access_.issued = eq_.curTick();
        cache_.access(op.addr, op.kind == OpKind::Write, access_);
        return;
      }
      case OpKind::Barrier:
        barrier_.arrive(stepEvent_);
        return;
    }
    panic("unknown trace op kind");
}

void
Processor::accessDone(AccessRecord &r, bool remote)
{
    const Tick stall = eq_.curTick() - r.issued;
    stats_.memWait += stall;
    if (remote)
        stats_.requestWait += stall;
    step();
}

} // namespace mspdsm
