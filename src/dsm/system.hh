/**
 * @file
 * Top-level speculative coherent DSM: configuration, assembly of the
 * sixteen nodes (processor, cache controller, home directory,
 * predictor), and the run/statistics interface the harness, examples,
 * and tests use. This is the library's main entry point.
 */

#ifndef MSPDSM_DSM_SYSTEM_HH
#define MSPDSM_DSM_SYSTEM_HH

#include <memory>
#include <vector>

#include "base/chunked_vector.hh"

#include "dsm/cache.hh"
#include "dsm/directory.hh"
#include "dsm/fault.hh"
#include "dsm/processor.hh"
#include "net/network.hh"
#include "obs/obs.hh"
#include "pred/predictor.hh"
#include "pred/seq_predictor.hh"
#include "pred/vmsp.hh"
#include "proto/config.hh"
#include "sim/eventq.hh"
#include "spec/spec.hh"
#include "workload/compiled_trace.hh"
#include "workload/trace.hh"

namespace mspdsm
{

/** Which predictor to attach at each home directory. */
enum class PredKind : std::uint8_t
{
    None,
    Cosmos,
    Msp,
    Vmsp,
};

/** @return printable predictor name. */
const char *predKindName(PredKind k);

/** A passive accuracy observer attached to every home directory. */
struct ObserverSpec
{
    PredKind kind = PredKind::Msp;
    std::size_t depth = 1;
};

/** Full configuration of one simulated machine instance. */
struct DsmConfig
{
    ProtoConfig proto;                   //!< Table 1 parameters
    PredKind pred = PredKind::None;      //!< speculation-driving
                                         //!< predictor (must be Vmsp
                                         //!< when spec != None)
    std::size_t historyDepth = 1;        //!< its history depth
    SpecMode spec = SpecMode::None;      //!< speculation mode
    /**
     * Additional passive observers: several predictors can measure
     * accuracy on the same run since observation never perturbs the
     * protocol (the paper's Base-DSM accuracy methodology).
     */
    std::vector<ObserverSpec> observers;
    Tick barrierCost = 50;               //!< barrier release latency
    Tick tickLimit = Tick{1} << 40;      //!< deadlock guard
    /**
     * Fault schedule; empty (the default) means no FaultManager is
     * constructed and the machine runs bit-identically to the
     * pre-fault-layer code.
     */
    FaultPlan faults;

    /**
     * Bounded-retry FSM policy (CacheCtrl; active only in fault
     * runs). The defaults reproduce the previously hard-coded 16
     * retries / 20k-cycle stale timeout bit for bit; fig11 sweeps
     * them via --retry-limit/--stale-timeout.
     */
    unsigned retryLimit = 16;  //!< retries before the fatal
    Tick staleTimeout = 20000; //!< silence before a re-issue

    /**
     * Observability instruments (tracing, interval sampling); empty
     * (the default) means no ObsManager is constructed -- the same
     * gating discipline as the fault plan. The always-on latency
     * histograms are independent of this and filled in every run.
     */
    ObsConfig obs;
};

/** Per-observer accuracy/storage results. */
struct ObserverResult
{
    std::string name;      //!< predictor name
    std::size_t depth = 1; //!< history depth
    PredStats stats;
    StorageReport storage;
};

/** How a simulation run ended. */
enum class RunStatus : std::uint8_t
{
    Completed, //!< queue drained, every processor finished its trace
    TickLimit, //!< DsmConfig::tickLimit hit with events still pending
               //!< (livelock/deadlock guard) -- results are partial
};

/** Aggregated results of one simulation run. */
struct RunResult
{
    RunStatus status = RunStatus::Completed;

    /** Convenience: the run finished cleanly. */
    bool completed() const { return status == RunStatus::Completed; }

    Tick execTicks = 0;          //!< wall-clock of the run
    double avgRequestWait = 0.0; //!< mean per-proc remote wait, ticks
    double avgMemWait = 0.0;     //!< mean per-proc total memory stall

    // Demand request volume (denominators for Table 5).
    std::uint64_t reads = 0;  //!< demand read misses + spec-served
    std::uint64_t writes = 0; //!< demand write/upgrade misses

    // Speculation-driving predictor, aggregated across directories.
    PredStats pred;
    StorageReport storage;

    // Passive observers, in DsmConfig::observers order.
    std::vector<ObserverResult> observers;

    // Speculation outcome, aggregated across directories/caches.
    std::uint64_t specSentFr = 0;
    std::uint64_t specSentSwi = 0;
    std::uint64_t specMissFr = 0;
    std::uint64_t specMissSwi = 0;
    std::uint64_t specServedFr = 0;  //!< reads absorbed by FR pushes
    std::uint64_t specServedSwi = 0; //!< reads absorbed by SWI pushes
    std::uint64_t specDropped = 0;
    std::uint64_t swiSent = 0;
    std::uint64_t swiPremature = 0;
    std::uint64_t swiSuppressed = 0;

    std::uint64_t messages = 0; //!< total network messages
    //! Event-kernel dispatches over the run: the transport-efficiency
    //! denominator the batched NI drain attacks (dense runs used to
    //! pay ~2.4 events per message; see docs/ARCHITECTURE.md).
    std::uint64_t eventsDispatched = 0;
    std::uint64_t barrierEpisodes = 0;

    /** Events dispatched per network message (0 with no traffic). */
    double
    eventsPerMessage() const
    {
        return messages ? static_cast<double>(eventsDispatched) /
                              static_cast<double>(messages)
                        : 0.0;
    }

    // Interconnect contention (NI serialization and per-link queueing).
    std::uint64_t queueingCycles = 0;
    std::uint64_t linkQueueingCycles = 0;

    /** Fault/recovery outcome; all-zero when no FaultPlan was set. */
    FaultOutcome fault;

    // Always-on latency/shape distributions, merged across nodes
    // (log2 buckets; base/stats.hh). missLat combines read and write
    // demand misses -- issue to fill, retries included -- which is
    // the tail the fault and lossy-link axes stretch.
    Histogram missLat;     //!< demand miss latency (read + write)
    Histogram swiLat;      //!< SWI launch -> writeback absorbed
    Histogram specUseDist; //!< speculative push -> first use
    Histogram retryDepth;  //!< retry-FSM attempt depth per backoff

    // Percentiles of missLat, precomputed for tables and sweep JSON.
    double missLatP50 = 0.0;
    double missLatP90 = 0.0;
    double missLatP99 = 0.0;

    /** Sampling period of `series` (0 = sampler off, series empty). */
    Tick seriesInterval = 0;

    /** Interval time-series (DsmConfig::obs.sampleInterval > 0). */
    std::vector<IntervalSample> series;
};

/**
 * One simulated CC-NUMA machine.
 *
 * Usage:
 * @code
 *   DsmConfig cfg;
 *   cfg.pred = PredKind::Vmsp;
 *   cfg.spec = SpecMode::SwiFirstRead;
 *   DsmSystem sys(cfg);
 *   RunResult r = sys.run(workload.traces);
 * @endcode
 */
class DsmSystem
{
  public:
    explicit DsmSystem(const DsmConfig &cfg);
    ~DsmSystem();

    DsmSystem(const DsmSystem &) = delete;
    DsmSystem &operator=(const DsmSystem &) = delete;

    /**
     * Execute one trace per processor to completion. Compiles the
     * traces with this system's address map first; callers that run
     * the same workload more than once should compile once and use
     * the CompiledWorkload overload (the harness workload cache does
     * exactly that).
     * @param traces exactly numNodes traces
     * @return aggregated statistics
     */
    RunResult run(const std::vector<Trace> &traces);

    /**
     * Execute a pre-compiled workload (one span per processor). The
     * workload must have been compiled for this system's block
     * geometry; it is read-only and may be shared across concurrent
     * runs. It must stay alive for the whole pending run, not just
     * this call: a TickLimit trip returns with resumable step events
     * whose CompiledTrace spans point into the workload's arena, so
     * the caller may only destroy it once the run has drained (the
     * trace overload keeps its own compilation alive on the system
     * for exactly this reason).
     */
    RunResult run(const CompiledWorkload &w);

    /** Access a node's cache controller (tests). */
    CacheCtrl &cache(NodeId n) { return caches_[n]; }

    /** Access a node's directory (tests). */
    Directory &directory(NodeId n) { return dirs_[n]; }

    /** Access a node's speculation predictor, may be null (tests). */
    PredictorBase *predictor(NodeId n) { return preds_[n].get(); }

    /** Access a node's i-th passive observer (tests). */
    PredictorBase *
    observer(NodeId n, std::size_t i)
    {
        return obs_[n][i].get();
    }

    /** The event queue (tests). */
    EventQueue &eventQueue() { return eq_; }

    /** The fault manager; null unless the config has a plan (tests). */
    FaultManager *faultManager() { return faults_.get(); }

    /** The obs manager; null unless the config has instruments. */
    ObsManager *obsManager() { return obsMgr_.get(); }

    /** The configuration in force. */
    const DsmConfig &config() const { return cfg_; }

  private:
    DsmConfig cfg_;
    EventQueue eq_;
    std::unique_ptr<Network> net_;
    std::vector<std::unique_ptr<PredictorBase>> preds_;
    std::vector<Vmsp *> vmsps_; //!< non-owning views of preds_
    //! per node, per ObserverSpec: passive observers
    std::vector<std::vector<std::unique_ptr<PredictorBase>>> obs_;
    // Concrete per-node agents live in chunked arenas (stable
    // addresses, one allocation per chunk): a system is built per
    // sweep run, so its construction is itself a front-end cost.
    ChunkedVector<CacheCtrl, 16> caches_;
    ChunkedVector<Directory, 16> dirs_;
    std::unique_ptr<GlobalBarrier> barrier_;
    ChunkedVector<Processor, 16> procs_;
    //! Constructed only when cfg_.faults is non-empty: the fault-free
    //! machine carries no fault machinery at all.
    std::unique_ptr<FaultManager> faults_;
    //! Constructed only when cfg_.obs is non-empty: the untraced
    //! machine carries no instrumentation machinery at all.
    std::unique_ptr<ObsManager> obsMgr_;
    //! Workload compiled by run(const std::vector<Trace>&); owned by
    //! the system (not the call's stack frame) because a TickLimit
    //! trip leaves the queue resumable with spans into its arena.
    std::unique_ptr<const CompiledWorkload> ownedWorkload_;
};

} // namespace mspdsm

#endif // MSPDSM_DSM_SYSTEM_HH
