#include "dsm/directory.hh"

#include <algorithm>

#include "base/logging.hh"
#include "dsm/fault.hh"
#include "obs/obs.hh"

namespace mspdsm
{

Directory::Directory(NodeId id, EventQueue &eq, Network &net,
                     const ProtoConfig &cfg,
                     std::vector<PredictorBase *> observers, Vmsp *vmsp,
                     SpecMode mode)
    : id_(id), eq_(eq), net_(net), cfg_(cfg), map_(cfg),
      observers_(std::move(observers)), vmsp_(vmsp), mode_(mode),
      swiTable_(cfg.numNodes)
{
    panic_if(mode_ != SpecMode::None && !vmsp_,
             "speculation requires a VMSP predictor");
    for (PredictorBase *p : observers_)
        panic_if(p == vmsp_, "the speculation VMSP is fed in service "
                             "order; do not register it as a passive "
                             "observer");
}

DirState
Directory::blockState(BlockId blk) const
{
    auto it = entries_.find(blk);
    return it == entries_.end() ? DirState::Idle : it->second.state;
}

NodeSet
Directory::sharersOf(BlockId blk) const
{
    auto it = entries_.find(blk);
    return it == entries_.end() ? NodeSet{} : it->second.sharers;
}

NodeId
Directory::ownerOf(BlockId blk) const
{
    auto it = entries_.find(blk);
    return it == entries_.end() ? invalidNode : it->second.owner;
}

void
Directory::observe(const CohMsg &msg)
{
    if (observers_.empty())
        return;
    SymKind kind;
    switch (msg.type) {
      case MsgType::GetS:
        kind = SymKind::Read;
        break;
      case MsgType::GetX:
        kind = SymKind::Write;
        break;
      case MsgType::Upgrade:
        kind = SymKind::Upgrade;
        break;
      case MsgType::InvAck:
        kind = SymKind::InvAck;
        break;
      case MsgType::WriteBack:
        // A writeback forced by the SWI heuristic is not part of the
        // demand message stream; the predictor never sees it.
        if (msg.speculative)
            return;
        kind = SymKind::WriteBack;
        break;
      default:
        panic("directory observing outgoing message ", msg.toString());
    }
    for (PredictorBase *p : observers_)
        p->observe(msg.blk, PredMsg{kind, msg.src});
}

void
Directory::specObserve(BlockId blk, SymKind kind, NodeId src)
{
    if (vmsp_)
        vmsp_->observe(blk, PredMsg{kind, src});
}

void
Directory::sendAt(Tick when, CohMsg msg)
{
    if (canRunAt(when)) {
        // Fused fast path: nothing can fire before @p when, so
        // injecting now with @p when as the base is indistinguishable
        // from bouncing through a pooled Send event -- including the
        // jitter draw order, since no other send can interleave. The
        // network only ever *schedules* from a send (never delivers
        // inline), so this cannot run ahead of the caller's
        // remaining work.
        eq_.noteFused(when);
        net_.sendAt(when, msg);
        return;
    }
    scheduleKind(ActKind::Send, when, msg);
}

void
Directory::flushFired()
{
    // Pop-and-dispatch every action due on this tick; (due, seq)
    // order reproduces the schedule order the per-action pooled
    // events fired in. Handlers may queue new actions mid-loop --
    // those are due strictly later (every service latency is
    // positive) and re-arm the flush themselves; the final arm below
    // keeps the earliest. Copy-then-index: scheduleKind can insert
    // into (and reallocate) the suffix under us.
    const Tick now = eq_.curTick();
    while (dueHead_ < dueQ_.size() && dueQ_[dueHead_].due <= now) {
        const DueAction a = dueQ_[dueHead_];
        ++dueHead_;
        dispatch(a.kind, a.msg, now);
    }
    if (dueHead_ == dueQ_.size()) {
        dueQ_.clear(); // keeps capacity
        dueHead_ = 0;
    } else {
        if (dueHead_ >= 64) {
            dueQ_.erase(dueQ_.begin(),
                        dueQ_.begin() +
                            static_cast<std::ptrdiff_t>(dueHead_));
            dueHead_ = 0;
        }
        armFlush(dueQ_[dueHead_].due);
    }
}

void
Directory::dispatch(ActKind kind, const CohMsg &msg, Tick base)
{
    switch (kind) {
      case ActKind::Send:
        net_.send(msg);
        return;
      case ActKind::ReadReply:
        readReplyFired(msg.blk, msg.dst, base);
        return;
      case ActKind::Grant:
        grantExcl(entry(msg.blk), msg.blk, base);
        return;
      case ActKind::WbGetS:
        wbGetSFired(msg.blk, base);
        return;
      case ActKind::SwiComplete: {
        const BlockId blk = msg.blk;
        completeSwi(entry(blk), blk, base);
        drain(blk, base);
        return;
      }
    }
    panic("unknown directory action kind");
}

void
Directory::readReplyFired(BlockId blk, NodeId reader, Tick base)
{
    Entry &e = entry(blk);
    --e.repliesInFlight;
    CohMsg reply;
    reply.type = MsgType::DataShared;
    reply.src = id_;
    reply.dst = reader;
    reply.blk = blk;
    reply.remoteWork = reader != id_;
    net_.sendAt(base, reply);
    if (obs_) [[unlikely]]
        obs_->dirInstant("read reply", id_, blk, base);
    if (specEnabled())
        frCheck(e, blk, reader, base);
    drain(blk, base);
}

void
Directory::wbGetSFired(BlockId blk, Tick base)
{
    Entry &e = entry(blk);
    e.state = DirState::Shared;
    e.sharers.add(e.curReq);
    replicate(e, blk, base);
    CohMsg reply;
    reply.type = MsgType::DataShared;
    reply.src = id_;
    reply.dst = e.curReq;
    reply.blk = blk;
    reply.remoteWork = true;
    net_.sendAt(base, reply);
    if (specEnabled())
        frCheck(e, blk, e.curReq, base);
    drain(blk, base);
}

void
Directory::handle(const CohMsg &msg, Tick base)
{
    panic_if(map_.homeOf(msg.blk) != id_,
             "message routed to wrong home: ", msg.toString());
    Entry &e = entry(msg.blk);

    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::Upgrade: {
        if (msg.type == MsgType::GetS)
            stats_.reqGetS.inc();
        else if (msg.type == MsgType::GetX)
            stats_.reqGetX.inc();
        else
            stats_.reqUpgrade.inc();

        observe(msg);
        if (specEnabled()) {
            prematureCheck(msg);
            // A request from a node holding an unverified speculative
            // copy verifies it in place (e.g. a migratory upgrade).
            if (e.cold && e.cold->specSent.contains(msg.src))
                verifyCopy(e, msg.blk, msg);
        }
        if (e.hasDeferred() || !canProcess(e, msg.type)) {
            cold(e).deferred.push_back(msg);
            return;
        }
        processRequest(e, msg, base);
        return;
      }
      case MsgType::InvAck:
        observe(msg);
        onInvAck(e, msg, base);
        return;
      case MsgType::WriteBack:
        observe(msg);
        onWriteBack(e, msg, base);
        return;
      default:
        panic("directory received unexpected ", msg.toString());
    }
}

void
Directory::processRequest(Entry &e, const CohMsg &msg, Tick base)
{
    switch (msg.type) {
      case MsgType::GetS:
        onGetS(e, msg, base);
        return;
      case MsgType::GetX:
        onWrite(e, msg, false, base);
        return;
      case MsgType::Upgrade:
        // An upgrade whose copy was invalidated in flight is handled
        // as a full write request (the requester needs data again).
        onWrite(e, msg,
                e.state == DirState::Shared &&
                    e.sharers.contains(msg.src),
                base);
        return;
      default:
        panic("processRequest on ", msg.toString());
    }
}

void
Directory::onGetS(Entry &e, const CohMsg &msg, Tick base)
{
    const BlockId blk = msg.blk;
    const NodeId src = msg.src;
    specObserve(blk, SymKind::Read, src);

    switch (e.state) {
      case DirState::Idle:
      case DirState::Shared: {
        // Reads pipeline: directory state is updated immediately so
        // concurrent readers overlap their memory accesses; only the
        // data reply is outstanding.
        e.state = DirState::Shared;
        e.sharers.add(src);
        replicate(e, blk, base);
        ++e.repliesInFlight;
        const Tick fire = base + cfg_.dirLookup + cfg_.memAccess;
        if (fuseAt(e, fire)) {
            readReplyFired(blk, src, fire);
            return;
        }
        CohMsg m;
        m.blk = blk;
        m.dst = src;
        scheduleKind(ActKind::ReadReply, fire, m);
        return;
      }
      case DirState::Excl: {
        panic_if(e.owner == src, "owner re-requesting read of ", blk);
        e.state = DirState::BusyRecall;
        e.curType = MsgType::GetS;
        e.curReq = src;
        e.curIsSwi = false;
        stats_.recalls.inc();
        CohMsg recall;
        recall.type = MsgType::Recall;
        recall.src = id_;
        recall.dst = e.owner;
        recall.blk = blk;
        sendAt(base + cfg_.dirLookup, recall);
        return;
      }
      default:
        panic("onGetS in transient state for block ", blk);
    }
}

void
Directory::onWrite(Entry &e, const CohMsg &msg, bool upgrade_grant,
                   Tick base)
{
    const BlockId blk = msg.blk;
    const NodeId src = msg.src;
    // The VMSP observes this write at grant time (see specObserve's
    // declaration); remember how the requester encoded it.
    e.curWriteSym = msg.type == MsgType::Upgrade ? SymKind::Upgrade
                                                 : SymKind::Write;
    // Fault runs: remember the requester's restart epoch so a grant
    // whose requester crashed mid-transaction can be abandoned.
    if (faults_)
        cold(e).curReqEpoch = faults_->epoch(src);

    switch (e.state) {
      case DirState::Idle: {
        e.state = DirState::BusyService;
        e.curType = MsgType::GetX;
        e.curReq = src;
        e.curUpgradeGrant = false;
        e.curRemote = src != id_;
        const Tick fire = base + cfg_.dirLookup + cfg_.memAccess;
        if (fuseAt(e, fire))
            grantExcl(e, blk, fire);
        else
            scheduleKind(ActKind::Grant, fire, blkMsg(blk));
        return;
      }
      case DirState::Shared: {
        NodeSet others = e.sharers;
        others.remove(src);
        e.curType = msg.type;
        e.curReq = src;
        e.curUpgradeGrant = upgrade_grant;
        e.curRemote = src != id_ || !others.empty();
        e.sharers.clear();
        if (others.empty()) {
            // Sole sharer upgrading, or stale sharer list: grant
            // directly (memory access only if data must be sent).
            e.state = DirState::BusyService;
            const Tick fire = base + cfg_.dirLookup +
                              (upgrade_grant ? 0 : cfg_.memAccess);
            if (fuseAt(e, fire))
                grantExcl(e, blk, fire);
            else
                scheduleKind(ActKind::Grant, fire, blkMsg(blk));
            return;
        }
        e.state = DirState::BusyInval;
        e.pendingAcks = others.count();
        if (faults_)
            cold(e).ackWait = others;
        for (NodeId o : others) {
            stats_.invals.inc();
            CohMsg inv;
            inv.type = MsgType::Inval;
            inv.src = id_;
            inv.dst = o;
            inv.blk = blk;
            sendAt(base + cfg_.dirLookup, inv);
        }
        return;
      }
      case DirState::Excl: {
        panic_if(e.owner == src, "owner re-requesting write of ", blk);
        e.state = DirState::BusyRecall;
        e.curType = MsgType::GetX;
        e.curReq = src;
        e.curUpgradeGrant = false;
        e.curRemote = true;
        e.curIsSwi = false;
        stats_.recalls.inc();
        CohMsg recall;
        recall.type = MsgType::Recall;
        recall.src = id_;
        recall.dst = e.owner;
        recall.blk = blk;
        sendAt(base + cfg_.dirLookup, recall);
        return;
      }
      default:
        panic("onWrite in transient state for block ", blk);
    }
}

void
Directory::onInvAck(Entry &e, const CohMsg &msg, Tick base)
{
    panic_if(e.state != DirState::BusyInval,
             "InvAck outside invalidation: ", msg.toString());
    if (specEnabled() && e.cold && e.cold->specSent.contains(msg.src))
        verifyCopy(e, msg.blk, msg);
    panic_if(e.pendingAcks <= 0, "stray InvAck: ", msg.toString());
    if (faults_ && e.cold)
        e.cold->ackWait.remove(msg.src);
    if (--e.pendingAcks == 0) {
        e.state = DirState::BusyService;
        const Tick fire = base + cfg_.dirLookup;
        if (fuseAt(e, fire))
            grantExcl(e, msg.blk, fire);
        else
            scheduleKind(ActKind::Grant, fire, blkMsg(msg.blk));
    }
}

void
Directory::onWriteBack(Entry &e, const CohMsg &msg, Tick base)
{
    panic_if(e.state != DirState::BusyRecall,
             "WriteBack outside recall: ", msg.toString());
    absorbWriteBack(e, msg.blk, base);
}

void
Directory::absorbWriteBack(Entry &e, BlockId blk, Tick base)
{
    e.owner = invalidNode;
    e.state = DirState::BusyService;

    if (e.curIsSwi) {
        const Tick fire = base + cfg_.memAccess;
        if (fuseAt(e, fire)) {
            completeSwi(e, blk, fire);
            drain(blk, fire);
            return;
        }
        scheduleKind(ActKind::SwiComplete, fire, blkMsg(blk));
        return;
    }

    const Tick fire = base + cfg_.memAccess + cfg_.dirLookup;
    if (e.curType == MsgType::GetS) {
        if (fuseAt(e, fire))
            wbGetSFired(blk, fire);
        else
            scheduleKind(ActKind::WbGetS, fire, blkMsg(blk));
        return;
    }

    if (fuseAt(e, fire))
        grantExcl(e, blk, fire);
    else
        scheduleKind(ActKind::Grant, fire, blkMsg(blk));
}

void
Directory::grantExcl(Entry &e, BlockId blk, Tick base)
{
    const NodeId w = e.curReq;
    if (faults_ && (faults_->dead(w) ||
                    coldView(e).curReqEpoch != faults_->epoch(w))) {
        // The requester died (and possibly restarted, cache cold)
        // while its write was in service: the grant has no taker, and
        // recording a dead node as owner would wedge the block on a
        // recall nobody can answer. Abandon the transaction; memory
        // already holds the data (writebacks are timing events here).
        stats_.faultAborts.inc();
        e.state = DirState::Idle;
        e.owner = invalidNode;
        e.sharers.clear();
        replicate(e, blk, base);
        drain(blk, base);
        return;
    }
    const bool upgrade = e.curUpgradeGrant;
    // All of this write's invalidation acks (with their piggy-backed
    // reference bits) have been folded into the VMSP's open reader
    // vector by now; the write itself closes the vector.
    specObserve(blk, e.curWriteSym, w);
    e.state = DirState::Excl;
    e.owner = w;
    e.sharers.clear();
    replicate(e, blk, base);

    CohMsg reply;
    reply.type = upgrade ? MsgType::UpgradeAck : MsgType::DataExcl;
    reply.src = id_;
    reply.dst = w;
    reply.blk = blk;
    reply.remoteWork = e.curRemote;
    net_.sendAt(base, reply);
    if (obs_) [[unlikely]]
        obs_->dirInstant("grant", id_, blk, base);

    writeCompleted(blk, w, base);
    drain(blk, base);
}

void
Directory::drain(BlockId blk, Tick base)
{
    // The entry reference must be re-fetched each iteration:
    // processing can insert new entries (never for this block, but
    // the map may rehash through speculation on other blocks). The
    // cold record's address is arena-stable, but fetch it through the
    // current entry anyway.
    while (true) {
        Entry &e = entry(blk);
        ColdEntry *c = e.cold;
        if (!c || c->deferred.empty() ||
            !canProcess(e, c->deferred.front().type)) {
            return;
        }
        CohMsg m = c->deferred.front();
        c->deferred.pop_front();
        processRequest(e, m, base);
    }
}

// --- Speculation -----------------------------------------------------

void
Directory::writeCompleted(BlockId blk, NodeId writer, Tick base)
{
    Entry &e = entry(blk);

    // A block with no cold record never deferred or speculated:
    // nothing to judge, nothing to reset.
    if (ColdEntry *c = e.cold) {
        // Deferred SWI verdict (see prematureCheck): the ex-owner
        // wrote again; if nobody used the early-forwarded data in the
        // meantime, the invalidation fired too early.
        if (c->swiVerdictPending && c->swiWriteKeyValid && vmsp_) {
            if (!c->specAnyUsed)
                markPremature(e, blk);
        }
        if (c->swiBackoff > 0)
            --c->swiBackoff;

        // A completed write closes both the read phase and any SWI
        // epoch.
        c->phaseTriggered = false;
        c->phaseTrig = SpecTrigger::None;
        c->specKeyValid = false;
        c->misspecPenalized = false;
        c->swiEpoch = false;
        c->swiExOwner = invalidNode;
        c->swiVerdictPending = false;
        c->specAnyUsed = false;
        c->swiWriteKeyValid = false;
    }

    if (!specEnabled() || mode_ != SpecMode::SwiFirstRead)
        return;
    if (auto prev = swiTable_.recordWrite(writer, blk))
        trySwi(*prev, writer, base);
}

void
Directory::trySwi(BlockId blk, NodeId writer, Tick base)
{
    auto it = entries_.find(blk);
    if (it == entries_.end())
        return;
    Entry &e = it->second;
    if (e.state != DirState::Excl || e.owner != writer ||
        e.hasDeferred()) {
        return;
    }
    auto wk = vmsp_->lastWriteKey(blk);
    if (!wk)
        return;
    if (vmsp_->isPremature(blk, *wk) || coldView(e).swiBackoff > 0) {
        specStats_.swiSuppressed.inc();
        return;
    }

    e.state = DirState::BusyRecall;
    e.curIsSwi = true;
    e.curReq = writer;
    ColdEntry &c = cold(e);
    c.swiExOwner = writer; // premature checks start at launch
    c.swiLaunch = base;
    c.swiWriteKey = *wk;
    c.swiWriteKeyValid = true;
    c.swiVerdictPending = false;
    c.specAnyUsed = false;
    specStats_.swiSent.inc();

    CohMsg recall;
    recall.type = MsgType::Recall;
    recall.src = id_;
    recall.dst = writer;
    recall.blk = blk;
    recall.speculative = true;
    sendAt(base + cfg_.dirLookup, recall);
}

void
Directory::completeSwi(Entry &e, BlockId blk, Tick base)
{
    specStats_.swiCompleted.inc();
    e.curIsSwi = false;
    e.state = DirState::Idle;
    ColdEntry &c = cold(e);
    c.swiEpoch = true; // swiExOwner was set at launch
    specStats_.swiLat.sample(base - c.swiLaunch);
    if (obs_) [[unlikely]]
        obs_->swiSpan(id_, blk, c.swiLaunch, base);
    replicate(e, blk, base); // pushSpec refines this if readers exist

    // Trigger the predicted read sequence (Section 4.1): forward the
    // block to every predicted consumer.
    auto readers = vmsp_->predictedReaders(blk);
    if (!readers)
        return;
    auto key = vmsp_->predictionKey(blk);
    if (!key)
        return;
    e.state = DirState::Shared;
    pushSpec(e, blk, *readers, SpecTrigger::Swi, *key, base);
}

void
Directory::frCheck(Entry &e, BlockId blk, NodeId reader, Tick base)
{
    if (coldView(e).phaseTriggered)
        return;
    auto readers = vmsp_->predictedReaders(blk);
    if (!readers)
        return;
    auto key = vmsp_->predictionKey(blk);
    if (!key)
        return;
    NodeSet rest = readers->minus(vmsp_->openReaders(blk))
                       .minus(e.sharers);
    rest.remove(reader);
    if (rest.empty())
        return;
    pushSpec(e, blk, rest, SpecTrigger::FirstRead, *key, base);
}

void
Directory::pushSpec(Entry &e, BlockId blk, NodeSet targets,
                    SpecTrigger trig, const HistoryKey &key, Tick when)
{
    if (faults_) {
        // Never speculate into a dead node: the push would be dropped
        // at delivery but would still pollute the sharer set and the
        // verification bookkeeping.
        targets = targets.minus(faults_->deadSet());
        if (targets.empty())
            return;
    }
    ColdEntry &c = cold(e);
    c.phaseTriggered = true;
    c.phaseTrig = trig;
    c.specKey = key;
    c.specKeyValid = true;
    c.misspecPenalized = false;
    c.specSent = c.specSent | targets;
    e.sharers = e.sharers | targets;
    replicate(e, blk, when);

    for (NodeId t : targets) {
        if (trig == SpecTrigger::FirstRead)
            specStats_.specSentFr.inc();
        else
            specStats_.specSentSwi.inc();
        CohMsg push;
        push.type = MsgType::SpecData;
        push.src = id_;
        push.dst = t;
        push.blk = blk;
        push.trigger = trig;
        sendAt(when, push);
    }
}

void
Directory::prematureCheck(const CohMsg &msg)
{
    Entry &e = entry(msg.blk);
    // curIsSwi covers the whole SWI transaction (recall in flight and
    // the writeback-absorption window); swiEpoch the time after it.
    // Either way the SWI launch (trySwi) created the cold record.
    ColdEntry *c = e.cold;
    const bool in_epoch = (c && c->swiEpoch) || e.curIsSwi;
    if (!in_epoch)
        return;
    panic_if(!c, "SWI epoch without a cold record for ", msg.blk);

    if (msg.src != c->swiExOwner) {
        // Another processor demanded the block after the early
        // invalidation: the producer really was done. Any such
        // consumer progress vouches for the SWI.
        if (msg.type == MsgType::GetS)
            c->specAnyUsed = true;
        return;
    }
    if (!c->swiWriteKeyValid)
        return;

    if (msg.type == MsgType::GetS && !c->specSent.contains(msg.src) &&
        !c->specAnyUsed) {
        // The producer was still reading its own block (e.g.
        // moldyn's producer/consumer phase) and SWI robbed it before
        // any consumer benefited. If a consumer already took the
        // early-forwarded data, the same read is just the producer
        // rejoining the read phase (tomcatv's two-reader pattern).
        markPremature(e, msg.blk);
        c->swiEpoch = false;
        return;
    }

    if (msg.type == MsgType::GetX || msg.type == MsgType::Upgrade) {
        // The producer writes again. Whether SWI was premature
        // depends on whether any *other* processor used the
        // early-forwarded data (the producer referencing its own
        // bounced-back copy does not vouch for the invalidation);
        // the invalidation acknowledgements collected by this very
        // write carry that information, so the verdict is made when
        // the write transaction completes (writeCompleted).
        c->swiVerdictPending = true;
    }
}

void
Directory::markPremature(Entry &e, BlockId blk)
{
    specStats_.swiPremature.inc();
    ColdEntry &c = cold(e);
    // Flag the entry the invalidation was launched from, the entry
    // of the latest write (the vector in front of the write may have
    // shifted since launch), and back the block off while the
    // pattern re-stabilizes.
    if (c.swiWriteKeyValid)
        vmsp_->setPremature(blk, c.swiWriteKey);
    if (auto wk = vmsp_->lastWriteKey(blk))
        vmsp_->setPremature(blk, *wk);
    // Back the block off for a substantial number of writes and
    // escalate on repeat offenders: a block whose pattern keeps
    // flapping around premature invalidations ends up backed off for
    // (nearly) the rest of the run.
    const unsigned shift = std::min(c.swiPrematureCount, 4u);
    c.swiBackoff = 8u << shift;
    ++c.swiPrematureCount;
}

void
Directory::verifyCopy(Entry &e, BlockId blk, const CohMsg &msg)
{
    // Only reached when specSent contains the source, so the cold
    // record exists; allocating a default one here would silently
    // mis-count the verification, so fail loudly instead.
    panic_if(!e.cold, "verifyCopy without a cold record for ", blk);
    ColdEntry &c = *e.cold;
    c.specSent.remove(msg.src);

    if (msg.type == MsgType::GetS) {
        // The push raced the consumer's own demand read and was
        // dropped: the prediction was right but saved nothing.
        specStats_.specDroppedVerified.inc();
        return;
    }

    const bool referenced = msg.copyReferenced;
    const bool from_fr = c.phaseTrig == SpecTrigger::FirstRead;
    if (referenced) {
        // Consumer progress vouches for a pending SWI verdict -- but
        // only *other* processors count: the ex-owner referencing its
        // own bounced-back copy just proves it was robbed.
        if (msg.src != c.swiExOwner)
            c.specAnyUsed = true;
        // A speculatively served read never appears as a request
        // message; credit it into the open reader vector so the
        // pattern that speculation just verified stays learned.
        specObserve(blk, SymKind::Read, msg.src);
        (from_fr ? specStats_.specUsedFr : specStats_.specUsedSwi)
            .inc();
        return;
    }
    (from_fr ? specStats_.specMissFr : specStats_.specMissSwi).inc();
    if (c.specKeyValid && !c.misspecPenalized) {
        // Remove the misspeculated request sequence (Section 4.2).
        vmsp_->eraseEntry(blk, c.specKey);
        c.misspecPenalized = true;
    }
}

// --- Fault layer -----------------------------------------------------

void
Directory::replicate(Entry &e, BlockId blk, Tick base)
{
    if (!faults_ || !faults_->replicating())
        return;
    faults_->noteShardDelta(blk, e.state == DirState::Excl, e.owner,
                            e.sharers, base);
}

void
Directory::releaseShard(NodeId home)
{
    for (auto &kv : entries_) {
        if (map_.geometricHomeOf(kv.first) != home)
            continue;
        Entry &e = kv.second;
        if (busy(e) || e.hasDeferred() || e.repliesInFlight > 0) {
            // A transaction this interim host was mid-way through is
            // abandoned; the requester's retry FSM re-resolves the
            // home to the restarted victim and re-issues.
            stats_.faultAborts.inc();
        }
        e.sharers.clear();
        e.owner = invalidNode;
        e.curReq = invalidNode;
        e.pendingAcks = 0;
        e.repliesInFlight = 0;
        e.state = DirState::Idle;
        if (ColdEntry *c = e.cold) {
            c->deferred.clear();
            c->specSent.clear();
            c->ackWait.clear();
            c->phaseTriggered = false;
            c->specKeyValid = false;
            c->swiVerdictPending = false;
        }
    }
    // The shard's pending due-actions reference the state just
    // dropped: cancel them, then re-arm the flush for whatever is
    // left (the filtered queue is still due-sorted).
    const auto first =
        dueQ_.begin() + static_cast<std::ptrdiff_t>(dueHead_);
    dueQ_.erase(std::remove_if(first, dueQ_.end(),
                               [&](const DueAction &a) {
                                   return map_.geometricHomeOf(
                                              a.msg.blk) == home;
                               }),
                dueQ_.end());
    if (flush_.scheduled())
        eq_.deschedule(flush_);
    if (dueQ_.size() > dueHead_)
        armFlush(dueQ_[dueHead_].due);
}

void
Directory::failover()
{
    // Cancel every pending directory action: the due-queue holds
    // them all, behind the single flush event.
    if (flush_.scheduled())
        eq_.deschedule(flush_);
    dueQ_.clear();
    dueHead_ = 0;
    entries_.clear();
    memoEntry_ = nullptr;
    coldArena_ = ChunkedVector<ColdEntry>{};
}

void
Directory::adopt(BlockId blk, NodeId holder, bool modified)
{
    Entry &e = entry(blk);
    if (modified) {
        // MSI: a Modified copy excludes all others, so nothing can
        // have been adopted for this block yet (and nothing will be).
        e.state = DirState::Excl;
        e.owner = holder;
    } else {
        e.state = DirState::Shared;
        e.sharers.add(holder);
    }
}

void
Directory::pruneDead(NodeId v, Tick base)
{
    for (auto &kv : entries_) {
        const BlockId blk = kv.first;
        Entry &e = kv.second;

        if (ColdEntry *c = e.cold) {
            // Requests the dead node had queued die with it; the
            // erase-remove keeps the survivors' arrival order.
            c->deferred.erase(
                std::remove_if(c->deferred.begin(), c->deferred.end(),
                               [v](const CohMsg &m) { return m.src == v; }),
                c->deferred.end());
            c->specSent.remove(v);
        }
        e.sharers.remove(v);

        switch (e.state) {
          case DirState::Excl:
            if (e.owner == v) {
                // The owner's copy is gone; memory still has data.
                e.state = DirState::Idle;
                e.owner = invalidNode;
            }
            break;
          case DirState::BusyRecall:
            if (e.owner == v) {
                // The recall (or its writeback) is lost with the
                // node; absorb the writeback locally as of now.
                absorbWriteBack(e, blk, base);
            }
            break;
          case DirState::BusyInval: {
            ColdEntry *c = e.cold;
            if (c && c->ackWait.contains(v)) {
                // The dead node can no longer acknowledge -- its copy
                // is gone, which is what the ack would have asserted.
                c->ackWait.remove(v);
                if (--e.pendingAcks == 0) {
                    e.state = DirState::BusyService;
                    scheduleKind(ActKind::Grant, base + cfg_.dirLookup, blkMsg(blk));
                }
            }
            break;
          }
          default:
            break;
        }
    }
    // The sweep mutated entries in place (no insertion), so the memo
    // still points at live storage; leave it.
}

} // namespace mspdsm
