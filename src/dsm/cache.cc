#include "dsm/cache.hh"

#include "base/logging.hh"
#include "obs/obs.hh"

namespace mspdsm
{

LineState
CacheCtrl::lineState(BlockId blk) const
{
    auto it = lines_.find(blk);
    return it == lines_.end() ? LineState::Invalid : it->second.state;
}

bool
CacheCtrl::hasUnreferencedSpec(BlockId blk) const
{
    auto it = lines_.find(blk);
    return it != lines_.end() && it->second.state != LineState::Invalid &&
           it->second.spec && !it->second.referenced;
}

void
CacheCtrl::hitDone()
{
    MemCompletion *done = hitDone_;
    hitDone_ = nullptr;
    done->complete(false, eq_.curTick());
}

void
CacheCtrl::kill()
{
    lines_.clear();
    memoLine_ = nullptr;
    mshr_ = Mshr{};
    if (hitEvent_.scheduled())
        eq_.deschedule(hitEvent_);
    hitDone_ = nullptr;
    if (retryEvent_.scheduled())
        eq_.deschedule(retryEvent_);
    retryAttempts_ = 0;
    retryAfterNack_ = false;
}

void
CacheCtrl::retryFired()
{
    if (!mshr_.valid)
        return;
    if (retryAfterNack_) {
        // Planned re-issue after a Nack backoff (already counted).
        retryAfterNack_ = false;
    } else {
        stats_.timeouts.inc();
        ++retryAttempts_;
        fatal_if(retryAttempts_ > retryLimit_, "cache ", id_,
                 ": exhausted ", retryLimit_,
                 " retries for block ", mshr_.blk,
                 "; home unreachable");
        stats_.retryDepth.sample(retryAttempts_);
        if (obs_) [[unlikely]]
            obs_->retryInstant("timeout retry", id_, mshr_.blk,
                               retryAttempts_, eq_.curTick());
    }
    stats_.retries.inc();
    // Re-derive the request from the *current* line state (an Inval
    // may have raced the dead home) and re-resolve the home through
    // the re-map table, so the retry lands at the backup directory.
    const Line &l = line(mshr_.blk);
    const MsgType t = mshr_.write
                          ? (l.state == LineState::Shared
                                 ? MsgType::Upgrade
                                 : MsgType::GetX)
                          : MsgType::GetS;
    sendRequest(t, mshr_.blk, l, eq_.curTick());
    eq_.schedule(eq_.curTick() + retryTimeout_, retryEvent_);
}

void
CacheCtrl::sendRequest(MsgType t, BlockId blk, const Line &l, Tick base)
{
    CohMsg m;
    m.type = t;
    m.src = id_;
    m.dst = map_.homeOf(blk);
    m.blk = blk;
    m.hadCopy = l.state != LineState::Invalid;
    m.copyWasSpec = l.spec;
    m.copyReferenced = l.referenced;
    net_.sendAt(base, m);
}

Tick
CacheCtrl::tryHit(BlockId blk, bool is_write, Tick now)
{
    panic_if(mshr_.valid, "blocking processor accessed during a miss");
    Line &l = line(blk);
    if (is_write ? l.state != LineState::Modified
                 : l.state == LineState::Invalid)
        return 0;

    if (is_write) {
        stats_.writeHits.inc();
    } else {
        stats_.readHits.inc();
        if (l.spec && !l.referenced) {
            // A speculative push absorbed this read: the remote
            // access the paper's model converts into a local one.
            if (l.trig == SpecTrigger::FirstRead)
                stats_.specServedFr.inc();
            else if (l.trig == SpecTrigger::Swi)
                stats_.specServedSwi.inc();
            stats_.specUseDist.sample(now - l.specPush);
            if (obs_) [[unlikely]]
                obs_->specInstant("spec use", id_, blk, now);
        }
    }
    // First touch of a remote-cache resident block (including every
    // speculatively pushed copy) costs a local access; afterwards the
    // block lives in the processor cache.
    const Tick lat = l.inProcCache ? cfg_.cacheHit : cfg_.memAccess;
    l.inProcCache = true;
    l.referenced = true;
    return lat;
}

void
CacheCtrl::issueMiss(BlockId blk, bool is_write, MemCompletion &done,
                     Tick base)
{
    panic_if(mshr_.valid, "blocking processor issued a second miss");
    const Line &l = line(blk);
    mshr_.valid = true;
    mshr_.blk = blk;
    mshr_.write = is_write;
    mshr_.invalidated = false;
    mshr_.done = &done;
    mshr_.issued = base;
    if (!is_write) {
        stats_.demandReads.inc();
        sendRequest(MsgType::GetS, blk, l, base);
    } else {
        stats_.demandWrites.inc();
        sendRequest(l.state == LineState::Shared ? MsgType::Upgrade
                                                 : MsgType::GetX,
                    blk, l, base);
    }
    if (faultsEnabled_) {
        // Timeout-and-retry: if the home dies with this request (or
        // its reply) in flight, the message is dropped and only this
        // timer recovers the transaction.
        retryAfterNack_ = false;
        eq_.schedule(base + retryTimeout_, retryEvent_);
    }
}

void
CacheCtrl::accessAt(BlockId blk, bool is_write, MemCompletion &done,
                    Tick base)
{
    if (const Tick lat = tryHit(blk, is_write, base)) {
        // Local completion through the cache's own timer (the
        // processor's fused fast path schedules its own resume
        // instead and never comes through here on a hit).
        panic_if(hitEvent_.scheduled(),
                 "cache ", id_, ": overlapping hit completions");
        hitDone_ = &done;
        eq_.schedule(base + lat, hitEvent_);
        return;
    }
    issueMiss(blk, is_write, done, base);
}

void
CacheCtrl::access(Addr addr, bool is_write, MemCompletion &done)
{
    accessAt(map_.blockOf(addr), is_write, done, eq_.curTick());
}

void
CacheCtrl::handle(const CohMsg &msg, Tick base)
{
    Line &l = line(msg.blk);
    switch (msg.type) {
      case MsgType::Inval: {
        // Acknowledge with the copy's speculation/reference state
        // piggy-backed (Section 4.2 verification).
        CohMsg ack;
        ack.type = MsgType::InvAck;
        ack.src = id_;
        ack.dst = msg.src;
        ack.blk = msg.blk;
        ack.hadCopy = l.state != LineState::Invalid;
        ack.copyWasSpec = l.spec;
        ack.copyReferenced = l.referenced;
        if (mshr_.valid && mshr_.blk == msg.blk) {
            // The invalidation raced our in-flight demand fill. The
            // fill still satisfies the blocked access (it was
            // serialized before this writer at the home), but the
            // copy must not survive in the cache.
            mshr_.invalidated = true;
            ack.copyReferenced = true; // the demand access is the use
        }
        l.state = LineState::Invalid;
        l.spec = false;
        l.referenced = false;
        l.inProcCache = false;
        net_.sendAt(base, ack);
        return;
      }
      case MsgType::Recall: {
        panic_if(l.state != LineState::Modified,
                 "Recall for a block not owned: ", msg.toString());
        CohMsg wb;
        wb.type = MsgType::WriteBack;
        wb.src = id_;
        wb.dst = msg.src;
        wb.blk = msg.blk;
        wb.hadCopy = true;
        wb.speculative = msg.speculative;
        l.state = LineState::Invalid;
        l.spec = false;
        l.referenced = false;
        l.inProcCache = false;
        net_.sendAt(base, wb);
        return;
      }
      case MsgType::SpecData: {
        if ((mshr_.valid && mshr_.blk == msg.blk) ||
            l.state != LineState::Invalid) {
            // Race with an in-flight demand request or an existing
            // copy: drop the speculative block and let the base
            // protocol answer (paper Section 4.2).
            stats_.specDropped.inc();
            if (obs_) [[unlikely]]
                obs_->specInstant("spec drop", id_, msg.blk, base);
            return;
        }
        l.state = LineState::Shared;
        l.spec = true;
        l.referenced = false;
        l.inProcCache = false;
        l.trig = msg.trigger;
        l.specPush = base;
        if (obs_) [[unlikely]]
            obs_->specInstant("spec place", id_, msg.blk, base);
        return;
      }
      case MsgType::Nack: {
        // Our request bounced off a dead home. Back off
        // deterministically and re-issue; the re-map table will have
        // redirected the home by the time the retry fires.
        if (!faultsEnabled_ || !mshr_.valid || mshr_.blk != msg.blk)
            return; // late bounce of an already-satisfied request
        stats_.nacks.inc();
        ++retryAttempts_;
        fatal_if(retryAttempts_ > retryLimit_, "cache ", id_,
                 ": exhausted ", retryLimit_, " retries for block ",
                 mshr_.blk, "; home unreachable");
        stats_.retryDepth.sample(retryAttempts_);
        if (obs_) [[unlikely]]
            obs_->retryInstant("nack backoff", id_, mshr_.blk,
                               retryAttempts_, base);
        if (retryEvent_.scheduled())
            eq_.deschedule(retryEvent_);
        retryAfterNack_ = true;
        const unsigned shift =
            retryAttempts_ < 6 ? retryAttempts_ : 6;
        eq_.schedule(base + (nackBackoffBase << shift), retryEvent_);
        return;
      }
      case MsgType::RehomeSync:
      case MsgType::CkptData:
      case MsgType::ShardSync:
        // Fault-layer traffic modelling only: the directory
        // reconstruction / predictor snapshot these messages stand
        // for is applied synchronously by the fault sweep. Their cost
        // is the link/NI occupancy they just paid.
        return;
      case MsgType::DataShared:
      case MsgType::DataExcl:
      case MsgType::UpgradeAck: {
        if (faultsEnabled_ && (!mshr_.valid || mshr_.blk != msg.blk)) {
            // A fill for a miss this node no longer has outstanding:
            // the node was killed (squashing the miss) and restarted
            // while the reply was in flight from a pre-crash request
            // epoch boundary, or a retry raced its own late reply.
            stats_.staleFills.inc();
            return;
        }
        panic_if(!mshr_.valid || mshr_.blk != msg.blk,
                 "unexpected fill ", msg.toString());
        if (mshr_.invalidated && msg.type == MsgType::DataShared) {
            // Consume the value for the blocked access but do not
            // keep the (already invalidated) copy.
            l.state = LineState::Invalid;
            l.spec = false;
            l.referenced = false;
            l.inProcCache = false;
        } else {
            l.state = msg.type == MsgType::DataShared
                          ? LineState::Shared
                          : LineState::Modified;
            l.spec = false;
            l.referenced = true;
            l.inProcCache = true;
        }
        if (faultsEnabled_) {
            // The miss is satisfied: disarm the stale timer so the
            // next miss can arm it afresh.
            if (retryEvent_.scheduled())
                eq_.deschedule(retryEvent_);
            retryAttempts_ = 0;
            retryAfterNack_ = false;
        }
        // Fill latency spans the whole transaction, retries included:
        // that is exactly the tail the lossy-link and fault axes
        // stretch and the mean hides.
        (mshr_.write ? stats_.writeMissLat : stats_.readMissLat)
            .sample(base - mshr_.issued);
        if (obs_) [[unlikely]]
            obs_->missSpan(id_, mshr_.blk, mshr_.write, mshr_.issued,
                           base);
        MemCompletion *done = mshr_.done;
        mshr_ = Mshr{};
        done->complete(msg.remoteWork, base);
        return;
      }
      default:
        panic("cache received unexpected ", msg.toString());
    }
}

} // namespace mspdsm
