#include "dsm/fault.hh"

#include <algorithm>

#include "base/logging.hh"
#include "dsm/cache.hh"
#include "dsm/directory.hh"
#include "dsm/processor.hh"
#include "net/network.hh"
#include "obs/obs.hh"

namespace mspdsm
{

FaultManager::FaultManager(EventQueue &eq, Network &net,
                           const ProtoConfig &cfg, FaultPlan plan,
                           std::vector<CacheCtrl *> caches,
                           std::vector<Directory *> dirs,
                           std::vector<Processor *> procs,
                           std::vector<Vmsp *> vmsps,
                           std::vector<std::vector<PredictorBase *>>
                               nodePreds)
    : eq_(eq), net_(net), cfg_(cfg), map_(cfg), plan_(std::move(plan)),
      caches_(std::move(caches)), dirs_(std::move(dirs)),
      procs_(std::move(procs)), vmsps_(std::move(vmsps)),
      nodePreds_(std::move(nodePreds)), remap_(cfg.numNodes),
      epoch_(cfg.numNodes, 0), ckpts_(cfg.numNodes)
{
    const unsigned n = cfg_.numNodes;
    fatal_if(plan_.empty(), "FaultManager built with an empty plan");
    fatal_if(plan_.backup != invalidNode && plan_.backup >= n,
             "fault backup node ", plan_.backup, " out of range");
    for (unsigned i = 0; i < n; ++i)
        remap_[i] = static_cast<NodeId>(i);
    if (plan_.replicateShards) {
        mirror_.resize(n);
        deltaBacklog_.assign(n, 0);
    }
    if (!plan_.linkLoss.empty())
        net_.setLinkLoss(plan_.linkLoss, plan_.retransmitBudget,
                         plan_.retransmitDelay);

    // Wire the whole machine: epoch screen at the network, shared
    // re-map table and retry FSM at every node, progress reporting at
    // every processor.
    net_.setFaults(this);
    for (unsigned i = 0; i < n; ++i) {
        caches_[i]->enableFaults();
        caches_[i]->setHomeRemap(remap_.data());
        dirs_[i]->setFaults(this);
        dirs_[i]->setHomeRemap(remap_.data());
        procs_[i]->setFaults(this);
    }

    for (const FaultEvent &fe : plan_.events) {
        fatal_if(fe.node >= n,
                 "fault plan names node ", fe.node, " of ", n);
        PlanEvent &pe = planEvents_.emplace_back(this, fe.kind, fe.node);
        eq_.schedule(fe.tick, pe);
    }
    if (plan_.ckptInterval > 0)
        eq_.schedule(plan_.ckptInterval, ckptEvent_);
    updateHorizon();
    outcome_.faulted = true;
}

NodeId
FaultManager::successor(NodeId from) const
{
    const unsigned n = cfg_.numNodes;
    for (unsigned step = 1; step < n; ++step) {
        const NodeId w = static_cast<NodeId>((from + step) % n);
        if (!dead(w))
            return w;
    }
    return from;
}

NodeId
FaultManager::backupFor(NodeId v) const
{
    // An explicit backup is honored verbatim, even when it is dead or
    // the victim itself (the documented retry-exhaustion path);
    // otherwise the deterministic succession order picks the first
    // live node after the victim.
    if (plan_.backup != invalidNode)
        return plan_.backup;
    return successor(v);
}

std::uint64_t
FaultManager::totalOps() const
{
    std::uint64_t ops = 0;
    for (const Processor *p : procs_)
        ops += p->stats().ops;
    return ops;
}

bool
FaultManager::killsPending() const
{
    for (std::size_t i = 0; i < planEvents_.size(); ++i) {
        const PlanEvent &pe = planEvents_[i];
        if (pe.kind == FaultKind::Kill && pe.scheduled())
            return true;
    }
    return false;
}

void
FaultManager::updateHorizon()
{
    Tick h = maxTick;
    for (std::size_t i = 0; i < planEvents_.size(); ++i) {
        const PlanEvent &pe = planEvents_[i];
        if (pe.scheduled())
            h = std::min(h, pe.when());
    }
    eq_.setFaultHorizon(h);
}

void
FaultManager::planFired(PlanEvent &e)
{
    switch (e.kind) {
      case FaultKind::Kill:
        killNode(e.node);
        break;
      case FaultKind::Restart:
        restartNode(e.node);
        break;
      case FaultKind::PredLoss:
        predLoss(e.node);
        break;
    }
    updateHorizon();
}

void
FaultManager::rehome(NodeId h, NodeId to, Tick now)
{
    if (to == h && dead(h))
        return; // pathological explicit backup == dead victim
    if (plan_.replicateShards) {
        // Install the replicated mirror directly: no survivor sweep,
        // no reconstruction traffic -- the cost was already paid
        // incrementally as ShardSync messages during normal
        // operation. Dead holders are screened out here (the mirror
        // may still name nodes that died in this same cascade).
        for (const auto &kv : mirror_[h]) {
            const MirrorEntry &me = kv.second;
            if (me.excl) {
                if (me.owner != invalidNode && !dead(me.owner))
                    dirs_[to]->adopt(kv.first, me.owner, true);
            } else {
                for (NodeId s : me.sharers)
                    if (!dead(s))
                        dirs_[to]->adopt(kv.first, s, false);
            }
        }
        return;
    }
    // Survivor sweep: reconstruct the shard from the surviving
    // caches, exactly the sharing information a recovery protocol
    // would collect. Each contributing node also sends one RehomeSync
    // over the real interconnect, so reconstruction has a network
    // cost.
    for (std::size_t s = 0; s < caches_.size(); ++s) {
        const NodeId sn = static_cast<NodeId>(s);
        if (sn == to || dead(sn)) {
            // The new host contributes its own lines without traffic.
            if (sn == to && !dead(sn))
                caches_[s]->forEachLine(
                    [&](BlockId blk, LineState st) {
                        if (map_.geometricHomeOf(blk) == h)
                            dirs_[to]->adopt(
                                blk, sn, st == LineState::Modified);
                    });
            continue;
        }
        bool contributed = false;
        caches_[s]->forEachLine([&](BlockId blk, LineState st) {
            if (map_.geometricHomeOf(blk) == h) {
                dirs_[to]->adopt(blk, sn, st == LineState::Modified);
                contributed = true;
            }
        });
        if (contributed) {
            ++outcome_.rehomeSyncs;
            CohMsg m;
            m.type = MsgType::RehomeSync;
            m.src = sn;
            m.dst = to;
            m.blk = 0;
            net_.sendAt(now, m);
        }
    }
}

void
FaultManager::killNode(NodeId v)
{
    fatal_if(dead(v), "fault plan kills node ", v, " twice");
    const Tick now = eq_.curTick();
    verbose("fault: kill node ", v, " at tick ", now);
    if (obs_) [[unlikely]]
        obs_->faultInstant("kill", v, now);

    // Fail-stop: from this instant every message the node launched
    // before the crash is recognizably stale (epoch bump) and every
    // message addressed to it bounces or vanishes (dead set).
    deadSet_.add(v);
    ++epoch_[v];
    procs_[v]->kill();
    caches_[v]->kill();
    dirs_[v]->failover();

    // Re-home the victim's directory shard: one write into the
    // indirection table every AddrMap in the machine shares.
    const NodeId b = backupFor(v);
    remap_[v] = b;
    if (obs_) [[unlikely]]
        obs_->faultInstant("rehome", b, now);

    // Every surviving directory prunes the dead node from its own
    // bookkeeping (sharer sets, pending acks, owned blocks).
    for (std::size_t d = 0; d < dirs_.size(); ++d) {
        const NodeId dn = static_cast<NodeId>(d);
        if (dn != v && !dead(dn))
            dirs_[d]->pruneDead(v, now);
    }

    // The backup installs the victim's shard (replicated mirror or
    // survivor sweep; see rehome()).
    rehome(v, b, now);

    // Cascading failure: every shard the victim was hosting as a
    // backup (its own failover() just dumped their entries) re-homes
    // again, to the next live node in the succession order of the
    // shard's geometric home, and reconstruction re-runs there. Any
    // reconstruction traffic still in flight toward the dead backup
    // is screened by the dead set like all other traffic.
    for (std::size_t h = 0; h < remap_.size(); ++h) {
        const NodeId hn = static_cast<NodeId>(h);
        if (hn == v || remap_[h] != v)
            continue;
        const NodeId next = successor(hn);
        remap_[h] = next;
        rehome(hn, next, now);
    }

    // The victim's predictor state dies with it.
    for (PredictorBase *p : nodePreds_[v])
        p->reset();

    // Warm restart: the shard's new home inherits the last replicated
    // checkpoint of the victim's VMSP instead of learning from cold.
    if (plan_.warmRestart && b != v && !dead(b) && vmsps_[b] &&
        ckpts_[v])
        vmsps_[b]->mergeFrom(*ckpts_[v]);

    if (outcome_.killTick == 0)
        outcome_.killTick = now; // first kill anchors the outage
    outcome_.opsAtKill = totalOps();
}

void
FaultManager::restartNode(NodeId v)
{
    fatal_if(!dead(v), "fault plan restarts node ", v,
             " which is not down");
    const Tick now = eq_.curTick();
    verbose("fault: restart node ", v, " at tick ", now);
    if (obs_) [[unlikely]]
        obs_->faultInstant("restart", v, now);
    deadSet_.remove(v);

    // Fail-back: the restarted victim re-adopts its original shard
    // through the same indirection table. The epoch is bumped again
    // so the fail-back is a recognizable boundary, the interim host
    // releases the shard's entries (aborting transactions it was
    // mid-way through -- the requesters' retry FSM re-resolves the
    // home), and the shard state is rebuilt at the victim from the
    // replicated mirror or a survivor sweep. In-flight messages still
    // aimed at the interim host are screened at delivery by the
    // currentHome() check.
    ++epoch_[v];
    const NodeId host = remap_[v];
    if (host != v && !dead(host)) {
        dirs_[host]->releaseShard(v);
        ++outcome_.failbacks;
        if (obs_) [[unlikely]]
            obs_->faultInstant("failback", host, now);
    }
    remap_[v] = v;
    rehome(v, v, now);

    // Warm restart: the victim's own predictor warms up again from
    // the last checkpoint it replicated out before the crash.
    if (plan_.warmRestart && vmsps_[v] && ckpts_[v])
        vmsps_[v]->mergeFrom(*ckpts_[v]);

    awaiting_.add(v);
    procs_[v]->restart(now);
    outcome_.restartTick = now;
    outcome_.opsAtRestart = totalOps();
}

void
FaultManager::predLoss(NodeId v)
{
    if (obs_) [[unlikely]]
        obs_->faultInstant("pred loss", v, eq_.curTick());
    for (PredictorBase *p : nodePreds_[v])
        p->reset();
    ++outcome_.predLosses;
}

void
FaultManager::noteProgress(NodeId n, Tick t)
{
    if (awaiting_.contains(n)) {
        awaiting_.remove(n);
        outcome_.recoveredTick = std::max(outcome_.recoveredTick, t);
    }
}

void
FaultManager::noteShardDelta(BlockId blk, bool excl, NodeId owner,
                             NodeSet sharers, Tick base)
{
    const NodeId h = map_.geometricHomeOf(blk);
    MirrorEntry &me = mirror_[h][blk];
    me.excl = excl;
    me.owner = excl ? owner : invalidNode;
    me.sharers = excl ? NodeSet{} : sharers;
    ++outcome_.shardDeltas;

    // Batched replication traffic: every shardSyncBatch deltas the
    // acting home flushes one ShardSync to the shard's designated
    // backup over the real interconnect.
    if (++deltaBacklog_[h] < shardSyncBatch)
        return;
    deltaBacklog_[h] = 0;
    const NodeId src = remap_[h];
    const NodeId dst =
        plan_.backup != invalidNode ? plan_.backup : successor(src);
    if (src == dst || dead(src) || dead(dst))
        return;
    ++outcome_.shardSyncs;
    CohMsg m;
    m.type = MsgType::ShardSync;
    m.src = src;
    m.dst = dst;
    m.blk = blk; // the delta that filled the batch
    net_.sendAt(base, m);
}

void
FaultManager::checkpointFired()
{
    const Tick now = eq_.curTick();
    // Checkpoint the predictor of every victim the plan still intends
    // to kill; replicating everyone would charge traffic the recovery
    // scheme never uses.
    for (std::size_t i = 0; i < planEvents_.size(); ++i) {
        const PlanEvent &pe = planEvents_[i];
        if (pe.kind != FaultKind::Kill || !pe.scheduled())
            continue;
        const NodeId v = pe.node;
        if (dead(v) || !vmsps_[v])
            continue;
        ckpts_[v] =
            std::make_unique<Vmsp::Snapshot>(vmsps_[v]->snapshot());
        ++outcome_.ckptSnapshots;
        const NodeId b = backupFor(v);
        if (b == v)
            continue;
        // Replication burst: a capped number of data-bearing messages
        // proportional to the checkpoint size rides the real links.
        const std::size_t blocks = ckpts_[v]->blockCount();
        const std::size_t burst =
            std::min<std::size_t>(16, 1 + blocks / 16);
        for (std::size_t k = 0; k < burst; ++k) {
            CohMsg m;
            m.type = MsgType::CkptData;
            m.src = v;
            m.dst = b;
            m.blk = static_cast<BlockId>(k);
            net_.sendAt(now, m);
        }
        outcome_.ckptMessages += burst;
    }
    // Stop once nothing is left to protect, so the periodic timer
    // cannot keep an otherwise-finished run alive.
    if (killsPending())
        eq_.schedule(now + plan_.ckptInterval, ckptEvent_);
}

} // namespace mspdsm
