#include "dsm/fault.hh"

#include <algorithm>

#include "base/logging.hh"
#include "dsm/cache.hh"
#include "dsm/directory.hh"
#include "dsm/processor.hh"
#include "net/network.hh"

namespace mspdsm
{

FaultManager::FaultManager(EventQueue &eq, Network &net,
                           const ProtoConfig &cfg, FaultPlan plan,
                           std::vector<CacheCtrl *> caches,
                           std::vector<Directory *> dirs,
                           std::vector<Processor *> procs,
                           std::vector<Vmsp *> vmsps,
                           std::vector<std::vector<PredictorBase *>>
                               nodePreds)
    : eq_(eq), net_(net), cfg_(cfg), map_(cfg), plan_(std::move(plan)),
      caches_(std::move(caches)), dirs_(std::move(dirs)),
      procs_(std::move(procs)), vmsps_(std::move(vmsps)),
      nodePreds_(std::move(nodePreds)), remap_(cfg.numNodes),
      epoch_(cfg.numNodes, 0), ckpts_(cfg.numNodes)
{
    const unsigned n = cfg_.numNodes;
    fatal_if(plan_.empty(), "FaultManager built with an empty plan");
    fatal_if(plan_.backup != invalidNode && plan_.backup >= n,
             "fault backup node ", plan_.backup, " out of range");
    for (unsigned i = 0; i < n; ++i)
        remap_[i] = static_cast<NodeId>(i);

    // Wire the whole machine: epoch screen at the network, shared
    // re-map table and retry FSM at every node, progress reporting at
    // every processor.
    net_.setFaults(this);
    for (unsigned i = 0; i < n; ++i) {
        caches_[i]->enableFaults();
        caches_[i]->setHomeRemap(remap_.data());
        dirs_[i]->setFaults(this);
        dirs_[i]->setHomeRemap(remap_.data());
        procs_[i]->setFaults(this);
    }

    for (const FaultEvent &fe : plan_.events) {
        fatal_if(fe.node >= n,
                 "fault plan names node ", fe.node, " of ", n);
        PlanEvent &pe = planEvents_.emplace_back(this, fe.kind, fe.node);
        eq_.schedule(fe.tick, pe);
    }
    if (plan_.ckptInterval > 0)
        eq_.schedule(plan_.ckptInterval, ckptEvent_);
    updateHorizon();
    outcome_.faulted = true;
}

NodeId
FaultManager::backupFor(NodeId v) const
{
    if (plan_.backup != invalidNode)
        return plan_.backup;
    return static_cast<NodeId>((v + 1u) % cfg_.numNodes);
}

std::uint64_t
FaultManager::totalOps() const
{
    std::uint64_t ops = 0;
    for (const Processor *p : procs_)
        ops += p->stats().ops;
    return ops;
}

bool
FaultManager::killsPending() const
{
    for (std::size_t i = 0; i < planEvents_.size(); ++i) {
        const PlanEvent &pe = planEvents_[i];
        if (pe.kind == FaultKind::Kill && pe.scheduled())
            return true;
    }
    return false;
}

void
FaultManager::updateHorizon()
{
    Tick h = maxTick;
    for (std::size_t i = 0; i < planEvents_.size(); ++i) {
        const PlanEvent &pe = planEvents_[i];
        if (pe.scheduled())
            h = std::min(h, pe.when());
    }
    eq_.setFaultHorizon(h);
}

void
FaultManager::planFired(PlanEvent &e)
{
    switch (e.kind) {
      case FaultKind::Kill:
        killNode(e.node);
        break;
      case FaultKind::Restart:
        restartNode(e.node);
        break;
      case FaultKind::PredLoss:
        predLoss(e.node);
        break;
    }
    updateHorizon();
}

void
FaultManager::killNode(NodeId v)
{
    fatal_if(dead(v), "fault plan kills node ", v, " twice");
    const Tick now = eq_.curTick();

    // Fail-stop: from this instant every message the node launched
    // before the crash is recognizably stale (epoch bump) and every
    // message addressed to it bounces or vanishes (dead set).
    deadSet_.add(v);
    ++epoch_[v];
    procs_[v]->kill();
    caches_[v]->kill();
    dirs_[v]->failover();

    // Re-home the victim's directory shard: one write into the
    // indirection table every AddrMap in the machine shares.
    const NodeId b = backupFor(v);
    remap_[v] = b;

    // Every surviving directory prunes the dead node from its own
    // bookkeeping (sharer sets, pending acks, owned blocks).
    for (std::size_t d = 0; d < dirs_.size(); ++d) {
        const NodeId dn = static_cast<NodeId>(d);
        if (dn != v && !dead(dn))
            dirs_[d]->pruneDead(v, now);
    }

    // The backup reconstructs the shard from the surviving caches:
    // exactly the sharing information a recovery protocol would
    // collect. Each contributing node also sends one RehomeSync over
    // the real interconnect, so reconstruction has a network cost.
    if (b != v) {
        for (std::size_t s = 0; s < caches_.size(); ++s) {
            const NodeId sn = static_cast<NodeId>(s);
            if (sn == v || dead(sn))
                continue;
            bool contributed = false;
            caches_[s]->forEachLine([&](BlockId blk, LineState st) {
                if (map_.geometricHomeOf(blk) == v) {
                    dirs_[b]->adopt(blk, sn,
                                    st == LineState::Modified);
                    contributed = true;
                }
            });
            if (contributed && sn != b) {
                ++outcome_.rehomeSyncs;
                CohMsg m;
                m.type = MsgType::RehomeSync;
                m.src = sn;
                m.dst = b;
                m.blk = 0;
                net_.sendAt(now, m);
            }
        }
    }

    // The victim's predictor state dies with it.
    for (PredictorBase *p : nodePreds_[v])
        p->reset();

    // Warm restart: the shard's new home inherits the last replicated
    // checkpoint of the victim's VMSP instead of learning from cold.
    if (plan_.warmRestart && b != v && vmsps_[b] && ckpts_[v])
        vmsps_[b]->mergeFrom(*ckpts_[v]);

    outcome_.killTick = now;
    outcome_.opsAtKill = totalOps();
}

void
FaultManager::restartNode(NodeId v)
{
    fatal_if(!dead(v), "fault plan restarts node ", v,
             " which is not down");
    const Tick now = eq_.curTick();
    deadSet_.remove(v);
    // The epoch stays bumped: stragglers from before the crash remain
    // stale forever. The directory shard stays at the backup.
    awaitingProgress_ = true;
    procs_[v]->restart(now);
    outcome_.restartTick = now;
    outcome_.opsAtRestart = totalOps();
}

void
FaultManager::predLoss(NodeId v)
{
    for (PredictorBase *p : nodePreds_[v])
        p->reset();
    ++outcome_.predLosses;
}

void
FaultManager::noteProgress(NodeId, Tick t)
{
    if (awaitingProgress_) {
        awaitingProgress_ = false;
        outcome_.recoveredTick = t;
    }
}

void
FaultManager::checkpointFired()
{
    const Tick now = eq_.curTick();
    // Checkpoint the predictor of every victim the plan still intends
    // to kill; replicating everyone would charge traffic the recovery
    // scheme never uses.
    for (std::size_t i = 0; i < planEvents_.size(); ++i) {
        const PlanEvent &pe = planEvents_[i];
        if (pe.kind != FaultKind::Kill || !pe.scheduled())
            continue;
        const NodeId v = pe.node;
        if (dead(v) || !vmsps_[v])
            continue;
        ckpts_[v] =
            std::make_unique<Vmsp::Snapshot>(vmsps_[v]->snapshot());
        ++outcome_.ckptSnapshots;
        const NodeId b = backupFor(v);
        if (b == v)
            continue;
        // Replication burst: a capped number of data-bearing messages
        // proportional to the checkpoint size rides the real links.
        const std::size_t blocks = ckpts_[v]->blockCount();
        const std::size_t burst =
            std::min<std::size_t>(16, 1 + blocks / 16);
        for (std::size_t k = 0; k < burst; ++k) {
            CohMsg m;
            m.type = MsgType::CkptData;
            m.src = v;
            m.dst = b;
            m.blk = static_cast<BlockId>(k);
            net_.sendAt(now, m);
        }
        outcome_.ckptMessages += burst;
    }
    // Stop once nothing is left to protect, so the periodic timer
    // cannot keep an otherwise-finished run alive.
    if (killsPending())
        eq_.schedule(now + plan_.ckptInterval, ckptEvent_);
}

} // namespace mspdsm
