/**
 * @file
 * Trace-driven blocking processor and the global barrier.
 *
 * Each processor replays its trace in order: compute delays advance
 * local time, memory operations block until the cache controller
 * completes them, and barriers synchronize all processors. The
 * processor classifies each memory stall as remote request waiting
 * time (the quantity Figure 9 breaks out) or computation, using the
 * cache's completion flag.
 */

#ifndef MSPDSM_DSM_PROCESSOR_HH
#define MSPDSM_DSM_PROCESSOR_HH

#include <vector>

#include "base/types.hh"
#include "dsm/cache.hh"
#include "sim/eventq.hh"
#include "workload/compiled_trace.hh"

namespace mspdsm
{

/**
 * Global barrier across all processors. The paper charges barrier
 * wait time to computation (Figure 9's "comp" includes barrier
 * synchronization and lock spinning), which falls out naturally here
 * because barrier waiting is not remote request waiting.
 *
 * Waiters park their own resume Event; on release every waiter is
 * scheduled `cost` ticks out in arrival order, which preserves the
 * resume ordering the previous callback-based release produced.
 */
class GlobalBarrier
{
  public:
    GlobalBarrier(EventQueue &eq, unsigned parties, Tick cost)
        : eq_(eq), parties_(parties), cost_(cost)
    {
        waiting_.reserve(parties);
    }

    /**
     * Arrive as of tick @p base; @p resume fires when all parties
     * have arrived (@p base of the last arriver anchors the release).
     */
    void arrive(Event &resume, Tick base);

    /** Number of completed barrier episodes. */
    std::uint64_t episodes() const { return episodes_; }

    /**
     * Withdraw a parked waiter (fault layer: the waiter's node died).
     * The episode still requires all parties, so the survivors stall
     * until the node restarts and re-arrives -- that stall *is* the
     * recovery cost the fault experiments measure.
     * @return true iff @p resume was parked and has been removed
     */
    bool removeWaiter(const Event &resume);

  private:
    EventQueue &eq_;
    unsigned parties_;
    Tick cost_;
    std::vector<Event *> waiting_;
    std::uint64_t episodes_ = 0;
};

/** Per-processor execution statistics. */
struct ProcStats
{
    Tick requestWait = 0; //!< stall on remote coherence transactions
    Tick memWait = 0;     //!< all memory stall (incl. local)
    Tick finishTick = 0;  //!< completion time
    std::uint64_t ops = 0; //!< compiled ops executed (fused computes
                           //!< count once)
};

/**
 * A blocking, in-order, trace-driven processor executing a compiled
 * op stream.
 *
 * The processor owns a single StepEvent: a blocking in-order core has
 * at most one pending continuation (compute-delay expiry, hit
 * completion, or barrier resume), so every reschedule reuses the same
 * pre-allocated object. Likewise its outstanding-access table is a
 * single embedded AccessRecord (the intrusive MemCompletion handed to
 * the cache plus the issue tick), so a memory operation is issued and
 * completed without allocating or copying a callback.
 *
 * step() executes a *fused run* of local operations per invocation:
 * compute delays and (hit-eligible) cache hits advance a virtual time
 * ahead of the clock for as long as the event queue guarantees no
 * other event can fire first (EventQueue::nextTick(), strictly),
 * so a run of local ops costs one event dispatch instead of one per
 * op. The guard makes the fusion exact: any event at or before the
 * virtual time -- an invalidation killing a "hit", a message whose
 * jitter draw must stay ordered -- breaks the run, and the processor
 * falls back to scheduling its resume on the clock, which is the
 * pre-fusion behaviour tick for tick.
 */
class Processor
{
  public:
    Processor(NodeId id, EventQueue &eq, CacheCtrl &cache,
              GlobalBarrier &barrier)
        : id_(id), eq_(eq), cache_(cache), barrier_(barrier),
          stepEvent_(this), access_(this)
    {}

    /** Begin executing @p trace at the current tick. */
    void
    start(const CompiledTrace &trace)
    {
        trace_ = trace;
        started_ = true;
        pc_ = 0;
        done_ = false;
        eq_.scheduleAfter(0, stepEvent_);
    }

    /** True when the trace has been fully executed. */
    bool done() const { return done_; }

    /** Execution statistics. */
    const ProcStats &stats() const { return stats_; }

    /** This processor's node id. */
    NodeId id() const { return id_; }

    // ---- Fault layer (dsm/fault.hh). Optional; a processor with no
    // ---- fault wiring behaves exactly as before.

    /** Attach the fault layer (for the post-restart progress report). */
    void setFaults(FaultManager *f) { faults_ = f; }

    /** Attach the observability layer (may be null). */
    void setObs(ObsManager *o) { obs_ = o; }

    /**
     * Fail-stop: stop executing. A pending between-ops resume is
     * descheduled (and its tick remembered); an op in flight -- a
     * blocked memory access the cache kill squashes, or a barrier
     * arrival being withdrawn -- is rewound so the restarted
     * processor re-executes it.
     */
    void kill();

    /**
     * Resume execution at @p base >= the kill tick (or at the
     * remembered resume tick if that lies later). The first step()
     * dispatch afterwards reports progress to the fault layer.
     */
    void restart(Tick base);

  private:
    struct StepEvent final : public Event
    {
        explicit StepEvent(Processor *p) : proc(p) {}

        void process() override { proc->step(proc->clockTick()); }

        Processor *proc;
    };

    /**
     * The blocking core's one-entry outstanding-access table: the
     * completion record the cache controller signals, carrying the
     * issue tick the stall accounting needs.
     */
    struct AccessRecord final : public MemCompletion
    {
        explicit AccessRecord(Processor *p)
            : MemCompletion(&AccessRecord::fired), proc(p)
        {}

        static void
        fired(MemCompletion &self, bool remote, Tick base)
        {
            auto &r = static_cast<AccessRecord &>(self);
            r.proc->accessDone(r, remote, base);
        }

        Processor *proc;
        Tick issued = 0;
    };

    /** Execute a fused run of ops as of tick @p now >= curTick(). */
    void step(Tick now);

    /** The cache completed the outstanding access as of @p base. */
    void accessDone(AccessRecord &r, bool remote, Tick base);

    /** The event queue's clock (StepEvent dispatch anchor). */
    Tick clockTick() const { return eq_.curTick(); }

    NodeId id_;
    EventQueue &eq_;
    CacheCtrl &cache_;
    GlobalBarrier &barrier_;
    StepEvent stepEvent_;
    AccessRecord access_;
    CompiledTrace trace_;
    std::size_t pc_ = 0;
    bool started_ = false;
    bool done_ = false;
    FaultManager *faults_ = nullptr; //!< fault layer; null = fault-free
    ObsManager *obs_ = nullptr; //!< observability; null = untraced
    Tick resumeAt_ = 0;        //!< descheduled resume tick (kill)
    bool resumeNotify_ = false; //!< report the next step() dispatch
    ProcStats stats_;
};

} // namespace mspdsm

#endif // MSPDSM_DSM_PROCESSOR_HH
