/**
 * @file
 * Per-node cache controller.
 *
 * Models the node's processor cache plus its (infinite, per the
 * paper's Section 6 assumption) remote cache as a unified block-state
 * map. A block fetched on demand lands in the processor cache
 * (subsequent hits cost one cycle); a block pushed speculatively lands
 * in the remote cache with its reference bit set, so its first use
 * costs one local/remote-cache access (104 cycles) instead of a full
 * remote round trip -- exactly the latency conversion the paper's
 * analytic model assumes (remote -> local).
 */

#ifndef MSPDSM_DSM_CACHE_HH
#define MSPDSM_DSM_CACHE_HH

#include "base/flat_map.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "net/network.hh"
#include "proto/config.hh"
#include "proto/msg.hh"
#include "sim/eventq.hh"

namespace mspdsm
{

/** Cache-side block states (MSI). */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Modified,
};

/**
 * Intrusive completion record for one processor-side access.
 *
 * The issuer embeds a MemCompletion (usually as the base of a larger
 * record carrying its own context, e.g. the issue tick) and hands a
 * reference to CacheCtrl::access(); the cache stores only the pointer
 * and invokes complete() when the access finishes. Issuing and
 * completing an access therefore allocates nothing and costs one
 * direct call through a function pointer -- no std::function, no
 * virtual dispatch.
 *
 * @param remote true iff the access waited on inter-node coherence
 *        traffic (the paper's "request waiting time"); node-local
 *        service counts as computation.
 */
class MemCompletion
{
  public:
    using Fn = void (*)(MemCompletion &self, bool remote);

    explicit constexpr MemCompletion(Fn fn) : fn_(fn) {}

    /** Deliver the completion. */
    void complete(bool remote) { fn_(*this, remote); }

  private:
    Fn fn_;
};

/** Cache-side statistics. */
struct CacheStats
{
    Counter demandReads;   //!< reads that issued a GetS
    Counter demandWrites;  //!< writes that issued a GetX or Upgrade
    Counter readHits;      //!< reads served from the node
    Counter writeHits;     //!< writes served from the node
    Counter specServedFr;  //!< first use of an FR-pushed copy
    Counter specServedSwi; //!< first use of an SWI-pushed copy
    Counter specDropped;   //!< speculative copies dropped on race
};

/**
 * The cache controller of one node.
 */
class CacheCtrl
{
  public:
    CacheCtrl(NodeId id, EventQueue &eq, Network &net,
              const ProtoConfig &cfg)
        : id_(id), eq_(eq), net_(net), cfg_(cfg), map_(cfg)
    {}

    /**
     * Processor-side access. At most one outstanding miss (blocking
     * in-order processor); @p done fires when the access completes
     * and must stay valid until then.
     */
    void access(Addr addr, bool is_write, MemCompletion &done);

    /** Network-side handler for Inval/Recall/data/SpecData messages. */
    void handle(const CohMsg &msg);

    /** Statistics. */
    const CacheStats &stats() const { return stats_; }

    /** State of a block, for tests. */
    LineState lineState(BlockId blk) const;

    /** True iff the block is present as an unreferenced spec copy. */
    bool hasUnreferencedSpec(BlockId blk) const;

  private:
    struct Line
    {
        LineState state = LineState::Invalid;
        bool inProcCache = false; //!< else remote-cache resident
        bool spec = false;        //!< placed speculatively
        bool referenced = false;  //!< processor has touched it
        SpecTrigger trig = SpecTrigger::None;
    };

    struct Mshr
    {
        bool valid = false;
        BlockId blk = 0;
        bool write = false;
        bool invalidated = false; //!< Inval raced the in-flight fill
        MemCompletion *done = nullptr;
    };

    /**
     * Completion timer for node-local hits. The processor is blocking
     * and in-order, so at most one hit completion is pending at a
     * time: one pre-allocated event per cache suffices.
     */
    struct HitEvent final : public Event
    {
        explicit HitEvent(CacheCtrl *c) : cache(c) {}

        void process() override { cache->hitDone(); }

        CacheCtrl *cache;
    };

    /**
     * Find-or-create the block's line, memoizing the most recent
     * block: a miss's fill, invalidation, and re-access all hit the
     * same line back to back, so the repeat probe is the common case.
     * The memo always holds the latest lookup, so a rehash (which
     * happens inside this call and is followed by re-assigning the
     * memo) can never leave it dangling.
     */
    Line &
    line(BlockId blk)
    {
        if (memoLine_ && memoBlk_ == blk)
            return *memoLine_;
        Line &l = lines_[blk];
        memoBlk_ = blk;
        memoLine_ = &l;
        return l;
    }

    /** Complete a node-local hit with the given latency. */
    void completeHit(Line &l, MemCompletion &done);

    /** HitEvent fired: deliver the stored completion. */
    void hitDone();

    /** Issue a request message to the block's home. */
    void sendRequest(MsgType t, BlockId blk, const Line &l);

    NodeId id_;
    EventQueue &eq_;
    Network &net_;
    const ProtoConfig &cfg_;
    AddrMap map_; //!< divide-free blockOf/homeOf snapshot of cfg_
    FlatMap<BlockId, Line> lines_;
    BlockId memoBlk_ = 0;
    Line *memoLine_ = nullptr;
    Mshr mshr_;
    HitEvent hitEvent_{this};
    MemCompletion *hitDone_ = nullptr;
    CacheStats stats_;
};

} // namespace mspdsm

#endif // MSPDSM_DSM_CACHE_HH
