/**
 * @file
 * Per-node cache controller.
 *
 * Models the node's processor cache plus its (infinite, per the
 * paper's Section 6 assumption) remote cache as a unified block-state
 * map. A block fetched on demand lands in the processor cache
 * (subsequent hits cost one cycle); a block pushed speculatively lands
 * in the remote cache with its reference bit set, so its first use
 * costs one local/remote-cache access (104 cycles) instead of a full
 * remote round trip -- exactly the latency conversion the paper's
 * analytic model assumes (remote -> local).
 */

#ifndef MSPDSM_DSM_CACHE_HH
#define MSPDSM_DSM_CACHE_HH

#include "base/flat_map.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "net/network.hh"
#include "proto/config.hh"
#include "proto/msg.hh"
#include "sim/eventq.hh"

namespace mspdsm
{

class ObsManager;

/** Cache-side block states (MSI). */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Modified,
};

/**
 * Intrusive completion record for one processor-side access.
 *
 * The issuer embeds a MemCompletion (usually as the base of a larger
 * record carrying its own context, e.g. the issue tick) and hands a
 * reference to CacheCtrl::access(); the cache stores only the pointer
 * and invokes complete() when the access finishes. Issuing and
 * completing an access therefore allocates nothing and costs one
 * direct call through a function pointer -- no std::function, no
 * virtual dispatch.
 *
 * @param remote true iff the access waited on inter-node coherence
 *        traffic (the paper's "request waiting time"); node-local
 *        service counts as computation.
 * @param base the tick the access logically completes at. Equal to
 *        curTick() when the completion is delivered by an event;
 *        ahead of the clock when it arrives through the fused
 *        fast path (whose guard makes the difference unobservable).
 *        Continuations must anchor their own timing on @p base, not
 *        on the clock.
 */
class MemCompletion
{
  public:
    using Fn = void (*)(MemCompletion &self, bool remote, Tick base);

    explicit constexpr MemCompletion(Fn fn) : fn_(fn) {}

    /** Deliver the completion as of tick @p base. */
    void complete(bool remote, Tick base) { fn_(*this, remote, base); }

  private:
    Fn fn_;
};

/** Cache-side statistics. */
struct CacheStats
{
    Counter demandReads;   //!< reads that issued a GetS
    Counter demandWrites;  //!< writes that issued a GetX or Upgrade
    Counter readHits;      //!< reads served from the node
    Counter writeHits;     //!< writes served from the node
    Counter specServedFr;  //!< first use of an FR-pushed copy
    Counter specServedSwi; //!< first use of an SWI-pushed copy
    Counter specDropped;   //!< speculative copies dropped on race

    // Fault-layer recovery counters; all zero in fault-free runs.
    Counter retries;    //!< demand requests re-issued
    Counter nacks;      //!< Nacks received for the in-flight miss
    Counter timeouts;   //!< retry-timer expiries with no response
    Counter staleFills; //!< fills dropped with no matching miss

    // Always-on latency/shape distributions. Passive fixed-size
    // accounting (base/stats.hh Histogram): sampling is an array
    // increment with no allocation and no timing side effect, so the
    // distributions are recorded in every run, instrumented or not.
    Histogram readMissLat;  //!< demand read miss, issue -> fill
    Histogram writeMissLat; //!< demand write/upgrade, issue -> fill
    Histogram specUseDist;  //!< speculative push -> first use
    Histogram retryDepth;   //!< retry-FSM attempt depth per backoff
};

/**
 * The cache controller of one node.
 */
class CacheCtrl
{
  public:
    CacheCtrl(NodeId id, EventQueue &eq, Network &net,
              const ProtoConfig &cfg)
        : id_(id), eq_(eq), net_(net), cfg_(cfg), map_(cfg)
    {
        // tryHit() signals "miss" with a zero latency, so a zero-cost
        // local access is not representable; the paper's machine has
        // none (Table 1 minimums are 1 and 104 cycles).
        fatal_if(cfg.cacheHit == 0 || cfg.memAccess == 0,
                 "cache hit/memory latencies must be non-zero");
    }

    /**
     * Processor-side access. At most one outstanding miss (blocking
     * in-order processor); @p done fires when the access completes
     * and must stay valid until then.
     */
    void access(Addr addr, bool is_write, MemCompletion &done);

    /**
     * access() by precompiled block id with an explicit issue tick
     * @p base >= curTick() (the fused-run virtual time). Node-local
     * hits complete through the cache's own timer as in access().
     */
    void accessAt(BlockId blk, bool is_write, MemCompletion &done,
                  Tick base);

    /**
     * Fast-path hit probe: if the access can be served node-locally,
     * book the hit (statistics, reference/residency bits) and return
     * its latency; the *completion is the caller's to schedule*. On a
     * miss, return 0 with no side effects beyond creating the line.
     * This is how the processor's fused fast path absorbs a hit into
     * its own step event instead of bouncing through hitEvent_.
     */
    Tick tryHit(BlockId blk, bool is_write, Tick now);

    /**
     * Issue the demand transaction for an access that tryHit()
     * declined, injecting the request at tick @p base. @p done fires
     * at fill time.
     */
    void issueMiss(BlockId blk, bool is_write, MemCompletion &done,
                   Tick base);

    /** Network-side handler for Inval/Recall/data/SpecData messages. */
    void handle(const CohMsg &msg) { handle(msg, eq_.curTick()); }

    /**
     * handle() as of tick @p base >= curTick(): the fused delivery
     * fast path hands messages over ahead of the clock (legal only
     * while nothing else can fire first); every send and completion
     * this triggers is anchored on @p base.
     */
    void handle(const CohMsg &msg, Tick base);

    /** Statistics. */
    const CacheStats &stats() const { return stats_; }

    /** State of a block, for tests. */
    LineState lineState(BlockId blk) const;

    /** True iff the block is present as an unreferenced spec copy. */
    bool hasUnreferencedSpec(BlockId blk) const;

    // ---- Fault layer (dsm/fault.hh). All optional: a cache with no
    // ---- fault wiring behaves exactly as before, allocation-free.

    /**
     * Arm the NACK/timeout-and-retry FSM: every demand miss sets a
     * retry timer, a Nack or an expiry re-issues the request (to the
     * *current* home, so a re-homed directory is picked up
     * transparently) with bounded deterministic backoff.
     */
    void enableFaults() { faultsEnabled_ = true; }

    /**
     * Configure the bounded-retry FSM: @p limit retries before the
     * structured "exhausted" fatal, @p timeout ticks of silence before
     * a demand miss is re-issued. The defaults reproduce the original
     * hard-coded policy bit for bit (DsmConfig carries the same
     * defaults); fig11 sweeps them via --retry-limit/--stale-timeout.
     */
    void
    setRetryPolicy(unsigned limit, Tick timeout)
    {
        fatal_if(limit == 0 || timeout == 0,
                 "retry limit and stale timeout must be non-zero");
        retryLimit_ = limit;
        retryTimeout_ = timeout;
    }

    /** Share the fault layer's home re-mapping table. */
    void setHomeRemap(const NodeId *table) { map_.setRemap(table); }

    /**
     * Fail-stop this node's cache: every line is lost, the in-flight
     * miss (if any) is squashed without completing, and all pending
     * cache timers are cancelled. The processor side rewinds the
     * squashed access itself.
     */
    void kill();

    /** True iff a demand miss is outstanding (fault sweep uses it). */
    bool missOutstanding() const { return mshr_.valid; }

    /** Attach the observability layer (dsm/system.cc; may be null). */
    void setObs(ObsManager *o) { obs_ = o; }

    /**
     * Visit every cached line as (BlockId, LineState) -- the fault
     * layer reconstructs a re-homed directory shard from the
     * survivors' caches with this.
     */
    template <typename F>
    void
    forEachLine(F &&f) const
    {
        for (const auto &kv : lines_)
            if (kv.second.state != LineState::Invalid)
                f(kv.first, kv.second.state);
    }

  private:
    struct Line
    {
        LineState state = LineState::Invalid;
        bool inProcCache = false; //!< else remote-cache resident
        bool spec = false;        //!< placed speculatively
        bool referenced = false;  //!< processor has touched it
        SpecTrigger trig = SpecTrigger::None;
        Tick specPush = 0; //!< placement tick of the spec copy
                           //!< (push-to-use distance accounting)
    };

    struct Mshr
    {
        bool valid = false;
        BlockId blk = 0;
        bool write = false;
        bool invalidated = false; //!< Inval raced the in-flight fill
        MemCompletion *done = nullptr;
        Tick issued = 0; //!< issue tick (fill latency spans retries)
    };

    /**
     * Completion timer for node-local hits. The processor is blocking
     * and in-order, so at most one hit completion is pending at a
     * time: one pre-allocated event per cache suffices.
     */
    struct HitEvent final : public Event
    {
        explicit HitEvent(CacheCtrl *c) : cache(c) {}

        void process() override { cache->hitDone(); }

        CacheCtrl *cache;
    };

    /**
     * Find-or-create the block's line, memoizing the most recent
     * block: a miss's fill, invalidation, and re-access all hit the
     * same line back to back, so the repeat probe is the common case.
     * The memo always holds the latest lookup, so a rehash (which
     * happens inside this call and is followed by re-assigning the
     * memo) can never leave it dangling.
     */
    Line &
    line(BlockId blk)
    {
        if (memoLine_ && memoBlk_ == blk)
            return *memoLine_;
        Line &l = lines_[blk];
        memoBlk_ = blk;
        memoLine_ = &l;
        return l;
    }

    /** Retry timer for the in-flight miss (fault runs only). */
    struct RetryEvent final : public Event
    {
        explicit RetryEvent(CacheCtrl *c) : cache(c) {}

        void process() override { cache->retryFired(); }

        CacheCtrl *cache;
    };

    /** HitEvent fired: deliver the stored completion. */
    void hitDone();

    /** Retry timer expired with the miss still outstanding. */
    void retryFired();

    /** Issue a request message to the block's home at @p base. */
    void sendRequest(MsgType t, BlockId blk, const Line &l, Tick base);

    /** Deterministic backoff base after a Nack. */
    static constexpr Tick nackBackoffBase = 64;

    NodeId id_;
    EventQueue &eq_;
    Network &net_;
    const ProtoConfig &cfg_;
    AddrMap map_; //!< divide-free blockOf/homeOf snapshot of cfg_
    FlatMap<BlockId, Line> lines_;
    BlockId memoBlk_ = 0;
    Line *memoLine_ = nullptr;
    Mshr mshr_;
    HitEvent hitEvent_{this};
    MemCompletion *hitDone_ = nullptr;
    RetryEvent retryEvent_{this};

    /** Bounded retries before the node declares the home unreachable
     * (DsmConfig::retryLimit; default reproduces the original cap). */
    unsigned retryLimit_ = 16;

    /**
     * Retry timeout (DsmConfig::staleTimeout): safely above the worst
     * legitimate round trip (the fault sweep unblocks every
     * fault-stalled transaction at the kill tick itself, so an expiry
     * means a message was lost).
     */
    Tick retryTimeout_ = 20000;

    unsigned retryAttempts_ = 0;
    bool retryAfterNack_ = false; //!< pending timer is a Nack backoff
    bool faultsEnabled_ = false;
    ObsManager *obs_ = nullptr; //!< observability; null = untraced
    CacheStats stats_;
};

} // namespace mspdsm

#endif // MSPDSM_DSM_CACHE_HH
