/**
 * @file
 * Per-node cache controller.
 *
 * Models the node's processor cache plus its (infinite, per the
 * paper's Section 6 assumption) remote cache as a unified block-state
 * map. A block fetched on demand lands in the processor cache
 * (subsequent hits cost one cycle); a block pushed speculatively lands
 * in the remote cache with its reference bit set, so its first use
 * costs one local/remote-cache access (104 cycles) instead of a full
 * remote round trip -- exactly the latency conversion the paper's
 * analytic model assumes (remote -> local).
 */

#ifndef MSPDSM_DSM_CACHE_HH
#define MSPDSM_DSM_CACHE_HH

#include <functional>

#include "base/flat_map.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "net/network.hh"
#include "proto/config.hh"
#include "proto/msg.hh"
#include "sim/eventq.hh"

namespace mspdsm
{

/** Cache-side block states (MSI). */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Modified,
};

/** Cache-side statistics. */
struct CacheStats
{
    Counter demandReads;   //!< reads that issued a GetS
    Counter demandWrites;  //!< writes that issued a GetX or Upgrade
    Counter readHits;      //!< reads served from the node
    Counter writeHits;     //!< writes served from the node
    Counter specServedFr;  //!< first use of an FR-pushed copy
    Counter specServedSwi; //!< first use of an SWI-pushed copy
    Counter specDropped;   //!< speculative copies dropped on race
};

/**
 * The cache controller of one node.
 */
class CacheCtrl
{
  public:
    /**
     * Completion callback for a processor access.
     * @param remote true iff the access waited on inter-node
     *               coherence traffic (the paper's "request waiting
     *               time"); node-local service counts as computation.
     */
    using Done = std::function<void(bool remote)>;

    CacheCtrl(NodeId id, EventQueue &eq, Network &net,
              const ProtoConfig &cfg)
        : id_(id), eq_(eq), net_(net), cfg_(cfg)
    {}

    /**
     * Processor-side access. At most one outstanding miss (blocking
     * in-order processor); @p done fires when the access completes.
     */
    void access(Addr addr, bool is_write, Done done);

    /** Network-side handler for Inval/Recall/data/SpecData messages. */
    void handle(const CohMsg &msg);

    /** Statistics. */
    const CacheStats &stats() const { return stats_; }

    /** State of a block, for tests. */
    LineState lineState(BlockId blk) const;

    /** True iff the block is present as an unreferenced spec copy. */
    bool hasUnreferencedSpec(BlockId blk) const;

  private:
    struct Line
    {
        LineState state = LineState::Invalid;
        bool inProcCache = false; //!< else remote-cache resident
        bool spec = false;        //!< placed speculatively
        bool referenced = false;  //!< processor has touched it
        SpecTrigger trig = SpecTrigger::None;
    };

    struct Mshr
    {
        bool valid = false;
        BlockId blk = 0;
        bool write = false;
        bool invalidated = false; //!< Inval raced the in-flight fill
        Done done;
    };

    /**
     * Completion timer for node-local hits. The processor is blocking
     * and in-order, so at most one hit completion is pending at a
     * time: one pre-allocated event per cache suffices.
     */
    struct HitEvent final : public Event
    {
        explicit HitEvent(CacheCtrl *c) : cache(c) {}

        void process() override { cache->hitDone(); }

        CacheCtrl *cache;
    };

    Line &line(BlockId blk) { return lines_[blk]; }

    /** Complete a node-local hit with the given latency. */
    void completeHit(Line &l, Done done);

    /** HitEvent fired: deliver the stored completion. */
    void hitDone();

    /** Issue a request message to the block's home. */
    void sendRequest(MsgType t, BlockId blk, const Line &l);

    NodeId id_;
    EventQueue &eq_;
    Network &net_;
    const ProtoConfig &cfg_;
    FlatMap<BlockId, Line> lines_;
    Mshr mshr_;
    HitEvent hitEvent_{this};
    Done hitDone_;
    CacheStats stats_;
};

} // namespace mspdsm

#endif // MSPDSM_DSM_CACHE_HH
