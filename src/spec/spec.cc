#include "spec/spec.hh"

#include "base/logging.hh"

namespace mspdsm
{

const char *
specModeName(SpecMode m)
{
    switch (m) {
      case SpecMode::None:
        return "Base-DSM";
      case SpecMode::FirstRead:
        return "FR-DSM";
      case SpecMode::SwiFirstRead:
        return "SWI-DSM";
    }
    panic("unknown SpecMode ", int(m));
}

} // namespace mspdsm
