/**
 * @file
 * Speculation policy pieces (paper Section 4).
 *
 * The speculative coherent DSM needs three mechanisms: predicting
 * *what* arrives (VMSP, in pred/), predicting *when* to act (the
 * triggers here: Speculative Write-Invalidation and First-Read), and
 * executing existing protocol operations early (the directory simply
 * issues ordinary Recall / data messages ahead of demand). This header
 * holds the trigger-side state machines and the statistics the paper's
 * Table 5 reports; the orchestration lives in dsm/Directory, which is
 * the component that owns the protocol state the triggers act upon.
 */

#ifndef MSPDSM_SPEC_SPEC_HH
#define MSPDSM_SPEC_SPEC_HH

#include <optional>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"

namespace mspdsm
{

/** Speculation configuration of a DSM instance. */
enum class SpecMode : std::uint8_t
{
    None,         //!< Base-DSM: no speculation
    FirstRead,    //!< FR-DSM: first read triggers the read sequence
    SwiFirstRead, //!< SWI-DSM: SWI plus FR fallback
};

/** @return printable mode name ("Base-DSM", "FR-DSM", "SWI-DSM"). */
const char *specModeName(SpecMode m);

/**
 * The early-write-invalidate table of the SWI heuristic: per
 * processor, the last block (homed at this node) it wrote or
 * upgraded. A subsequent write by the same processor to a different
 * block predicts that the producer is done with the previous one
 * (paper Section 4.1).
 */
class SwiTable
{
  public:
    explicit SwiTable(unsigned numProcs)
        : last_(numProcs), valid_(numProcs, false)
    {}

    /**
     * Record a completed write by @p writer to @p blk.
     * @return the previously recorded block if it differs from
     *         @p blk -- the SWI invalidation candidate.
     */
    std::optional<BlockId>
    recordWrite(NodeId writer, BlockId blk)
    {
        std::optional<BlockId> prev;
        if (valid_[writer] && last_[writer] != blk)
            prev = last_[writer];
        last_[writer] = blk;
        valid_[writer] = true;
        return prev;
    }

  private:
    std::vector<BlockId> last_;
    std::vector<bool> valid_;
};

/**
 * Speculation statistics (per directory; the harness aggregates
 * across nodes). The paper's Table 5 derives from these.
 */
struct SpecStats
{
    Counter swiSent;       //!< speculative write invalidations issued
    Counter swiCompleted;  //!< ... whose writeback completed
    Counter swiPremature;  //!< ... judged premature afterwards
    Counter swiSuppressed; //!< skipped due to a set premature bit
    Counter specSentFr;    //!< read-only copies pushed by First-Read
    Counter specSentSwi;   //!< read-only copies pushed after SWI
    Counter specUsedFr;    //!< verified referenced (FR)
    Counter specUsedSwi;   //!< verified referenced (SWI)
    Counter specMissFr;    //!< verified unreferenced (FR)
    Counter specMissSwi;   //!< verified unreferenced (SWI)
    Counter specDroppedVerified; //!< pushed copy raced a demand miss

    // Always-on latency distribution (see CacheStats): passive
    // fixed-size accounting, recorded in every run.
    Histogram swiLat; //!< SWI launch -> writeback absorbed
};

} // namespace mspdsm

#endif // MSPDSM_SPEC_SPEC_HH
