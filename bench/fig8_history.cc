/**
 * @file
 * Figure 8: predictor accuracy with varying history depth (1, 2, 4).
 *
 * Paper reference points: depth 2 lifts appbt to 100% (alternating
 * edge-block consumers); deeper history separates unstructured's
 * alternating reduction sequences, reaching up to 99%; barnes also
 * improves because only stable patterns remain predicted.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"

using namespace mspdsm;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseArgs(
        argc, argv, "fig8_history",
        "Figure 8: predictor accuracy vs history depth (1, 2, 4)");

    SweepRunner sweep(bench::sweepOptions(args));
    for (const AppInfo &info : appSuite())
        for (std::size_t depth : {1u, 2u, 4u})
            sweep.addAccuracy(info.name, depth, args.ec);
    const auto &recs = sweep.results();

    std::printf("Figure 8: prediction accuracy (%%) vs history "
                "depth\n\n");
    Table t({"app", "Cosmos d1", "d2", "d4", "MSP d1", "d2", "d4",
             "VMSP d1", "d2", "d4"});
    std::size_t i = 0;
    for (const AppInfo &info : appSuite()) {
        double acc[3][3];
        for (int di = 0; di < 3; ++di, ++i) {
            const RunResult &r = recs[i].result;
            for (int k = 0; k < 3; ++k)
                acc[k][di] = r.observers[k].stats.accuracyPct();
        }
        t.addRow({info.name, Table::fmt(acc[0][0], 1),
                  Table::fmt(acc[0][1], 1), Table::fmt(acc[0][2], 1),
                  Table::fmt(acc[1][0], 1), Table::fmt(acc[1][1], 1),
                  Table::fmt(acc[1][2], 1), Table::fmt(acc[2][0], 1),
                  Table::fmt(acc[2][1], 1), Table::fmt(acc[2][2], 1)});
    }
    t.print(std::cout);
    return bench::finishSweep(sweep, args, "fig8_history");
}
