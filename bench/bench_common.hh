/**
 * @file
 * Shared infrastructure for the experiment and perf binaries.
 *
 * Two layers live here:
 *  - parseArgs(): the one command line every bench binary accepts
 *    (--scale/--procs/--iters/--seed for the workload, --jobs/--json
 *    for the sweep engine, --smoke/-o for the micro harness), plus
 *    the legacy positional [scale] [iterations] form;
 *  - a small self-contained timing harness (no external benchmark
 *    library) used by the micro benches: each benchmark is a callable
 *    returning the number of items it processed; the harness repeats
 *    it until enough wall time has accumulated, and the results can be
 *    serialized as JSON (BENCH_core.json) so the perf trajectory of
 *    the simulator hot path is tracked from PR to PR.
 */

#ifndef MSPDSM_BENCH_BENCH_COMMON_HH
#define MSPDSM_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <ostream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "base/logging.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "topo/topology.hh"

namespace mspdsm::bench
{

/** The uniform command line of every bench binary. */
struct BenchArgs
{
    ExperimentConfig ec;  //!< --scale / --iters / --procs / --seed
    unsigned jobs = 1;    //!< --jobs N (0 = hardware concurrency)
    std::string jsonPath; //!< --json FILE / -o FILE ("" = no JSON)
    bool smoke = false;   //!< --smoke: shorten micro benches for CI
};

/** Print the shared usage text for @p tool. */
inline void
printUsage(std::ostream &os, const char *tool, const char *what)
{
    os << "usage: " << tool << " [options] [scale] [iterations]\n"
       << "  " << what << "\n\n"
       << "options:\n"
       << "  --scale X    workload size multiplier (default 1.0)\n"
       << "  --iters N    iteration override (0 = app default)\n"
       << "  --procs N    simulated node count (default 16)\n"
       << "  --seed N     run-level seed (default 42)\n"
       << "  --topology T interconnect topology: " << topoKindNames()
       << "\n"
       << "               (default crossbar, the paper's "
          "constant-latency\n"
       << "               switched network)\n"
       << "  --link-latency N  per-hop wire latency on ring/mesh2d/\n"
       << "               torus2d links (0 = netLatency default)\n"
       << "  --tick-limit N  deadlock-guard tick budget per run;\n"
       << "               trips surface as TICK-LIMIT rows / JSON\n"
       << "               tick_limit fields, never a stderr warning\n"
       << "  --fail-node N  fail-stop node N mid-run (default: no\n"
       << "               fault injection; the run is bit-identical\n"
       << "               to one without the fault layer)\n"
       << "  --fail-tick T  tick at which --fail-node is killed\n"
       << "  --recover-tick T  tick at which the victim restarts\n"
       << "               (0 = never; survivors stall at the next\n"
       << "               barrier and the run reports partial results)\n"
       << "  --backup-node N  adopter of the victim's directory\n"
       << "               shard (default (victim+1) mod procs)\n"
       << "  --warm-restart  merge the victim's replicated predictor\n"
       << "               checkpoint into the backup on the kill\n"
       << "  --ckpt-interval T  predictor checkpoint period, ticks\n"
       << "               (0 = no checkpointing)\n"
       << "  --kill N@T   fail-stop node N at tick T (repeatable;\n"
       << "               combines with --fail-node for concurrent\n"
       << "               and cascading failures)\n"
       << "  --restart N@T  restart node N at tick T (repeatable);\n"
       << "               the victim re-adopts its original shard\n"
       << "               (fail-back)\n"
       << "  --replicate-shards  stream directory-shard deltas to the\n"
       << "               backup (batched ShardSync messages) so\n"
       << "               failover installs replicated state instead\n"
       << "               of sweeping the survivors' caches\n"
       << "  --retry-limit N  cache retry FSM bound before the fatal\n"
       << "               (default 16)\n"
       << "  --stale-timeout T  silence, in ticks, before a cache\n"
       << "               re-issues an outstanding miss (default "
          "20000)\n"
       << "  --lossy-link L,FROM,TO,NTH  drop every NTH message head\n"
       << "               crossing link L in tick window [FROM,TO)\n"
       << "               (repeatable; link topologies only; TO = 0\n"
       << "               means forever). Dropped transmissions are\n"
       << "               retransmitted after a fixed delay from a\n"
       << "               bounded budget\n"
       << "  --trace FILE[,FROM,TO]  write a Chrome trace-event JSON\n"
       << "               of every run to FILE (load in Perfetto /\n"
       << "               chrome://tracing), optionally limited to\n"
       << "               the tick window [FROM,TO] (TO = 0 means\n"
       << "               open-ended). Forces --jobs 1\n"
       << "  --sample-interval N  record an interval time-series\n"
       << "               sample (throughput, messages, predictor\n"
       << "               hits, outstanding misses) every N ticks\n"
       << "               into the JSON record (0 = off)\n"
       << "  --verbose    enable verbose() diagnostics on stderr\n"
       << "  --jobs N     parallel runs; 0 = all hardware threads\n"
       << "               (default 1 = serial; results are\n"
       << "               bit-identical either way)\n"
       << "  --json FILE  write the mspdsm-sweep-v1 record to FILE\n"
       << "  -o FILE      alias of --json (BENCH_core.json schema\n"
       << "               for the micro benches)\n"
       << "  --smoke      micro benches only: shorten for CI\n"
       << "  --help       this text\n";
}

/**
 * Parse the uniform bench command line; exits on --help (0) and on a
 * malformed or unknown argument (2).
 */
inline BenchArgs
parseArgs(int argc, char **argv, const char *tool, const char *what)
{
    BenchArgs a;
    int positional = 0;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << tool << ": " << argv[i]
                      << " needs a value (try --help)\n";
            std::exit(2);
        }
        return argv[++i];
    };
    // "N@T" for --kill / --restart: node N, tick T.
    auto nodeAtTick = [&](const char *flag, const char *s,
                          NodeId &node, Tick &tick) {
        char *at = nullptr;
        node = static_cast<NodeId>(std::strtoul(s, &at, 10));
        if (!at || *at != '@') {
            std::cerr << tool << ": " << flag << " expects N@T, got '"
                      << s << "'\n";
            std::exit(2);
        }
        tick = std::strtoull(at + 1, nullptr, 10);
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
            printUsage(std::cout, tool, what);
            std::exit(0);
        } else if (!std::strcmp(arg, "--scale")) {
            a.ec.scale = std::atof(value(i));
        } else if (!std::strcmp(arg, "--iters") ||
                   !std::strcmp(arg, "--iterations")) {
            a.ec.iterations =
                static_cast<unsigned>(std::atoi(value(i)));
        } else if (!std::strcmp(arg, "--procs")) {
            a.ec.numProcs = static_cast<unsigned>(std::atoi(value(i)));
        } else if (!std::strcmp(arg, "--seed")) {
            a.ec.seed = std::strtoull(value(i), nullptr, 10);
        } else if (!std::strcmp(arg, "--topology")) {
            const char *name = value(i);
            if (!mspdsm::parseTopoKind(name, a.ec.topo.kind)) {
                std::cerr << tool << ": unknown topology '" << name
                          << "' (expected one of " << topoKindNames()
                          << ")\n";
                std::exit(2);
            }
        } else if (!std::strcmp(arg, "--link-latency")) {
            a.ec.topo.linkLatency = std::strtoull(value(i), nullptr, 10);
        } else if (!std::strcmp(arg, "--tick-limit")) {
            a.ec.tickLimit = std::strtoull(value(i), nullptr, 10);
        } else if (!std::strcmp(arg, "--fail-node")) {
            a.ec.failNode = static_cast<NodeId>(std::atoi(value(i)));
        } else if (!std::strcmp(arg, "--fail-tick")) {
            a.ec.failTick = std::strtoull(value(i), nullptr, 10);
        } else if (!std::strcmp(arg, "--recover-tick")) {
            a.ec.recoverTick = std::strtoull(value(i), nullptr, 10);
        } else if (!std::strcmp(arg, "--backup-node")) {
            a.ec.backupNode = static_cast<NodeId>(std::atoi(value(i)));
        } else if (!std::strcmp(arg, "--warm-restart")) {
            a.ec.warmRestart = true;
        } else if (!std::strcmp(arg, "--ckpt-interval")) {
            a.ec.ckptInterval = std::strtoull(value(i), nullptr, 10);
        } else if (!std::strcmp(arg, "--kill")) {
            FaultEvent fe{0, invalidNode, FaultKind::Kill};
            nodeAtTick("--kill", value(i), fe.node, fe.tick);
            a.ec.extraFaults.push_back(fe);
        } else if (!std::strcmp(arg, "--restart")) {
            FaultEvent fe{0, invalidNode, FaultKind::Restart};
            nodeAtTick("--restart", value(i), fe.node, fe.tick);
            a.ec.extraFaults.push_back(fe);
        } else if (!std::strcmp(arg, "--replicate-shards")) {
            a.ec.replicateShards = true;
        } else if (!std::strcmp(arg, "--retry-limit")) {
            a.ec.retryLimit =
                static_cast<unsigned>(std::atoi(value(i)));
        } else if (!std::strcmp(arg, "--stale-timeout")) {
            a.ec.staleTimeout = std::strtoull(value(i), nullptr, 10);
        } else if (!std::strcmp(arg, "--lossy-link")) {
            const char *s = value(i);
            LinkLossRule r;
            char *p = nullptr;
            r.link = static_cast<std::uint32_t>(
                std::strtoul(s, &p, 10));
            bool ok = p && *p == ',';
            if (ok)
                r.from = std::strtoull(p + 1, &p, 10);
            ok = ok && p && *p == ',';
            if (ok)
                r.to = std::strtoull(p + 1, &p, 10);
            ok = ok && p && *p == ',';
            if (ok)
                r.everyNth = static_cast<unsigned>(
                    std::strtoul(p + 1, &p, 10));
            if (!ok || (p && *p != '\0')) {
                std::cerr << tool << ": --lossy-link expects "
                          << "L,FROM,TO,NTH, got '" << s << "'\n";
                std::exit(2);
            }
            if (r.to == 0) // 0 = open-ended window
                r.to = maxTick;
            a.ec.linkLoss.push_back(r);
        } else if (!std::strcmp(arg, "--trace")) {
            const char *s = value(i);
            const char *comma = std::strchr(s, ',');
            if (!comma) {
                a.ec.tracePath = s;
            } else {
                a.ec.tracePath.assign(s, comma - s);
                char *p = nullptr;
                a.ec.traceFrom = std::strtoull(comma + 1, &p, 10);
                bool ok = p && *p == ',';
                if (ok)
                    a.ec.traceTo = std::strtoull(p + 1, &p, 10);
                if (!ok || (p && *p != '\0')) {
                    std::cerr << tool << ": --trace expects "
                              << "FILE[,FROM,TO], got '" << s << "'\n";
                    std::exit(2);
                }
                if (a.ec.traceTo == 0) // 0 = open-ended window
                    a.ec.traceTo = maxTick;
            }
            if (a.ec.tracePath.empty()) {
                std::cerr << tool
                          << ": --trace needs a file name\n";
                std::exit(2);
            }
        } else if (!std::strcmp(arg, "--sample-interval")) {
            a.ec.sampleInterval = std::strtoull(value(i), nullptr, 10);
        } else if (!std::strcmp(arg, "--verbose") ||
                   !std::strcmp(arg, "-v")) {
            setLogVerbosity(1);
        } else if (!std::strcmp(arg, "--jobs") ||
                   !std::strcmp(arg, "-j")) {
            a.jobs = static_cast<unsigned>(std::atoi(value(i)));
        } else if (!std::strcmp(arg, "--json") ||
                   !std::strcmp(arg, "-o")) {
            a.jsonPath = value(i);
        } else if (!std::strcmp(arg, "--smoke")) {
            a.smoke = true;
        } else if (arg[0] == '-' && arg[1] != '\0') {
            std::cerr << tool << ": unknown option " << arg
                      << " (try --help)\n";
            std::exit(2);
        } else if (positional == 0) {
            a.ec.scale = std::atof(arg); // legacy [scale]
            ++positional;
        } else if (positional == 1) {
            a.ec.iterations = // legacy [iterations]
                static_cast<unsigned>(std::atoi(arg));
            ++positional;
        } else {
            std::cerr << tool << ": unexpected argument " << arg
                      << " (try --help)\n";
            std::exit(2);
        }
    }
    if (!a.ec.tracePath.empty() && a.jobs != 1) {
        // Every traced run in a sweep writes to the same file; the
        // last writer wins, which only makes sense serially.
        std::cerr << tool << ": --trace forces --jobs 1\n";
        a.jobs = 1;
    }
    return a;
}

/** Sweep-engine options implied by the command line. */
inline SweepOptions
sweepOptions(const BenchArgs &a)
{
    SweepOptions o;
    o.jobs = a.jobs;
    return o;
}

/**
 * Shared sweep epilogue: per-run summary table (the structured view
 * of tick-limit guard trips) and, when requested, the JSON record.
 * @return the binary's exit code
 */
inline int
finishSweep(SweepRunner &sweep, const BenchArgs &args, const char *tool)
{
    if (!sweep.results().empty()) {
        // Deliberately no wall time on stdout: repeated runs of one
        // bench command must be byte-identical (timings go to the
        // JSON record).
        std::printf("\nSweep summary (%u job%s):\n", sweep.jobs(),
                    sweep.jobs() == 1 ? "" : "s");
        sweep.printSummary(std::cout);
    }
    if (!args.jsonPath.empty()) {
        if (!sweep.writeJsonFile(args.jsonPath, tool)) {
            std::cerr << tool << ": cannot write " << args.jsonPath
                      << "\n";
            return 1;
        }
        std::cout << "wrote " << args.jsonPath << "\n";
    }
    return 0;
}

/** Outcome of one timed microbenchmark. */
struct BenchResult
{
    std::string name;
    std::uint64_t items = 0;   //!< total items processed
    double seconds = 0.0;      //!< wall time spent processing them
    double itemsPerSec = 0.0;
};

/** Harness knobs. */
struct BenchOptions
{
    /** Minimum wall time per benchmark; smoke mode uses a fraction. */
    double minSeconds = 0.5;
};

/**
 * Run @p iter repeatedly until at least @p opts.minSeconds of wall
 * time has accumulated. @p iter returns the number of items (events,
 * lookups, messages...) processed by one invocation.
 */
inline BenchResult
runBench(const std::string &name, const BenchOptions &opts,
         const std::function<std::uint64_t()> &iter)
{
    using Clock = std::chrono::steady_clock;

    iter(); // warm-up: page in code and data

    BenchResult r;
    r.name = name;
    while (r.seconds < opts.minSeconds) {
        const auto t0 = Clock::now();
        const std::uint64_t items = iter();
        const auto t1 = Clock::now();
        r.items += items;
        r.seconds +=
            std::chrono::duration<double>(t1 - t0).count();
    }
    if (r.seconds > 0.0)
        r.itemsPerSec = static_cast<double>(r.items) / r.seconds;
    return r;
}

/** Peak resident set size of this process, in bytes (0 if unknown). */
inline std::uint64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
        return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
        return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
    }
#endif
    return 0;
}

/** Render results as an aligned human-readable listing. */
inline void
printResults(std::ostream &os, const std::vector<BenchResult> &rs)
{
    for (const BenchResult &r : rs) {
        os << r.name;
        for (std::size_t i = r.name.size(); i < 28; ++i)
            os << ' ';
        os << "  " << r.itemsPerSec << " items/s  (" << r.items
           << " items in " << r.seconds << " s)\n";
    }
}

/**
 * Serialize results plus headline metrics as the BENCH_core.json
 * schema consumed by CI and the ROADMAP perf log.
 */
inline void
writeJson(std::ostream &os, const std::vector<BenchResult> &rs,
          const std::vector<std::pair<std::string, double>> &headline);

/**
 * Shared micro-bench epilogue: write the BENCH_core.json-schema
 * record to @p path (announced on stdout).
 * @return the binary's exit code
 */
inline int
writeMicroJson(const std::string &path,
               const std::vector<BenchResult> &rs,
               const std::vector<std::pair<std::string, double>>
                   &headline)
{
    std::ofstream f(path);
    if (!f) {
        std::cerr << "cannot open " << path << " for writing\n";
        return 1;
    }
    writeJson(f, rs, headline);
    std::cout << "wrote " << path << " (";
    for (std::size_t i = 0; i < headline.size(); ++i) {
        std::cout << (i ? ", " : "") << headline[i].first << " "
                  << headline[i].second;
    }
    std::cout << ")\n";
    return 0;
}

inline void
writeJson(std::ostream &os, const std::vector<BenchResult> &rs,
          const std::vector<std::pair<std::string, double>> &headline)
{
    os << "{\n  \"schema\": \"mspdsm-bench-core-v1\",\n";
    for (const auto &[key, value] : headline)
        os << "  \"" << key << "\": " << value << ",\n";
    os << "  \"peak_rss_bytes\": " << peakRssBytes() << ",\n";
    os << "  \"benches\": [\n";
    for (std::size_t i = 0; i < rs.size(); ++i) {
        const BenchResult &r = rs[i];
        os << "    {\"name\": \"" << r.name << "\", \"items\": "
           << r.items << ", \"seconds\": " << r.seconds
           << ", \"items_per_sec\": " << r.itemsPerSec << "}"
           << (i + 1 < rs.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace mspdsm::bench

#endif // MSPDSM_BENCH_BENCH_COMMON_HH
