/**
 * @file
 * Shared knobs for the experiment binaries.
 *
 * Every bench accepts an optional scale factor and iteration override
 * on the command line:
 *   ./fig7_accuracy [scale] [iterations]
 * Defaults reproduce the paper's shapes in a few seconds per bench.
 */

#ifndef MSPDSM_BENCH_BENCH_COMMON_HH
#define MSPDSM_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <string>

#include "harness/experiment.hh"

namespace mspdsm::bench
{

/** Parse [scale] [iterations] from argv. */
inline ExperimentConfig
parseArgs(int argc, char **argv)
{
    ExperimentConfig ec;
    ec.scale = 1.0;
    ec.iterations = 0; // per-app defaults
    if (argc > 1)
        ec.scale = std::atof(argv[1]);
    if (argc > 2)
        ec.iterations =
            static_cast<unsigned>(std::atoi(argv[2]));
    return ec;
}

} // namespace mspdsm::bench

#endif // MSPDSM_BENCH_BENCH_COMMON_HH
