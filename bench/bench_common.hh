/**
 * @file
 * Shared infrastructure for the experiment and perf binaries.
 *
 * Two layers live here:
 *  - parseArgs(): the [scale] [iterations] command line every paper
 *    figure/table bench accepts;
 *  - a small self-contained timing harness (no external benchmark
 *    library) used by the micro benches: each benchmark is a callable
 *    returning the number of items it processed; the harness repeats
 *    it until enough wall time has accumulated, and the results can be
 *    serialized as JSON (BENCH_core.json) so the perf trajectory of
 *    the simulator hot path is tracked from PR to PR.
 */

#ifndef MSPDSM_BENCH_BENCH_COMMON_HH
#define MSPDSM_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "harness/experiment.hh"

namespace mspdsm::bench
{

/** Parse [scale] [iterations] from argv. */
inline ExperimentConfig
parseArgs(int argc, char **argv)
{
    ExperimentConfig ec;
    ec.scale = 1.0;
    ec.iterations = 0; // per-app defaults
    if (argc > 1)
        ec.scale = std::atof(argv[1]);
    if (argc > 2)
        ec.iterations =
            static_cast<unsigned>(std::atoi(argv[2]));
    return ec;
}

/** Outcome of one timed microbenchmark. */
struct BenchResult
{
    std::string name;
    std::uint64_t items = 0;   //!< total items processed
    double seconds = 0.0;      //!< wall time spent processing them
    double itemsPerSec = 0.0;
};

/** Harness knobs. */
struct BenchOptions
{
    /** Minimum wall time per benchmark; smoke mode uses a fraction. */
    double minSeconds = 0.5;
};

/**
 * Run @p iter repeatedly until at least @p opts.minSeconds of wall
 * time has accumulated. @p iter returns the number of items (events,
 * lookups, messages...) processed by one invocation.
 */
inline BenchResult
runBench(const std::string &name, const BenchOptions &opts,
         const std::function<std::uint64_t()> &iter)
{
    using Clock = std::chrono::steady_clock;

    iter(); // warm-up: page in code and data

    BenchResult r;
    r.name = name;
    while (r.seconds < opts.minSeconds) {
        const auto t0 = Clock::now();
        const std::uint64_t items = iter();
        const auto t1 = Clock::now();
        r.items += items;
        r.seconds +=
            std::chrono::duration<double>(t1 - t0).count();
    }
    if (r.seconds > 0.0)
        r.itemsPerSec = static_cast<double>(r.items) / r.seconds;
    return r;
}

/** Peak resident set size of this process, in bytes (0 if unknown). */
inline std::uint64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
        return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
        return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
    }
#endif
    return 0;
}

/** Render results as an aligned human-readable listing. */
inline void
printResults(std::ostream &os, const std::vector<BenchResult> &rs)
{
    for (const BenchResult &r : rs) {
        os << r.name;
        for (std::size_t i = r.name.size(); i < 28; ++i)
            os << ' ';
        os << "  " << r.itemsPerSec << " items/s  (" << r.items
           << " items in " << r.seconds << " s)\n";
    }
}

/**
 * Serialize results plus headline metrics as the BENCH_core.json
 * schema consumed by CI and the ROADMAP perf log.
 */
inline void
writeJson(std::ostream &os, const std::vector<BenchResult> &rs,
          const std::vector<std::pair<std::string, double>> &headline)
{
    os << "{\n  \"schema\": \"mspdsm-bench-core-v1\",\n";
    for (const auto &[key, value] : headline)
        os << "  \"" << key << "\": " << value << ",\n";
    os << "  \"peak_rss_bytes\": " << peakRssBytes() << ",\n";
    os << "  \"benches\": [\n";
    for (std::size_t i = 0; i < rs.size(); ++i) {
        const BenchResult &r = rs[i];
        os << "    {\"name\": \"" << r.name << "\", \"items\": "
           << r.items << ", \"seconds\": " << r.seconds
           << ", \"items_per_sec\": " << r.itemsPerSec << "}"
           << (i + 1 < rs.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace mspdsm::bench

#endif // MSPDSM_BENCH_BENCH_COMMON_HH
