/**
 * @file
 * Figure 11 (beyond the paper): speculative coherence across a node
 * failure. A fixed fault plan -- kill one node mid-run, re-home its
 * directory shard to a backup, restart it later -- is injected into
 * Base-DSM and SWI-DSM runs of em3d across interconnect topologies
 * and predictor-recovery policies (cold restart vs warm restart from
 * periodically replicated checkpoints).
 *
 * Reported per configuration:
 *  - time-to-recover: from the kill to the victim's first
 *    post-restart instruction (retry backoff + barrier re-entry);
 *  - SWI speedup before / during / after the outage, from the
 *    machine-wide instruction throughput of each phase. The fault
 *    plan is identical across the Base and SWI runs of a cell, so
 *    phase boundaries line up exactly;
 *  - the recovery traffic itself, split by where it is paid: the
 *    survivor-sweep columns pay re-homing syncs at failover, the
 *    --replicate-shards columns pay batched ShardSync messages
 *    incrementally during normal operation and install the mirror
 *    for free at failover -- plus checkpoint replication messages
 *    and the link queueing all of it adds.
 *
 * Expected shape: speculation keeps its win before and after the
 * outage, and warm restart closes most of the post-restart gap that
 * cold-started prediction state leaves -- that difference is the
 * replication-cost axis.
 */

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "base/table.hh"
#include "bench_common.hh"
#include "topo/topology.hh"

using namespace mspdsm;

namespace
{

/** Machine-wide instruction throughput of one run phase. */
double
phaseRate(std::uint64_t ops0, std::uint64_t ops1, Tick t0, Tick t1)
{
    if (t1 <= t0)
        return 0.0;
    return static_cast<double>(ops1 - ops0) /
           static_cast<double>(t1 - t0);
}

/** SWI-over-Base throughput ratio, "n/a" when a phase is empty. */
std::string
speedupCell(double base, double swi)
{
    if (base <= 0.0 || swi <= 0.0)
        return "n/a";
    return Table::fmt(swi / base, 2) + "x";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv, "fig11_recovery",
        "Figure 11 (beyond the paper): fault injection and recovery "
        "under speculative coherence");

    if (args.smoke) {
        // CI configuration: small but still long enough that the
        // default fault window falls mid-run.
        args.ec.scale = 0.25;
        args.ec.iterations = 2;
    }

    // The fault plan: one mid-run fail-stop with a later restart,
    // identical across every cell so phases are comparable. The
    // --fail-* flags override each default.
    const NodeId victim =
        args.ec.failNode != invalidNode ? args.ec.failNode : NodeId{3};
    const Tick failTick = args.ec.failTick ? args.ec.failTick : 40000;
    const Tick recoverTick =
        args.ec.recoverTick ? args.ec.recoverTick : 70000;
    const Tick ckptInterval =
        args.ec.ckptInterval ? args.ec.ckptInterval : failTick / 4;
    // Interval time-series on by default here: fig11 is the bench
    // whose per-run records must visibly bracket the outage (the
    // throughput dip between kill and restart). --sample-interval
    // overrides; an eighth of the pre-kill phase gives several
    // samples on each side of both fault edges.
    if (!args.ec.sampleInterval)
        args.ec.sampleInterval = failTick / 8;

    // Topology axis: the paper's crossbar plus a link-contended
    // fabric, unless --topology narrows it.
    const std::vector<TopoKind> topos =
        args.ec.topo.kind != TopoKind::Crossbar
            ? std::vector<TopoKind>{args.ec.topo.kind}
            : std::vector<TopoKind>{TopoKind::Crossbar, TopoKind::Mesh2D};

    struct Cell
    {
        TopoKind kind;
        bool warm;
        bool repl; //!< shard replication vs survivor sweep
        std::size_t base, swi; //!< submission indices
    };

    SweepRunner sweep(bench::sweepOptions(args));
    std::vector<Cell> cells;
    for (TopoKind kind : topos) {
        for (const bool warm : {false, true}) {
            // Directory-shard recovery axis: reconstruct the dead
            // home's shard by sweeping the survivors' caches (the
            // PR 6 baseline) vs installing incrementally replicated
            // state (--replicate-shards). The former pays its traffic
            // at failover, the latter during normal operation.
            for (const bool repl : {false, true}) {
                ExperimentConfig ec = args.ec;
                ec.topo.kind = kind;
                ec.failNode = victim;
                ec.failTick = failTick;
                ec.recoverTick = recoverTick;
                ec.warmRestart = warm;
                ec.ckptInterval = warm ? ckptInterval : 0;
                ec.replicateShards = repl;
                const std::string tag =
                    std::string(topoKindName(kind)) +
                    (warm ? " warm" : " cold") +
                    (repl ? " repl" : " sweep");
                Cell c;
                c.kind = kind;
                c.warm = warm;
                c.repl = repl;
                c.base = sweep.add(
                    tag + " base",
                    [ec] {
                        return runSpec("em3d", SpecMode::None, ec);
                    },
                    topoKindName(kind));
                c.swi = sweep.add(
                    tag + " SWI",
                    [ec] {
                        return runSpec("em3d", SpecMode::SwiFirstRead,
                                       ec);
                    },
                    topoKindName(kind));
                cells.push_back(c);
            }
        }
    }
    sweep.results();

    std::printf("Figure 11 (beyond the paper): node failure and "
                "recovery under SWI-DSM (em3d)\n");
    std::printf("(kill node %u @%llu, restart @%llu; recover = ticks "
                "from kill to the victim's first post-restart op;\n"
                " speedup = SWI/Base machine-wide throughput per "
                "phase)\n\n",
                unsigned(victim),
                static_cast<unsigned long long>(failTick),
                static_cast<unsigned long long>(recoverTick));

    Table t({"topology", "restart", "shards", "recover",
             "speedup before", "during", "after", "rehome",
             "shard syncs", "ckpt msgs", "retries", "link queue",
             "base p99", "SWI p99"});
    for (const Cell &c : cells) {
        const RunResult &base = sweep.result(c.base);
        const RunResult &swi = sweep.result(c.swi);
        const FaultOutcome &bf = base.fault;
        const FaultOutcome &sf = swi.fault;

        const bool recovered = sf.recoveredTick > sf.killTick;
        auto rates = [](const RunResult &r) {
            const FaultOutcome &f = r.fault;
            return std::array<double, 3>{
                phaseRate(0, f.opsAtKill, 0, f.killTick),
                phaseRate(f.opsAtKill, f.opsAtRestart, f.killTick,
                          f.restartTick),
                phaseRate(f.opsAtRestart, f.opsAtEnd, f.restartTick,
                          r.execTicks)};
        };
        const auto br = rates(base);
        const auto sr = rates(swi);

        t.addRow({topoKindName(c.kind), c.warm ? "warm" : "cold",
                  c.repl ? "repl" : "sweep",
                  recovered
                      ? Table::fmt(sf.recoveredTick - sf.killTick)
                      : "n/a",
                  speedupCell(br[0], sr[0]), speedupCell(br[1], sr[1]),
                  speedupCell(br[2], sr[2]),
                  Table::fmt(sf.rehomeSyncs),
                  Table::fmt(sf.shardSyncs),
                  Table::fmt(sf.ckptMessages), Table::fmt(sf.retries),
                  Table::fmt(swi.linkQueueingCycles),
                  // Demand-miss latency tail (always-on histograms):
                  // the outage's retry backoffs and re-homed misses
                  // stretch it far beyond a fault-free run's p99.
                  Table::fmt(base.missLatP99, 0),
                  Table::fmt(swi.missLatP99, 0)});
        // Both runs of a cell share the plan; a drifting boundary
        // would mean the fault layer broke determinism.
        if (bf.killTick != sf.killTick ||
            bf.restartTick != sf.restartTick) {
            std::printf("WARNING: phase boundaries differ between "
                        "Base and SWI runs\n");
        }
    }
    t.print(std::cout);
    return bench::finishSweep(sweep, args, "fig11_recovery");
}
