/**
 * @file
 * Table 5: frequency of requests, speculations, and misspeculations.
 *
 * Columns mirror the paper: Base-DSM read/write volumes, then the
 * percentage of reads served speculatively (sent) and verified
 * unreferenced (miss) for the FR and SWI triggers, and the
 * percentage of writes invalidated early (sent / premature).
 *
 * Paper reference points: em3d SWI invalidates 98% of writes and
 * triggers 95% of reads; appbt/barnes/ocean get no SWI benefit;
 * write-invalidate misses are everywhere minimal.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"

using namespace mspdsm;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseArgs(
        argc, argv, "table5_speculation",
        "Table 5: requests, speculations and misspeculations");

    SweepRunner sweep(bench::sweepOptions(args));
    for (const AppInfo &info : appSuite())
        for (SpecMode m : {SpecMode::None, SpecMode::FirstRead,
                           SpecMode::SwiFirstRead})
            sweep.addSpec(info.name, m, args.ec);
    const auto &recs = sweep.results();

    std::printf("Table 5: requests, speculations and misspeculations\n"
                "(reads/writes in thousands from Base-DSM; "
                "percentages of that volume)\n\n");
    Table t({"app", "reads K", "writes K", "FR-DSM rd sent", "miss",
             "SWI-DSM FR rd", "miss", "SWI rd", "miss", "winv sent",
             "winv miss"});
    std::size_t i = 0;
    for (const AppInfo &info : appSuite()) {
        const RunResult &base = recs[i++].result;
        const RunResult &fr = recs[i++].result;
        const RunResult &swi = recs[i++].result;

        const double rk = static_cast<double>(base.reads);
        const double wk = static_cast<double>(base.writes);
        t.addRow({info.name, Table::fmt(rk / 1000.0, 1),
                  Table::fmt(wk / 1000.0, 1),
                  Table::fmtPct(pct(fr.specSentFr, fr.reads)),
                  Table::fmtPct(pct(fr.specMissFr, fr.reads)),
                  Table::fmtPct(pct(swi.specSentFr, swi.reads)),
                  Table::fmtPct(pct(swi.specMissFr, swi.reads)),
                  Table::fmtPct(pct(swi.specSentSwi, swi.reads)),
                  Table::fmtPct(pct(swi.specMissSwi, swi.reads)),
                  Table::fmtPct(pct(swi.swiSent, swi.writes)),
                  Table::fmtPct(pct(swi.swiPremature, swi.writes))});
    }
    t.print(std::cout);
    return bench::finishSweep(sweep, args, "table5_speculation");
}
