/**
 * @file
 * Table 2: applications and input data sets -- the paper's inputs
 * side by side with this reproduction's scaled inputs, plus measured
 * per-application request volumes at the default scale.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"

using namespace mspdsm;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseArgs(
        argc, argv, "table2_apps",
        "Table 2: applications, inputs, and request volumes");

    SweepRunner sweep(bench::sweepOptions(args));
    for (const AppInfo &info : appSuite())
        sweep.addSpec(info.name, SpecMode::None, args.ec);
    const auto &recs = sweep.results();

    std::printf("Table 2: applications and input data sets\n\n");
    Table t({"app", "paper input", "iters", "this repro", "iters",
             "reads K", "writes K", "msgs K"});
    std::size_t i = 0;
    for (const AppInfo &info : appSuite()) {
        const RunResult &r = recs[i++].result;
        t.addRow({info.name, info.paperInput,
                  Table::fmt(std::uint64_t(info.paperIters)),
                  info.scaledInput,
                  Table::fmt(std::uint64_t(
                      args.ec.iterations ? args.ec.iterations
                                         : info.defaultIters)),
                  Table::fmt(r.reads / 1000.0, 1),
                  Table::fmt(r.writes / 1000.0, 1),
                  Table::fmt(r.messages / 1000.0, 1)});
    }
    t.print(std::cout);
    return bench::finishSweep(sweep, args, "table2_apps");
}
