/**
 * @file
 * Table 2: applications and input data sets -- the paper's inputs
 * side by side with this reproduction's scaled inputs, plus measured
 * per-application request volumes at the default scale.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"

using namespace mspdsm;

int
main(int argc, char **argv)
{
    const ExperimentConfig ec = bench::parseArgs(argc, argv);

    std::printf("Table 2: applications and input data sets\n\n");
    Table t({"app", "paper input", "iters", "this repro", "iters",
             "reads K", "writes K", "msgs K"});
    for (const AppInfo &info : appSuite()) {
        const RunResult r = runSpec(info.name, SpecMode::None, ec);
        t.addRow({info.name, info.paperInput,
                  Table::fmt(std::uint64_t(info.paperIters)),
                  info.scaledInput,
                  Table::fmt(std::uint64_t(
                      ec.iterations ? ec.iterations
                                    : info.defaultIters)),
                  Table::fmt(r.reads / 1000.0, 1),
                  Table::fmt(r.writes / 1000.0, 1),
                  Table::fmt(r.messages / 1000.0, 1)});
    }
    t.print(std::cout);
    return 0;
}
