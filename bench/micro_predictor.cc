/**
 * @file
 * google-benchmark microbenchmarks of predictor observe() throughput:
 * the operation a DSM home performs on every incoming message, so its
 * cost bounds the directory occupancy a hardware table must beat.
 */

#include <benchmark/benchmark.h>

#include "base/random.hh"
#include "pred/seq_predictor.hh"
#include "pred/vmsp.hh"

using namespace mspdsm;

namespace
{

/** Pre-generated stable producer/consumer message stream. */
std::vector<std::pair<BlockId, PredMsg>>
makeStream(std::size_t blocks, int rounds)
{
    std::vector<std::pair<BlockId, PredMsg>> stream;
    for (int i = 0; i < rounds; ++i) {
        for (BlockId b = 0; b < blocks; ++b) {
            stream.push_back({b, PredMsg{SymKind::Write, 0}});
            stream.push_back({b, PredMsg{SymKind::Read, 1}});
            stream.push_back({b, PredMsg{SymKind::Read, 2}});
        }
    }
    return stream;
}

template <typename P>
void
benchObserve(benchmark::State &state)
{
    const auto stream =
        makeStream(static_cast<std::size_t>(state.range(0)), 4);
    P pred(static_cast<std::size_t>(state.range(1)), 16);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &[blk, msg] = stream[i];
        benchmark::DoNotOptimize(pred.observe(blk, msg));
        if (++i == stream.size())
            i = 0;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
cosmosObserve(benchmark::State &state)
{
    benchObserve<Cosmos>(state);
}

void
mspObserve(benchmark::State &state)
{
    benchObserve<Msp>(state);
}

void
vmspObserve(benchmark::State &state)
{
    benchObserve<Vmsp>(state);
}

void
vmspSpecQuery(benchmark::State &state)
{
    // The speculation fast path: predictedReaders + predictionKey.
    Vmsp v(1, 16);
    for (int i = 0; i < 8; ++i) {
        v.observe(7, PredMsg{SymKind::Write, 0});
        v.observe(7, PredMsg{SymKind::Read, 1});
        v.observe(7, PredMsg{SymKind::Read, 2});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(v.predictedReaders(7));
        benchmark::DoNotOptimize(v.predictionKey(7));
    }
}

} // namespace

BENCHMARK(cosmosObserve)->Args({64, 1})->Args({4096, 1})->Args({64, 4});
BENCHMARK(mspObserve)->Args({64, 1})->Args({4096, 1})->Args({64, 4});
BENCHMARK(vmspObserve)->Args({64, 1})->Args({4096, 1})->Args({64, 4});
BENCHMARK(vmspSpecQuery);

BENCHMARK_MAIN();
