/**
 * @file
 * Microbenchmarks of predictor observe() throughput: the operation a
 * DSM home performs on every incoming message, so its cost bounds the
 * directory occupancy a hardware table must beat.
 *
 * Usage: micro_predictor [--smoke]
 */

#include <fstream>
#include <iostream>

#include "micro_suites.hh"

int
main(int argc, char **argv)
{
    const mspdsm::bench::BenchArgs args = mspdsm::bench::parseArgs(
        argc, argv, "micro_predictor",
        "Predictor observe()/lookup throughput microbenchmarks");
    mspdsm::bench::BenchOptions opts;
    if (args.smoke)
        opts.minSeconds = 0.05;

    const auto rs = mspdsm::bench::runPredictorSuite(opts);
    mspdsm::bench::printResults(std::cout, rs);
    const double lookups =
        mspdsm::bench::itemsPerSec(rs, "pred/observe_mix");
    std::cout << "lookups_per_sec: " << lookups << "\n";
    if (!args.jsonPath.empty()) {
        return mspdsm::bench::writeMicroJson(
            args.jsonPath, rs, {{"lookups_per_sec", lookups}});
    }
    return 0;
}
