/**
 * @file
 * Microbenchmarks of predictor observe() throughput: the operation a
 * DSM home performs on every incoming message, so its cost bounds the
 * directory occupancy a hardware table must beat.
 *
 * Usage: micro_predictor [--smoke]
 */

#include <cstring>
#include <iostream>

#include "micro_suites.hh"

int
main(int argc, char **argv)
{
    mspdsm::bench::BenchOptions opts;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            opts.minSeconds = 0.05;

    const auto rs = mspdsm::bench::runPredictorSuite(opts);
    mspdsm::bench::printResults(std::cout, rs);
    std::cout << "lookups_per_sec: "
              << mspdsm::bench::itemsPerSec(rs, "pred/observe_mix")
              << "\n";
    return 0;
}
