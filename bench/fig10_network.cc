/**
 * @file
 * Figure 10 (beyond the paper): network sensitivity of speculative
 * coherence. The paper evaluates one network -- a constant-latency
 * switched fabric with NI-only contention (our crossbar) -- yet the
 * MSP's entire value proposition is hiding remote latency, so this
 * experiment sweeps the interconnect under it: SWI-DSM execution time
 * relative to Base-DSM across topology x node count x link latency on
 * em3d, the suite's most communication-bound application.
 *
 * Expected shape: the relative speedup *grows* as the network gets
 * slower (more hops, higher per-hop latency) because each correctly
 * anticipated remote fetch hides a longer round trip -- up to the
 * point where link contention saturates and speculative pushes start
 * queueing behind demand traffic.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "base/table.hh"
#include "bench_common.hh"
#include "topo/topology.hh"

using namespace mspdsm;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseArgs(
        argc, argv, "fig10_network",
        "Figure 10 (beyond the paper): SWI-DSM speedup vs topology x "
        "node count x link latency");

    // Each axis sweeps its full range by default; passing the
    // corresponding flag narrows it to the requested value. The flag
    // defaults double as "not passed" sentinels, so the two requests
    // this cannot express are the defaults themselves: --topology
    // crossbar and --procs 16 still sweep their full axis.
    const std::vector<TopoKind> topos =
        args.ec.topo.kind != TopoKind::Crossbar
            ? std::vector<TopoKind>{args.ec.topo.kind}
            : std::vector<TopoKind>{TopoKind::Crossbar, TopoKind::Ring,
                                    TopoKind::Mesh2D, TopoKind::Torus2D};
    const std::vector<unsigned> procCounts =
        args.ec.numProcs != 16 ? std::vector<unsigned>{args.ec.numProcs}
                               : std::vector<unsigned>{8, 16, 32};
    // --link-latency narrows the latency axis likewise.
    const std::vector<Tick> linkLats =
        args.ec.topo.linkLatency
            ? std::vector<Tick>{args.ec.topo.linkLatency}
            : std::vector<Tick>{20, 80};

    struct Cell
    {
        TopoKind kind;
        unsigned procs;
        Tick linkLat;
        std::size_t base, swi; //!< submission indices
    };

    SweepRunner sweep(bench::sweepOptions(args));
    std::vector<Cell> cells;
    for (TopoKind kind : topos) {
        for (unsigned procs : procCounts) {
            for (Tick linkLat : linkLats) {
                // The crossbar's flight time is netLatency no matter
                // the link latency; sweep it once per node count.
                if (kind == TopoKind::Crossbar &&
                    linkLat != linkLats.front())
                    continue;
                ExperimentConfig ec = args.ec;
                ec.numProcs = procs;
                ec.topo.kind = kind;
                ec.topo.linkLatency = linkLat;
                const bool xbar = kind == TopoKind::Crossbar;
                const std::string tag =
                    std::string(topoKindName(kind)) +
                    " p=" + std::to_string(procs) +
                    " L=" + (xbar ? "-" : std::to_string(linkLat));
                Cell c;
                c.kind = kind;
                c.procs = procs;
                c.linkLat = linkLat;
                c.base = sweep.add(
                    tag + " base",
                    [ec] { return runSpec("em3d", SpecMode::None, ec); },
                    topoKindName(kind));
                c.swi = sweep.add(
                    tag + " SWI",
                    [ec] {
                        return runSpec("em3d", SpecMode::SwiFirstRead,
                                       ec);
                    },
                    topoKindName(kind));
                cells.push_back(c);
            }
        }
    }
    sweep.results();

    std::printf("Figure 10 (beyond the paper): SWI-DSM vs Base-DSM "
                "across interconnects (em3d)\n");
    std::printf("(time %% = SWI execution time normalized to the same "
                "network's Base-DSM)\n\n");

    Table t({"topology", "procs", "link", "base ticks", "SWI ticks",
             "time %", "req wait %", "link queue", "ev/msg",
             "miss p99"});
    for (const Cell &c : cells) {
        const RunResult &base = sweep.result(c.base);
        const RunResult &swi = sweep.result(c.swi);
        const double bt = static_cast<double>(base.execTicks);
        const bool ok = base.completed() && swi.completed() && bt > 0;
        t.addRow({topoKindName(c.kind), Table::fmt(std::uint64_t{c.procs}),
                  c.kind == TopoKind::Crossbar ? "-"
                                               : Table::fmt(c.linkLat),
                  Table::fmt(base.execTicks), Table::fmt(swi.execTicks),
                  ok ? Table::fmt(100.0 *
                                      static_cast<double>(swi.execTicks) /
                                      bt,
                                  1)
                     : "n/a",
                  ok ? Table::fmt(100.0 * swi.avgRequestWait / bt, 1)
                     : "n/a",
                  // Link-level contention of the SWI run: the cycles
                  // messages spent queued behind busy links (always 0
                  // on the crossbar, whose contention is NI-only).
                  Table::fmt(swi.linkQueueingCycles),
                  // Event dispatches per message on the SWI run: how
                  // close the batched NI drain holds the transport to
                  // its one-event-per-delivery floor as the fabric
                  // slows and contention grows.
                  Table::fmt(swi.eventsPerMessage(), 2),
                  // Demand-miss latency tail of the SWI run (always-on
                  // histograms): stretches with hop count and link
                  // latency, and under --lossy-link with retransmit
                  // round trips.
                  Table::fmt(swi.missLatP99, 0)});
    }
    t.print(std::cout);
    return bench::finishSweep(sweep, args, "fig10_network");
}
