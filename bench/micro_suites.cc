#include "micro_suites.hh"

#include <utility>

#include "base/random.hh"
#include "dsm/system.hh"
#include "net/network.hh"
#include "pred/seq_predictor.hh"
#include "pred/vmsp.hh"
#include "sim/eventq.hh"
#include "workload/suite.hh"

namespace mspdsm::bench
{

namespace
{

/**
 * Event-kernel throughput: bulk-schedule a deterministic spread of
 * events and drain the queue. The tick distribution mirrors the
 * protocol's: heavy same-tick ties (concurrent acks), short
 * latencies, and a tail a few thousand ticks out (every latency in
 * ProtoConfig is under ~400 cycles).
 */
[[gnu::flatten]] std::uint64_t
eventqThroughput()
{
    constexpr int n = 20000;
    EventQueue eq;
    std::uint64_t fired = 0;
    for (int i = 0; i < n; ++i) {
        // Thirds: heavy ties, short spread, medium spread.
        const Tick when = (i % 3 == 0) ? Tick(i % 17)
                        : (i % 3 == 1) ? Tick((i * 7) % 512)
                                       : Tick((i * 131) % 4096);
        eq.schedule(when, [&fired] { ++fired; });
    }
    eq.run();
    return fired;
}

/**
 * Distant-event stress: ticks spread across a 65536-tick horizon,
 * far beyond any protocol latency. Tracks the kernel's fallback
 * ordering structure rather than the common path.
 */
[[gnu::flatten]] std::uint64_t
eventqFar()
{
    constexpr int n = 20000;
    EventQueue eq;
    std::uint64_t fired = 0;
    for (int i = 0; i < n; ++i)
        eq.schedule(Tick((i * 131) % 65536), [&fired] { ++fired; });
    eq.run();
    return fired;
}

/**
 * Steady-state kernel cost: one event rescheduling itself at +1 tick,
 * the pattern of a component timer. Exercises the advance path rather
 * than the bulk-drain path.
 */
[[gnu::flatten]] std::uint64_t
eventqSelfChain()
{
    constexpr int n = 20000;
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < n)
            eq.scheduleAfter(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    return static_cast<std::uint64_t>(count);
}

/** Shared small workload; generated once, outside the timed region. */
const Workload &
benchWorkload()
{
    static const Workload w = [] {
        AppParams p;
        p.scale = 0.25;
        p.iterations = 2;
        return makeEm3d(p);
    }();
    return w;
}

/** The same workload pre-compiled, as the harness workload cache
 * hands it to every run. */
const CompiledWorkload &
benchCompiledWorkload()
{
    static const CompiledWorkload cw(benchWorkload(),
                                     AddrMap(ProtoConfig{}));
    return cw;
}

/** End-to-end: simulated coherence messages per second on em3d,
 * including the per-run trace compilation (the cold path a one-off
 * run pays). */
std::uint64_t
simMessages()
{
    const Workload &w = benchWorkload();
    DsmConfig cfg;
    cfg.proto.netJitter = w.netJitter;
    DsmSystem sys(cfg);
    return sys.run(w.traces).messages;
}

/** End-to-end on the pre-compiled workload: the steady-state path a
 * sweep takes once the workload cache is warm. */
std::uint64_t
simMessagesCompiled()
{
    const Workload &w = benchWorkload();
    const CompiledWorkload &cw = benchCompiledWorkload();
    DsmConfig cfg;
    cfg.proto.netJitter = w.netJitter;
    DsmSystem sys(cfg);
    return sys.run(cw).messages;
}

/** Speculative run: same workload with VMSP + SWI/FR machinery on
 * (per-run compilation included, like sim/messages). */
std::uint64_t
simMessagesSpec()
{
    const Workload &w = benchWorkload();
    DsmConfig cfg;
    cfg.proto.netJitter = w.netJitter;
    cfg.pred = PredKind::Vmsp;
    cfg.spec = SpecMode::SwiFirstRead;
    DsmSystem sys(cfg);
    return sys.run(w.traces).messages;
}

/**
 * Multi-hop routing throughput: a 16-node torus (4x4, the densest
 * link structure we ship) under steady cross-traffic through raw
 * delivery sinks. Tracks the per-message route walk -- link
 * reservations, hop-composed flight, NI contention -- plus the
 * delivery event path; items are messages delivered.
 */
[[gnu::flatten]] std::uint64_t
netRoute()
{
    constexpr int n = 20000;
    ProtoConfig cfg;
    cfg.topo.kind = TopoKind::Torus2D;
    EventQueue eq;
    Network net(eq, cfg, Rng(11));
    std::uint64_t delivered = 0;
    const auto count = +[](void *ctx, const CohMsg &) {
        ++*static_cast<std::uint64_t *>(ctx);
    };
    for (NodeId i = 0; i < cfg.numNodes; ++i)
        net.attach(i, count, &delivered);
    for (int i = 0; i < n; ++i) {
        CohMsg m;
        // The destination stride advances every 16 messages (i >> 4
        // term), so the pattern walks all 240 (src, dst) pairs --
        // short and long routes, every shared link contended.
        m.type = (i & 3) ? MsgType::GetS : MsgType::DataShared;
        m.src = static_cast<NodeId>(i & 15);
        m.dst = static_cast<NodeId>((i * 7 + 3 + (i >> 4)) & 15);
        if (m.src == m.dst)
            m.dst = static_cast<NodeId>((m.dst + 1) & 15);
        net.send(m);
    }
    eq.run();
    return delivered;
}

/**
 * Dense same-destination cross-traffic: fifteen sources hammer one
 * hot ingress NI on the default crossbar, so the whole run is one
 * long busy period at that node. This was the worst case for the
 * retired two-stage path (every message paid an arrival event plus a
 * delivery event, and the fusion guard never opened under the
 * backlog); the per-destination drain batches all the arrival
 * bookkeeping into the delivery dispatches it queued behind. Items
 * are messages delivered.
 */
[[gnu::flatten]] std::uint64_t
netIngressBatch()
{
    constexpr int n = 20000;
    ProtoConfig cfg;
    EventQueue eq;
    Network net(eq, cfg, Rng(23));
    std::uint64_t delivered = 0;
    const auto count = +[](void *ctx, const CohMsg &) {
        ++*static_cast<std::uint64_t *>(ctx);
    };
    for (NodeId i = 0; i < cfg.numNodes; ++i)
        net.attach(i, count, &delivered);
    for (int i = 0; i < n; ++i) {
        CohMsg m;
        // A 3:1 control/data mix, like the protocol's; every message
        // targets node 0, whose ingress NI serializes everything.
        m.type = (i & 3) ? MsgType::GetS : MsgType::DataShared;
        m.src = static_cast<NodeId>(1 + i % 15);
        m.dst = 0;
        net.send(m);
    }
    eq.run();
    return delivered;
}

/** Front-end throughput: source TraceOps compiled per second. */
std::uint64_t
workloadCompile()
{
    const Workload &w = benchWorkload();
    const AddrMap map((ProtoConfig{}));
    const CompiledWorkload cw(w, map);
    // Keep the result alive past the optimizer.
    asm volatile("" ::"r"(cw.totalOps()));
    return cw.sourceOps();
}

/** Pre-generated stable producer/consumer message stream. */
std::vector<std::pair<BlockId, PredMsg>>
makeStream(std::size_t blocks, int rounds)
{
    std::vector<std::pair<BlockId, PredMsg>> stream;
    for (int i = 0; i < rounds; ++i) {
        for (BlockId b = 0; b < blocks; ++b) {
            stream.push_back({b, PredMsg{SymKind::Write, 0}});
            stream.push_back({b, PredMsg{SymKind::Read, 1}});
            stream.push_back({b, PredMsg{SymKind::Read, 2}});
        }
    }
    return stream;
}

/**
 * The headline predictor bench: all three predictor kinds observing a
 * 4096-block stream at depth 1 -- per-block table lookup plus pattern
 * lookup/learn on every call, dominated by table access. Predictor
 * state persists across harness invocations so the measurement is the
 * steady-state observe path (the per-message operation a directory
 * performs), not table construction.
 */
[[gnu::flatten]] std::uint64_t
predObserveMix()
{
    static const auto stream = makeStream(4096, 4);
    static Cosmos c(1, 16);
    static Msp m(1, 16);
    static Vmsp v(1, 16);
    for (const auto &[blk, msg] : stream) {
        c.observe(blk, msg);
        m.observe(blk, msg);
        v.observe(blk, msg);
    }
    return static_cast<std::uint64_t>(stream.size()) * 3;
}

/** Cold-start variant: fresh predictors, allocation/warm-up path. */
[[gnu::flatten]] std::uint64_t
predObserveCold()
{
    static const auto stream = makeStream(4096, 1);
    Cosmos c(1, 16);
    Msp m(1, 16);
    Vmsp v(1, 16);
    for (const auto &[blk, msg] : stream) {
        c.observe(blk, msg);
        m.observe(blk, msg);
        v.observe(blk, msg);
    }
    return static_cast<std::uint64_t>(stream.size()) * 3;
}

/** Deep-history VMSP observe: longer keys, same table machinery. */
[[gnu::flatten]] std::uint64_t
predObserveDeep()
{
    static const auto stream = makeStream(64, 64);
    static Vmsp v(4, 16);
    for (const auto &[blk, msg] : stream)
        v.observe(blk, msg);
    return static_cast<std::uint64_t>(stream.size());
}

/** The speculation fast path: predictedReaders + predictionKey. */
[[gnu::flatten]] std::uint64_t
predSpecQuery()
{
    constexpr int n = 100000;
    Vmsp v(1, 16);
    for (int i = 0; i < 8; ++i) {
        v.observe(7, PredMsg{SymKind::Write, 0});
        v.observe(7, PredMsg{SymKind::Read, 1});
        v.observe(7, PredMsg{SymKind::Read, 2});
    }
    std::uint64_t live = 0;
    for (int i = 0; i < n; ++i) {
        if (v.predictedReaders(7))
            ++live;
        if (v.predictionKey(7))
            ++live;
    }
    return live;
}

} // namespace

std::vector<BenchResult>
runSimSuite(const BenchOptions &opts)
{
    std::vector<BenchResult> rs;
    rs.push_back(runBench("eventq/throughput", opts, eventqThroughput));
    rs.push_back(runBench("eventq/far", opts, eventqFar));
    rs.push_back(runBench("eventq/self_chain", opts, eventqSelfChain));
    rs.push_back(runBench("sim/messages", opts, simMessages));
    rs.push_back(
        runBench("sim/messages_compiled", opts, simMessagesCompiled));
    rs.push_back(runBench("sim/messages_spec", opts, simMessagesSpec));
    rs.push_back(runBench("net/route", opts, netRoute));
    rs.push_back(
        runBench("net/ingress_batch", opts, netIngressBatch));
    rs.push_back(runBench("workload/compile", opts, workloadCompile));
    return rs;
}

double
simEventsPerMessage()
{
    const Workload &w = benchWorkload();
    const CompiledWorkload &cw = benchCompiledWorkload();
    DsmConfig cfg;
    cfg.proto.netJitter = w.netJitter;
    DsmSystem sys(cfg);
    const RunResult r = sys.run(cw);
    return r.eventsPerMessage();
}

std::vector<BenchResult>
runPredictorSuite(const BenchOptions &opts)
{
    std::vector<BenchResult> rs;
    rs.push_back(runBench("pred/observe_mix", opts, predObserveMix));
    rs.push_back(runBench("pred/observe_cold", opts, predObserveCold));
    rs.push_back(runBench("pred/observe_deep", opts, predObserveDeep));
    rs.push_back(runBench("pred/spec_query", opts, predSpecQuery));
    return rs;
}

double
itemsPerSec(const std::vector<BenchResult> &rs, const std::string &name)
{
    for (const BenchResult &r : rs)
        if (r.name == name)
            return r.itemsPerSec;
    return 0.0;
}

} // namespace mspdsm::bench
