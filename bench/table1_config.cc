/**
 * @file
 * Table 1: system configuration parameters of the simulated machine,
 * plus a measured validation of the headline latencies (local access,
 * round-trip miss, remote-to-local ratio).
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"
#include "dsm/system.hh"
#include "workload/layout.hh"

using namespace mspdsm;

namespace
{

RunResult
measure(const DsmConfig &cfg, NodeId who, Addr addr)
{
    DsmSystem sys(cfg);
    std::vector<Trace> ts(cfg.proto.numNodes);
    ts[who] = {TraceOp::read(addr)};
    return sys.run(ts);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseArgs(
        argc, argv, "table1_config",
        "Table 1: simulated machine parameters + latency validation");

    DsmConfig cfg;
    cfg.proto.netJitter = 0;
    const ProtoConfig &p = cfg.proto;

    std::printf("Table 1: system configuration parameters\n\n");
    Table t({"parameter", "value"});
    t.addRow({"Number of nodes", Table::fmt(std::uint64_t(p.numNodes))});
    t.addRow({"Processor speed (modelled)", "600 MHz (1 cycle units)"});
    t.addRow({"Coherence block size",
              Table::fmt(std::uint64_t(p.blockSize)) + " bytes"});
    t.addRow({"Page size (home interleaving)",
              Table::fmt(std::uint64_t(p.pageSize)) + " bytes"});
    t.addRow({"Local memory / remote cache access",
              Table::fmt(std::uint64_t(p.memAccess)) + " cycles"});
    t.addRow({"Network latency (one way)",
              Table::fmt(std::uint64_t(p.netLatency)) + " cycles"});
    t.addRow({"NI occupancy (control / data)",
              Table::fmt(std::uint64_t(p.niControl)) + " / " +
                  Table::fmt(std::uint64_t(p.niData)) + " cycles"});
    t.addRow({"Directory lookup",
              Table::fmt(std::uint64_t(p.dirLookup)) + " cycles"});
    t.print(std::cout);

    // Validate against the paper's headline numbers. The two probe
    // runs ride the sweep engine like every other experiment so the
    // binary shares the --jobs/--json interface.
    SweepRunner sweep(bench::sweepOptions(args));
    // Deliberately pinned to the default crossbar regardless of
    // --topology: these probes validate the paper's Table 1
    // calibration (104/418 cycles), which is defined on that network.
    sweep.add("local access", [cfg] {
        return measure(cfg, 1, 1 * cfg.proto.pageSize);
    }, "crossbar");
    sweep.add("round-trip miss", [cfg] {
        return measure(cfg, 1, 0 * cfg.proto.pageSize);
    }, "crossbar");
    const Tick local = sweep.result(0).execTicks;
    const Tick remote = sweep.result(1).execTicks;
    std::printf("\nmeasured local access        %6llu cycles "
                "(paper: 104)\n",
                static_cast<unsigned long long>(local));
    std::printf("measured round-trip miss     %6llu cycles "
                "(paper: 418)\n",
                static_cast<unsigned long long>(remote));
    std::printf("measured remote-to-local rtl %6.2f        "
                "(paper: ~4)\n",
                static_cast<double>(remote) /
                    static_cast<double>(local));
    return bench::finishSweep(sweep, args, "table1_config");
}
