/**
 * @file
 * The two microbenchmark suites that track the simulator's hot path:
 *
 *  - the sim suite measures the discrete-event kernel (schedule/fire
 *    throughput, steady-state self-scheduling, and end-to-end
 *    simulated messages per second on a small workload);
 *  - the predictor suite measures pattern-table observe()/lookup
 *    throughput, the operation a DSM home performs on every incoming
 *    message.
 *
 * Both suites are consumed by the standalone micro_sim /
 * micro_predictor binaries and by bench_core, which runs everything
 * and writes BENCH_core.json. Headline metrics:
 *
 *   events_per_sec         = "eventq/throughput" items/sec
 *   lookups_per_sec        = "pred/observe_mix" items/sec
 *   sim_events_per_message = simEventsPerMessage() (a ratio, not a
 *                            rate: event dispatches per message on
 *                            the dense em3d run)
 */

#ifndef MSPDSM_BENCH_MICRO_SUITES_HH
#define MSPDSM_BENCH_MICRO_SUITES_HH

#include <vector>

#include "bench_common.hh"

namespace mspdsm::bench
{

/** Event-kernel and whole-system benches. */
std::vector<BenchResult> runSimSuite(const BenchOptions &opts);

/** Predictor-table benches. */
std::vector<BenchResult> runPredictorSuite(const BenchOptions &opts);

/** Pull a named result's items/sec (0 if absent). */
double itemsPerSec(const std::vector<BenchResult> &rs,
                   const std::string &name);

/**
 * Event-kernel dispatches per network message on the dense em3d
 * workload (one deterministic compiled run). The transport-efficiency
 * headline BENCH_core.json tracks: the retired two-stage NI path held
 * this at ~2.5; the batched event layer (per-destination drain,
 * local-delivery flush, per-home directory due-queues) brought it to
 * ~1.47, and check_bench_core.py fails any record above 1.6.
 */
double simEventsPerMessage();

} // namespace mspdsm::bench

#endif // MSPDSM_BENCH_MICRO_SUITES_HH
