/**
 * @file
 * Microbenchmarks of the simulator substrate: event-queue throughput
 * and end-to-end simulated-messages-per-second on a small workload, to
 * size how large an experiment the harness can sustain.
 *
 * Usage: micro_sim [--smoke]
 */

#include <fstream>
#include <iostream>

#include "micro_suites.hh"

int
main(int argc, char **argv)
{
    const mspdsm::bench::BenchArgs args = mspdsm::bench::parseArgs(
        argc, argv, "micro_sim",
        "Event-kernel and end-to-end simulator microbenchmarks");
    mspdsm::bench::BenchOptions opts;
    if (args.smoke)
        opts.minSeconds = 0.05;

    const auto rs = mspdsm::bench::runSimSuite(opts);
    mspdsm::bench::printResults(std::cout, rs);
    const double events =
        mspdsm::bench::itemsPerSec(rs, "eventq/throughput");
    std::cout << "events_per_sec: " << events << "\n";
    if (!args.jsonPath.empty()) {
        return mspdsm::bench::writeMicroJson(
            args.jsonPath, rs, {{"events_per_sec", events}});
    }
    return 0;
}
