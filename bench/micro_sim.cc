/**
 * @file
 * Microbenchmarks of the simulator substrate: event-queue throughput
 * and end-to-end simulated-messages-per-second on a small workload, to
 * size how large an experiment the harness can sustain.
 *
 * Usage: micro_sim [--smoke]
 */

#include <cstring>
#include <iostream>

#include "micro_suites.hh"

int
main(int argc, char **argv)
{
    mspdsm::bench::BenchOptions opts;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            opts.minSeconds = 0.05;

    const auto rs = mspdsm::bench::runSimSuite(opts);
    mspdsm::bench::printResults(std::cout, rs);
    std::cout << "events_per_sec: "
              << mspdsm::bench::itemsPerSec(rs, "eventq/throughput")
              << "\n";
    return 0;
}
