/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate: event
 * queue throughput and end-to-end simulated-messages-per-second on a
 * small workload, to size how large an experiment the harness can
 * sustain.
 */

#include <benchmark/benchmark.h>

#include "dsm/system.hh"
#include "sim/eventq.hh"
#include "workload/suite.hh"

using namespace mspdsm;

namespace
{

void
eventQueueThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Tick>(i), [&fired] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}

void
simulatedMessagesPerSecond(benchmark::State &state)
{
    AppParams p;
    p.scale = 0.25;
    p.iterations = 2;
    const Workload w = makeEm3d(p);
    std::uint64_t messages = 0;
    for (auto _ : state) {
        DsmConfig cfg;
        cfg.proto.netJitter = w.netJitter;
        DsmSystem sys(cfg);
        const RunResult r = sys.run(w.traces);
        messages += r.messages;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(messages));
}

void
speculativeRunOverhead(benchmark::State &state)
{
    // Host-time cost of speculation machinery relative to base runs.
    AppParams p;
    p.scale = 0.25;
    p.iterations = 2;
    const Workload w = makeEm3d(p);
    for (auto _ : state) {
        DsmConfig cfg;
        cfg.proto.netJitter = w.netJitter;
        cfg.pred = PredKind::Vmsp;
        cfg.spec = state.range(0) ? SpecMode::SwiFirstRead
                                  : SpecMode::None;
        DsmSystem sys(cfg);
        benchmark::DoNotOptimize(sys.run(w.traces).execTicks);
    }
}

} // namespace

BENCHMARK(eventQueueThroughput);
BENCHMARK(simulatedMessagesPerSecond)->Unit(benchmark::kMillisecond);
BENCHMARK(speculativeRunOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
