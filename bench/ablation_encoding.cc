/**
 * @file
 * Ablation A3: the Section 3.1 encoding break-even -- at what read
 * degree does VMSP's vector encoding become cheaper than MSP's
 * per-read entries? Sweeps the sharing degree on a synthetic
 * producer/consumer block and reports per-block table bytes for all
 * three predictors, plus the closed-form sequence-encoding sizes.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"
#include "pred/seq_predictor.hh"
#include "pred/vmsp.hh"

using namespace mspdsm;

namespace
{

template <typename P>
void
drive(P &p, int rounds, int degree, bool with_acks)
{
    for (int i = 0; i < rounds; ++i) {
        p.observe(7, PredMsg{SymKind::Write, 0});
        if (with_acks) {
            for (int r = 0; r < degree; ++r)
                p.observe(7, PredMsg{SymKind::InvAck, NodeId(1 + r)});
        }
        for (int r = 0; r < degree; ++r)
            p.observe(7, PredMsg{SymKind::Read, NodeId(1 + r)});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Drives the predictors directly (no DsmSystem runs); the unified
    // CLI is accepted for suite uniformity; --json records an empty
    // sweep.
    const bench::BenchArgs args = bench::parseArgs(
        argc, argv, "ablation_encoding",
        "Ablation A3: storage vs read-sharing degree (Section 3.1)");

    constexpr unsigned procs = 16;
    std::printf("Ablation: storage vs read-sharing degree "
                "(stable producer/consumer, d=1, n=16)\n");
    std::printf("Section 3.1 break-even: VMSP's sequence encoding "
                "(2+n bits) beats MSP's\n(k*(2+log n) bits) from "
                "k >= %d readers.\n\n",
                (2 + 16 + (2 + 4) - 1) / (2 + 4));

    Table t({"degree", "Cosmos B/blk", "MSP B/blk", "VMSP B/blk",
             "MSP seq bits", "VMSP seq bits"});
    for (int degree : {1, 2, 3, 4, 6, 8, 12, 15}) {
        Cosmos c(1, procs);
        Msp m(1, procs);
        Vmsp v(1, procs);
        drive(c, 40, degree, true);
        drive(m, 40, degree, false);
        drive(v, 40, degree, false);
        t.addRow({Table::fmt(std::uint64_t(degree)),
                  Table::fmt(c.storage().avgBytesPerBlock, 1),
                  Table::fmt(m.storage().avgBytesPerBlock, 1),
                  Table::fmt(v.storage().avgBytesPerBlock, 1),
                  Table::fmt(std::uint64_t(degree * (2 + 4))),
                  Table::fmt(std::uint64_t(2 + procs))});
    }
    t.print(std::cout);
    SweepRunner sweep(bench::sweepOptions(args));
    return bench::finishSweep(sweep, args, "ablation_encoding");
}
