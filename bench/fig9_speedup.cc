/**
 * @file
 * Figure 9: execution time of the speculative coherent DSMs,
 * normalized to Base-DSM, broken into computation and remote request
 * waiting time.
 *
 * Paper reference points: FR-DSM reduces execution time by 8% on
 * average (17% at best); SWI-DSM by 12% on average (24% at best);
 * request waiting drops to 30-65% of base in four applications;
 * barnes barely moves (low communication ratio).
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"

using namespace mspdsm;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseArgs(
        argc, argv, "fig9_speedup",
        "Figure 9: normalized execution time of the speculative DSMs");

    SweepRunner sweep(bench::sweepOptions(args));
    for (const AppInfo &info : appSuite())
        for (SpecMode m : {SpecMode::None, SpecMode::FirstRead,
                           SpecMode::SwiFirstRead})
            sweep.addSpec(info.name, m, args.ec);
    const auto &recs = sweep.results();

    std::printf("Figure 9: normalized execution time (%%), comp + "
                "request wait\n");
    std::printf("(paper: FR avg -8%%, best -17%%; SWI avg -12%%, "
                "best -24%%)\n\n");

    Table t({"app", "Base comp", "Base req", "FR comp", "FR req",
             "FR total", "SWI comp", "SWI req", "SWI total",
             "ev/msg", "base p99", "SWI p99"});
    double fr_sum = 0, swi_sum = 0;
    std::size_t i = 0;
    for (const AppInfo &info : appSuite()) {
        const RunResult &base = recs[i++].result;
        const RunResult &fr = recs[i++].result;
        const RunResult &swi = recs[i++].result;

        const double bt = static_cast<double>(base.execTicks);
        auto norm = [bt](const RunResult &r) {
            return 100.0 * static_cast<double>(r.execTicks) / bt;
        };
        auto req = [bt](const RunResult &r) {
            return 100.0 * r.avgRequestWait / bt;
        };
        const double fr_total = norm(fr);
        const double swi_total = norm(swi);
        fr_sum += fr_total;
        swi_sum += swi_total;
        t.addRow({info.name, Table::fmt(100.0 - req(base), 1),
                  Table::fmt(req(base), 1),
                  Table::fmt(fr_total - req(fr), 1),
                  Table::fmt(req(fr), 1), Table::fmt(fr_total, 1),
                  Table::fmt(swi_total - req(swi), 1),
                  Table::fmt(req(swi), 1), Table::fmt(swi_total, 1),
                  // Event-kernel dispatches per message on the Base
                  // run: the transport-efficiency floor the batched
                  // NI drain tracks (sweep JSON: events_per_message).
                  Table::fmt(base.eventsPerMessage(), 2),
                  // Demand-miss latency tail (always-on histograms):
                  // speculation removes misses rather than shortening
                  // the survivors, so the p99 shows what is left.
                  Table::fmt(base.missLatP99, 0),
                  Table::fmt(swi.missLatP99, 0)});
    }
    t.addRow({"average", "", "100.0", "", "", Table::fmt(fr_sum / 7, 1),
              "", "", Table::fmt(swi_sum / 7, 1), "", "", ""});
    t.print(std::cout);
    return bench::finishSweep(sweep, args, "fig9_speedup");
}
