/**
 * @file
 * Table 4: predictor storage overhead -- pattern-table entries per
 * allocated block at depths 1 and 4, and bytes per block at depth 1.
 *
 * Paper reference points: on average Cosmos needs ~5 entries per
 * block at depth 1, MSP ~3, VMSP ~2; MSP halves Cosmos's byte
 * overhead; Cosmos's depth-4 tables blow up under re-ordering
 * (barnes 42, unstructured 168) while VMSP stays compact.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"

using namespace mspdsm;

int
main(int argc, char **argv)
{
    const ExperimentConfig ec = bench::parseArgs(argc, argv);

    std::printf("Table 4: storage overhead (pte = avg pattern-table "
                "entries/block;\novh = bytes/block at d=1)\n\n");
    Table t({"app", "Cos pte d1", "pte d4", "ovh", "MSP pte d1",
             "pte d4", "ovh", "VMSP pte d1", "pte d4", "ovh"});
    for (const AppInfo &info : appSuite()) {
        const RunResult d1 = runAccuracy(info.name, 1, ec);
        const RunResult d4 = runAccuracy(info.name, 4, ec);
        std::vector<std::string> row{info.name};
        for (int k = 0; k < 3; ++k) {
            row.push_back(Table::fmt(d1.observers[k].storage.avgPte, 1));
            row.push_back(Table::fmt(d4.observers[k].storage.avgPte, 1));
            row.push_back(Table::fmt(
                d1.observers[k].storage.avgBytesPerBlock, 1));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
