/**
 * @file
 * Table 4: predictor storage overhead -- pattern-table entries per
 * allocated block at depths 1 and 4, and bytes per block at depth 1.
 *
 * Paper reference points: on average Cosmos needs ~5 entries per
 * block at depth 1, MSP ~3, VMSP ~2; MSP halves Cosmos's byte
 * overhead; Cosmos's depth-4 tables blow up under re-ordering
 * (barnes 42, unstructured 168) while VMSP stays compact.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"

using namespace mspdsm;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseArgs(
        argc, argv, "table4_storage",
        "Table 4: predictor storage overhead at depths 1 and 4");

    SweepRunner sweep(bench::sweepOptions(args));
    for (const AppInfo &info : appSuite()) {
        sweep.addAccuracy(info.name, 1, args.ec);
        sweep.addAccuracy(info.name, 4, args.ec);
    }
    const auto &recs = sweep.results();

    std::printf("Table 4: storage overhead (pte = avg pattern-table "
                "entries/block;\novh = bytes/block at d=1)\n\n");
    Table t({"app", "Cos pte d1", "pte d4", "ovh", "MSP pte d1",
             "pte d4", "ovh", "VMSP pte d1", "pte d4", "ovh"});
    std::size_t i = 0;
    for (const AppInfo &info : appSuite()) {
        const RunResult &d1 = recs[i++].result;
        const RunResult &d4 = recs[i++].result;
        std::vector<std::string> row{info.name};
        for (int k = 0; k < 3; ++k) {
            row.push_back(Table::fmt(d1.observers[k].storage.avgPte, 1));
            row.push_back(Table::fmt(d4.observers[k].storage.avgPte, 1));
            row.push_back(Table::fmt(
                d1.observers[k].storage.avgBytesPerBlock, 1));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    return bench::finishSweep(sweep, args, "table4_storage");
}
