/**
 * @file
 * Figure 6: potential speedup of a speculative coherent DSM from the
 * Section 5 analytic model -- four panels sweeping prediction
 * accuracy (p), misspeculation penalty (n), speculated fraction (f)
 * and the remote-to-local latency ratio (rtl) against the
 * application's communication ratio (c).
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"
#include "model/analytic.hh"

using namespace mspdsm;

namespace
{

void
panel(const char *title, const char *param,
      const std::vector<std::pair<std::string, ModelParams>> &curves)
{
    std::printf("%s\n", title);
    std::vector<std::string> headers{std::string("c \\ ") + param};
    for (const auto &[label, mp] : curves)
        headers.push_back(label);
    Table t(headers);
    for (int i = 0; i <= 10; ++i) {
        const double c = i / 10.0;
        std::vector<std::string> row{Table::fmt(c, 1)};
        for (const auto &[label, mp] : curves) {
            ModelParams p = mp;
            p.c = c;
            row.push_back(Table::fmt(speedup(p), 2));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::printf("\n");
}

ModelParams
base()
{
    ModelParams mp;
    mp.n = 2.0;
    mp.f = 1.0;
    mp.rtl = 4.0;
    mp.p = 0.9;
    return mp;
}

} // namespace

int
main(int argc, char **argv)
{
    // Closed-form model, no simulation runs: the unified CLI is
    // accepted for suite uniformity; --json records an empty sweep.
    const bench::BenchArgs args = bench::parseArgs(
        argc, argv, "fig6_analytic",
        "Figure 6: analytic speedup model (Section 5), four panels");

    std::printf("Figure 6: analytic speedup of a speculative "
                "coherent DSM\n\n");

    {
        std::vector<std::pair<std::string, ModelParams>> curves;
        for (double p : {1.0, 0.9, 0.7, 0.5, 0.3, 0.1}) {
            ModelParams mp = base();
            mp.p = p;
            curves.emplace_back("p=" + Table::fmt(p, 1), mp);
        }
        panel("(a) accuracy sweep: n=2, f=1.0, rtl=4", "p", curves);
    }
    {
        std::vector<std::pair<std::string, ModelParams>> curves;
        for (double n : {1.5, 2.0, 4.0, 8.0}) {
            ModelParams mp = base();
            mp.n = n;
            curves.emplace_back("n=" + Table::fmt(n, 1), mp);
        }
        panel("(b) penalty sweep: p=0.9, f=1.0, rtl=4", "n", curves);
    }
    {
        std::vector<std::pair<std::string, ModelParams>> curves;
        for (double f : {1.0, 0.9, 0.7, 0.5, 0.3, 0.1}) {
            ModelParams mp = base();
            mp.f = f;
            curves.emplace_back("f=" + Table::fmt(f, 1), mp);
        }
        panel("(c) coverage sweep: p=0.9, n=2, rtl=4", "f", curves);
    }
    {
        std::vector<std::pair<std::string, ModelParams>> curves;
        ModelParams mp = base();
        mp.rtl = 8.0;
        curves.emplace_back("rtl=8 (NUMA-Q)", mp);
        mp.rtl = 4.0;
        curves.emplace_back("rtl=4 (Mercury)", mp);
        mp.rtl = 2.0;
        curves.emplace_back("rtl=2 (Origin)", mp);
        panel("(d) machine sweep: p=0.9, n=2, f=1.0", "rtl", curves);
    }
    SweepRunner sweep(bench::sweepOptions(args));
    return bench::finishSweep(sweep, args, "fig6_analytic");
}
