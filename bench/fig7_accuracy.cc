/**
 * @file
 * Figure 7: base predictor accuracy comparison (history depth 1).
 *
 * Paper reference points: Cosmos exceeds 90% in only two of seven
 * applications and drops to ~60% at worst; MSP lifts the average from
 * 81% to 86% by dropping acknowledgements; VMSP reaches 93% on
 * average, >87% in all but one application and >79% everywhere.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"

using namespace mspdsm;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseArgs(
        argc, argv, "fig7_accuracy",
        "Figure 7: base predictor accuracy, history depth 1");

    SweepRunner sweep(bench::sweepOptions(args));
    for (const AppInfo &info : appSuite())
        sweep.addAccuracy(info.name, 1, args.ec);
    const auto &recs = sweep.results();

    std::printf("Figure 7: prediction accuracy (%%), history depth 1\n");
    std::printf("(paper: Cosmos avg 81, MSP avg 86, VMSP avg 93)\n\n");

    Table t({"app", "Cosmos", "MSP", "VMSP"});
    double sum[3] = {0, 0, 0};
    for (const SweepRecord &rec : recs) {
        std::vector<std::string> row{rec.app};
        for (int k = 0; k < 3; ++k) {
            const double acc =
                rec.result.observers[k].stats.accuracyPct();
            sum[k] += acc;
            row.push_back(Table::fmt(acc, 1));
        }
        t.addRow(row);
    }
    t.addRow({"average", Table::fmt(sum[0] / 7, 1),
              Table::fmt(sum[1] / 7, 1), Table::fmt(sum[2] / 7, 1)});
    t.print(std::cout);
    return bench::finishSweep(sweep, args, "fig7_accuracy");
}
