/**
 * @file
 * Table 3: fraction of messages predicted (and predicted correctly),
 * history depth 1.
 *
 * Paper reference points: all applications except barnes and ocean
 * predict most messages (high pattern reuse); MSP predicts the same
 * fraction as Cosmos while VMSP's vectors take slightly longer to
 * learn, offset by its much higher accuracy.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"

using namespace mspdsm;

int
main(int argc, char **argv)
{
    const ExperimentConfig ec = bench::parseArgs(argc, argv);

    std::printf("Table 3: messages predicted (and correctly "
                "predicted), %%, depth 1\n\n");
    Table t({"app", "Cosmos", "MSP", "VMSP"});
    for (const AppInfo &info : appSuite()) {
        const RunResult r = runAccuracy(info.name, 1, ec);
        std::vector<std::string> row{info.name};
        for (int k = 0; k < 3; ++k) {
            const PredStats &s = r.observers[k].stats;
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%.0f (%.0f)",
                          s.coveragePct(), s.correctOfAllPct());
            row.push_back(cell);
        }
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
