/**
 * @file
 * Table 3: fraction of messages predicted (and predicted correctly),
 * history depth 1.
 *
 * Paper reference points: all applications except barnes and ocean
 * predict most messages (high pattern reuse); MSP predicts the same
 * fraction as Cosmos while VMSP's vectors take slightly longer to
 * learn, offset by its much higher accuracy.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "bench_common.hh"

using namespace mspdsm;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseArgs(
        argc, argv, "table3_learning",
        "Table 3: fraction of messages predicted, history depth 1");

    SweepRunner sweep(bench::sweepOptions(args));
    for (const AppInfo &info : appSuite())
        sweep.addAccuracy(info.name, 1, args.ec);
    const auto &recs = sweep.results();

    std::printf("Table 3: messages predicted (and correctly "
                "predicted), %%, depth 1\n\n");
    Table t({"app", "Cosmos", "MSP", "VMSP"});
    for (const SweepRecord &rec : recs) {
        std::vector<std::string> row{rec.app};
        for (int k = 0; k < 3; ++k) {
            const PredStats &s = rec.result.observers[k].stats;
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%.0f (%.0f)",
                          s.coveragePct(), s.correctOfAllPct());
            row.push_back(cell);
        }
        t.addRow(row);
    }
    t.print(std::cout);
    return bench::finishSweep(sweep, args, "table3_learning");
}
