/**
 * @file
 * The perf-tracking entry point: runs the sim and predictor micro
 * suites and writes BENCH_core.json (events/sec, lookups/sec, peak
 * RSS plus every individual result), so the simulator hot path's
 * throughput trajectory is recorded from PR to PR and regressions are
 * visible in CI.
 *
 * Usage: bench_core [--smoke] [-o FILE]   (default FILE: BENCH_core.json)
 */

#include <cstring>
#include <fstream>
#include <iostream>

#include "micro_suites.hh"

int
main(int argc, char **argv)
{
    mspdsm::bench::BenchOptions opts;
    const char *out = "BENCH_core.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            opts.minSeconds = 0.05;
        else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc)
            out = argv[++i];
    }

    auto rs = mspdsm::bench::runSimSuite(opts);
    auto pr = mspdsm::bench::runPredictorSuite(opts);
    rs.insert(rs.end(), pr.begin(), pr.end());

    mspdsm::bench::printResults(std::cout, rs);

    const double events =
        mspdsm::bench::itemsPerSec(rs, "eventq/throughput");
    const double lookups =
        mspdsm::bench::itemsPerSec(rs, "pred/observe_mix");

    std::ofstream f(out);
    if (!f) {
        std::cerr << "cannot open " << out << " for writing\n";
        return 1;
    }
    mspdsm::bench::writeJson(f, rs,
                             {{"events_per_sec", events},
                              {"lookups_per_sec", lookups}});
    std::cout << "wrote " << out << " (events_per_sec " << events
              << ", lookups_per_sec " << lookups << ")\n";
    return 0;
}
