/**
 * @file
 * The perf-tracking entry point: runs the sim and predictor micro
 * suites and writes BENCH_core.json (events/sec, lookups/sec,
 * events-per-message, peak RSS plus every individual result), so the
 * simulator hot path's
 * throughput trajectory is recorded from PR to PR and regressions are
 * visible in CI.
 *
 * Usage: bench_core [--smoke] [-o FILE]   (default FILE: BENCH_core.json)
 */

#include <fstream>
#include <iostream>

#include "micro_suites.hh"

int
main(int argc, char **argv)
{
    const mspdsm::bench::BenchArgs args = mspdsm::bench::parseArgs(
        argc, argv, "bench_core",
        "Perf-tracking micro suites; writes the BENCH_core.json "
        "schema");
    mspdsm::bench::BenchOptions opts;
    if (args.smoke)
        opts.minSeconds = 0.05;
    const std::string out =
        args.jsonPath.empty() ? "BENCH_core.json" : args.jsonPath;

    auto rs = mspdsm::bench::runSimSuite(opts);
    auto pr = mspdsm::bench::runPredictorSuite(opts);
    rs.insert(rs.end(), pr.begin(), pr.end());

    mspdsm::bench::printResults(std::cout, rs);

    const double events =
        mspdsm::bench::itemsPerSec(rs, "eventq/throughput");
    const double lookups =
        mspdsm::bench::itemsPerSec(rs, "pred/observe_mix");
    // A ratio, not a rate, so it is stable across machines: the event
    // floor per message the batched NI drain holds on dense em3d.
    const double evpm = mspdsm::bench::simEventsPerMessage();

    return mspdsm::bench::writeMicroJson(
        out, rs,
        {{"events_per_sec", events},
         {"lookups_per_sec", lookups},
         {"sim_events_per_message", evpm}});
}
