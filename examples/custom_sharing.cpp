/**
 * @file
 * Custom sharing patterns: shows how to script your own workload with
 * TraceBuilder / PhaseSchedule and measure how predictable it is at
 * different history depths -- the experiment you would run before
 * sizing an MSP for a new application class.
 */

#include <cstdio>
#include <vector>

#include "dsm/system.hh"
#include "workload/layout.hh"

using namespace mspdsm;

namespace
{

/**
 * A tree-barrier-like pattern: pairs exchange, then quads, then
 * halves -- each block's reader changes with the round structure,
 * which a depth-1 predictor cannot track but a deeper one can.
 */
std::vector<Trace>
makeTreeExchange(const ProtoConfig &proto, unsigned rounds)
{
    const unsigned n = proto.numNodes;
    Layout layout(proto);
    std::vector<Region> cell(n);
    for (unsigned q = 0; q < n; ++q)
        cell[q] = layout.allocAt(NodeId(q), 4);

    std::vector<TraceBuilder> tb(n);
    for (unsigned r = 0; r < rounds; ++r) {
        for (unsigned level = 1; level < 8; level <<= 1) {
            for (unsigned q = 0; q < n; ++q)
                tb[q].barrier();
            for (unsigned q = 0; q < n; ++q) {
                for (unsigned i = 0; i < 4; ++i) {
                    tb[q].write(cell[q].addr(i));
                    tb[q].compute(8);
                }
            }
            for (unsigned q = 0; q < n; ++q)
                tb[q].barrier();
            for (unsigned q = 0; q < n; ++q) {
                const unsigned partner = q ^ level;
                if (partner < n) {
                    for (unsigned i = 0; i < 4; ++i) {
                        tb[q].read(cell[partner].addr(i));
                        tb[q].compute(8);
                    }
                }
                tb[q].compute(300);
            }
        }
    }
    std::vector<Trace> traces;
    for (unsigned q = 0; q < n; ++q)
        traces.push_back(tb[q].take());
    return traces;
}

} // namespace

int
main()
{
    std::printf("Tree-exchange pattern: reader = writer XOR level, "
                "level cycling 1,2,4.\n");
    std::printf("%-8s  %-8s  %-10s  %-10s\n", "depth", "pred",
                "accuracy", "coverage");
    for (std::size_t depth : {1u, 2u, 4u}) {
        DsmConfig cfg;
        cfg.observers = {{PredKind::Cosmos, depth},
                         {PredKind::Msp, depth},
                         {PredKind::Vmsp, depth}};
        DsmSystem sys(cfg);
        const auto traces = makeTreeExchange(cfg.proto, 12);
        const RunResult r = sys.run(traces);
        for (const ObserverResult &o : r.observers) {
            std::printf("%-8zu  %-8s  %9.1f%%  %9.1f%%\n", depth,
                        o.name.c_str(), o.stats.accuracyPct(),
                        o.stats.coveragePct());
        }
    }
    std::printf("\nA depth-1 predictor cannot separate the three "
                "alternating readers;\ndepth >= 4 sees a full level "
                "cycle and locks on (cf. paper Section 7.2).\n");
    return 0;
}
