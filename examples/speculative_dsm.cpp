/**
 * @file
 * Speculative DSM walk-through: assemble a DsmSystem by hand, run a
 * producer/consumer workload under the three speculation modes, and
 * dump the full speculation accounting (what Table 5 of the paper
 * summarizes) -- SWI invalidations, premature detections, pushed
 * copies, verified uses and misses.
 */

#include <cstdio>

#include "dsm/system.hh"
#include "workload/layout.hh"

using namespace mspdsm;

namespace
{

/**
 * A little message-buffer workload: each producer fills its buffer
 * blocks once per round, two consumers read them, round after round
 * -- the pattern the paper's Section 4.1 motivates with parallel
 * database message buffers.
 */
std::vector<Trace>
makeMessageBuffers(const ProtoConfig &proto, unsigned rounds)
{
    const unsigned n = proto.numNodes;
    const unsigned blocks = 12;
    Layout layout(proto);
    std::vector<Region> buf(n);
    for (unsigned q = 0; q < n; ++q)
        buf[q] = layout.allocAt(NodeId(q), blocks);

    std::vector<TraceBuilder> tb(n);
    for (unsigned r = 0; r < rounds; ++r) {
        for (unsigned q = 0; q < n; ++q)
            tb[q].barrier();
        for (unsigned q = 0; q < n; ++q) {
            for (unsigned i = 0; i < blocks; ++i) {
                tb[q].write(buf[q].addr(i));
                tb[q].compute(10);
            }
        }
        for (unsigned q = 0; q < n; ++q)
            tb[q].barrier();
        for (unsigned rank = 0; rank < 2; ++rank) {
            for (unsigned q = 0; q < n; ++q) {
                const unsigned prod = (q + n - rank - 1) % n;
                for (unsigned i = 0; i < blocks; ++i) {
                    tb[q].read(buf[prod].addr(i));
                    tb[q].compute(8);
                }
                tb[q].compute(600);
            }
        }
    }
    std::vector<Trace> traces;
    for (unsigned q = 0; q < n; ++q)
        traces.push_back(tb[q].take());
    return traces;
}

} // namespace

int
main()
{
    Tick base_ticks = 0;
    for (SpecMode mode : {SpecMode::None, SpecMode::FirstRead,
                          SpecMode::SwiFirstRead}) {
        DsmConfig cfg;
        cfg.pred = PredKind::Vmsp;
        cfg.historyDepth = 1;
        cfg.spec = mode;
        cfg.proto.netJitter = 24;

        DsmSystem sys(cfg);
        const auto traces = makeMessageBuffers(cfg.proto, 30);
        const RunResult r = sys.run(traces);
        if (mode == SpecMode::None)
            base_ticks = r.execTicks;

        std::printf("%s\n", specModeName(mode));
        std::printf("  execution time      %10llu cycles (%5.1f%% of "
                    "base)\n",
                    static_cast<unsigned long long>(r.execTicks),
                    100.0 * static_cast<double>(r.execTicks) /
                        static_cast<double>(base_ticks));
        std::printf("  remote wait / proc  %10.0f cycles\n",
                    r.avgRequestWait);
        std::printf("  demand reads        %10llu   writes %llu\n",
                    static_cast<unsigned long long>(r.reads),
                    static_cast<unsigned long long>(r.writes));
        std::printf("  SWI: sent %llu, premature %llu, suppressed "
                    "%llu\n",
                    static_cast<unsigned long long>(r.swiSent),
                    static_cast<unsigned long long>(r.swiPremature),
                    static_cast<unsigned long long>(r.swiSuppressed));
        std::printf("  pushes: FR %llu (miss %llu), SWI %llu (miss "
                    "%llu), dropped %llu\n",
                    static_cast<unsigned long long>(r.specSentFr),
                    static_cast<unsigned long long>(r.specMissFr),
                    static_cast<unsigned long long>(r.specSentSwi),
                    static_cast<unsigned long long>(r.specMissSwi),
                    static_cast<unsigned long long>(r.specDropped));
        std::printf("  reads served by speculation: FR %llu, SWI "
                    "%llu\n\n",
                    static_cast<unsigned long long>(r.specServedFr),
                    static_cast<unsigned long long>(r.specServedSwi));
    }
    return 0;
}
