/**
 * @file
 * Quickstart: simulate one application on the speculative coherent
 * DSM and print the headline numbers.
 *
 * Build:  cmake -B build -G Ninja && cmake --build build
 * Run:    ./build/examples/quickstart [app]
 */

#include <cstdio>
#include <string>

#include "harness/experiment.hh"

using namespace mspdsm;

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "em3d";

    ExperimentConfig ec;
    ec.scale = 0.5; // small run for a quick tour

    // 1. Measure predictor accuracy on a non-speculative run: the
    //    three predictors passively observe the same execution.
    RunResult acc = runAccuracy(app, /*depth=*/1, ec);
    std::printf("== %s: predictor accuracy (history depth 1) ==\n",
                app.c_str());
    for (const ObserverResult &o : acc.observers) {
        std::printf("  %-6s  accuracy %5.1f%%  coverage %5.1f%%  "
                    "%.1f entries/block\n",
                    o.name.c_str(), o.stats.accuracyPct(),
                    o.stats.coveragePct(), o.storage.avgPte);
    }

    // 2. Run the same workload under the three DSM configurations of
    //    the paper's Section 7.4 and compare execution times.
    std::printf("\n== %s: speculative coherent DSM ==\n", app.c_str());
    const RunResult base = runSpec(app, SpecMode::None, ec);
    for (SpecMode mode : {SpecMode::None, SpecMode::FirstRead,
                          SpecMode::SwiFirstRead}) {
        const RunResult r = runSpec(app, mode, ec);
        const double norm = 100.0 * static_cast<double>(r.execTicks) /
                            static_cast<double>(base.execTicks);
        std::printf("  %-8s  exec %5.1f%%  remote-wait/proc %8.0f "
                    "cycles  spec reads FR %llu + SWI %llu\n",
                    specModeName(mode), norm, r.avgRequestWait,
                    static_cast<unsigned long long>(r.specServedFr),
                    static_cast<unsigned long long>(r.specServedSwi));
    }
    std::printf("\nDone. See bench/ for the paper's full tables.\n");
    return 0;
}
