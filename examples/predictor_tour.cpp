/**
 * @file
 * Predictor tour: drive Cosmos, MSP and VMSP by hand on the paper's
 * running example (Figures 2-4) -- a producer/consumer pattern where
 * P3 upgrades block 0x100 and P1, P2 then read it -- and show what
 * each predictor learns, predicts, and stores.
 *
 * This example uses the predictor API directly, without the
 * simulator: the same interface a DSM home node would drive.
 */

#include <cstdio>

#include "pred/seq_predictor.hh"
#include "pred/vmsp.hh"

using namespace mspdsm;

namespace
{

/** Feed one sharing round: Upgrade by P3, reads by P1 and P2. */
void
feedRound(PredictorBase &p, BlockId blk, bool swap_readers)
{
    p.observe(blk, PredMsg{SymKind::Upgrade, 3});
    // The protocol invalidates the two readers; their acks arrive
    // back (only Cosmos listens to these).
    p.observe(blk, PredMsg{SymKind::InvAck, 1});
    p.observe(blk, PredMsg{SymKind::InvAck, 2});
    const NodeId r1 = swap_readers ? 2 : 1;
    const NodeId r2 = swap_readers ? 1 : 2;
    p.observe(blk, PredMsg{SymKind::Read, r1});
    p.observe(blk, PredMsg{SymKind::Read, r2});
}

void
report(const PredictorBase &p)
{
    const PredStats &s = p.stats();
    const StorageReport st = p.storage();
    std::printf("  %-6s (d=%zu): %4llu observed, accuracy %5.1f%%, "
                "coverage %5.1f%%, %.1f entries/block, "
                "%.1f bytes/block\n",
                p.name(), p.depth(),
                static_cast<unsigned long long>(s.observed.value()),
                s.accuracyPct(), s.coveragePct(), st.avgPte,
                st.avgBytesPerBlock);
}

} // namespace

int
main()
{
    constexpr BlockId blk = 0x100;
    constexpr unsigned procs = 16;

    std::printf("Stable producer/consumer rounds "
                "(paper Figures 2-4):\n");
    {
        Cosmos cosmos(1, procs);
        Msp msp(1, procs);
        Vmsp vmsp(1, procs);
        for (int round = 0; round < 50; ++round) {
            feedRound(cosmos, blk, false);
            feedRound(msp, blk, false);
            feedRound(vmsp, blk, false);
        }
        report(cosmos);
        report(msp);
        report(vmsp);
        if (auto pred = vmsp.predictedReaders(blk)) {
            std::printf("  VMSP's standing read prediction: %s\n",
                        pred->toString().c_str());
        }
    }

    std::printf("\nSame pattern, but the two reads race and swap "
                "order every other round\n(the re-ordering VMSP's "
                "vector encoding is immune to):\n");
    {
        Cosmos cosmos(1, procs);
        Msp msp(1, procs);
        Vmsp vmsp(1, procs);
        for (int round = 0; round < 50; ++round) {
            feedRound(cosmos, blk, round % 2 == 1);
            feedRound(msp, blk, round % 2 == 1);
            feedRound(vmsp, blk, round % 2 == 1);
        }
        report(cosmos);
        report(msp);
        report(vmsp);
    }

    std::printf("\nMigratory sharing (read+upgrade hand-offs "
                "P0 -> P1 -> P2 -> P0 ...):\n");
    {
        Cosmos cosmos(1, procs);
        Msp msp(1, procs);
        Vmsp vmsp(1, procs);
        for (int round = 0; round < 60; ++round) {
            const NodeId q = NodeId(round % 3);
            for (PredictorBase *p :
                 {static_cast<PredictorBase *>(&cosmos),
                  static_cast<PredictorBase *>(&msp),
                  static_cast<PredictorBase *>(&vmsp)}) {
                p->observe(blk, PredMsg{SymKind::Read, q});
                p->observe(blk, PredMsg{SymKind::Upgrade, q});
                // the previous owner's writeback trails the read
                p->observe(blk,
                           PredMsg{SymKind::WriteBack,
                                   NodeId((round + 2) % 3)});
            }
        }
        report(cosmos);
        report(msp);
        report(vmsp);
    }
    return 0;
}
