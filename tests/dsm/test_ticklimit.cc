/** @file Regression tests for the deadlock-guard semantics: hitting
 * DsmConfig::tickLimit must be reported distinctly from a clean drain
 * in RunResult instead of aborting the process. */

#include <gtest/gtest.h>

#include "testutil.hh"

using namespace mspdsm;
using namespace mspdsm::test;

namespace
{

/** A trace that costs well over @p limit ticks to execute. */
Trace
longTrace(Tick limit)
{
    Trace t;
    for (Tick spent = 0; spent <= limit; spent += 100)
        t.push_back(TraceOp::compute(100));
    return t;
}

} // namespace

TEST(TickLimit, CleanDrainReportsCompleted)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    std::vector<Trace> ts(4, Trace{TraceOp::compute(10)});
    const RunResult r = sys.run(ts);
    EXPECT_EQ(r.status, RunStatus::Completed);
    EXPECT_TRUE(r.completed());
}

TEST(TickLimit, GuardTripReportsTickLimit)
{
    DsmConfig cfg = smallConfig();
    cfg.tickLimit = 500;
    DsmSystem sys(cfg);
    std::vector<Trace> ts(4, longTrace(cfg.tickLimit));
    const RunResult r = sys.run(ts);
    EXPECT_EQ(r.status, RunStatus::TickLimit);
    EXPECT_FALSE(r.completed());
    // The partial snapshot must not claim time beyond the guard.
    EXPECT_LE(r.execTicks, cfg.tickLimit);
    // Unexecuted work is still pending, resumable by a later run.
    EXPECT_GT(sys.eventQueue().pending(), 0u);
}

TEST(TickLimit, GuardedRunIsResumable)
{
    // The guard must leave the queue consistent: a second run with a
    // higher limit finishes the same workload.
    DsmConfig cfg = smallConfig();
    cfg.tickLimit = 500;
    DsmSystem sysGuarded(cfg);
    std::vector<Trace> ts(4, longTrace(cfg.tickLimit));
    ASSERT_EQ(sysGuarded.run(ts).status, RunStatus::TickLimit);
    EXPECT_TRUE(sysGuarded.eventQueue().run());
    EXPECT_GT(sysGuarded.eventQueue().curTick(), Tick{500});
}

TEST(TickLimit, ResumedRunRereadsTheCompiledArena)
{
    // Regression: run(traces) used to compile into a call-local
    // CompiledWorkload, so a guard trip left the resumable step
    // events holding spans into a freed arena. An all-compute trace
    // hides that (it fuses to one op, already consumed when the guard
    // trips); memory ops break fusion, so this trace still has
    // unexecuted compiled ops at the trip and the resumed steps must
    // re-read the arena -- which now lives on the system.
    DsmConfig cfg = smallConfig();
    cfg.tickLimit = 500;
    DsmSystem sys(cfg);
    std::vector<Trace> ts(4);
    for (unsigned i = 0; i < 64; ++i) {
        ts[0].push_back(TraceOp::compute(50));
        ts[0].push_back(TraceOp::read(Addr{i} *
                                      cfg.proto.blockSize));
    }
    ASSERT_EQ(sys.run(ts).status, RunStatus::TickLimit);
    EXPECT_TRUE(sys.eventQueue().run());
    EXPECT_GT(sys.eventQueue().curTick(), Tick{500});
}

TEST(TickLimit, FusedRunsHonourTheGuard)
{
    // Regression: the processor's fused fast path executes ahead of
    // the clock, and against an otherwise empty queue its horizon
    // guard is vacuous -- the only remaining backstop is the run
    // limit itself. The last processor to start (everyone else has
    // an empty trace) must still trip the guard, not fuse straight
    // through it and report Completed.
    DsmConfig cfg = smallConfig();
    cfg.tickLimit = 500;
    DsmSystem sys(cfg);
    std::vector<Trace> ts(4);
    ts[3] = longTrace(cfg.tickLimit);
    const RunResult r = sys.run(ts);
    EXPECT_EQ(r.status, RunStatus::TickLimit);
    EXPECT_LE(r.execTicks, cfg.tickLimit);
}

TEST(TickLimit, EventsExactlyAtLimitExecute)
{
    // EventQueue::run(limit) is inclusive: an event at the limit tick
    // runs; only strictly later events trip the guard.
    EventQueue eq;
    bool at = false, past = false;
    eq.schedule(50, [&] { at = true; });
    eq.schedule(51, [&] { past = true; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_TRUE(at);
    EXPECT_FALSE(past);
    EXPECT_EQ(eq.pending(), 1u);
}
