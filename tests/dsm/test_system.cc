/** @file DsmSystem-level tests: configuration validation, stats
 * aggregation identities, and cross-run accounting invariants. */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "testutil.hh"

using namespace mspdsm;
using namespace mspdsm::test;

namespace
{

/** Small experiment config (seed 42, 16 procs -- the defaults). */
ExperimentConfig
small(double scale, unsigned iters)
{
    ExperimentConfig ec;
    ec.scale = scale;
    ec.iterations = iters;
    return ec;
}

} // namespace

TEST(System, RejectsSpeculationWithoutVmsp)
{
    DsmConfig cfg = smallConfig();
    cfg.spec = SpecMode::FirstRead;
    cfg.pred = PredKind::Msp;
    EXPECT_DEATH(DsmSystem sys(cfg), "VMSP");
}

TEST(System, RejectsWrongTraceCount)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    std::vector<Trace> three(3);
    EXPECT_DEATH(sys.run(three), "expected 4 traces");
}

TEST(System, RejectsNoneObserver)
{
    DsmConfig cfg = smallConfig();
    cfg.observers = {{PredKind::None, 1}};
    EXPECT_DEATH(DsmSystem sys(cfg), "observer");
}

TEST(System, EmptyTracesCompleteImmediately)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    const RunResult r = sys.run(idleTraces(4));
    EXPECT_EQ(r.reads, 0u);
    EXPECT_EQ(r.writes, 0u);
    EXPECT_EQ(r.messages, 0u);
}

TEST(System, ObserverResultsFollowConfigOrder)
{
    DsmConfig cfg = smallConfig();
    cfg.observers = {{PredKind::Vmsp, 2},
                     {PredKind::Cosmos, 1},
                     {PredKind::Msp, 4}};
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    const RunResult r =
        sys.run(soloTrace(4, 1, Trace{TraceOp::read(a)}));
    ASSERT_EQ(r.observers.size(), 3u);
    EXPECT_EQ(r.observers[0].name, "VMSP");
    EXPECT_EQ(r.observers[0].depth, 2u);
    EXPECT_EQ(r.observers[1].name, "Cosmos");
    EXPECT_EQ(r.observers[2].name, "MSP");
    EXPECT_EQ(r.observers[2].depth, 4u);
}

TEST(System, PredictedNeverExceedsObserved)
{
    const RunResult r = runAccuracy("em3d", 1, small(0.25, 3));
    for (const ObserverResult &o : r.observers) {
        EXPECT_LE(o.stats.predicted.value(), o.stats.observed.value());
        EXPECT_LE(o.stats.correct.value(), o.stats.predicted.value());
    }
}

TEST(System, MessageCountsAreConsistent)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    std::vector<Trace> ts(4);
    ts[1] = {TraceOp::read(a), TraceOp::write(a)};
    ts[2] = {TraceOp::barrier()};
    ts[1].push_back(TraceOp::barrier());
    ts[0] = {TraceOp::barrier()};
    ts[3] = {TraceOp::barrier()};
    const RunResult r = sys.run(ts);
    // GetS + DataShared + Upgrade + UpgradeAck = 4 messages.
    EXPECT_EQ(r.messages, 4u);
}

TEST(System, SpecAccountingIdentities)
{
    // For every app and mode: served <= sent, miss <= sent, and
    // (served + missed + dropped + still-unverified) accounts for
    // every pushed copy -- we check the inequality direction, the
    // exact partition being unobservable after teardown.
    for (const char *app : {"em3d", "tomcatv", "unstructured"}) {
        const RunResult r =
            runSpec(app, SpecMode::SwiFirstRead, small(0.25, 4));
        EXPECT_LE(r.specServedFr + r.specMissFr,
                  r.specSentFr + r.specDropped)
            << app;
        EXPECT_LE(r.specServedSwi + r.specMissSwi,
                  r.specSentSwi + r.specDropped)
            << app;
        EXPECT_LE(r.swiPremature + r.swiSuppressed,
                  r.swiSent + r.swiSuppressed)
            << app;
    }
}

TEST(System, BaseRunsHaveNoSpeculationSideEffects)
{
    for (const AppInfo &info : appSuite()) {
        const RunResult r =
            runSpec(info.name, SpecMode::None, small(0.25, 2));
        EXPECT_EQ(r.specSentFr + r.specSentSwi, 0u) << info.name;
        EXPECT_EQ(r.swiSent, 0u) << info.name;
        EXPECT_EQ(r.specDropped, 0u) << info.name;
    }
}

TEST(System, RequestWaitBoundedByMemWait)
{
    const RunResult r =
        runSpec("moldyn", SpecMode::None, small(0.25, 3));
    EXPECT_LE(r.avgRequestWait, r.avgMemWait);
    EXPECT_LE(r.avgMemWait, static_cast<double>(r.execTicks));
}

TEST(System, SixteenNodeDefaultMatchesPaper)
{
    DsmConfig cfg;
    EXPECT_EQ(cfg.proto.numNodes, 16u);
    EXPECT_EQ(cfg.proto.blockSize, 32u);
    DsmSystem sys(cfg);
    const RunResult r = sys.run(std::vector<Trace>(16));
    EXPECT_EQ(r.execTicks, 0u);
}

TEST(System, ConfigurableNodeCounts)
{
    for (unsigned n : {2u, 5u, 32u}) {
        DsmConfig cfg = smallConfig(n);
        DsmSystem sys(cfg);
        std::vector<Trace> ts(n);
        ts[n - 1] = {TraceOp::read(blockOn(cfg.proto, 0))};
        const RunResult r = sys.run(ts);
        EXPECT_EQ(r.reads, 1u);
    }
}
