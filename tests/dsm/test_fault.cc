/** @file Fault injection and recovery: determinism of faulted runs,
 * inertness of the fault layer when unconfigured, recovery-phase
 * bookkeeping, warm-restart checkpointing, and the bounded-retry
 * exhaustion path.
 */

#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.hh"
#include "harness/sweep.hh"

using namespace mspdsm;

namespace
{

ExperimentConfig
tiny()
{
    ExperimentConfig ec;
    ec.scale = 0.25;
    ec.iterations = 2;
    return ec;
}

/** tiny() plus the reference fault plan used throughout this file:
 * kill node 3 mid-run, restart it 30k ticks later. */
ExperimentConfig
faulted()
{
    ExperimentConfig ec = tiny();
    ec.failNode = 3;
    ec.failTick = 40000;
    ec.recoverTick = 70000;
    return ec;
}

/** Every externally observable number of a run, fault axis included. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.execTicks, b.execTicks);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.specServedSwi, b.specServedSwi);
    EXPECT_EQ(a.swiSent, b.swiSent);
    EXPECT_EQ(a.queueingCycles, b.queueingCycles);
    EXPECT_EQ(a.linkQueueingCycles, b.linkQueueingCycles);
    EXPECT_EQ(a.fault.killTick, b.fault.killTick);
    EXPECT_EQ(a.fault.restartTick, b.fault.restartTick);
    EXPECT_EQ(a.fault.recoveredTick, b.fault.recoveredTick);
    EXPECT_EQ(a.fault.opsAtKill, b.fault.opsAtKill);
    EXPECT_EQ(a.fault.opsAtRestart, b.fault.opsAtRestart);
    EXPECT_EQ(a.fault.opsAtEnd, b.fault.opsAtEnd);
    EXPECT_EQ(a.fault.staleDropped, b.fault.staleDropped);
    EXPECT_EQ(a.fault.deadDropped, b.fault.deadDropped);
    EXPECT_EQ(a.fault.nacksSent, b.fault.nacksSent);
    EXPECT_EQ(a.fault.rehomeSyncs, b.fault.rehomeSyncs);
    EXPECT_EQ(a.fault.ckptSnapshots, b.fault.ckptSnapshots);
    EXPECT_EQ(a.fault.ckptMessages, b.fault.ckptMessages);
    EXPECT_EQ(a.fault.retries, b.fault.retries);
    EXPECT_EQ(a.fault.nacksSeen, b.fault.nacksSeen);
    EXPECT_EQ(a.fault.timeouts, b.fault.timeouts);
    EXPECT_EQ(a.fault.staleFills, b.fault.staleFills);
    EXPECT_EQ(a.fault.dirAborts, b.fault.dirAborts);
    EXPECT_EQ(a.fault.shardDeltas, b.fault.shardDeltas);
    EXPECT_EQ(a.fault.shardSyncs, b.fault.shardSyncs);
    EXPECT_EQ(a.fault.failbacks, b.fault.failbacks);
    EXPECT_EQ(a.fault.misroutedDropped, b.fault.misroutedDropped);
    EXPECT_EQ(a.fault.linkDrops, b.fault.linkDrops);
    EXPECT_EQ(a.fault.retransmits, b.fault.retransmits);
}

} // namespace

TEST(Fault, UnconfiguredRunCarriesNoFaultState)
{
    // Inertness: without a plan the fault axis of the result is
    // all-zero and the run itself matches the pinned golden numbers
    // (the same constants tests/integration/test_golden.cc pins, so
    // the fault layer provably did not perturb the machine).
    const RunResult r = runSpec("em3d", SpecMode::SwiFirstRead, tiny());
    EXPECT_EQ(r.status, RunStatus::Completed);
    EXPECT_EQ(r.execTicks, 120022u);
    EXPECT_EQ(r.messages, 1984u);
    EXPECT_FALSE(r.fault.faulted);
    EXPECT_EQ(r.fault.killTick, 0u);
    EXPECT_EQ(r.fault.retries, 0u);
    EXPECT_EQ(r.fault.nacksSeen, 0u);
    EXPECT_EQ(r.fault.timeouts, 0u);
    EXPECT_EQ(r.fault.staleFills, 0u);
    EXPECT_EQ(r.fault.dirAborts, 0u);
    EXPECT_EQ(r.fault.opsAtEnd, 0u);
    EXPECT_EQ(r.fault.shardDeltas, 0u);
    EXPECT_EQ(r.fault.shardSyncs, 0u);
    EXPECT_EQ(r.fault.failbacks, 0u);
    EXPECT_EQ(r.fault.misroutedDropped, 0u);
    EXPECT_EQ(r.fault.linkDrops, 0u);
    EXPECT_EQ(r.fault.retransmits, 0u);
}

TEST(Fault, KillAndRecoveryBookkeeping)
{
    const RunResult r =
        runSpec("em3d", SpecMode::SwiFirstRead, faulted());
    EXPECT_EQ(r.status, RunStatus::Completed);
    EXPECT_TRUE(r.fault.faulted);
    EXPECT_EQ(r.fault.killTick, 40000u);
    EXPECT_EQ(r.fault.restartTick, 70000u);
    // The victim took its first post-restart step no earlier than the
    // restart, and the machine kept executing afterwards.
    EXPECT_GE(r.fault.recoveredTick, r.fault.restartTick);
    EXPECT_GE(r.fault.opsAtRestart, r.fault.opsAtKill);
    EXPECT_GT(r.fault.opsAtEnd, r.fault.opsAtRestart);
    // The outage costs time against the fault-free golden run.
    EXPECT_GT(r.execTicks, 120022u);
    // em3d shares every block across the machine: survivors always
    // hold lines homed at the victim, so the backup's reconstruction
    // sweep always has contributors.
    EXPECT_GT(r.fault.rehomeSyncs, 0u);
}

TEST(Fault, FaultedRunsAreDeterministic)
{
    const RunResult a =
        runSpec("em3d", SpecMode::SwiFirstRead, faulted());
    const RunResult b =
        runSpec("em3d", SpecMode::SwiFirstRead, faulted());
    expectIdentical(a, b);
}

TEST(Fault, FaultSweepIsJobCountInvariant)
{
    // The same four faulted configurations, serial vs eight workers:
    // records come back in submission order with identical numbers.
    auto build = [](unsigned jobs) {
        SweepOptions so;
        so.jobs = jobs;
        SweepRunner sweep(so);
        for (const bool warm : {false, true}) {
            ExperimentConfig ec = faulted();
            ec.warmRestart = warm;
            ec.ckptInterval = warm ? 10000 : 0;
            sweep.addSpec("em3d", SpecMode::None, ec);
            sweep.addSpec("em3d", SpecMode::SwiFirstRead, ec);
        }
        return sweep.results();
    };
    const std::vector<SweepRecord> serial = build(1);
    const std::vector<SweepRecord> parallel = build(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].label, parallel[i].label);
        expectIdentical(serial[i].result, parallel[i].result);
    }
}

TEST(Fault, WarmRestartReplicatesCheckpoints)
{
    ExperimentConfig ec = faulted();
    ec.warmRestart = true;
    ec.ckptInterval = 10000;
    const RunResult warm =
        runSpec("em3d", SpecMode::SwiFirstRead, ec);
    EXPECT_EQ(warm.status, RunStatus::Completed);
    // Checkpoints fire at 10k/20k/30k while the kill is pending (the
    // 40k snapshot loses the same-tick FIFO race to the kill event,
    // which was scheduled at construction); each ships at least one
    // CkptData message to the backup.
    EXPECT_GE(warm.fault.ckptSnapshots, 3u);
    EXPECT_GE(warm.fault.ckptMessages, warm.fault.ckptSnapshots);

    const RunResult cold =
        runSpec("em3d", SpecMode::SwiFirstRead, faulted());
    EXPECT_EQ(cold.fault.ckptSnapshots, 0u);
    EXPECT_EQ(cold.fault.ckptMessages, 0u);
}

TEST(Fault, BaseDsmSurvivesTheFaultToo)
{
    // The fault layer is independent of speculation: a Base-DSM run
    // (no predictor at all) takes the same kill/restart plan.
    const RunResult r = runSpec("em3d", SpecMode::None, faulted());
    EXPECT_EQ(r.status, RunStatus::Completed);
    EXPECT_TRUE(r.fault.faulted);
    EXPECT_EQ(r.fault.killTick, 40000u);
    EXPECT_GT(r.fault.opsAtEnd, r.fault.opsAtRestart);
    EXPECT_EQ(r.fault.ckptSnapshots, 0u);
}

TEST(Fault, RetryKnobDefaultsAreBitIdentical)
{
    // Satellite: the bounded-retry FSM constants moved from
    // compile-time to DsmConfig. Passing the old constants explicitly
    // must be indistinguishable from not passing them at all.
    ExperimentConfig explicitKnobs = tiny();
    explicitKnobs.retryLimit = 16;
    explicitKnobs.staleTimeout = 20000;
    const RunResult a =
        runSpec("em3d", SpecMode::SwiFirstRead, tiny());
    const RunResult b =
        runSpec("em3d", SpecMode::SwiFirstRead, explicitKnobs);
    expectIdentical(a, b);
    EXPECT_EQ(b.execTicks, 120022u); // still the golden run
    EXPECT_EQ(b.messages, 1984u);
}

TEST(Fault, ShardReplicationAvoidsTheSurvivorSweep)
{
    // With --replicate-shards the backup installs the streamed mirror
    // at failover: replication traffic (batched ShardSync) replaces
    // reconstruction traffic (RehomeSync) entirely, and the cost
    // moves from the outage into normal operation.
    ExperimentConfig ec = faulted();
    ec.replicateShards = true;
    const RunResult r =
        runSpec("em3d", SpecMode::SwiFirstRead, ec);
    EXPECT_EQ(r.status, RunStatus::Completed);
    EXPECT_GT(r.fault.shardDeltas, 0u);
    EXPECT_GT(r.fault.shardSyncs, 0u);
    EXPECT_EQ(r.fault.rehomeSyncs, 0u);
    // Deltas batch 8-to-a-message, so syncs stay well below deltas.
    EXPECT_LT(r.fault.shardSyncs, r.fault.shardDeltas);

    const RunResult again =
        runSpec("em3d", SpecMode::SwiFirstRead, ec);
    expectIdentical(r, again);
}

TEST(Fault, ConcurrentFailuresCascadeThroughSuccession)
{
    // Two overlapping outages: node 4 is node 3's successor, so when
    // 4 dies while hosting 3's shard, both shards cascade to the next
    // live node. Each restart then fail-backs its own shard.
    ExperimentConfig ec = tiny();
    ec.extraFaults = {{40000, 3, FaultKind::Kill},
                      {42000, 4, FaultKind::Kill},
                      {70000, 3, FaultKind::Restart},
                      {72000, 4, FaultKind::Restart}};
    const RunResult r =
        runSpec("em3d", SpecMode::SwiFirstRead, ec);
    EXPECT_EQ(r.status, RunStatus::Completed);
    EXPECT_TRUE(r.fault.faulted);
    EXPECT_EQ(r.fault.killTick, 40000u);    // first kill
    EXPECT_EQ(r.fault.restartTick, 72000u); // last restart
    // recoveredTick is the max over both victims' first steps.
    EXPECT_GE(r.fault.recoveredTick, 72000u);
    EXPECT_EQ(r.fault.failbacks, 2u);
    EXPECT_GT(r.fault.opsAtEnd, r.fault.opsAtRestart);

    const RunResult again =
        runSpec("em3d", SpecMode::SwiFirstRead, ec);
    expectIdentical(r, again);
}

TEST(Fault, RestartInsideTheRehomeWindow)
{
    // Satellite edge case: the victim restarts while the backup's
    // reconstruction RehomeSync messages are still in flight. The
    // epoch bump plus the home screen (stale copies bound for the
    // interim host are Nacked or dropped) keep the run live and
    // deterministic.
    ExperimentConfig ec = tiny();
    ec.failNode = 3;
    ec.failTick = 40000;
    ec.recoverTick = 40100; // inside the sync/retry storm
    const RunResult r =
        runSpec("em3d", SpecMode::SwiFirstRead, ec);
    EXPECT_EQ(r.status, RunStatus::Completed);
    EXPECT_EQ(r.fault.failbacks, 1u);
    EXPECT_GT(r.fault.opsAtEnd, r.fault.opsAtKill);

    const RunResult again =
        runSpec("em3d", SpecMode::SwiFirstRead, ec);
    expectIdentical(r, again);
}

TEST(Fault, LossyLinksRetransmitDeterministically)
{
    // A loss-only plan (no kills): every third head crossing link 0
    // of the mesh drops and is retransmitted. The run completes, the
    // transport accounts one re-send per drop, and the whole thing is
    // bit-repeatable.
    ExperimentConfig ec = tiny();
    ec.topo.kind = TopoKind::Mesh2D;
    ec.linkLoss = {{0, maxTick, 0, 3}};
    const RunResult r =
        runSpec("em3d", SpecMode::SwiFirstRead, ec);
    EXPECT_EQ(r.status, RunStatus::Completed);
    EXPECT_TRUE(r.fault.faulted);
    EXPECT_GT(r.fault.linkDrops, 0u);
    EXPECT_EQ(r.fault.retransmits, r.fault.linkDrops);

    const RunResult again =
        runSpec("em3d", SpecMode::SwiFirstRead, ec);
    expectIdentical(r, again);
}

TEST(Fault, ChaosRunIsJobCountInvariant)
{
    // The acceptance scenario: two concurrent failures plus a lossy
    // link on a link topology, swept serially and with eight workers.
    auto build = [](unsigned jobs) {
        SweepOptions so;
        so.jobs = jobs;
        SweepRunner sweep(so);
        for (const bool repl : {false, true}) {
            ExperimentConfig ec = tiny();
            ec.topo.kind = TopoKind::Mesh2D;
            ec.extraFaults = {{40000, 3, FaultKind::Kill},
                              {42000, 4, FaultKind::Kill},
                              {70000, 3, FaultKind::Restart},
                              {72000, 4, FaultKind::Restart}};
            ec.linkLoss = {{0, maxTick, 0, 5}};
            ec.replicateShards = repl;
            sweep.addSpec("em3d", SpecMode::None, ec);
            sweep.addSpec("em3d", SpecMode::SwiFirstRead, ec);
        }
        return sweep.results();
    };
    const std::vector<SweepRecord> serial = build(1);
    const std::vector<SweepRecord> parallel = build(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].label, parallel[i].label);
        expectIdentical(serial[i].result, parallel[i].result);
    }
}

using FaultDeathTest = ::testing::Test;

TEST(FaultDeathTest, RetryExhaustionIsFatal)
{
    // backup == victim leaves the re-homed shard just as dead as the
    // node: every retry bounces until the cache controller's bounded
    // FSM gives up with a structured fatal (exit code 1).
    ExperimentConfig ec = tiny();
    ec.failNode = 3;
    ec.failTick = 5000; // mid-flight: survivors still miss on node 3
    ec.backupNode = 3;  // deliberately pathological: no live home
    EXPECT_EXIT(runSpec("em3d", SpecMode::None, ec),
                ::testing::ExitedWithCode(1), "exhausted");
}

TEST(FaultDeathTest, RetryExhaustionDuringOverlappingOutage)
{
    // Satellite edge case: the explicit backup itself dies during the
    // first outage. The explicit --backup-node is honored verbatim
    // (succession only applies to the *default* backup choice), so
    // shard 4 -- and shard 3 hosted on it -- have no live home and
    // the bounded retry FSM must still fail structurally, now with a
    // configurable --retry-limit to reach the exit quickly.
    ExperimentConfig ec = tiny();
    ec.extraFaults = {{5000, 3, FaultKind::Kill},
                      {5200, 4, FaultKind::Kill}};
    ec.backupNode = 4;
    ec.retryLimit = 6;
    EXPECT_EXIT(runSpec("em3d", SpecMode::None, ec),
                ::testing::ExitedWithCode(1), "exhausted");
}

TEST(FaultDeathTest, RetransmitBudgetExhaustionIsFatal)
{
    // everyNth == 1 drops *every* crossing of link 0: the first
    // message routed over it burns its whole transport budget and
    // the run dies with the structured transport fatal.
    ExperimentConfig ec = tiny();
    ec.topo.kind = TopoKind::Mesh2D;
    ec.linkLoss = {{0, maxTick, 0, 1}};
    EXPECT_EXIT(runSpec("em3d", SpecMode::None, ec),
                ::testing::ExitedWithCode(1), "retransmit budget");
}
