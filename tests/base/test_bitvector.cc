/** @file Unit tests for NodeSet. */

#include <gtest/gtest.h>

#include "base/bitvector.hh"

using namespace mspdsm;

TEST(NodeSet, StartsEmpty)
{
    NodeSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0);
    EXPECT_EQ(s.raw(), 0u);
}

TEST(NodeSet, AddAndContains)
{
    NodeSet s;
    s.add(3);
    s.add(7);
    EXPECT_TRUE(s.contains(3));
    EXPECT_TRUE(s.contains(7));
    EXPECT_FALSE(s.contains(4));
    EXPECT_EQ(s.count(), 2);
}

TEST(NodeSet, AddIsIdempotent)
{
    NodeSet s;
    s.add(5);
    s.add(5);
    EXPECT_EQ(s.count(), 1);
}

TEST(NodeSet, RemoveMember)
{
    NodeSet s;
    s.add(2);
    s.add(9);
    s.remove(2);
    EXPECT_FALSE(s.contains(2));
    EXPECT_TRUE(s.contains(9));
    EXPECT_EQ(s.count(), 1);
}

TEST(NodeSet, RemoveAbsentIsNoop)
{
    NodeSet s;
    s.add(1);
    s.remove(14);
    EXPECT_EQ(s.count(), 1);
}

TEST(NodeSet, OfBuildsSingleton)
{
    NodeSet s = NodeSet::of(11);
    EXPECT_EQ(s.count(), 1);
    EXPECT_TRUE(s.contains(11));
}

TEST(NodeSet, ClearEmpties)
{
    NodeSet s;
    s.add(0);
    s.add(63);
    s.clear();
    EXPECT_TRUE(s.empty());
}

TEST(NodeSet, UnionCombines)
{
    NodeSet a = NodeSet::of(1);
    NodeSet b = NodeSet::of(2);
    NodeSet u = a | b;
    EXPECT_TRUE(u.contains(1));
    EXPECT_TRUE(u.contains(2));
    EXPECT_EQ(u.count(), 2);
}

TEST(NodeSet, MinusSubtracts)
{
    NodeSet a;
    a.add(1);
    a.add(2);
    a.add(3);
    NodeSet d = a.minus(NodeSet::of(2));
    EXPECT_TRUE(d.contains(1));
    EXPECT_FALSE(d.contains(2));
    EXPECT_TRUE(d.contains(3));
}

TEST(NodeSet, IntersectionKeepsCommon)
{
    NodeSet a;
    a.add(1);
    a.add(2);
    NodeSet b;
    b.add(2);
    b.add(3);
    NodeSet i = a & b;
    EXPECT_EQ(i.count(), 1);
    EXPECT_TRUE(i.contains(2));
}

TEST(NodeSet, EqualityIsStructural)
{
    NodeSet a;
    a.add(4);
    a.add(8);
    NodeSet b;
    b.add(8);
    b.add(4);
    EXPECT_EQ(a, b);
    b.add(9);
    EXPECT_NE(a, b);
}

TEST(NodeSet, ToVectorAscending)
{
    NodeSet s;
    s.add(9);
    s.add(0);
    s.add(33);
    const std::vector<NodeId> v = s.toVector();
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], 0);
    EXPECT_EQ(v[1], 9);
    EXPECT_EQ(v[2], 33);
}

TEST(NodeSet, ToStringRendersMembers)
{
    NodeSet s;
    s.add(1);
    s.add(4);
    EXPECT_EQ(s.toString(), "{1,4}");
    EXPECT_EQ(NodeSet{}.toString(), "{}");
}

TEST(NodeSet, SupportsNode63)
{
    NodeSet s;
    s.add(63);
    EXPECT_TRUE(s.contains(63));
    EXPECT_EQ(s.count(), 1);
    EXPECT_EQ(s.raw(), std::uint64_t{1} << 63);
}

TEST(NodeSet, ContainsOutOfRangeIsFalse)
{
    NodeSet s;
    s.add(0);
    EXPECT_FALSE(s.contains(64));
    EXPECT_FALSE(s.contains(invalidNode));
}

// Property sweep: union/minus/intersection relations hold for a grid
// of sets.
class NodeSetAlgebra : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(NodeSetAlgebra, MinusThenUnionRestores)
{
    const std::uint64_t bits = GetParam();
    NodeSet a;
    for (NodeId i = 0; i < 16; ++i)
        if ((bits >> i) & 1)
            a.add(i);
    NodeSet b;
    for (NodeId i = 0; i < 16; ++i)
        if ((bits >> (i + 16)) & 1)
            b.add(i);

    // (a minus b) and (a and b) partition a.
    NodeSet diff = a.minus(b);
    NodeSet inter = a & b;
    EXPECT_EQ((diff | inter), a);
    EXPECT_TRUE((diff & inter).empty());
    // Count is additive over the partition.
    EXPECT_EQ(diff.count() + inter.count(), a.count());
}

INSTANTIATE_TEST_SUITE_P(Grid, NodeSetAlgebra,
                         ::testing::Values(0x00000000ull, 0x0000ffffull,
                                           0xffff0000ull, 0x5a5aa5a5ull,
                                           0x12348765ull, 0xffffffffull,
                                           0x00010001ull, 0x80008000ull));
