/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/random.hh"

using namespace mspdsm;

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformRespectsBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = r.uniform(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, UniformDegenerateRange)
{
    Rng r(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.uniform(5, 5), 5u);
}

TEST(Rng, UniformCoversRange)
{
    Rng r(99);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.uniform(0, 7));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRealMeanNearHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniformReal();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng r(23);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyPermutes)
{
    Rng r(29);
    std::vector<int> v(32);
    for (int i = 0; i < 32; ++i)
        v[i] = i;
    const std::vector<int> orig = v;
    r.shuffle(v);
    EXPECT_NE(v, orig); // astronomically unlikely to be identity
}

TEST(Rng, ShuffleEmptyAndSingleton)
{
    Rng r(31);
    std::vector<int> e;
    r.shuffle(e);
    EXPECT_TRUE(e.empty());
    std::vector<int> s{42};
    r.shuffle(s);
    EXPECT_EQ(s[0], 42);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(41);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng r(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 16; ++i)
        seen.insert(r.next());
    EXPECT_GT(seen.size(), 14u);
}

// Parameterized: every seed yields an unbiased-looking small range.
class RngBias : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngBias, SmallRangeIsRoughlyUniform)
{
    Rng r(GetParam());
    std::vector<int> bucket(5, 0);
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++bucket[r.uniform(0, 4)];
    for (int b = 0; b < 5; ++b)
        EXPECT_NEAR(bucket[b], n / 5, n / 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBias,
                         ::testing::Values(0ull, 1ull, 42ull,
                                           0xdeadbeefull,
                                           0xffffffffffffffffull));
