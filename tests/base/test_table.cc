/** @file Unit tests for the Table formatter. */

#include <gtest/gtest.h>

#include <sstream>

#include "base/table.hh"

using namespace mspdsm;

TEST(Table, HeaderAndRule)
{
    Table t({"app", "acc"});
    std::ostringstream oss;
    t.print(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("app"), std::string::npos);
    EXPECT_NE(s.find("acc"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RowsAppearInOrder)
{
    Table t({"a"});
    t.addRow({"first"});
    t.addRow({"second"});
    std::ostringstream oss;
    t.print(oss);
    const std::string s = oss.str();
    EXPECT_LT(s.find("first"), s.find("second"));
}

TEST(Table, ColumnsAlign)
{
    Table t({"name", "v"});
    t.addRow({"x", "1"});
    t.addRow({"longname", "100"});
    std::ostringstream oss;
    t.print(oss);
    std::string line;
    std::istringstream in(oss.str());
    std::vector<std::size_t> lens;
    while (std::getline(in, line))
        lens.push_back(line.size());
    // Header, rule and both rows all have the same rendered width.
    ASSERT_EQ(lens.size(), 4u);
    EXPECT_EQ(lens[0], lens[1]);
    EXPECT_EQ(lens[1], lens[2]);
    EXPECT_EQ(lens[2], lens[3]);
}

TEST(Table, FmtDouble)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Table, FmtInteger)
{
    EXPECT_EQ(Table::fmt(std::uint64_t{12345}), "12345");
}

TEST(Table, FmtPctBelowOne)
{
    EXPECT_EQ(Table::fmtPct(0.4), "<1");
    EXPECT_EQ(Table::fmtPct(0.0), "0");
    EXPECT_EQ(Table::fmtPct(1.4), "1");
    EXPECT_EQ(Table::fmtPct(97.6), "98");
}
