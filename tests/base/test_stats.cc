/** @file Unit tests for Counter / Average / pct helpers. */

#include <gtest/gtest.h>

#include "base/stats.hh"

using namespace mspdsm;

TEST(Counter, StartsAtZero)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, IncrementsByOneAndN)
{
    Counter c;
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ResetClears)
{
    Counter c;
    c.inc(9);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(Average, MeanOfSamples)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(Average, ResetClears)
{
    Average a;
    a.sample(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Pct, ZeroWholeIsZero)
{
    EXPECT_DOUBLE_EQ(pct(5, 0), 0.0);
}

TEST(Pct, ComputesPercentage)
{
    EXPECT_DOUBLE_EQ(pct(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(pct(0, 10), 0.0);
    EXPECT_DOUBLE_EQ(pct(10, 10), 100.0);
}
