/** @file Unit tests for Counter / Average / pct helpers. */

#include <gtest/gtest.h>

#include "base/stats.hh"

using namespace mspdsm;

TEST(Counter, StartsAtZero)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, IncrementsByOneAndN)
{
    Counter c;
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ResetClears)
{
    Counter c;
    c.inc(9);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(Average, MeanOfSamples)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(Average, ResetClears)
{
    Average a;
    a.sample(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Pct, ZeroWholeIsZero)
{
    EXPECT_DOUBLE_EQ(pct(5, 0), 0.0);
}

TEST(Pct, ComputesPercentage)
{
    EXPECT_DOUBLE_EQ(pct(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(pct(0, 10), 0.0);
    EXPECT_DOUBLE_EQ(pct(10, 10), 100.0);
}

TEST(Counter, DecUndoesCountedEvents)
{
    Counter c;
    c.inc(10);
    c.dec(3);
    EXPECT_EQ(c.value(), 7u);
    c.dec(7);
    EXPECT_EQ(c.value(), 0u);
}

#ifndef NDEBUG
TEST(CounterDeathTest, DecBeyondCountedAsserts)
{
    // Debug builds catch a dec() that exceeds what was counted;
    // release builds stay branch-free (the assert compiles out).
    Counter c;
    c.inc(2);
    EXPECT_DEATH(c.dec(3), "exceeds what was counted");
}
#endif

TEST(Histogram, StartsEmpty)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
}

TEST(Histogram, BucketBoundaries)
{
    // Bucket 0 holds exactly {0}; bucket k >= 1 holds [2^(k-1), 2^k).
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(7), 3u);
    EXPECT_EQ(Histogram::bucketOf(8), 4u);
    EXPECT_EQ(Histogram::bucketOf(~std::uint64_t{0}), 64u);

    EXPECT_EQ(Histogram::bucketLo(0), 0u);
    EXPECT_EQ(Histogram::bucketHi(0), 0u);
    EXPECT_EQ(Histogram::bucketLo(3), 4u);
    EXPECT_EQ(Histogram::bucketHi(3), 7u);
    EXPECT_EQ(Histogram::bucketLo(64), std::uint64_t{1} << 63);
    EXPECT_EQ(Histogram::bucketHi(64), ~std::uint64_t{0});

    Histogram h;
    h.sample(0);
    h.sample(1);
    h.sample(2);
    h.sample(3);
    h.sample(4);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, PercentileInterpolation)
{
    // All mass in bucket 3 ([4, 7]): percentiles interpolate linearly
    // across the bucket's value range.
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.sample(5);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 7.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 4.0 + 3.0 * 0.5);
    // Degenerate buckets pin the value exactly.
    Histogram z;
    z.sample(0);
    z.sample(0);
    EXPECT_DOUBLE_EQ(z.percentile(50.0), 0.0);
    Histogram one;
    one.sample(1);
    EXPECT_DOUBLE_EQ(one.percentile(99.0), 1.0);
    // Mass split across buckets: the covering bucket is found by
    // cumulative rank. 90 samples of 1, 10 of 1000 -> p50 in bucket 1,
    // p99 in bucket 10 ([512, 1023]).
    Histogram mix;
    for (int i = 0; i < 90; ++i)
        mix.sample(1);
    for (int i = 0; i < 10; ++i)
        mix.sample(1000);
    EXPECT_DOUBLE_EQ(mix.percentile(50.0), 1.0);
    EXPECT_GE(mix.percentile(99.0), 512.0);
    EXPECT_LE(mix.percentile(99.0), 1023.0);
    EXPECT_GT(mix.percentile(99.0), mix.percentile(50.0));
}

TEST(Histogram, MergeIsBucketwiseSum)
{
    // Per-directory histograms merge into one run-level distribution;
    // the fold is order-independent.
    Histogram a;
    Histogram b;
    a.sample(1);
    a.sample(100);
    b.sample(100);
    b.sample(4000);

    Histogram ab = a;
    ab.merge(b);
    Histogram ba = b;
    ba.merge(a);

    EXPECT_EQ(ab.count(), 4u);
    EXPECT_EQ(ab.sum(), a.sum() + b.sum());
    for (unsigned i = 0; i < Histogram::numBuckets; ++i)
        EXPECT_EQ(ab.bucket(i), ba.bucket(i));
    EXPECT_DOUBLE_EQ(ab.percentile(99.0), ba.percentile(99.0));
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.sample(42);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    for (unsigned i = 0; i < Histogram::numBuckets; ++i)
        EXPECT_EQ(h.bucket(i), 0u);
}
