/** @file Work-stealing thread pool: result delivery, exception
 * propagation, drain-on-shutdown, and submission ordering. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/thread_pool.hh"

using namespace mspdsm;

TEST(ThreadPool, DeliversEveryResult)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 100; ++i)
        futs.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, ZeroThreadsClampedToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 1; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 1);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ExceptionDoesNotKillWorker)
{
    // A throwing task must leave its worker alive for later tasks.
    ThreadPool pool(1);
    auto bad = pool.submit([]() -> int { throw std::logic_error("x"); });
    EXPECT_THROW(bad.get(), std::logic_error);
    EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    // Shutdown semantics: every submitted task runs before the
    // workers join, so futures obtained from submit() never dangle.
    std::atomic<int> done{0};
    std::vector<std::future<void>> futs;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i) {
            futs.push_back(pool.submit([&done] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++done;
            }));
        }
        // Destructor runs here with most tasks still queued.
    }
    EXPECT_EQ(done.load(), 64);
    for (auto &f : futs)
        EXPECT_NO_THROW(f.get());
}

TEST(ThreadPool, SingleWorkerRunsInSubmissionOrder)
{
    // One worker, one queue: FIFO execution order (the property that
    // makes a --jobs 1 sweep equivalent to the serial loop).
    ThreadPool pool(1);
    std::vector<int> order;
    std::mutex mtx;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 32; ++i) {
        futs.push_back(pool.submit([i, &order, &mtx] {
            std::lock_guard<std::mutex> lk(mtx);
            order.push_back(i);
        }));
    }
    for (auto &f : futs)
        f.get();
    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, StealsFromABlockedWorkersQueue)
{
    // Park one of the two workers on a gate; the round-robin
    // distribution still queues half the quick tasks behind the
    // parked worker, so they only complete if the free worker steals
    // them. Without stealing this times out.
    ThreadPool pool(2);
    std::promise<void> release;
    std::shared_future<void> gate(release.get_future());
    auto blocker = pool.submit([gate] { gate.wait(); });
    std::vector<std::future<int>> quick;
    for (int i = 0; i < 16; ++i)
        quick.push_back(pool.submit([i] { return i; }));
    for (int i = 0; i < 16; ++i) {
        ASSERT_EQ(quick[i].wait_for(std::chrono::seconds(30)),
                  std::future_status::ready);
        EXPECT_EQ(quick[i].get(), i);
    }
    release.set_value();
    blocker.get();
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlock)
{
    // A task submitting follow-up work to its own pool (recursive
    // fan-out) must complete.
    ThreadPool pool(2);
    auto outer = pool.submit([&pool] {
        auto inner = pool.submit([] { return 5; });
        return inner.get() + 1;
    });
    EXPECT_EQ(outer.get(), 6);
}
