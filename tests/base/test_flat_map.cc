/** @file Unit tests for the open-addressing FlatMap: insert/erase,
 * rehash growth, tombstone reuse, iteration, and collision handling
 * with HistoryKey keys. */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "base/flat_map.hh"
#include "pred/history.hh"

using namespace mspdsm;

TEST(FlatMap, StartsEmptyWithoutAllocation)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_EQ(m.size(), 0u);
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.capacity(), 0u);
    EXPECT_EQ(m.find(7), m.end());
    EXPECT_FALSE(m.contains(7));
    EXPECT_EQ(m.erase(7), 0u);
}

TEST(FlatMap, InsertFindErase)
{
    FlatMap<std::uint64_t, std::string> m;
    auto [it, fresh] = m.try_emplace(1, "one");
    EXPECT_TRUE(fresh);
    EXPECT_EQ(it->first, 1u);
    EXPECT_EQ(it->second, "one");

    auto [it2, fresh2] = m.try_emplace(1, "uno");
    EXPECT_FALSE(fresh2);
    EXPECT_EQ(it2->second, "one"); // try_emplace does not overwrite

    m[2] = "two";
    EXPECT_EQ(m.size(), 2u);
    EXPECT_EQ(m.find(2)->second, "two");

    EXPECT_EQ(m.erase(1), 1u);
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.find(1), m.end());
    EXPECT_EQ(m.find(2)->second, "two");
}

TEST(FlatMap, GrowsThroughManyInserts)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    constexpr std::uint64_t n = 10000;
    for (std::uint64_t i = 0; i < n; ++i)
        m[i * 977] = i;
    EXPECT_EQ(m.size(), n);
    // Load factor stays under 7/8 across every rehash.
    EXPECT_GT(m.capacity(), n * 8 / 7);
    for (std::uint64_t i = 0; i < n; ++i) {
        auto it = m.find(i * 977);
        ASSERT_NE(it, m.end()) << i;
        EXPECT_EQ(it->second, i);
    }
}

TEST(FlatMap, StridedKeysDoNotDegenerate)
{
    // Power-of-two strides are the adversarial case for a
    // power-of-two-masked table; the avalanche hash must spread them.
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t i = 0; i < 4096; ++i)
        m[i * 4096] = 1;
    EXPECT_EQ(m.size(), 4096u);
    for (std::uint64_t i = 0; i < 4096; ++i)
        EXPECT_TRUE(m.contains(i * 4096));
}

TEST(FlatMap, TombstonesAreReused)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t i = 0; i < 8; ++i)
        m[i] = 1;
    const std::size_t cap = m.capacity();
    // Churn far more erase/insert cycles than the capacity: without
    // tombstone reuse (or purging rehashes) the table would fill with
    // dead slots and probe chains would never terminate.
    for (int round = 0; round < 10000; ++round) {
        const std::uint64_t k = 100 + (round % 16);
        m[k] = round;
        EXPECT_EQ(m.erase(k), 1u);
    }
    EXPECT_EQ(m.size(), 8u);
    // Stable live population: capacity must not balloon.
    EXPECT_LE(m.capacity(), cap * 2);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_TRUE(m.contains(i));
}

TEST(FlatMap, EraseThenReinsertSameKey)
{
    FlatMap<std::uint64_t, int> m;
    m[5] = 1;
    m[5 + 64] = 2; // may or may not collide; exercise neighbours
    EXPECT_EQ(m.erase(5), 1u);
    m[5] = 3;
    EXPECT_EQ(m.find(5)->second, 3);
    EXPECT_EQ(m.find(5 + 64)->second, 2);
}

TEST(FlatMap, IterationVisitsEveryLiveEntryOnce)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t i = 0; i < 100; ++i)
        m[i] = i * 2;
    m.erase(4);
    m.erase(40);
    std::set<std::uint64_t> seen;
    for (const auto &[k, v] : m) {
        EXPECT_EQ(v, k * 2);
        EXPECT_TRUE(seen.insert(k).second) << "duplicate " << k;
    }
    EXPECT_EQ(seen.size(), 98u);
    EXPECT_FALSE(seen.count(4));
    EXPECT_FALSE(seen.count(40));
}

TEST(FlatMap, ClearKeepsAllocationDropsEntries)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t i = 0; i < 50; ++i)
        m[i] = 1;
    const std::size_t cap = m.capacity();
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.find(3), m.end());
    m[3] = 9;
    EXPECT_EQ(m.find(3)->second, 9);
}

TEST(FlatMap, MoveTransfersStorage)
{
    FlatMap<std::uint64_t, std::string> a;
    a[1] = "one";
    a[2] = "two";
    FlatMap<std::uint64_t, std::string> b(std::move(a));
    EXPECT_EQ(b.size(), 2u);
    EXPECT_EQ(b.find(1)->second, "one");
    EXPECT_EQ(a.size(), 0u);

    FlatMap<std::uint64_t, std::string> c;
    c[9] = "nine";
    c = std::move(b);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.find(9), c.end());
}

TEST(FlatMap, CopyIsDeep)
{
    FlatMap<std::uint64_t, int> a;
    a[1] = 10;
    FlatMap<std::uint64_t, int> b(a);
    b[1] = 20;
    b[2] = 30;
    EXPECT_EQ(a.find(1)->second, 10);
    EXPECT_EQ(a.find(2), a.end());
    EXPECT_EQ(b.find(1)->second, 20);
}

TEST(FlatMap, ReserveAvoidsLaterGrowth)
{
    FlatMap<std::uint64_t, int> m;
    m.reserve(1000);
    const std::size_t cap = m.capacity();
    EXPECT_GT(cap, 1000u * 8 / 7);
    for (std::uint64_t i = 0; i < 1000; ++i)
        m[i] = 1;
    EXPECT_EQ(m.capacity(), cap);
}

namespace
{

/** Hash functor forcing every HistoryKey into one bucket. */
struct CollidingHash
{
    std::size_t operator()(const HistoryKey &) const { return 7; }
};

HistoryKey
keyOf(NodeId pid)
{
    History h(1);
    h.push(Symbol::of(SymKind::Write, pid));
    return h.key();
}

} // namespace

TEST(FlatMap, HistoryKeyFullCollisionsStillResolveByKey)
{
    // All keys share one probe chain: correctness must come from the
    // full key compare, never from the hash.
    FlatMap<HistoryKey, int, CollidingHash> m;
    for (NodeId p = 0; p < 16; ++p)
        m[keyOf(p)] = p;
    EXPECT_EQ(m.size(), 16u);
    for (NodeId p = 0; p < 16; ++p) {
        auto it = m.find(keyOf(p));
        ASSERT_NE(it, m.end()) << p;
        EXPECT_EQ(it->second, p);
    }
    // Erase from the middle of the chain; later chain members must
    // stay reachable (tombstone, not hole).
    EXPECT_EQ(m.erase(keyOf(7)), 1u);
    for (NodeId p = 0; p < 16; ++p) {
        if (p == 7)
            EXPECT_EQ(m.find(keyOf(p)), m.end());
        else
            EXPECT_NE(m.find(keyOf(p)), m.end()) << p;
    }
}

TEST(FlatMap, HistoryKeysWithSharedPrefixAreDistinct)
{
    // Keys of different length sharing slot prefixes must not alias.
    History h1(1), h2(2);
    const Symbol w = Symbol::of(SymKind::Write, 3);
    h1.push(w);
    h2.push(w);
    h2.push(Symbol::of(SymKind::Read, 4));
    ASSERT_FALSE(h1.key() == h2.key()); // used differs

    FlatMap<HistoryKey, int, HistoryKeyHash> m;
    m[h1.key()] = 1;
    m[h2.key()] = 2;
    EXPECT_EQ(m.size(), 2u);
    EXPECT_EQ(m.find(h1.key())->second, 1);
    EXPECT_EQ(m.find(h2.key())->second, 2);
}
