/** @file Unit tests for the Cosmos baseline (general message
 * predictor). */

#include <gtest/gtest.h>

#include "pred/seq_predictor.hh"

using namespace mspdsm;

namespace
{

PredMsg
rd(NodeId p)
{
    return PredMsg{SymKind::Read, p};
}

PredMsg
up(NodeId p)
{
    return PredMsg{SymKind::Upgrade, p};
}

PredMsg
ack(NodeId p)
{
    return PredMsg{SymKind::InvAck, p};
}

PredMsg
wb(NodeId p)
{
    return PredMsg{SymKind::WriteBack, p};
}

} // namespace

TEST(Cosmos, ObservesAcknowledgements)
{
    Cosmos c(1, 16);
    EXPECT_TRUE(c.observe(1, ack(2)).inAlphabet);
    EXPECT_TRUE(c.observe(1, wb(2)).inAlphabet);
    EXPECT_EQ(c.stats().observed.value(), 2u);
}

TEST(Cosmos, PredictsAckAfterUpgrade)
{
    // The paper's Figure 2 scenario: after <Upgrade,P3> the next
    // incoming message is P1's invalidation ack.
    Cosmos c(1, 16);
    for (int i = 0; i < 3; ++i) {
        c.observe(0x100, up(3));
        c.observe(0x100, ack(1));
        c.observe(0x100, ack(2));
        c.observe(0x100, rd(1));
        c.observe(0x100, rd(2));
    }
    c.observe(0x100, up(3));
    auto pred = c.prediction(0x100);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(*pred, Symbol::of(SymKind::InvAck, 1));
}

TEST(Cosmos, StablePatternWithAcksIsFullyPredictable)
{
    Cosmos c(1, 16);
    for (int i = 0; i < 100; ++i) {
        c.observe(7, up(3));
        c.observe(7, ack(1));
        c.observe(7, ack(2));
        c.observe(7, rd(1));
        c.observe(7, rd(2));
    }
    EXPECT_GT(c.stats().accuracyPct(), 97.0);
}

TEST(Cosmos, AckReorderingPerturbsPredictions)
{
    // Identical request stream; only the acks race. MSP is immune,
    // Cosmos suffers -- the paper's central claim (Section 3).
    Cosmos c(1, 16);
    Msp m(1, 16);
    for (int i = 0; i < 200; ++i) {
        const bool swap = i % 2 == 1;
        for (PredictorBase *p :
             {static_cast<PredictorBase *>(&c),
              static_cast<PredictorBase *>(&m)}) {
            p->observe(7, up(3));
            p->observe(7, ack(swap ? 2 : 1));
            p->observe(7, ack(swap ? 1 : 2));
            p->observe(7, rd(1));
            p->observe(7, rd(2));
        }
    }
    EXPECT_GT(m.stats().accuracyPct(), 97.0);
    EXPECT_LT(c.stats().accuracyPct(), m.stats().accuracyPct() - 20.0);
}

TEST(Cosmos, AcksCanDisambiguateAlternatingConsumers)
{
    // The appbt effect (Section 7.1): the ack from the previous
    // consumer identifies the dimension, so Cosmos predicts the next
    // reader where MSP cannot.
    Cosmos c(1, 16);
    Msp m(1, 16);
    std::uint64_t cosmos_read_correct = 0, msp_read_correct = 0,
                  reads = 0;
    for (int i = 0; i < 200; ++i) {
        const NodeId prev = i % 2 ? 1 : 2;
        const NodeId next = i % 2 ? 2 : 1;
        c.observe(7, up(0));
        c.observe(7, ack(prev));
        const bool ok_c = c.observe(7, rd(next)).correct;
        m.observe(7, up(0));
        m.observe(7, ack(prev)); // ignored
        const bool ok_m = m.observe(7, rd(next)).correct;
        if (i > 4) {
            ++reads;
            cosmos_read_correct += ok_c;
            msp_read_correct += ok_m;
        }
    }
    EXPECT_EQ(cosmos_read_correct, reads); // fully disambiguated
    EXPECT_EQ(msp_read_correct, 0u);       // always the stale reader
}

TEST(Cosmos, StorageUsesThreeTypeBits)
{
    Cosmos c(1, 16);
    c.observe(7, up(3));
    c.observe(7, ack(1));
    c.observe(7, rd(1));
    const StorageReport r = c.storage();
    EXPECT_EQ(r.blocksAllocated, 1u);
    EXPECT_EQ(r.pteTotal, 2u);
    // Paper formula at d=1: (7 + 14*pte)/8 bytes.
    EXPECT_DOUBLE_EQ(r.avgBytesPerBlock, (7.0 + 14.0 * 2.0) / 8.0);
}

TEST(Cosmos, AckEntriesInflateTables)
{
    // Same sharing pattern: Cosmos stores entries for the ack
    // transitions that MSP does not keep.
    Cosmos c(1, 16);
    Msp m(1, 16);
    for (int i = 0; i < 10; ++i) {
        for (PredictorBase *p :
             {static_cast<PredictorBase *>(&c),
              static_cast<PredictorBase *>(&m)}) {
            p->observe(7, up(3));
            p->observe(7, ack(1));
            p->observe(7, ack(2));
            p->observe(7, rd(1));
            p->observe(7, rd(2));
        }
    }
    EXPECT_GT(c.storage().pteTotal, m.storage().pteTotal);
}

// Depth sweep: a stable pattern is eventually predictable at any
// depth, but learning takes longer with deeper history.
class CosmosDepth : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(CosmosDepth, StablePatternConverges)
{
    Cosmos c(GetParam(), 16);
    for (int i = 0; i < 300; ++i) {
        c.observe(7, up(3));
        c.observe(7, ack(1));
        c.observe(7, rd(1));
    }
    EXPECT_GT(c.stats().accuracyPct(), 95.0);
}

INSTANTIATE_TEST_SUITE_P(Depths, CosmosDepth,
                         ::testing::Values(1u, 2u, 4u));
