/** @file Unit tests for Symbol, History and HistoryKey. */

#include <gtest/gtest.h>

#include "pred/history.hh"

using namespace mspdsm;

TEST(Symbol, EqualityByKindAndPid)
{
    EXPECT_EQ(Symbol::of(SymKind::Read, 3), Symbol::of(SymKind::Read, 3));
    EXPECT_FALSE(Symbol::of(SymKind::Read, 3) ==
                 Symbol::of(SymKind::Read, 4));
    EXPECT_FALSE(Symbol::of(SymKind::Read, 3) ==
                 Symbol::of(SymKind::Write, 3));
}

TEST(Symbol, VectorEqualityBySet)
{
    NodeSet a;
    a.add(1);
    a.add(2);
    NodeSet b;
    b.add(2);
    b.add(1);
    EXPECT_EQ(Symbol::readVec(a), Symbol::readVec(b));
    b.add(3);
    EXPECT_FALSE(Symbol::readVec(a) == Symbol::readVec(b));
}

TEST(Symbol, EncodeDistinguishesKinds)
{
    const auto r = Symbol::of(SymKind::Read, 5).encode();
    const auto w = Symbol::of(SymKind::Write, 5).encode();
    const auto u = Symbol::of(SymKind::Upgrade, 5).encode();
    EXPECT_NE(r, w);
    EXPECT_NE(w, u);
    EXPECT_NE(r, u);
}

TEST(Symbol, EncodeDistinguishesVectorFromRead)
{
    NodeSet v = NodeSet::of(5);
    EXPECT_NE(Symbol::readVec(v).encode(),
              Symbol::of(SymKind::Read, 5).encode());
}

TEST(Symbol, ToStringIsReadable)
{
    EXPECT_EQ(Symbol::of(SymKind::Read, 3).toString(), "<Read,P3>");
    NodeSet v;
    v.add(1);
    v.add(2);
    EXPECT_EQ(Symbol::readVec(v).toString(), "<ReadVec,{1,2}>");
}

TEST(History, PushUpToDepth)
{
    History h(2);
    EXPECT_EQ(h.size(), 0u);
    h.push(Symbol::of(SymKind::Read, 1));
    EXPECT_EQ(h.size(), 1u);
    h.push(Symbol::of(SymKind::Read, 2));
    EXPECT_EQ(h.size(), 2u);
    h.push(Symbol::of(SymKind::Read, 3));
    EXPECT_EQ(h.size(), 2u); // bounded
    // Oldest evicted: contents now P2, P3.
    EXPECT_EQ(h.at(0), Symbol::of(SymKind::Read, 2));
    EXPECT_EQ(h.at(1), Symbol::of(SymKind::Read, 3));
}

TEST(History, KeyChangesWithContents)
{
    History h(2);
    h.push(Symbol::of(SymKind::Read, 1));
    const HistoryKey k1 = h.key();
    h.push(Symbol::of(SymKind::Write, 2));
    const HistoryKey k2 = h.key();
    EXPECT_FALSE(k1 == k2);
}

TEST(History, KeyIsOrderSensitive)
{
    History a(2), b(2);
    a.push(Symbol::of(SymKind::Read, 1));
    a.push(Symbol::of(SymKind::Read, 2));
    b.push(Symbol::of(SymKind::Read, 2));
    b.push(Symbol::of(SymKind::Read, 1));
    EXPECT_FALSE(a.key() == b.key());
}

TEST(History, EqualContentsEqualKeys)
{
    History a(3), b(3);
    for (NodeId p : {1, 5, 9}) {
        a.push(Symbol::of(SymKind::Read, p));
        b.push(Symbol::of(SymKind::Read, p));
    }
    EXPECT_TRUE(a.key() == b.key());
    EXPECT_EQ(HistoryKeyHash{}(a.key()), HistoryKeyHash{}(b.key()));
}

TEST(History, PartialAndFullKeysDiffer)
{
    History a(2);
    a.push(Symbol::of(SymKind::Read, 1));
    History b(2);
    b.push(Symbol::of(SymKind::Read, 1));
    b.push(Symbol::of(SymKind::Read, 1));
    EXPECT_FALSE(a.key() == b.key()); // used counts differ
}

TEST(History, HashSpreadsAcrossKeys)
{
    // Not a strict requirement, but the hash should not collapse a
    // simple family of keys.
    HistoryKeyHash hash;
    std::set<std::size_t> hashes;
    for (NodeId p = 0; p < 16; ++p) {
        for (SymKind k : {SymKind::Read, SymKind::Write}) {
            History h(1);
            h.push(Symbol::of(k, p));
            hashes.insert(hash(h.key()));
        }
    }
    EXPECT_EQ(hashes.size(), 32u);
}

TEST(HistoryDeathTest, DepthZeroPanics)
{
    EXPECT_DEATH(History h(0), "depth");
}

TEST(HistoryDeathTest, DepthBeyondMaxPanics)
{
    EXPECT_DEATH(History h(maxHistoryDepth + 1), "depth");
}
