/** @file Unit tests for the base Memory Sharing Predictor (MSP). */

#include <gtest/gtest.h>

#include "pred/seq_predictor.hh"

using namespace mspdsm;

namespace
{

PredMsg
rd(NodeId p)
{
    return PredMsg{SymKind::Read, p};
}

PredMsg
wr(NodeId p)
{
    return PredMsg{SymKind::Write, p};
}

PredMsg
up(NodeId p)
{
    return PredMsg{SymKind::Upgrade, p};
}

PredMsg
ack(NodeId p)
{
    return PredMsg{SymKind::InvAck, p};
}

} // namespace

TEST(Msp, IgnoresAcknowledgements)
{
    Msp m(1, 16);
    const Observation o1 = m.observe(7, ack(1));
    EXPECT_FALSE(o1.inAlphabet);
    const Observation o2 =
        m.observe(7, PredMsg{SymKind::WriteBack, 2});
    EXPECT_FALSE(o2.inAlphabet);
    EXPECT_EQ(m.stats().observed.value(), 0u);
}

TEST(Msp, FirstMessageIsUnpredicted)
{
    Msp m(1, 16);
    const Observation o = m.observe(7, rd(1));
    EXPECT_TRUE(o.inAlphabet);
    EXPECT_FALSE(o.predicted);
}

TEST(Msp, LearnsSuccessorAfterOneOccurrence)
{
    Msp m(1, 16);
    m.observe(7, wr(3)); // history: W3
    m.observe(7, rd(1)); // learns W3 -> R1
    m.observe(7, wr(3)); // learns R1 -> W3
    const Observation o = m.observe(7, rd(1)); // predicted from W3
    EXPECT_TRUE(o.predicted);
    EXPECT_TRUE(o.correct);
}

TEST(Msp, PredictionExposedViaApi)
{
    Msp m(1, 16);
    m.observe(7, wr(3));
    m.observe(7, rd(1));
    m.observe(7, wr(3));
    auto pred = m.prediction(7);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(*pred, Symbol::of(SymKind::Read, 1));
}

TEST(Msp, MispredictionIsCountedAndRelearned)
{
    Msp m(1, 16);
    m.observe(7, wr(3));
    m.observe(7, rd(1)); // W3 -> R1
    m.observe(7, wr(3));
    const Observation o = m.observe(7, rd(2)); // predicted R1, saw R2
    EXPECT_TRUE(o.predicted);
    EXPECT_FALSE(o.correct);
    // Now relearned: W3 -> R2.
    m.observe(7, wr(3));
    const Observation o2 = m.observe(7, rd(2));
    EXPECT_TRUE(o2.correct);
}

TEST(Msp, StablePatternReaches100Percent)
{
    Msp m(1, 16);
    for (int i = 0; i < 100; ++i) {
        m.observe(9, wr(0));
        m.observe(9, rd(1));
        m.observe(9, rd(2));
    }
    // After warm-up every message is predicted correctly.
    EXPECT_GT(m.stats().accuracyPct(), 97.0);
    EXPECT_GT(m.stats().coveragePct(), 97.0);
}

TEST(Msp, ReadReorderingHurtsDepthOne)
{
    Msp m(1, 16);
    for (int i = 0; i < 100; ++i) {
        m.observe(9, up(0));
        // Readers swap order every round.
        m.observe(9, rd(i % 2 ? 1 : 2));
        m.observe(9, rd(i % 2 ? 2 : 1));
    }
    // After the upgrade the next reader is always mispredicted, and
    // each read's successor flips too: accuracy collapses.
    EXPECT_LT(m.stats().accuracyPct(), 50.0);
}

TEST(Msp, DepthTwoSeparatesTwoWriters)
{
    // The paper's Section 2 example: P3 and P2 alternate upgrading;
    // depth 1 cannot tell the writers apart, depth 2 can.
    Msp d1(1, 16), d2(2, 16);
    for (int i = 0; i < 100; ++i) {
        const NodeId w = i % 2 ? 2 : 3;
        const NodeId r = i % 2 ? 3 : 2;
        for (Msp *m : {&d1, &d2}) {
            m->observe(5, up(w));
            m->observe(5, rd(1));
            m->observe(5, rd(r));
        }
    }
    EXPECT_LT(d1.stats().accuracyPct(), 75.0);
    EXPECT_GT(d2.stats().accuracyPct(), 95.0);
}

TEST(Msp, DeeperHistoryLearnsSlower)
{
    Msp d1(1, 16), d4(4, 16);
    for (int i = 0; i < 10; ++i) {
        for (Msp *m : {&d1, &d4}) {
            m->observe(3, wr(0));
            m->observe(3, rd(1));
            m->observe(3, rd(2));
        }
    }
    // Same stream, but the deep predictor issues fewer predictions.
    EXPECT_LT(d4.stats().coveragePct(), d1.stats().coveragePct());
}

TEST(Msp, BlocksAreIndependent)
{
    Msp m(1, 16);
    m.observe(1, wr(0));
    m.observe(1, rd(1));
    m.observe(1, wr(0)); // block 1 history back to [W0]
    m.observe(2, wr(0));
    // Block 2 has its own history and table: no prediction although
    // block 1 learned W0 -> R1 from the same-looking history.
    const Observation o = m.observe(2, rd(2));
    EXPECT_FALSE(o.predicted);
    // And block 1's entry is untouched:
    auto p1 = m.prediction(1);
    ASSERT_TRUE(p1.has_value());
    EXPECT_EQ(*p1, Symbol::of(SymKind::Read, 1));
}

TEST(Msp, UpgradeAndWriteAreDistinctSymbols)
{
    Msp m(1, 16);
    m.observe(4, wr(3));
    m.observe(4, rd(1)); // W3 -> R1
    m.observe(4, up(3)); // R1 -> U3; history U3 (not W3)
    const Observation o = m.observe(4, rd(1));
    // U3 never seen before: no prediction from that history.
    EXPECT_FALSE(o.predicted);
}

TEST(Msp, StorageCountsEntries)
{
    Msp m(1, 16);
    m.observe(7, wr(3));
    m.observe(7, rd(1));
    m.observe(7, rd(2));
    const StorageReport r = m.storage();
    EXPECT_EQ(r.blocksAllocated, 1u);
    EXPECT_EQ(r.pteTotal, 2u); // W3->R1, R1->R2
    // Paper formula at d=1: (6 + 12*pte)/8 bytes.
    EXPECT_DOUBLE_EQ(r.avgBytesPerBlock, (6.0 + 12.0 * 2.0) / 8.0);
}

TEST(Msp, CoverageCountsOnlyAlphabetMessages)
{
    Msp m(1, 16);
    m.observe(7, wr(3));
    m.observe(7, ack(1)); // ignored entirely
    m.observe(7, rd(1));
    EXPECT_EQ(m.stats().observed.value(), 2u);
}
