/** @file Unit tests for the Vector Memory Sharing Predictor. */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "pred/seq_predictor.hh"
#include "pred/vmsp.hh"

using namespace mspdsm;

namespace
{

PredMsg
rd(NodeId p)
{
    return PredMsg{SymKind::Read, p};
}

PredMsg
wr(NodeId p)
{
    return PredMsg{SymKind::Write, p};
}

PredMsg
up(NodeId p)
{
    return PredMsg{SymKind::Upgrade, p};
}

NodeSet
set(std::initializer_list<NodeId> ids)
{
    NodeSet s;
    for (NodeId i : ids)
        s.add(i);
    return s;
}

} // namespace

TEST(Vmsp, IgnoresAcknowledgements)
{
    Vmsp v(1, 16);
    EXPECT_FALSE(v.observe(1, PredMsg{SymKind::InvAck, 2}).inAlphabet);
    EXPECT_FALSE(
        v.observe(1, PredMsg{SymKind::WriteBack, 2}).inAlphabet);
}

TEST(Vmsp, FoldsReadsIntoOneVector)
{
    Vmsp v(1, 16);
    v.observe(7, wr(0));
    v.observe(7, rd(1));
    v.observe(7, rd(2));
    EXPECT_EQ(v.openReaders(7), set({1, 2}));
    v.observe(7, wr(0)); // closes the vector
    EXPECT_TRUE(v.openReaders(7).empty());
    // One entry for W0 -> Rv{1,2}; none yet for the reads
    // themselves: exactly the paper's Figure 4 compression.
    EXPECT_EQ(v.storage().pteTotal, 2u); // W->Rv and Rv->W
}

TEST(Vmsp, PredictsReaderVector)
{
    Vmsp v(1, 16);
    for (int i = 0; i < 3; ++i) {
        v.observe(7, wr(0));
        v.observe(7, rd(1));
        v.observe(7, rd(2));
    }
    v.observe(7, wr(0));
    auto readers = v.predictedReaders(7);
    ASSERT_TRUE(readers.has_value());
    EXPECT_EQ(*readers, set({1, 2}));
}

TEST(Vmsp, ImmuneToReadReordering)
{
    Vmsp v(1, 16);
    for (int i = 0; i < 100; ++i) {
        v.observe(7, up(0));
        v.observe(7, rd(i % 2 ? 1 : 2));
        v.observe(7, rd(i % 2 ? 2 : 1));
    }
    // The vector encoding removes the order: near-perfect accuracy.
    EXPECT_GT(v.stats().accuracyPct(), 97.0);
}

TEST(Vmsp, ReadOutsidePredictedVectorIsIncorrect)
{
    Vmsp v(1, 16);
    for (int i = 0; i < 3; ++i) {
        v.observe(7, wr(0));
        v.observe(7, rd(1));
    }
    v.observe(7, wr(0));
    const Observation good = v.observe(7, rd(1));
    EXPECT_TRUE(good.predicted);
    EXPECT_TRUE(good.correct);
    const Observation bad = v.observe(7, rd(5));
    EXPECT_TRUE(bad.predicted);
    EXPECT_FALSE(bad.correct);
}

TEST(Vmsp, WritePredictionAfterVectorCloses)
{
    Vmsp v(1, 16);
    for (int i = 0; i < 3; ++i) {
        v.observe(7, wr(0));
        v.observe(7, rd(1));
        v.observe(7, rd(2));
    }
    const Observation o = v.observe(7, wr(0));
    EXPECT_TRUE(o.predicted);
    EXPECT_TRUE(o.correct);
}

TEST(Vmsp, MigratorySharingIsPredictable)
{
    Vmsp v(1, 16);
    for (int i = 0; i < 90; ++i) {
        const NodeId q = NodeId(i % 3);
        v.observe(7, rd(q));
        v.observe(7, up(q));
    }
    EXPECT_GT(v.stats().accuracyPct(), 95.0);
}

TEST(Vmsp, StreamStartingWithReadsWorks)
{
    Vmsp v(1, 16);
    EXPECT_FALSE(v.observe(7, rd(1)).predicted);
    EXPECT_FALSE(v.observe(7, rd(2)).predicted);
    const Observation o = v.observe(7, wr(0));
    EXPECT_FALSE(o.predicted); // history was empty before the vector
    EXPECT_EQ(v.stats().observed.value(), 3u);
}

TEST(Vmsp, LastWriteKeyTracksTheWriteEntry)
{
    Vmsp v(1, 16);
    v.observe(7, wr(0));
    v.observe(7, rd(1));
    v.observe(7, wr(0));
    auto k = v.lastWriteKey(7);
    ASSERT_TRUE(k.has_value());
    EXPECT_FALSE(v.isPremature(7, *k));
    v.setPremature(7, *k);
    EXPECT_TRUE(v.isPremature(7, *k));
}

TEST(Vmsp, PrematureBitClearsWhenPredictionChanges)
{
    Vmsp v(1, 16);
    v.observe(7, wr(0));
    v.observe(7, rd(1));
    v.observe(7, wr(0)); // entry Rv{1} -> W0
    auto k = v.lastWriteKey(7);
    ASSERT_TRUE(k.has_value());
    v.setPremature(7, *k);
    // The same history now leads to a different write: the premature
    // bit must not survive the replacement.
    v.observe(7, rd(1));
    v.observe(7, wr(3));
    EXPECT_FALSE(v.isPremature(7, *k));
}

TEST(Vmsp, EraseEntryRemovesPrediction)
{
    Vmsp v(1, 16);
    for (int i = 0; i < 3; ++i) {
        v.observe(7, wr(0));
        v.observe(7, rd(1));
    }
    v.observe(7, wr(0));
    auto key = v.predictionKey(7);
    ASSERT_TRUE(key.has_value());
    ASSERT_TRUE(v.predictedReaders(7).has_value());
    v.eraseEntry(7, *key);
    EXPECT_FALSE(v.predictedReaders(7).has_value());
}

TEST(Vmsp, StorageFollowsPaperFormula)
{
    Vmsp v(1, 16);
    v.observe(7, wr(0));
    v.observe(7, rd(1));
    v.observe(7, rd(2));
    v.observe(7, wr(0));
    const StorageReport r = v.storage();
    EXPECT_EQ(r.blocksAllocated, 1u);
    EXPECT_EQ(r.pteTotal, 2u);
    // Paper: VMSP at n=16, d=1 costs (18 + 24*pte)/8 bytes.
    EXPECT_DOUBLE_EQ(r.avgBytesPerBlock, (18.0 + 24.0 * 2.0) / 8.0);
}

TEST(Vmsp, FewerEntriesThanMspUnderWideSharing)
{
    // At depth 2 the re-ordering permutations multiply MSP's keys
    // (pairs of adjacent reads), while VMSP still folds each phase
    // into one vector (Table 4's deep-history blow-up).
    Vmsp v(2, 16);
    Msp m(2, 16);
    Rng rng(3);
    std::vector<NodeId> readers{1, 2, 3, 4, 5, 6};
    for (int i = 0; i < 40; ++i) {
        v.observe(7, wr(0));
        m.observe(7, wr(0));
        rng.shuffle(readers);
        for (NodeId r : readers) {
            v.observe(7, rd(r));
            m.observe(7, rd(r));
        }
    }
    EXPECT_LT(v.storage().pteTotal, m.storage().pteTotal / 3);
}

TEST(Vmsp, DepthTwoCapturesAlternatingVectors)
{
    // appbt-style: the reader vector alternates {1,8} / {2,8} with
    // the elimination dimension. Depth 1 caps out; depth 2 learns
    // both patterns.
    Vmsp d1(1, 16), d2(2, 16);
    for (int i = 0; i < 200; ++i) {
        const NodeId c = i % 2 ? 1 : 2;
        for (Vmsp *v : {&d1, &d2}) {
            v->observe(7, up(0));
            v->observe(7, rd(c));
            v->observe(7, rd(8));
        }
    }
    EXPECT_LT(d1.stats().accuracyPct(), 75.0);
    EXPECT_GT(d2.stats().accuracyPct(), 95.0);
}

// Property sweep over reader-set sizes: accuracy is independent of
// arrival order for any set size.
class VmspFolding : public ::testing::TestWithParam<int>
{
};

TEST_P(VmspFolding, OrderInsensitiveForAnyDegree)
{
    const int degree = GetParam();
    Vmsp v(1, 16);
    Rng rng(17);
    std::vector<NodeId> readers;
    for (int r = 0; r < degree; ++r)
        readers.push_back(NodeId(1 + r));
    for (int i = 0; i < 60; ++i) {
        v.observe(9, wr(0));
        rng.shuffle(readers);
        for (NodeId r : readers)
            v.observe(9, rd(r));
    }
    EXPECT_GT(v.stats().accuracyPct(), 95.0);
    // Exactly two pattern entries regardless of degree.
    EXPECT_EQ(v.storage().pteTotal, 2u);
}

INSTANTIATE_TEST_SUITE_P(Degrees, VmspFolding,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 15));
