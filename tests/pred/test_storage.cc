/** @file Tests for the Section 7.3 storage-overhead accounting and
 * the Section 3.1 encoding break-even claim. */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "pred/seq_predictor.hh"
#include "pred/vmsp.hh"

using namespace mspdsm;

namespace
{

/** Drive one producer/consumer block with @p degree readers. */
template <typename P>
void
drive(P &p, int rounds, int degree)
{
    for (int i = 0; i < rounds; ++i) {
        p.observe(7, PredMsg{SymKind::Write, 0});
        for (int r = 0; r < degree; ++r)
            p.observe(7, PredMsg{SymKind::Read, NodeId(1 + r)});
    }
}

} // namespace

TEST(Storage, EmptyPredictorsReportZero)
{
    Cosmos c(1, 16);
    Msp m(1, 16);
    Vmsp v(1, 16);
    EXPECT_EQ(c.storage().blocksAllocated, 0u);
    EXPECT_EQ(m.storage().pteTotal, 0u);
    EXPECT_DOUBLE_EQ(v.storage().avgBytesPerBlock, 0.0);
}

TEST(Storage, PaperByteFormulasAtDepthOne)
{
    // One pte each, 16 processors (pid = 4 bits):
    //   Cosmos (7 + 14)/8, MSP (6 + 12)/8, VMSP (18 + 24)/8.
    Cosmos c(1, 16);
    c.observe(1, PredMsg{SymKind::Write, 0});
    c.observe(1, PredMsg{SymKind::Read, 1});
    EXPECT_DOUBLE_EQ(c.storage().avgBytesPerBlock, 21.0 / 8.0);

    Msp m(1, 16);
    m.observe(1, PredMsg{SymKind::Write, 0});
    m.observe(1, PredMsg{SymKind::Read, 1});
    EXPECT_DOUBLE_EQ(m.storage().avgBytesPerBlock, 18.0 / 8.0);

    Vmsp v(1, 16);
    v.observe(1, PredMsg{SymKind::Write, 0});
    v.observe(1, PredMsg{SymKind::Read, 1});
    v.observe(1, PredMsg{SymKind::Write, 0});
    // Two entries: (18 + 24*2)/8.
    EXPECT_DOUBLE_EQ(v.storage().avgBytesPerBlock, 66.0 / 8.0);
}

TEST(Storage, MspCheaperThanCosmosSamePattern)
{
    Cosmos c(1, 16);
    Msp m(1, 16);
    // Cosmos additionally sees acks, as it would at a directory.
    for (int i = 0; i < 20; ++i) {
        c.observe(7, PredMsg{SymKind::Write, 0});
        c.observe(7, PredMsg{SymKind::InvAck, 1});
        c.observe(7, PredMsg{SymKind::InvAck, 2});
        c.observe(7, PredMsg{SymKind::Read, 1});
        c.observe(7, PredMsg{SymKind::Read, 2});
        m.observe(7, PredMsg{SymKind::Write, 0});
        m.observe(7, PredMsg{SymKind::Read, 1});
        m.observe(7, PredMsg{SymKind::Read, 2});
    }
    EXPECT_LT(m.storage().avgBytesPerBlock,
              c.storage().avgBytesPerBlock);
}

TEST(Storage, SequenceEncodingBreakEven)
{
    // Section 3.1: encoding one read sequence of k readers costs MSP
    // k*(2+log n) bits and VMSP (2+n) bits, so VMSP's encoding is
    // more compact only for k > (2+n)/(2+log n): at least 3 readers
    // per block on 16 processors (and at least 2 on 8).
    auto msp_bits = [](int k, int logn) { return k * (2 + logn); };
    auto vmsp_bits = [](int n) { return 2 + n; };
    EXPECT_GT(vmsp_bits(16), msp_bits(2, 4)); // 2 readers: MSP wins
    EXPECT_LE(vmsp_bits(16), msp_bits(3, 4)); // 3 readers: VMSP wins
    EXPECT_GT(vmsp_bits(8), msp_bits(1, 3));
    EXPECT_LE(vmsp_bits(8), msp_bits(2, 3)); // 2 readers on 8 procs
}

TEST(Storage, VmspTotalBytesWinWithEnoughReaders)
{
    // Whole-table effect: per block MSP stores degree+1 entries at 12
    // bits each, VMSP always 2 entries at 24 bits; VMSP's total wins
    // once the degree exceeds 4 and widens from there (Table 4).
    for (int degree : {1, 2, 6, 12}) {
        Msp m(1, 16);
        Vmsp v(1, 16);
        drive(m, 30, degree);
        drive(v, 30, degree);
        const double mb = m.storage().avgBytesPerBlock;
        const double vb = v.storage().avgBytesPerBlock;
        if (degree <= 4)
            EXPECT_GE(vb, mb) << "degree " << degree;
        else
            EXPECT_LT(vb, mb) << "degree " << degree;
    }
}

TEST(Storage, DeeperHistoryGrowsCosmosTablesFaster)
{
    // Message re-ordering at depth 4 blows up the permutation space
    // for Cosmos (Table 4's barnes/unstructured columns); VMSP stays
    // compact.
    Rng rng(5);
    Cosmos c1(1, 16), c4(4, 16);
    Vmsp v4(4, 16);
    std::vector<NodeId> acks{1, 2, 3, 4};
    for (int i = 0; i < 200; ++i) {
        for (PredictorBase *p :
             {static_cast<PredictorBase *>(&c1),
              static_cast<PredictorBase *>(&c4),
              static_cast<PredictorBase *>(&v4)}) {
            p->observe(7, PredMsg{SymKind::Write, 0});
            rng.shuffle(acks);
            for (NodeId a : acks)
                p->observe(7, PredMsg{SymKind::InvAck, a});
            rng.shuffle(acks);
            for (NodeId r : acks)
                p->observe(7, PredMsg{SymKind::Read, r});
        }
    }
    EXPECT_GT(c4.storage().pteTotal, 2 * c1.storage().pteTotal);
    EXPECT_LT(v4.storage().pteTotal, c4.storage().pteTotal / 4);
}

TEST(Storage, AverageIsPerAllocatedBlock)
{
    Msp m(1, 16);
    // Block 1: two entries; block 2: none (single message).
    m.observe(1, PredMsg{SymKind::Write, 0});
    m.observe(1, PredMsg{SymKind::Read, 1});
    m.observe(1, PredMsg{SymKind::Read, 2});
    m.observe(2, PredMsg{SymKind::Read, 3});
    const StorageReport r = m.storage();
    EXPECT_EQ(r.blocksAllocated, 2u);
    EXPECT_EQ(r.pteTotal, 2u);
    EXPECT_DOUBLE_EQ(r.avgPte, 1.0);
}

TEST(Storage, UntouchedBlocksCostNothing)
{
    Msp m(1, 16);
    m.observe(1, PredMsg{SymKind::Read, 3});
    EXPECT_EQ(m.storage().blocksAllocated, 1u);
    EXPECT_EQ(m.storage().pteTotal, 0u);
}
