/** @file Network ordering and timing invariants across topologies.
 *
 * What the topology rework must not break (and what it must add):
 *  - uncontended latency grows with hop distance, exactly
 *    per-hop-composed on the link topologies;
 *  - jitter stays within [0, netJitter] on every topology;
 *  - per-(src,dst) point-to-point FIFO order holds on every topology
 *    even under jitter -- the protocol relies on it;
 *  - shared links serialize message bodies (the new contention
 *    point), while the crossbar's dedicated paths never queue.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hh"

using namespace mspdsm;

namespace
{

constexpr TopoKind allKinds[] = {TopoKind::Crossbar, TopoKind::Ring,
                                 TopoKind::Mesh2D, TopoKind::Torus2D};

struct TopoNetFixture : ::testing::Test
{
    struct Arrival
    {
        Tick when;
        CohMsg m;
    };

    void
    build(TopoKind kind, unsigned nodes, Tick jitter = 0,
          std::uint64_t seed = 1)
    {
        cfg = ProtoConfig{};
        cfg.numNodes = nodes;
        cfg.topo.kind = kind;
        cfg.netJitter = jitter;
        eq = std::make_unique<EventQueue>();
        net = std::make_unique<Network>(*eq, cfg, Rng(seed));
        arrivals.clear();
        const auto record = +[](void *ctx, const CohMsg &m) {
            auto *self = static_cast<TopoNetFixture *>(ctx);
            self->arrivals.push_back({self->eq->curTick(), m});
        };
        for (NodeId n = 0; n < nodes; ++n)
            net->attach(n, record, this);
    }

    CohMsg
    msg(MsgType t, NodeId src, NodeId dst, BlockId blk = 0)
    {
        CohMsg m;
        m.type = t;
        m.src = src;
        m.dst = dst;
        m.blk = blk;
        return m;
    }

    /** Delivery tick of one control message on an idle network. */
    Tick
    soloLatency(TopoKind kind, unsigned nodes, NodeId dst)
    {
        build(kind, nodes);
        net->send(msg(MsgType::GetS, 0, dst));
        EXPECT_TRUE(eq->run());
        EXPECT_EQ(arrivals.size(), 1u);
        return arrivals[0].when;
    }

    ProtoConfig cfg;
    std::unique_ptr<EventQueue> eq;
    std::unique_ptr<Network> net;
    std::vector<Arrival> arrivals;
};

} // namespace

TEST_F(TopoNetFixture, UncontendedLatencyComposesPerHop)
{
    // On an idle link topology a control message costs exactly
    // egress occupancy + hops * linkLatency + ingress occupancy; on
    // the crossbar the middle term is the flat netLatency.
    for (TopoKind kind : allKinds) {
        for (NodeId dst = 1; dst < 16; ++dst) {
            const Tick got = soloLatency(kind, 16, dst);
            EXPECT_EQ(got, cfg.niControl + net->topology().flight(0, dst)
                               + cfg.niControl)
                << topoKindName(kind) << " 0 -> " << dst;
        }
    }
}

TEST_F(TopoNetFixture, LatencyIsMonotoneInHopDistance)
{
    // The acceptance shape for the new topologies: mean (here exact)
    // miss latency never decreases as hop distance grows.
    for (TopoKind kind :
         {TopoKind::Ring, TopoKind::Mesh2D, TopoKind::Torus2D}) {
        // hopLatency[h] = solo latency of some dst at h hops.
        std::vector<std::pair<unsigned, Tick>> samples;
        build(kind, 16);
        std::vector<unsigned> hop(16);
        for (NodeId dst = 1; dst < 16; ++dst)
            hop[dst] = net->topology().hops(0, dst);
        for (NodeId dst = 1; dst < 16; ++dst)
            samples.push_back({hop[dst], soloLatency(kind, 16, dst)});
        for (const auto &[ha, la] : samples) {
            for (const auto &[hb, lb] : samples) {
                if (ha < hb) {
                    EXPECT_LT(la, lb)
                        << topoKindName(kind) << ": " << ha
                        << " hops slower than " << hb;
                }
            }
        }
    }
}

TEST_F(TopoNetFixture, JitterStaysWithinConfiguredBound)
{
    // delivered - (egress + flight + ingress) is exactly the jitter
    // draw for a solo message; across seeds it must stay in
    // [0, netJitter] and actually reach past zero.
    constexpr Tick bound = 24;
    for (TopoKind kind : allKinds) {
        std::uint64_t nonzero = 0;
        for (std::uint64_t seed = 0; seed < 40; ++seed) {
            build(kind, 16, bound, 100 + seed);
            const NodeId dst = static_cast<NodeId>(1 + seed % 15);
            const Tick floor = cfg.niControl +
                               net->topology().flight(0, dst) +
                               cfg.niControl;
            net->send(msg(MsgType::GetS, 0, dst));
            ASSERT_TRUE(eq->run());
            ASSERT_EQ(arrivals.size(), 1u);
            ASSERT_GE(arrivals[0].when, floor);
            const Tick jitter = arrivals[0].when - floor;
            EXPECT_LE(jitter, bound) << topoKindName(kind);
            if (jitter > 0)
                ++nonzero;
        }
        EXPECT_GT(nonzero, 0u) << topoKindName(kind);
    }
}

TEST_F(TopoNetFixture, PairOrderIsPreservedOnEveryTopology)
{
    // Messages between one (src, dst) pair must never re-order, even
    // under jitter and multi-hop routing -- the protocol depends on
    // it (a data grant must not be overtaken by a later recall).
    for (TopoKind kind : allKinds) {
        build(kind, 16, /*jitter=*/60, /*seed=*/7);
        const NodeId dst = 10; // multi-hop on every link topology
        for (int i = 0; i < 50; ++i)
            net->send(msg(i % 2 ? MsgType::Inval : MsgType::DataShared,
                          0, dst, BlockId(i)));
        ASSERT_TRUE(eq->run());
        ASSERT_EQ(arrivals.size(), 50u);
        for (int i = 0; i < 50; ++i)
            EXPECT_EQ(arrivals[i].m.blk, BlockId(i))
                << topoKindName(kind);
    }
}

TEST_F(TopoNetFixture, SharedLinksSerializeTheBody)
{
    // Ring 0 -> 2 (links 0, 1) and 1 -> 2 (link 1), both injected at
    // tick 0 from different sources: the second head queues behind
    // the first message's body on link 1. The same pattern on the
    // crossbar shares nothing, so its link queueing stays zero.
    build(TopoKind::Ring, 4);
    net->send(msg(MsgType::GetS, 0, 2));
    net->send(msg(MsgType::GetS, 1, 2));
    ASSERT_TRUE(eq->run());
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_GT(net->linkQueueingCycles(), 0u);

    build(TopoKind::Crossbar, 4);
    net->send(msg(MsgType::GetS, 0, 2));
    net->send(msg(MsgType::GetS, 1, 2));
    ASSERT_TRUE(eq->run());
    EXPECT_EQ(net->linkQueueingCycles(), 0u);
}

TEST_F(TopoNetFixture, LinkQueueingIsExactForTheTextbookConflict)
{
    // Work the ring conflict out by hand. Message A: 0 -> 2 clockwise
    // over links 0 (0->1) and 1 (1->2); message B: 1 -> 2 over link 1
    // only. occ = niControl = 20, linkLatency = netLatency = 80.
    //   A: egress 0..20; link0 start 20, busy till 40, head at 1 by
    //      100; link1 start 100, busy till 120, head at 2 by 180.
    //   B: egress 0..20; link1 frees at 120 -> 100 cycles of link
    //      queueing; head at 2 by 200.
    build(TopoKind::Ring, 4);
    net->send(msg(MsgType::GetS, 0, 2));
    net->send(msg(MsgType::GetS, 1, 2));
    ASSERT_TRUE(eq->run());
    EXPECT_EQ(net->linkQueueingCycles(), 100u);
    // A arrives at 180, delivered after its ingress occupancy at 200;
    // B arrives at 200 and queues behind it: delivered at 220.
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0].when, 200u);
    EXPECT_EQ(arrivals[1].when, 220u);
}

TEST_F(TopoNetFixture, LocalTrafficBypassesTheFabric)
{
    for (TopoKind kind : allKinds) {
        build(kind, 16);
        net->send(msg(MsgType::GetS, 5, 5));
        ASSERT_TRUE(eq->run());
        ASSERT_EQ(arrivals.size(), 1u);
        EXPECT_EQ(arrivals[0].when, 1u) << topoKindName(kind);
        EXPECT_EQ(net->linkQueueingCycles(), 0u);
    }
}

TEST_F(TopoNetFixture, SameSeedRunsAreDeterministicUnderJitter)
{
    // Same seed, same sends -> identical arrival schedule, per
    // topology, with jitter drawn on every message (the sweep
    // determinism the harness relies on).
    for (TopoKind kind : allKinds) {
        std::vector<Arrival> first;
        for (int trial = 0; trial < 2; ++trial) {
            build(kind, 16, /*jitter=*/8, /*seed=*/99);
            for (int i = 0; i < 30; ++i)
                net->send(msg(MsgType::GetS,
                              static_cast<NodeId>(i % 5),
                              static_cast<NodeId>(8 + i % 7),
                              BlockId(i)));
            ASSERT_TRUE(eq->run());
            if (trial == 0) {
                first = arrivals;
                continue;
            }
            ASSERT_EQ(arrivals.size(), first.size());
            for (std::size_t i = 0; i < first.size(); ++i) {
                EXPECT_EQ(arrivals[i].when, first[i].when);
                EXPECT_EQ(arrivals[i].m.blk, first[i].m.blk);
            }
        }
    }
}
