/** @file Differential test for the batched per-destination NI drain.
 *
 * The drain replaced the per-message two-stage (arrival event +
 * delivery event) transport with one self-rescheduling event per
 * destination that books the ingress NI in arrival order and batches
 * reservations. Its timing-equivalence argument (ARCHITECTURE.md,
 * "Batched NI drain") claims every message still departs, flies,
 * queues, and delivers at exactly the ticks the two-stage path
 * produced. This test checks that claim mechanically: randomized
 * cross-traffic -- every topology, with and without jitter, local and
 * remote, data and control -- is driven through the real Network and
 * through a reference reimplementation of the retired two-stage path
 * built from the same Topology/Rng/BoundedDraw pieces, and every
 * message must be delivered at the identical tick with per-(src,dst)
 * FIFO order intact, with identical NI and link queueing totals.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "base/random.hh"
#include "net/network.hh"
#include "topo/topology.hh"

using namespace mspdsm;

namespace
{

/** One observed delivery. */
struct Delivery
{
    Tick when;
    NodeId src;
    NodeId dst;
    BlockId id; //!< unique per message in the plan
};

/**
 * Reference transport: a faithful reimplementation of the retired
 * two-stage path. sendAt performs the identical egress / link-walk /
 * jitter / pair-clamp arithmetic, then schedules an arrival event at
 * the arrival tick; the arrival stage reserves the ingress NI at
 * curTick and rides the same event to the delivery tick (raw sinks
 * never fused, exactly like the old code with a raw hook attached).
 */
class RefNet
{
  public:
    RefNet(EventQueue &eq, const ProtoConfig &cfg, Rng rng,
           std::vector<Delivery> &log)
        : eq_(eq), cfg_(cfg), rng_(rng), jitter_(0, cfg.netJitter),
          topo_(cfg), egressFree_(cfg.numNodes, 0),
          ingressFree_(cfg.numNodes, 0), linkFree_(topo_.numLinks(), 0),
          pairLast_(std::size_t{cfg.numNodes} * cfg.numNodes, 0),
          log_(log)
    {
    }

    void
    send(const CohMsg &msg)
    {
        const Tick now = eq_.curTick();
        if (msg.src == msg.dst) {
            Ev &e = pool_.acquire(this);
            e.msg = msg;
            e.arrived = true;
            eq_.schedule(now + 1, e);
            return;
        }
        const Tick occ = carriesData(msg.type) ? cfg_.niData
                                               : cfg_.niControl;
        const Tick inject_start = std::max(now, egressFree_[msg.src]);
        queued_ += inject_start - now;
        const Tick departure = inject_start + occ;
        egressFree_[msg.src] = departure;

        const Topology::Route &rt = topo_.route(msg.src, msg.dst);
        Tick head = departure;
        if (rt.hops == 0) {
            head += rt.flight;
        } else {
            const LinkId *ls = topo_.links(rt);
            const Tick lat = topo_.linkLatency();
            for (std::uint16_t h = 0; h < rt.hops; ++h) {
                const Tick start = std::max(head, linkFree_[ls[h]]);
                linkQueued_ += start - head;
                linkFree_[ls[h]] = start + occ;
                head = start + lat;
            }
        }

        Tick arrival = head;
        if (cfg_.netJitter > 0)
            arrival += jitter_(rng_);
        const std::size_t pair = msg.src * cfg_.numNodes + msg.dst;
        if (arrival <= pairLast_[pair])
            arrival = pairLast_[pair] + 1;
        pairLast_[pair] = arrival;

        Ev &e = pool_.acquire(this);
        e.msg = msg;
        e.occ = occ;
        e.arrived = false;
        eq_.schedule(arrival, e);
    }

    std::uint64_t queueing() const { return queued_; }
    std::uint64_t linkQueueing() const { return linkQueued_; }

  private:
    struct Ev final : public Event
    {
        explicit Ev(RefNet *n) : net(n) {}

        void process() override { net->fired(*this); }

        RefNet *net;
        CohMsg msg;
        Tick occ = 0;
        bool arrived = false;
    };

    void
    fired(Ev &e)
    {
        if (!e.arrived) {
            e.arrived = true;
            const Tick arrival = eq_.curTick();
            const Tick start =
                std::max(arrival, ingressFree_[e.msg.dst]);
            queued_ += start - arrival;
            const Tick delivered = start + e.occ;
            ingressFree_[e.msg.dst] = delivered;
            eq_.schedule(delivered, e);
            return;
        }
        log_.push_back(Delivery{eq_.curTick(), e.msg.src, e.msg.dst,
                                e.msg.blk});
        pool_.release(e);
    }

    EventQueue &eq_;
    const ProtoConfig &cfg_;
    Rng rng_;
    BoundedDraw jitter_;
    Topology topo_;
    std::vector<Tick> egressFree_;
    std::vector<Tick> ingressFree_;
    std::vector<Tick> linkFree_;
    std::vector<Tick> pairLast_;
    EventPool<Ev> pool_;
    std::uint64_t queued_ = 0;
    std::uint64_t linkQueued_ = 0;
    std::vector<Delivery> &log_;
};

/** One planned injection. */
struct Send
{
    Tick when;
    CohMsg msg;
};

/**
 * Randomized cross-traffic: send ticks advance by bounded random
 * gaps (so sends overlap in-flight deliveries), endpoints and types
 * are uniform -- including src == dst locals and the wide data
 * occupancy -- and every message carries a unique id in blk.
 */
std::vector<Send>
makePlan(std::uint64_t seed, unsigned nodes, int count)
{
    Rng rng(seed);
    std::vector<Send> plan;
    Tick t = 0;
    for (int i = 0; i < count; ++i) {
        t += rng.uniform(0, 40);
        Send s;
        s.when = t;
        s.msg.src = static_cast<NodeId>(rng.uniform(0, nodes - 1));
        s.msg.dst = static_cast<NodeId>(rng.uniform(0, nodes - 1));
        static constexpr MsgType kinds[] = {
            MsgType::GetS, MsgType::Inval, MsgType::InvAck,
            MsgType::DataShared, MsgType::WriteBack};
        s.msg.type = kinds[rng.uniform(0, 4)];
        s.msg.blk = static_cast<BlockId>(i);
        plan.push_back(s);
    }
    return plan;
}

/** Replays a plan into a transport from inside event context. */
template <typename NetT>
struct Driver final : public Event
{
    void
    process() override
    {
        while (idx < plan->size() && (*plan)[idx].when == when())
            net->send((*plan)[idx++].msg);
        if (idx < plan->size())
            eq->schedule((*plan)[idx].when, *this);
    }

    EventQueue *eq = nullptr;
    NetT *net = nullptr;
    const std::vector<Send> *plan = nullptr;
    std::size_t idx = 0;
};

/** Run the plan through the real drain-based Network. */
std::pair<std::vector<Delivery>, std::pair<std::uint64_t, std::uint64_t>>
runReal(const ProtoConfig &cfg, std::uint64_t rngSeed,
        const std::vector<Send> &plan)
{
    EventQueue eq;
    Network net(eq, cfg, Rng(rngSeed));
    std::vector<Delivery> log;
    struct Ctx
    {
        EventQueue *eq;
        std::vector<Delivery> *log;
    } ctx{&eq, &log};
    const auto record = +[](void *c, const CohMsg &m) {
        auto *x = static_cast<Ctx *>(c);
        x->log->push_back(
            Delivery{x->eq->curTick(), m.src, m.dst, m.blk});
    };
    for (NodeId n = 0; n < cfg.numNodes; ++n)
        net.attach(n, record, &ctx);

    Driver<Network> drv;
    drv.eq = &eq;
    drv.net = &net;
    drv.plan = &plan;
    if (!plan.empty())
        eq.schedule(plan.front().when, drv);
    EXPECT_TRUE(eq.run());
    return {log, {net.queueingCycles(), net.linkQueueingCycles()}};
}

/** Run the plan through the reference two-stage transport. */
std::pair<std::vector<Delivery>, std::pair<std::uint64_t, std::uint64_t>>
runRef(const ProtoConfig &cfg, std::uint64_t rngSeed,
       const std::vector<Send> &plan)
{
    EventQueue eq;
    std::vector<Delivery> log;
    RefNet net(eq, cfg, Rng(rngSeed), log);

    Driver<RefNet> drv;
    drv.eq = &eq;
    drv.net = &net;
    drv.plan = &plan;
    if (!plan.empty())
        eq.schedule(plan.front().when, drv);
    EXPECT_TRUE(eq.run());
    return {log, {net.queueing(), net.linkQueueing()}};
}

/**
 * The equivalence oracle: identical delivery tick per message,
 * identical per-(src,dst) delivery order (== send order, the
 * protocol's point-to-point FIFO guarantee), identical contention
 * totals. Global cross-destination order at equal ticks is NOT
 * compared: per-destination drains legitimately interleave same-tick
 * deliveries to *different* nodes in a different (still legal) order
 * than per-message events did.
 */
void
expectEquivalent(const ProtoConfig &cfg, std::uint64_t planSeed,
                 std::uint64_t rngSeed, int count)
{
    const auto plan = makePlan(planSeed, cfg.numNodes, count);
    const auto [realLog, realQ] = runReal(cfg, rngSeed, plan);
    const auto [refLog, refQ] = runRef(cfg, rngSeed, plan);

    ASSERT_EQ(realLog.size(), plan.size());
    ASSERT_EQ(refLog.size(), plan.size());
    EXPECT_EQ(realQ.first, refQ.first) << "NI queueing diverged";
    EXPECT_EQ(realQ.second, refQ.second) << "link queueing diverged";

    std::map<BlockId, Tick> refTick;
    for (const Delivery &d : refLog)
        refTick[d.id] = d.when;
    for (const Delivery &d : realLog)
        EXPECT_EQ(d.when, refTick[d.id])
            << "message " << d.id << " (" << int(d.src) << "->"
            << int(d.dst) << ") delivered at a different tick";

    // Per-pair FIFO: the id sequence each (src, dst) pair observes.
    std::map<std::pair<NodeId, NodeId>, std::vector<BlockId>> realSeq,
        refSeq, sendSeq;
    for (const Delivery &d : realLog)
        realSeq[{d.src, d.dst}].push_back(d.id);
    for (const Delivery &d : refLog)
        refSeq[{d.src, d.dst}].push_back(d.id);
    for (const Send &s : plan)
        sendSeq[{s.msg.src, s.msg.dst}].push_back(s.msg.blk);
    EXPECT_EQ(realSeq, refSeq);
    EXPECT_EQ(realSeq, sendSeq) << "point-to-point FIFO violated";
}

ProtoConfig
config(TopoKind kind, Tick jitter)
{
    ProtoConfig cfg;
    cfg.topo.kind = kind;
    cfg.netJitter = jitter;
    return cfg;
}

} // namespace

TEST(DrainDiff, CrossbarMatchesTwoStageReference)
{
    for (std::uint64_t seed : {1u, 2u, 3u})
        expectEquivalent(config(TopoKind::Crossbar, 0), seed,
                         seed * 17 + 5, 600);
}

TEST(DrainDiff, CrossbarWithJitterMatchesTwoStageReference)
{
    for (std::uint64_t seed : {4u, 5u, 6u})
        expectEquivalent(config(TopoKind::Crossbar, 12), seed,
                         seed * 17 + 5, 600);
}

TEST(DrainDiff, RingMatchesTwoStageReference)
{
    for (std::uint64_t seed : {7u, 8u})
        expectEquivalent(config(TopoKind::Ring, 0), seed,
                         seed * 17 + 5, 600);
    expectEquivalent(config(TopoKind::Ring, 9), 9, 42, 600);
}

TEST(DrainDiff, Mesh2dMatchesTwoStageReference)
{
    for (std::uint64_t seed : {10u, 11u})
        expectEquivalent(config(TopoKind::Mesh2D, 0), seed,
                         seed * 17 + 5, 600);
    expectEquivalent(config(TopoKind::Mesh2D, 9), 12, 43, 600);
}

TEST(DrainDiff, Torus2dMatchesTwoStageReference)
{
    for (std::uint64_t seed : {13u, 14u})
        expectEquivalent(config(TopoKind::Torus2D, 0), seed,
                         seed * 17 + 5, 600);
    expectEquivalent(config(TopoKind::Torus2D, 9), 15, 44, 600);
}

TEST(DrainDiff, DenseSameDestinationBacklog)
{
    // The ingress_batch bench's shape: every source hammers one hot
    // node, so the drain spends the whole run inside one busy period
    // and the batched-reservation path carries every message.
    ProtoConfig cfg;
    std::vector<Send> plan;
    Tick t = 0;
    for (int i = 0; i < 800; ++i) {
        t += (i % 3 == 0) ? 1 : 0; // much faster than the NI drains
        Send s;
        s.when = t;
        s.msg.src = static_cast<NodeId>(1 + i % 15);
        s.msg.dst = 0;
        s.msg.type = (i & 3) ? MsgType::GetS : MsgType::DataShared;
        s.msg.blk = static_cast<BlockId>(i);
        plan.push_back(s);
    }
    const auto [realLog, realQ] = runReal(cfg, 99, plan);
    const auto [refLog, refQ] = runRef(cfg, 99, plan);
    ASSERT_EQ(realLog.size(), plan.size());
    EXPECT_EQ(realQ.first, refQ.first);
    std::map<BlockId, Tick> refTick;
    for (const Delivery &d : refLog)
        refTick[d.id] = d.when;
    for (const Delivery &d : realLog)
        EXPECT_EQ(d.when, refTick[d.id]) << "message " << d.id;
}
