/** @file Unit tests for the interconnect model. */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/network.hh"

using namespace mspdsm;

namespace
{

struct NetFixture : ::testing::Test
{
    NetFixture()
    {
        cfg.numNodes = 4;
        cfg.netJitter = 0; // deterministic latency unless overridden
    }

    void
    build()
    {
        net = std::make_unique<Network>(eq, cfg, Rng(1));
        for (NodeId n = 0; n < cfg.numNodes; ++n)
            net->attach(n, &NetFixture::record, this);
    }

    /** Raw delivery sink recording every arrival. */
    static void
    record(void *ctx, const CohMsg &m)
    {
        auto *self = static_cast<NetFixture *>(ctx);
        self->arrivals.push_back({self->eq.curTick(), m.dst, m});
    }

    CohMsg
    msg(MsgType t, NodeId src, NodeId dst, BlockId blk = 0)
    {
        CohMsg m;
        m.type = t;
        m.src = src;
        m.dst = dst;
        m.blk = blk;
        return m;
    }

    struct Arrival
    {
        Tick when;
        NodeId at;
        CohMsg m;
    };

    EventQueue eq;
    ProtoConfig cfg;
    std::unique_ptr<Network> net;
    std::vector<Arrival> arrivals;
};

} // namespace

TEST_F(NetFixture, ControlMessageLatency)
{
    build();
    net->send(msg(MsgType::GetS, 0, 1));
    EXPECT_TRUE(eq.run());
    ASSERT_EQ(arrivals.size(), 1u);
    // egress occupancy + flight + ingress occupancy
    EXPECT_EQ(arrivals[0].when,
              cfg.niControl + cfg.netLatency + cfg.niControl);
}

TEST_F(NetFixture, DataMessagesAreSlower)
{
    build();
    net->send(msg(MsgType::DataShared, 0, 1));
    EXPECT_TRUE(eq.run());
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_EQ(arrivals[0].when,
              cfg.niData + cfg.netLatency + cfg.niData);
}

TEST_F(NetFixture, PaperRoundTripIs418)
{
    // GetS out, directory lookup + memory, DataShared back: the
    // calibration of ProtoConfig must reproduce the paper's 418-cycle
    // round-trip miss latency.
    const Tick request = cfg.niControl + cfg.netLatency + cfg.niControl;
    const Tick home = cfg.dirLookup + cfg.memAccess;
    const Tick reply = cfg.niData + cfg.netLatency + cfg.niData;
    EXPECT_EQ(request + home + reply, 418u);
}

TEST_F(NetFixture, LocalDeliveryBypassesNis)
{
    build();
    net->send(msg(MsgType::GetS, 2, 2));
    EXPECT_TRUE(eq.run());
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_EQ(arrivals[0].when, 1u);
}

TEST_F(NetFixture, EgressSerializesSameSource)
{
    build();
    net->send(msg(MsgType::GetS, 0, 1));
    net->send(msg(MsgType::GetS, 0, 2));
    EXPECT_TRUE(eq.run());
    ASSERT_EQ(arrivals.size(), 2u);
    // Second message leaves one occupancy later.
    EXPECT_EQ(arrivals[1].when - arrivals[0].when, cfg.niControl);
}

TEST_F(NetFixture, IngressSerializesSameDestination)
{
    build();
    net->send(msg(MsgType::GetS, 0, 3));
    net->send(msg(MsgType::GetS, 1, 3));
    net->send(msg(MsgType::GetS, 2, 3));
    EXPECT_TRUE(eq.run());
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_GE(arrivals[1].when - arrivals[0].when, cfg.niControl);
    EXPECT_GE(arrivals[2].when - arrivals[1].when, cfg.niControl);
}

TEST_F(NetFixture, QueueingCyclesAccumulate)
{
    build();
    for (int i = 0; i < 4; ++i)
        net->send(msg(MsgType::GetS, 0, 1));
    EXPECT_TRUE(eq.run());
    EXPECT_GT(net->queueingCycles(), 0u);
    EXPECT_EQ(net->messagesSent(), 4u);
}

TEST_F(NetFixture, PairOrderIsPreserved)
{
    // Even with jitter, two messages between the same endpoints must
    // never re-order (the protocol depends on it).
    cfg.netJitter = 60;
    build();
    for (int i = 0; i < 50; ++i) {
        CohMsg m = msg(i % 2 ? MsgType::Inval : MsgType::DataShared,
                       0, 1, BlockId(i));
        net->send(m);
    }
    EXPECT_TRUE(eq.run());
    ASSERT_EQ(arrivals.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(arrivals[i].m.blk, BlockId(i));
}

TEST_F(NetFixture, JitterCanReorderAcrossSources)
{
    // Two messages from different sources to one destination,
    // injected one tick apart, should sometimes swap under jitter --
    // this is the ack-race effect Section 3 of the paper hinges on.
    cfg.netJitter = 60;
    int swapped = 0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
        EventQueue q;
        Network n(q, cfg, Rng(1000 + t));
        std::vector<NodeId> order;
        const auto push_src = +[](void *ctx, const CohMsg &m) {
            static_cast<std::vector<NodeId> *>(ctx)->push_back(m.src);
        };
        for (NodeId id = 0; id < cfg.numNodes; ++id)
            n.attach(id, push_src, &order);
        CohMsg a = msg(MsgType::InvAck, 1, 0);
        CohMsg b = msg(MsgType::InvAck, 2, 0);
        n.send(a);
        q.schedule(1, [&n, b] {
            CohMsg copy = b;
            n.send(copy);
        });
        EXPECT_TRUE(q.run());
        ASSERT_EQ(order.size(), 2u);
        if (order[0] == 2)
            ++swapped;
    }
    EXPECT_GT(swapped, 5);
    EXPECT_LT(swapped, trials - 5);
}

TEST_F(NetFixture, ZeroJitterIsDeterministicallyOrdered)
{
    cfg.netJitter = 0;
    for (int t = 0; t < 10; ++t) {
        EventQueue q;
        Network n(q, cfg, Rng(2000 + t));
        std::vector<NodeId> order;
        const auto push_src = +[](void *ctx, const CohMsg &m) {
            static_cast<std::vector<NodeId> *>(ctx)->push_back(m.src);
        };
        for (NodeId id = 0; id < cfg.numNodes; ++id)
            n.attach(id, push_src, &order);
        n.send(msg(MsgType::InvAck, 1, 0));
        n.send(msg(MsgType::InvAck, 2, 0));
        EXPECT_TRUE(q.run());
        ASSERT_EQ(order.size(), 2u);
        EXPECT_EQ(order[0], 1);
        EXPECT_EQ(order[1], 2);
    }
}
