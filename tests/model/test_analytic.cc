/** @file Tests for the Section 5 analytic model (Equations 1-2 and
 * the Figure 6 behaviours the paper calls out). */

#include <gtest/gtest.h>

#include "model/analytic.hh"

using namespace mspdsm;

TEST(Model, PerfectPredictionGivesRtlCommSpeedup)
{
    // p=1, f=1: every remote access becomes local, so communication
    // speeds up by exactly rtl.
    ModelParams mp;
    mp.p = 1.0;
    mp.f = 1.0;
    mp.rtl = 4.0;
    EXPECT_DOUBLE_EQ(commSpeedup(mp), 4.0);
}

TEST(Model, NoSpeculationIsNeutral)
{
    ModelParams mp;
    mp.f = 0.0;
    EXPECT_DOUBLE_EQ(commSpeedup(mp), 1.0);
    mp.c = 0.7;
    EXPECT_DOUBLE_EQ(speedup(mp), 1.0);
}

TEST(Model, ZeroCommunicationAppGainsNothing)
{
    ModelParams mp;
    mp.c = 0.0;
    mp.p = 1.0;
    EXPECT_DOUBLE_EQ(speedup(mp), 1.0);
}

TEST(Model, FullyCommunicationBoundEqualsCommSpeedup)
{
    ModelParams mp;
    mp.c = 1.0;
    mp.p = 0.9;
    EXPECT_DOUBLE_EQ(speedup(mp), commSpeedup(mp));
}

TEST(Model, LowAccuracySlowsDown)
{
    // Figure 6 top-left: accuracies of 10%-50% consistently slow the
    // application down (speedup < 1) at n=2, rtl=4, f=1.
    for (double p : {0.1, 0.3, 0.5}) {
        ModelParams mp;
        mp.p = p;
        mp.c = 0.8;
        EXPECT_LT(speedup(mp), 1.0) << "p=" << p;
    }
}

TEST(Model, SeventyPercentAccuracyCapsNear25Percent)
{
    // Figure 6: p=0.7 at best speeds up a fully communication-bound
    // application by ~25%.
    ModelParams mp;
    mp.p = 0.7;
    mp.c = 1.0;
    EXPECT_NEAR(speedup(mp), 1.29, 0.05);
}

TEST(Model, SpeedupMonotoneInAccuracy)
{
    double last = 0.0;
    for (double p = 0.0; p <= 1.0; p += 0.1) {
        ModelParams mp;
        mp.p = p;
        mp.c = 0.9;
        const double s = speedup(mp);
        EXPECT_GT(s, last);
        last = s;
    }
}

TEST(Model, SpeedupMonotoneInCoverage)
{
    // With high accuracy, more speculated requests always help.
    double last = 0.0;
    for (double f = 0.0; f <= 1.0; f += 0.1) {
        ModelParams mp;
        mp.f = f;
        mp.p = 0.95;
        mp.c = 0.9;
        const double s = speedup(mp);
        EXPECT_GE(s, last);
        last = s;
    }
}

TEST(Model, HigherRtlBenefitsMore)
{
    // Figure 6 bottom-right: clusters (rtl 8) gain more than Origin
    // (rtl 2).
    ModelParams mp;
    mp.p = 0.9;
    mp.c = 0.8;
    mp.rtl = 2.0;
    const double origin = speedup(mp);
    mp.rtl = 4.0;
    const double mercury = speedup(mp);
    mp.rtl = 8.0;
    const double numaq = speedup(mp);
    EXPECT_LT(origin, mercury);
    EXPECT_LT(mercury, numaq);
}

TEST(Model, PenaltyMattersLittleAtHighAccuracy)
{
    // Figure 6 top-right: "performance is not as sensitive to
    // misspeculation penalty at a high prediction accuracy", and
    // speedups persist even at a penalty factor of 4.
    ModelParams hi;
    hi.p = 0.9;
    hi.c = 1.0;
    hi.n = 1.5;
    const double hi_lo_pen = speedup(hi);
    hi.n = 4.0;
    EXPECT_GT(speedup(hi), 1.0); // still a speedup at n=4
    hi.n = 8.0;
    const double hi_hi_pen = speedup(hi);
    EXPECT_LT(hi_lo_pen / hi_hi_pen, 3.0);

    ModelParams lo;
    lo.p = 0.5;
    lo.c = 1.0;
    lo.n = 1.5;
    const double lo_lo_pen = speedup(lo);
    lo.n = 8.0;
    const double lo_hi_pen = speedup(lo);
    // At low accuracy the penalty dominates: far wider spread.
    EXPECT_GT(lo_lo_pen / lo_hi_pen, 3.0);
}

TEST(Model, SweepCoversUnitInterval)
{
    ModelParams mp;
    const auto pts = sweepCommunicationRatio(mp, 11);
    ASSERT_EQ(pts.size(), 11u);
    EXPECT_DOUBLE_EQ(pts.front().c, 0.0);
    EXPECT_DOUBLE_EQ(pts.back().c, 1.0);
    EXPECT_NEAR(pts[5].c, 0.5, 1e-12);
}

TEST(Model, SweepEndpointsMatchClosedForm)
{
    ModelParams mp;
    mp.p = 0.9;
    const auto pts = sweepCommunicationRatio(mp, 5);
    EXPECT_DOUBLE_EQ(pts.front().speedup, 1.0);
    mp.c = 1.0;
    EXPECT_DOUBLE_EQ(pts.back().speedup, speedup(mp));
}

TEST(ModelDeathTest, RejectsBadParameters)
{
    ModelParams mp;
    mp.f = 1.5;
    EXPECT_DEATH(commSpeedup(mp), "f out of");
    ModelParams mp2;
    mp2.c = -0.1;
    EXPECT_DEATH(speedup(mp2), "c out of");
    ModelParams mp3;
    mp3.rtl = 0.0;
    EXPECT_DEATH(commSpeedup(mp3), "rtl");
}

// Parameterized identity: Equation 2 decomposes into Equation 1.
class ModelIdentity
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(ModelIdentity, Eq2EqualsAmdahlOverEq1)
{
    const auto [c, p] = GetParam();
    ModelParams mp;
    mp.c = c;
    mp.p = p;
    const double cs = commSpeedup(mp);
    const double expect = 1.0 / ((1.0 - c) + c / cs);
    EXPECT_NEAR(speedup(mp), expect, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelIdentity,
    ::testing::Combine(::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                       ::testing::Values(0.1, 0.5, 0.9, 1.0)));
