/** @file Structural tests of the seven application generators. */

#include <gtest/gtest.h>

#include <set>

#include "workload/suite.hh"

using namespace mspdsm;

namespace
{

AppParams
smallParams()
{
    AppParams p;
    p.numProcs = 16;
    p.scale = 0.25;
    p.iterations = 3;
    return p;
}

/** Count ops by kind across all traces. */
struct OpCounts
{
    std::uint64_t reads = 0, writes = 0, computes = 0, barriers = 0;
};

OpCounts
count(const Workload &w)
{
    OpCounts c;
    for (const Trace &t : w.traces) {
        for (const TraceOp &op : t) {
            switch (op.kind) {
              case OpKind::Read:
                ++c.reads;
                break;
              case OpKind::Write:
                ++c.writes;
                break;
              case OpKind::Compute:
                ++c.computes;
                break;
              case OpKind::Barrier:
                ++c.barriers;
                break;
            }
        }
    }
    return c;
}

} // namespace

TEST(Suite, HasSevenApplicationsInPaperOrder)
{
    const auto &suite = appSuite();
    ASSERT_EQ(suite.size(), 7u);
    EXPECT_EQ(suite[0].name, "appbt");
    EXPECT_EQ(suite[1].name, "barnes");
    EXPECT_EQ(suite[2].name, "em3d");
    EXPECT_EQ(suite[3].name, "moldyn");
    EXPECT_EQ(suite[4].name, "ocean");
    EXPECT_EQ(suite[5].name, "tomcatv");
    EXPECT_EQ(suite[6].name, "unstructured");
}

TEST(Suite, Table2InputsRecorded)
{
    for (const AppInfo &info : appSuite()) {
        EXPECT_FALSE(info.paperInput.empty()) << info.name;
        EXPECT_GT(info.paperIters, 0u) << info.name;
        EXPECT_GT(info.defaultIters, 0u) << info.name;
    }
}

TEST(Suite, MakeAppRejectsUnknown)
{
    EXPECT_DEATH(makeApp("notanapp", smallParams()), "unknown");
}

TEST(Suite, EveryAppGeneratesOneTracePerProcessor)
{
    for (const AppInfo &info : appSuite()) {
        const Workload w = makeApp(info.name, smallParams());
        EXPECT_EQ(w.name, info.name);
        EXPECT_EQ(w.traces.size(), 16u) << info.name;
        for (const Trace &t : w.traces)
            EXPECT_FALSE(t.empty()) << info.name;
    }
}

TEST(Suite, BarrierCountsMatchAcrossProcessors)
{
    // Mismatched barrier counts would deadlock the simulation.
    for (const AppInfo &info : appSuite()) {
        const Workload w = makeApp(info.name, smallParams());
        std::uint64_t expected = ~0ull;
        for (const Trace &t : w.traces) {
            std::uint64_t n = 0;
            for (const TraceOp &op : t)
                n += op.kind == OpKind::Barrier;
            if (expected == ~0ull)
                expected = n;
            EXPECT_EQ(n, expected) << info.name;
        }
    }
}

TEST(Suite, EveryAppCommunicates)
{
    for (const AppInfo &info : appSuite()) {
        const Workload w = makeApp(info.name, smallParams());
        const OpCounts c = count(w);
        EXPECT_GT(c.reads, 0u) << info.name;
        EXPECT_GT(c.writes, 0u) << info.name;
    }
}

TEST(Suite, DeterministicForFixedSeed)
{
    for (const AppInfo &info : appSuite()) {
        const Workload a = makeApp(info.name, smallParams());
        const Workload b = makeApp(info.name, smallParams());
        ASSERT_EQ(a.traces.size(), b.traces.size());
        for (std::size_t q = 0; q < a.traces.size(); ++q) {
            ASSERT_EQ(a.traces[q].size(), b.traces[q].size())
                << info.name;
            for (std::size_t i = 0; i < a.traces[q].size(); ++i) {
                EXPECT_EQ(a.traces[q][i].kind, b.traces[q][i].kind);
                EXPECT_EQ(a.traces[q][i].addr, b.traces[q][i].addr);
                EXPECT_EQ(a.traces[q][i].cycles,
                          b.traces[q][i].cycles);
            }
        }
    }
}

TEST(Suite, SeedChangesRandomizedApps)
{
    AppParams p1 = smallParams();
    AppParams p2 = smallParams();
    p2.seed = 999;
    // barnes and unstructured are randomized; their traces differ.
    for (const char *name : {"barnes", "unstructured"}) {
        const Workload a = makeApp(name, p1);
        const Workload b = makeApp(name, p2);
        bool differ = false;
        for (std::size_t q = 0; q < a.traces.size() && !differ; ++q)
            differ = a.traces[q] != b.traces[q];
        EXPECT_TRUE(differ) << name;
    }
}

TEST(Suite, ScaleGrowsFootprint)
{
    AppParams small = smallParams();
    AppParams big = smallParams();
    big.scale = 1.0;
    for (const AppInfo &info : appSuite()) {
        std::set<Addr> saddr, baddr;
        const Workload ws = makeApp(info.name, small);
        const Workload wb = makeApp(info.name, big);
        for (const Trace &t : ws.traces)
            for (const TraceOp &op : t)
                if (op.kind == OpKind::Read ||
                    op.kind == OpKind::Write)
                    saddr.insert(op.addr / 32);
        for (const Trace &t : wb.traces)
            for (const TraceOp &op : t)
                if (op.kind == OpKind::Read ||
                    op.kind == OpKind::Write)
                    baddr.insert(op.addr / 32);
        EXPECT_GT(baddr.size(), saddr.size()) << info.name;
    }
}

TEST(Suite, Em3dProducersOwnTheirRegions)
{
    // Every block written by processor q in em3d is homed at q (the
    // layout property SWI relies on).
    ProtoConfig proto;
    const Workload w = makeApp("em3d", smallParams());
    for (unsigned q = 0; q < w.traces.size(); ++q) {
        for (const TraceOp &op : w.traces[q]) {
            if (op.kind == OpKind::Write) {
                EXPECT_EQ(proto.homeOf(proto.blockOf(op.addr)), q);
            }
        }
    }
}

TEST(Suite, BarnesHasZeroJitterPerPaper)
{
    const Workload w = makeApp("barnes", smallParams());
    EXPECT_EQ(w.netJitter, 0u);
    const Workload e = makeApp("em3d", smallParams());
    EXPECT_GT(e.netJitter, 0u);
}

TEST(Suite, IterationsParameterScalesLength)
{
    AppParams p3 = smallParams();
    AppParams p6 = smallParams();
    p6.iterations = 6;
    for (const AppInfo &info : appSuite()) {
        const OpCounts c3 = count(makeApp(info.name, p3));
        const OpCounts c6 = count(makeApp(info.name, p6));
        EXPECT_GT(c6.reads, c3.reads) << info.name;
    }
}
