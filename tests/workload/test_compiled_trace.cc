/** @file Trace compilation: packed-op round trips across the whole
 * app suite, compute fusion, hit-eligibility annotation, and the
 * packed layout itself. */

#include <gtest/gtest.h>

#include "workload/compiled_trace.hh"
#include "workload/suite.hh"

using namespace mspdsm;

namespace
{

AppParams
params(double scale, unsigned iters = 2)
{
    AppParams p;
    p.scale = scale;
    p.iterations = iters;
    return p;
}

} // namespace

TEST(CompiledOp, PackedLayoutRoundTripsFields)
{
    const CompiledOp c = CompiledOp::make(OpKind::Compute, 52000);
    EXPECT_EQ(c.kind(), OpKind::Compute);
    EXPECT_EQ(c.payload(), 52000u);
    EXPECT_FALSE(c.hitEligible());

    const CompiledOp r = CompiledOp::make(OpKind::Read, 0x1234567, true);
    EXPECT_EQ(r.kind(), OpKind::Read);
    EXPECT_EQ(r.payload(), 0x1234567u);
    EXPECT_TRUE(r.hitEligible());

    const CompiledOp b = CompiledOp::make(OpKind::Barrier, 0);
    EXPECT_EQ(b.kind(), OpKind::Barrier);

    // The payload field holds the largest block id / fused delay the
    // compiler accepts.
    const CompiledOp m =
        CompiledOp::make(OpKind::Write, CompiledOp::payloadMax);
    EXPECT_EQ(m.payload(), CompiledOp::payloadMax);
    EXPECT_EQ(m.kind(), OpKind::Write);
}

TEST(CompiledTrace, ComputeFusionMergesRuns)
{
    const AddrMap map((ProtoConfig{}));
    Trace t{TraceOp::compute(8),  TraceOp::compute(150),
            TraceOp::read(32),    TraceOp::compute(6),
            TraceOp::compute(0), // dropped: timing no-op
            TraceOp::compute(500), TraceOp::barrier()};
    std::vector<CompiledOp> out;
    const std::size_t n = compileTrace(t, map, out);
    ASSERT_EQ(n, 4u);
    EXPECT_EQ(out[0].kind(), OpKind::Compute);
    EXPECT_EQ(out[0].payload(), 158u);
    EXPECT_EQ(out[1].kind(), OpKind::Read);
    EXPECT_EQ(out[2].kind(), OpKind::Compute);
    EXPECT_EQ(out[2].payload(), 506u);
    EXPECT_EQ(out[3].kind(), OpKind::Barrier);
}

TEST(CompiledTrace, OversizedComputeDelaysPanicEvenWhenFused)
{
    // Regression: the fused branch used to sum payloads before the
    // range check, so a near-2^64 delay following a small one wrapped
    // the uint64 sum below payloadMax and compiled silently into a
    // tiny delay. Every compute operand must be validated first.
    const AddrMap map((ProtoConfig{}));
    const Tick huge = ~Tick{0} - 60; // wraps to 39 if summed with 100
    std::vector<CompiledOp> out;
    Trace first{TraceOp::compute(huge)};
    EXPECT_DEATH(compileTrace(first, map, out), "overflow");
    Trace fused{TraceOp::compute(100), TraceOp::compute(huge)};
    EXPECT_DEATH(compileTrace(fused, map, out), "overflow");
}

TEST(CompiledTrace, HitHintsReflectTraceHistory)
{
    const ProtoConfig cfg;
    const AddrMap map(cfg);
    const Addr a = 0, b = Addr{cfg.blockSize} * 7;
    Trace t{TraceOp::read(a),  // first touch: not eligible
            TraceOp::read(a),  // seen: eligible
            TraceOp::write(a), // never written: not eligible
            TraceOp::write(a), // written: eligible
            TraceOp::write(b), // first touch
            TraceOp::read(b)}; // seen (via the write): eligible
    std::vector<CompiledOp> out;
    compileTrace(t, map, out);
    ASSERT_EQ(out.size(), 6u);
    EXPECT_FALSE(out[0].hitEligible());
    EXPECT_TRUE(out[1].hitEligible());
    EXPECT_FALSE(out[2].hitEligible());
    EXPECT_TRUE(out[3].hitEligible());
    EXPECT_FALSE(out[4].hitEligible());
    EXPECT_TRUE(out[5].hitEligible());
}

/**
 * The satellite round-trip guarantee: decode(compile(t)) equals the
 * canonical form of t for every generator in the suite, and for the
 * repo's generators (block-aligned addresses, no zero delays) the
 * canonical form is operation-for-operation timing-identical to the
 * original: same op sequence with compute runs merged, identical
 * total compute cycles, identical memory/barrier ops.
 */
TEST(CompiledTrace, RoundTripAcrossAppSuiteAtTwoScales)
{
    for (const double scale : {0.25, 1.0}) {
        const AppParams p = params(scale);
        for (const AppInfo &info : appSuite()) {
            const Workload w = info.make([&] {
                AppParams q = p;
                q.iterations = info.defaultIters >= 2 ? 2 : 1;
                return q;
            }());
            const AddrMap map(p.proto);
            const CompiledWorkload cw(w, map);
            ASSERT_EQ(cw.numTraces(), w.traces.size()) << info.name;
            for (std::size_t i = 0; i < w.traces.size(); ++i) {
                const Trace decoded =
                    decodeTrace(cw.trace(i), cw.blockSize());
                const Trace canon = canonicalTrace(w.traces[i], map);
                ASSERT_EQ(decoded, canon)
                    << info.name << " proc " << i << " scale " << scale;

                // Timing equivalence of canonicalization itself:
                // cycles and op multiset are preserved.
                Tick cyc_orig = 0, cyc_canon = 0;
                std::size_t mem_orig = 0, mem_canon = 0;
                for (const TraceOp &op : w.traces[i]) {
                    cyc_orig += op.cycles;
                    mem_orig += op.kind == OpKind::Read ||
                                op.kind == OpKind::Write;
                }
                for (const TraceOp &op : canon) {
                    cyc_canon += op.cycles;
                    mem_canon += op.kind == OpKind::Read ||
                                 op.kind == OpKind::Write;
                }
                EXPECT_EQ(cyc_orig, cyc_canon) << info.name;
                EXPECT_EQ(mem_orig, mem_canon) << info.name;
            }
        }
    }
}

TEST(CompiledTrace, ArenaIsPackedAndSpansPartitionIt)
{
    const AppParams p = params(0.25);
    const Workload w = makeEm3d(p);
    const CompiledWorkload cw(w, AddrMap(p.proto));
    // Compute fusion only ever shrinks the stream.
    EXPECT_LE(cw.totalOps(), cw.sourceOps());
    EXPECT_GT(cw.totalOps(), 0u);
    std::size_t sum = 0;
    for (std::size_t i = 0; i < cw.numTraces(); ++i) {
        const CompiledTrace t = cw.trace(i);
        // Spans tile the arena contiguously in processor order.
        if (i > 0) {
            EXPECT_EQ(t.begin(),
                      cw.trace(i - 1).end());
        }
        sum += t.size();
    }
    EXPECT_EQ(sum, cw.totalOps());
}
