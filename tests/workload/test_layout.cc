/** @file Tests for Layout / Region / PhaseSchedule / TraceBuilder. */

#include <gtest/gtest.h>

#include "workload/layout.hh"

using namespace mspdsm;

TEST(Layout, AllocAtPlacesRegionOnRequestedHome)
{
    ProtoConfig cfg;
    Layout layout(cfg);
    for (NodeId home : {NodeId(0), NodeId(5), NodeId(15), NodeId(3)}) {
        const Region r = layout.allocAt(home, 16);
        for (unsigned i = 0; i < r.blocks; ++i)
            EXPECT_EQ(cfg.homeOf(cfg.blockOf(r.addr(i))), home);
    }
}

TEST(Layout, RegionsNeverOverlap)
{
    ProtoConfig cfg;
    Layout layout(cfg);
    const Region a = layout.allocAt(2, 8);
    const Region b = layout.allocAt(2, 8);
    EXPECT_GE(b.base, a.base + cfg.pageSize);
}

TEST(Layout, AddressesAreBlockAligned)
{
    ProtoConfig cfg;
    Layout layout(cfg);
    const Region r = layout.allocAt(1, 4);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(r.addr(i) % cfg.blockSize, 0u);
        EXPECT_EQ(cfg.blockOf(r.addr(i)),
                  cfg.blockOf(r.addr(0)) + i);
    }
}

TEST(Layout, AllocSpreadsWithoutConstraint)
{
    ProtoConfig cfg;
    Layout layout(cfg);
    const Region r = layout.alloc(cfg.blocksPerPage() * 3);
    EXPECT_EQ(r.blocks, cfg.blocksPerPage() * 3);
    // Spans three pages and therefore three homes.
    EXPECT_NE(cfg.homeOf(cfg.blockOf(r.addr(0))),
              cfg.homeOf(cfg.blockOf(
                  r.addr(cfg.blocksPerPage()))));
}

TEST(LayoutDeathTest, RefusesMultiPageHomedRegion)
{
    ProtoConfig cfg;
    Layout layout(cfg);
    EXPECT_DEATH(layout.allocAt(0, cfg.blocksPerPage() + 1), "spans");
}

TEST(TraceBuilder, AccumulatesOps)
{
    TraceBuilder tb;
    tb.compute(10).read(0x100).write(0x200).barrier();
    const Trace t = tb.take();
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0].kind, OpKind::Compute);
    EXPECT_EQ(t[1].kind, OpKind::Read);
    EXPECT_EQ(t[1].addr, 0x100u);
    EXPECT_EQ(t[2].kind, OpKind::Write);
    EXPECT_EQ(t[3].kind, OpKind::Barrier);
}

TEST(TraceBuilder, ZeroComputeIsElided)
{
    TraceBuilder tb;
    tb.compute(0).read(0x40);
    EXPECT_EQ(tb.size(), 1u);
}

TEST(PhaseSchedule, EmitsInTimeOrderWithGaps)
{
    PhaseSchedule sched;
    sched.at(100, TraceOp::read(0x40));
    sched.at(20, TraceOp::write(0x80));
    TraceBuilder tb;
    sched.emit(tb);
    const Trace t = tb.take();
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0].kind, OpKind::Compute);
    EXPECT_EQ(t[0].cycles, 20u);
    EXPECT_EQ(t[1].kind, OpKind::Write);
    EXPECT_EQ(t[2].kind, OpKind::Compute);
    EXPECT_EQ(t[2].cycles, 80u);
    EXPECT_EQ(t[3].kind, OpKind::Read);
}

TEST(PhaseSchedule, StableForEqualTimes)
{
    PhaseSchedule sched;
    sched.at(50, TraceOp::read(0x1 * 32));
    sched.at(50, TraceOp::read(0x2 * 32));
    sched.at(50, TraceOp::read(0x3 * 32));
    TraceBuilder tb;
    sched.emit(tb);
    const Trace t = tb.take();
    ASSERT_EQ(t.size(), 4u); // compute + three reads
    EXPECT_EQ(t[1].addr, 0x1u * 32);
    EXPECT_EQ(t[2].addr, 0x2u * 32);
    EXPECT_EQ(t[3].addr, 0x3u * 32);
}

TEST(PhaseSchedule, EmitResetsForReuse)
{
    PhaseSchedule sched;
    sched.at(10, TraceOp::read(0x40));
    TraceBuilder tb;
    sched.emit(tb);
    sched.at(5, TraceOp::write(0x80));
    sched.emit(tb);
    const Trace t = tb.take();
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[3].kind, OpKind::Write);
}
