/** @file Harness driver tests: the experiment entry points used by
 * every bench binary. */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

using namespace mspdsm;

namespace
{

ExperimentConfig
tiny()
{
    ExperimentConfig ec;
    ec.scale = 0.25;
    ec.iterations = 2;
    return ec;
}

} // namespace

TEST(Harness, BuildWorkloadAppliesIterationOverride)
{
    ExperimentConfig e2 = tiny();
    ExperimentConfig e4 = tiny();
    e4.iterations = 4;
    const Workload w2 = buildWorkload("em3d", e2);
    const Workload w4 = buildWorkload("em3d", e4);
    EXPECT_GT(w4.traces[0].size(), w2.traces[0].size());
}

TEST(Harness, BuildWorkloadUsesAppDefaultsWhenZero)
{
    ExperimentConfig ec = tiny();
    ec.iterations = 0;
    const Workload w = buildWorkload("barnes", ec);
    EXPECT_FALSE(w.traces[0].empty());
}

TEST(Harness, AccuracyRunAttachesThreeObservers)
{
    const RunResult r = runAccuracy("tomcatv", 1, tiny());
    ASSERT_EQ(r.observers.size(), 3u);
    EXPECT_EQ(r.observers[0].name, "Cosmos");
    EXPECT_EQ(r.observers[1].name, "MSP");
    EXPECT_EQ(r.observers[2].name, "VMSP");
    for (const ObserverResult &o : r.observers)
        EXPECT_GT(o.stats.observed.value(), 0u);
}

TEST(Harness, AccuracyRunIsBaseDsm)
{
    const RunResult r = runAccuracy("tomcatv", 1, tiny());
    EXPECT_EQ(r.specSentFr + r.specSentSwi + r.swiSent, 0u);
}

TEST(Harness, AccuracyDepthIsApplied)
{
    const RunResult d1 = runAccuracy("appbt", 1, tiny());
    const RunResult d4 = runAccuracy("appbt", 4, tiny());
    EXPECT_EQ(d1.observers[0].depth, 1u);
    EXPECT_EQ(d4.observers[0].depth, 4u);
    // Deeper history learns slower: fewer predictions on a short run.
    EXPECT_LT(d4.observers[1].stats.predicted.value(),
              d1.observers[1].stats.predicted.value());
}

TEST(Harness, SpecRunUsesWorkloadJitter)
{
    // em3d prescribes jitter (ack races); barnes prescribes zero.
    // Indirect check: two different-seed em3d runs differ in timing,
    // two barnes runs with different seeds but identical traces...
    // still differ via workload randomness, so check determinism of
    // the pair instead.
    ExperimentConfig a = tiny();
    const RunResult r1 = runSpec("em3d", SpecMode::None, a);
    const RunResult r2 = runSpec("em3d", SpecMode::None, a);
    EXPECT_EQ(r1.execTicks, r2.execTicks);
}

TEST(Harness, UnknownAppIsFatal)
{
    EXPECT_DEATH(buildWorkload("spice", tiny()), "unknown");
}

TEST(Harness, AllModesRunAllApps)
{
    for (const AppInfo &info : appSuite()) {
        for (SpecMode m : {SpecMode::None, SpecMode::FirstRead,
                           SpecMode::SwiFirstRead}) {
            const RunResult r = runSpec(info.name, m, tiny());
            EXPECT_GT(r.execTicks, 0u)
                << info.name << "/" << specModeName(m);
        }
    }
}
