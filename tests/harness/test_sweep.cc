/** @file Sweep-engine tests: a parallel sweep must be bit-identical
 * to the serial one, results must come back in submission order, and
 * tick-limit guard trips must surface structurally in the summary
 * table and the JSON record. */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/sweep.hh"

using namespace mspdsm;

namespace
{

ExperimentConfig
tiny()
{
    ExperimentConfig ec;
    ec.scale = 0.25;
    ec.iterations = 2;
    return ec;
}

/** Queue the whole paper methodology at tiny scale. */
void
queueSuite(SweepRunner &s, const ExperimentConfig &ec)
{
    for (const AppInfo &info : appSuite()) {
        s.addAccuracy(info.name, 1, ec);
        s.addAccuracy(info.name, 4, ec);
        for (SpecMode m : {SpecMode::None, SpecMode::FirstRead,
                           SpecMode::SwiFirstRead})
            s.addSpec(info.name, m, ec);
    }
}

/** Field-by-field equality of everything the benches publish. */
void
expectIdentical(const RunResult &a, const RunResult &b,
                const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.execTicks, b.execTicks);
    EXPECT_EQ(a.avgRequestWait, b.avgRequestWait);
    EXPECT_EQ(a.avgMemWait, b.avgMemWait);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.barrierEpisodes, b.barrierEpisodes);
    EXPECT_EQ(a.specSentFr, b.specSentFr);
    EXPECT_EQ(a.specSentSwi, b.specSentSwi);
    EXPECT_EQ(a.specMissFr, b.specMissFr);
    EXPECT_EQ(a.specMissSwi, b.specMissSwi);
    EXPECT_EQ(a.specServedFr, b.specServedFr);
    EXPECT_EQ(a.specServedSwi, b.specServedSwi);
    EXPECT_EQ(a.specDropped, b.specDropped);
    EXPECT_EQ(a.swiSent, b.swiSent);
    EXPECT_EQ(a.swiPremature, b.swiPremature);
    EXPECT_EQ(a.swiSuppressed, b.swiSuppressed);
    EXPECT_EQ(a.pred.predicted.value(), b.pred.predicted.value());
    EXPECT_EQ(a.pred.correct.value(), b.pred.correct.value());
    EXPECT_EQ(a.pred.observed.value(), b.pred.observed.value());
    EXPECT_EQ(a.storage.pteTotal, b.storage.pteTotal);
    ASSERT_EQ(a.observers.size(), b.observers.size());
    for (std::size_t k = 0; k < a.observers.size(); ++k) {
        EXPECT_EQ(a.observers[k].name, b.observers[k].name);
        EXPECT_EQ(a.observers[k].depth, b.observers[k].depth);
        EXPECT_EQ(a.observers[k].stats.observed.value(),
                  b.observers[k].stats.observed.value());
        EXPECT_EQ(a.observers[k].stats.predicted.value(),
                  b.observers[k].stats.predicted.value());
        EXPECT_EQ(a.observers[k].stats.correct.value(),
                  b.observers[k].stats.correct.value());
        EXPECT_EQ(a.observers[k].storage.pteTotal,
                  b.observers[k].storage.pteTotal);
        EXPECT_EQ(a.observers[k].storage.blocksAllocated,
                  b.observers[k].storage.blocksAllocated);
    }
}

} // namespace

TEST(Sweep, ParallelIsBitIdenticalToSerial)
{
    // The acceptance bar of the sweep engine: --jobs 8 and --jobs 1
    // produce the same RunResults field for field. The runs are
    // seeded per job and share no state, so the schedule the pool
    // happens to pick must be invisible.
    SweepOptions serial;
    serial.jobs = 1;
    SweepRunner s1(serial);
    queueSuite(s1, tiny());

    SweepOptions parallel;
    parallel.jobs = 8;
    SweepRunner s8(parallel);
    queueSuite(s8, tiny());

    const auto &r1 = s1.results();
    const auto &r8 = s8.results();
    ASSERT_EQ(r1.size(), r8.size());
    for (std::size_t i = 0; i < r1.size(); ++i) {
        EXPECT_EQ(r1[i].label, r8[i].label);
        expectIdentical(r1[i].result, r8[i].result, r1[i].label);
    }
}

TEST(Sweep, ResultsComeBackInSubmissionOrder)
{
    SweepOptions o;
    o.jobs = 4;
    SweepRunner s(o);
    // Custom jobs with wildly different runtimes: completion order
    // differs from submission order, results() must not.
    for (int i = 0; i < 12; ++i) {
        s.add("job" + std::to_string(i), [i] {
            RunResult r;
            r.execTicks = static_cast<Tick>(i);
            return r;
        }, "crossbar");
    }
    const auto &recs = s.results();
    ASSERT_EQ(recs.size(), 12u);
    for (int i = 0; i < 12; ++i) {
        EXPECT_EQ(recs[i].label, "job" + std::to_string(i));
        EXPECT_EQ(recs[i].result.execTicks, static_cast<Tick>(i));
    }
}

TEST(Sweep, GuardTripSurfacesInSummaryAndJson)
{
    // A run that trips the deadlock guard must show as a TICK-LIMIT
    // row in the summary table and a structured field in the JSON --
    // not a stderr warning.
    SweepOptions o;
    o.jobs = 2;
    SweepRunner s(o);
    ExperimentConfig ec = tiny();
    s.addSpec("em3d", SpecMode::None, ec); // completes
    ec.tickLimit = 1000;                   // guard trips mid-run
    s.addSpec("em3d", SpecMode::None, ec);

    const auto &recs = s.results();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].result.status, RunStatus::Completed);
    EXPECT_EQ(recs[1].result.status, RunStatus::TickLimit);
    EXPECT_EQ(s.guardTrips(), 1u);

    std::ostringstream table;
    s.printSummary(table);
    EXPECT_NE(table.str().find("status"), std::string::npos);
    EXPECT_NE(table.str().find("TICK-LIMIT"), std::string::npos);

    std::ostringstream json;
    s.writeJson(json, "test_sweep");
    EXPECT_NE(json.str().find("\"schema\": \"mspdsm-sweep-v1\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"guard_trips\": 1"), std::string::npos);
    EXPECT_NE(json.str().find("\"status\": \"tick_limit\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"tick_limit\": true"),
              std::string::npos);
}

TEST(Sweep, TickLimitConfigReachesTheSimulator)
{
    // ExperimentConfig::tickLimit caps the run: partial statistics,
    // ticks at most the limit.
    ExperimentConfig ec = tiny();
    ec.tickLimit = 1000;
    const RunResult r = runSpec("em3d", SpecMode::None, ec);
    EXPECT_EQ(r.status, RunStatus::TickLimit);
    EXPECT_LE(r.execTicks, Tick{1000});
}

TEST(Sweep, JobsZeroMeansHardwareConcurrency)
{
    SweepOptions o;
    o.jobs = 0;
    SweepRunner s(o);
    EXPECT_GE(s.jobs(), 1u);
    s.add("one", [] { return RunResult{}; }, "crossbar");
    EXPECT_EQ(s.results().size(), 1u);
}

TEST(Sweep, WallClockAndPerRunSecondsAreRecorded)
{
    SweepOptions o;
    o.jobs = 2;
    SweepRunner s(o);
    s.addSpec("tomcatv", SpecMode::None, tiny());
    s.addSpec("ocean", SpecMode::None, tiny());
    const auto &recs = s.results();
    EXPECT_GT(s.wallSeconds(), 0.0);
    for (const SweepRecord &r : recs)
        EXPECT_GE(r.seconds, 0.0);
}
