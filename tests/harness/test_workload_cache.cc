/** @file Workload-cache keying and sharing: equal (app, params)
 * share one compiled workload, differing params do not, and the
 * counters surface exactly what the sweep JSON reports. */

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "harness/experiment.hh"
#include "harness/workload_cache.hh"

using namespace mspdsm;

namespace
{

AppParams
params(std::uint64_t seed = 42)
{
    AppParams p;
    p.scale = 0.25;
    p.iterations = 2;
    p.seed = seed;
    return p;
}

struct CacheTest : ::testing::Test
{
    void SetUp() override { WorkloadCache::clear(); }
    void TearDown() override { WorkloadCache::clear(); }
};

} // namespace

TEST_F(CacheTest, EqualKeysShareOneInstance)
{
    const auto a = WorkloadCache::get("em3d", params());
    const auto b = WorkloadCache::get("em3d", params());
    EXPECT_EQ(a.get(), b.get()); // same object, not an equal copy
    const WorkloadCacheStats s = WorkloadCache::stats();
    EXPECT_EQ(s.generations, 1u);
    EXPECT_EQ(s.hits, 1u);
}

TEST_F(CacheTest, DifferingSeedGeneratesSeparately)
{
    const auto a = WorkloadCache::get("em3d", params(42));
    const auto b = WorkloadCache::get("em3d", params(43));
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(WorkloadCache::stats().generations, 2u);
    EXPECT_EQ(WorkloadCache::stats().hits, 0u);
}

TEST_F(CacheTest, DifferingAppOrScaleGeneratesSeparately)
{
    const auto a = WorkloadCache::get("em3d", params());
    const auto b = WorkloadCache::get("barnes", params());
    AppParams big = params();
    big.scale = 0.5;
    const auto c = WorkloadCache::get("em3d", big);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(WorkloadCache::stats().generations, 3u);
}

TEST_F(CacheTest, NonFiniteScaleIsRejected)
{
    // scale is keyed by bit pattern in an ordered map; a NaN would
    // break the strict weak ordering, so the cache must refuse it
    // before it reaches the key.
    AppParams p = params();
    p.scale = std::numeric_limits<double>::quiet_NaN();
    EXPECT_DEATH(WorkloadCache::get("em3d", p), "scale");
    p.scale = std::numeric_limits<double>::infinity();
    EXPECT_DEATH(WorkloadCache::get("em3d", p), "scale");
}

TEST_F(CacheTest, ConcurrentRequestsGenerateOnce)
{
    constexpr int n = 8;
    std::vector<std::shared_ptr<const CompiledWorkload>> got(n);
    std::vector<std::thread> threads;
    for (int i = 0; i < n; ++i) {
        threads.emplace_back([&got, i] {
            got[i] = WorkloadCache::get("ocean", params());
        });
    }
    for (auto &t : threads)
        t.join();
    for (int i = 1; i < n; ++i)
        EXPECT_EQ(got[0].get(), got[i].get());
    const WorkloadCacheStats s = WorkloadCache::stats();
    EXPECT_EQ(s.generations, 1u);
    EXPECT_EQ(s.hits, static_cast<std::uint64_t>(n - 1));
}

TEST_F(CacheTest, ExperimentRunsShareTheCachedWorkload)
{
    // Two accuracy depths and a spec mode over one (app, params):
    // exactly one generation, and results identical to fresh runs.
    ExperimentConfig ec;
    ec.scale = 0.25;
    ec.iterations = 2;
    const RunResult r1 = runAccuracy("em3d", 1, ec);
    const RunResult r2 = runAccuracy("em3d", 2, ec);
    const RunResult r3 = runSpec("em3d", SpecMode::SwiFirstRead, ec);
    EXPECT_EQ(WorkloadCache::stats().generations, 1u);
    EXPECT_EQ(WorkloadCache::stats().hits, 2u);
    EXPECT_TRUE(r1.completed());
    EXPECT_TRUE(r2.completed());
    EXPECT_TRUE(r3.completed());
    // The golden-pinned values still hold through the cache (the
    // full set lives in tests/integration/test_golden.cc).
    EXPECT_EQ(r1.execTicks, 124574u);
    EXPECT_EQ(r1.messages, 2208u);
    EXPECT_EQ(r3.messages, 1984u);
}
