/** @file Unit tests for the interconnect topology geometry: route
 * shapes, hop counts, link numbering, and the name helpers. */

#include <gtest/gtest.h>

#include <set>

#include "topo/topology.hh"

using namespace mspdsm;

namespace
{

ProtoConfig
config(TopoKind kind, unsigned nodes, Tick linkLat = 0)
{
    ProtoConfig cfg;
    cfg.numNodes = nodes;
    cfg.topo.kind = kind;
    cfg.topo.linkLatency = linkLat;
    return cfg;
}

/** Manhattan-style hop distance on a wrapping/non-wrapping grid. */
unsigned
gridDistance(const Topology &t, NodeId a, NodeId b, bool wrap)
{
    const unsigned cols = t.cols();
    const unsigned rows = t.rows();
    const unsigned ax = a % cols, ay = a / cols;
    const unsigned bx = b % cols, by = b / cols;
    auto dim = [wrap](unsigned p, unsigned q, unsigned extent) {
        const unsigned d = p > q ? p - q : q - p;
        return wrap ? std::min(d, extent - d) : d;
    };
    return dim(ax, bx, cols) + dim(ay, by, rows);
}

} // namespace

TEST(Topology, CrossbarRoutesAreDedicatedPaths)
{
    const ProtoConfig cfg = config(TopoKind::Crossbar, 16);
    const Topology t(cfg);
    EXPECT_EQ(t.numLinks(), 0u);
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(t.hops(s, d), 0u);
            EXPECT_EQ(t.flight(s, d), cfg.netLatency);
        }
    }
}

TEST(Topology, RingTakesTheShorterDirection)
{
    const Topology t(config(TopoKind::Ring, 8));
    EXPECT_EQ(t.hops(0, 1), 1u);
    EXPECT_EQ(t.hops(0, 7), 1u); // wraps counter-clockwise
    EXPECT_EQ(t.hops(0, 3), 3u);
    EXPECT_EQ(t.hops(0, 4), 4u); // tie: either way is 4 hops
    EXPECT_EQ(t.hops(5, 2), 3u);
    for (NodeId s = 0; s < 8; ++s)
        for (NodeId d = 0; d < 8; ++d)
            EXPECT_EQ(t.hops(s, d), t.hops(d, s));
}

TEST(Topology, RingRouteWalksConsecutiveLinks)
{
    const Topology t(config(TopoKind::Ring, 8));
    // Clockwise route 0 -> 3: links 0 (0->1), 1 (1->2), 2 (2->3).
    const Topology::Route &cw = t.route(0, 3);
    ASSERT_EQ(cw.hops, 3u);
    const LinkId *ls = t.links(cw);
    EXPECT_EQ(ls[0], 0u);
    EXPECT_EQ(ls[1], 1u);
    EXPECT_EQ(ls[2], 2u);
    // Counter-clockwise route 0 -> 6: links 8+0 (0->7), 8+7 (7->6).
    const Topology::Route &ccw = t.route(0, 6);
    ASSERT_EQ(ccw.hops, 2u);
    const LinkId *rs = t.links(ccw);
    EXPECT_EQ(rs[0], 8u + 0u);
    EXPECT_EQ(rs[1], 8u + 7u);
}

TEST(Topology, MeshFactorizesNearSquare)
{
    EXPECT_EQ(Topology(config(TopoKind::Mesh2D, 16)).rows(), 4u);
    EXPECT_EQ(Topology(config(TopoKind::Mesh2D, 16)).cols(), 4u);
    EXPECT_EQ(Topology(config(TopoKind::Mesh2D, 8)).rows(), 2u);
    EXPECT_EQ(Topology(config(TopoKind::Mesh2D, 8)).cols(), 4u);
    EXPECT_EQ(Topology(config(TopoKind::Mesh2D, 12)).rows(), 3u);
    EXPECT_EQ(Topology(config(TopoKind::Mesh2D, 12)).cols(), 4u);
    // Primes degenerate to a line; still a valid grid.
    EXPECT_EQ(Topology(config(TopoKind::Mesh2D, 5)).rows(), 1u);
    EXPECT_EQ(Topology(config(TopoKind::Mesh2D, 5)).cols(), 5u);
}

TEST(Topology, MeshRoutesAreManhattanDistance)
{
    const Topology t(config(TopoKind::Mesh2D, 16));
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(t.hops(s, d), gridDistance(t, s, d, false))
                << "mesh route " << s << " -> " << d;
        }
    }
    // Corner to corner on the 4x4: 3 + 3 hops.
    EXPECT_EQ(t.hops(0, 15), 6u);
}

TEST(Topology, TorusWrapsEachDimension)
{
    const Topology t(config(TopoKind::Torus2D, 16));
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(t.hops(s, d), gridDistance(t, s, d, true))
                << "torus route " << s << " -> " << d;
        }
    }
    // Corner to corner wraps in both dimensions: 1 + 1 hops.
    EXPECT_EQ(t.hops(0, 15), 2u);
    // The torus diameter is half the mesh's.
    EXPECT_EQ(t.hops(0, 10), 4u); // (0,0) -> (2,2): 2 + 2 either way
}

TEST(Topology, FlightComposesPerHop)
{
    for (TopoKind k :
         {TopoKind::Ring, TopoKind::Mesh2D, TopoKind::Torus2D}) {
        const Topology t(config(k, 16, 13));
        EXPECT_EQ(t.linkLatency(), 13u);
        for (NodeId s = 0; s < 16; ++s)
            for (NodeId d = 0; d < 16; ++d)
                EXPECT_EQ(t.flight(s, d), Tick{t.hops(s, d)} * 13u);
    }
}

TEST(Topology, LinkLatencyDefaultsToNetLatency)
{
    ProtoConfig cfg = config(TopoKind::Ring, 8);
    cfg.netLatency = 80;
    EXPECT_EQ(Topology(cfg).linkLatency(), 80u);
    cfg.topo.linkLatency = 7;
    EXPECT_EQ(Topology(cfg).linkLatency(), 7u);
}

TEST(Topology, LinkIdsAreDenseAndInRange)
{
    for (TopoKind k :
         {TopoKind::Ring, TopoKind::Mesh2D, TopoKind::Torus2D}) {
        const Topology t(config(k, 12));
        std::set<LinkId> seen;
        for (NodeId s = 0; s < 12; ++s) {
            for (NodeId d = 0; d < 12; ++d) {
                const Topology::Route &r = t.route(s, d);
                const LinkId *ls = t.links(r);
                for (std::uint16_t h = 0; h < r.hops; ++h) {
                    ASSERT_LT(ls[h], t.numLinks());
                    seen.insert(ls[h]);
                }
            }
        }
        // Every link participates in some route (no dead numbering).
        EXPECT_EQ(seen.size(), t.numLinks()) << topoKindName(k);
    }
}

TEST(Topology, GridLinkCountsMatchTheShape)
{
    // 4x4 mesh: 2 directed links per grid edge, 2*(3*4 + 4*3) = 48.
    EXPECT_EQ(Topology(config(TopoKind::Mesh2D, 16)).numLinks(), 48u);
    // 4x4 torus: every node has 4 out-links, 64 total.
    EXPECT_EQ(Topology(config(TopoKind::Torus2D, 16)).numLinks(), 64u);
    // Ring of n: n clockwise + n counter-clockwise.
    EXPECT_EQ(Topology(config(TopoKind::Ring, 8)).numLinks(), 16u);
    // 2x4 torus: the 2-extent Y dimension is modeled as one channel
    // per direction (out-degree 3, not the physical torus's 4 --
    // tie-positive routing could never use a second parallel
    // channel): 16 X links + 8 Y links.
    EXPECT_EQ(Topology(config(TopoKind::Torus2D, 8)).numLinks(), 24u);
}

TEST(Topology, NamesRoundTrip)
{
    for (TopoKind k : {TopoKind::Crossbar, TopoKind::Ring,
                       TopoKind::Mesh2D, TopoKind::Torus2D}) {
        TopoKind back;
        ASSERT_TRUE(parseTopoKind(topoKindName(k), back));
        EXPECT_EQ(back, k);
    }
    TopoKind out = TopoKind::Ring;
    EXPECT_FALSE(parseTopoKind("hypercube", out));
    EXPECT_EQ(out, TopoKind::Ring); // untouched on failure
}
