/** @file Cache-controller unit tests: line states, hit latencies,
 * piggy-backed flags, speculative installs and drops. */

#include <gtest/gtest.h>

#include <vector>

#include "dsm/cache.hh"
#include "net/network.hh"

using namespace mspdsm;

namespace
{

/**
 * Drives one CacheCtrl directly, capturing everything it sends and
 * letting the test play the directory's role.
 */
struct CacheFixture : ::testing::Test
{
    CacheFixture()
    {
        cfg.numNodes = 4;
        cfg.netJitter = 0;
        net = std::make_unique<Network>(eq, cfg, Rng(1));
        cache = std::make_unique<CacheCtrl>(1, eq, *net, cfg);
        for (NodeId n = 0; n < 4; ++n)
            net->attach(n, &CacheFixture::route, this);
    }

    /** Raw sink: node 1 is the cache under test, the rest a catcher. */
    static void
    route(void *ctx, const CohMsg &m)
    {
        auto *self = static_cast<CacheFixture *>(ctx);
        if (m.dst == 1)
            self->cache->handle(m);
        else
            self->outbox.push_back(m);
    }

    /** Run the event queue dry. */
    void
    settle()
    {
        ASSERT_TRUE(eq.run());
    }

    /** Deliver a message to the cache as if from node 0 (the home). */
    void
    deliver(MsgType t, BlockId blk, SpecTrigger trig = SpecTrigger::None)
    {
        CohMsg m;
        m.type = t;
        m.src = 0;
        m.dst = 1;
        m.blk = blk;
        m.trigger = trig;
        net->send(m);
    }

    EventQueue eq;
    ProtoConfig cfg;
    std::unique_ptr<Network> net;
    std::unique_ptr<CacheCtrl> cache;
    std::vector<CohMsg> outbox;
    int completions = 0;
    bool lastRemote = false;

    /** Intrusive completion counting into the fixture. */
    struct CountingCompletion final : MemCompletion
    {
        explicit CountingCompletion(CacheFixture *f)
            : MemCompletion(&CountingCompletion::fired), fix(f)
        {}

        static void
        fired(MemCompletion &self, bool remote, Tick)
        {
            auto &c = static_cast<CountingCompletion &>(self);
            ++c.fix->completions;
            c.fix->lastRemote = remote;
        }

        CacheFixture *fix;
    };

    CountingCompletion completion{this};

    /** The blocking processor's one outstanding completion record. */
    CountingCompletion &done() { return completion; }
};

} // namespace

TEST_F(CacheFixture, ReadMissSendsGetS)
{
    cache->access(0, false, done());
    settle();
    ASSERT_EQ(outbox.size(), 1u);
    EXPECT_EQ(outbox[0].type, MsgType::GetS);
    EXPECT_EQ(outbox[0].dst, 0); // home of block 0
    EXPECT_FALSE(outbox[0].hadCopy);
    EXPECT_EQ(completions, 0); // still blocked
    EXPECT_EQ(cache->stats().demandReads.value(), 1u);
}

TEST_F(CacheFixture, FillCompletesAccessAndInstallsShared)
{
    cache->access(0, false, done());
    settle();
    CohMsg fill;
    fill.type = MsgType::DataShared;
    fill.src = 0;
    fill.dst = 1;
    fill.blk = 0;
    fill.remoteWork = true;
    net->send(fill);
    settle();
    EXPECT_EQ(completions, 1);
    EXPECT_TRUE(lastRemote);
    EXPECT_EQ(cache->lineState(0), LineState::Shared);
}

TEST_F(CacheFixture, WriteMissSendsGetX)
{
    cache->access(0, true, done());
    settle();
    ASSERT_EQ(outbox.size(), 1u);
    EXPECT_EQ(outbox[0].type, MsgType::GetX);
    EXPECT_EQ(cache->stats().demandWrites.value(), 1u);
}

TEST_F(CacheFixture, WriteToSharedSendsUpgradeWithFlags)
{
    cache->access(0, false, done());
    settle();
    deliver(MsgType::DataShared, 0);
    settle();
    cache->access(0, true, done());
    settle();
    ASSERT_EQ(outbox.size(), 2u);
    EXPECT_EQ(outbox[1].type, MsgType::Upgrade);
    EXPECT_TRUE(outbox[1].hadCopy);
    EXPECT_FALSE(outbox[1].copyWasSpec);
    EXPECT_TRUE(outbox[1].copyReferenced);
}

TEST_F(CacheFixture, HitsAreLocalAndFast)
{
    cache->access(0, false, done());
    settle();
    deliver(MsgType::DataShared, 0);
    settle();
    const Tick before = eq.curTick();
    cache->access(0, false, done());
    settle();
    EXPECT_EQ(completions, 2);
    EXPECT_FALSE(lastRemote);
    // Processor-cache hit: one cycle.
    EXPECT_EQ(eq.curTick() - before, cfg.cacheHit);
    EXPECT_EQ(cache->stats().readHits.value(), 1u);
}

TEST_F(CacheFixture, InvalAcksWithPiggybackAndInvalidates)
{
    cache->access(0, false, done());
    settle();
    deliver(MsgType::DataShared, 0);
    settle();
    deliver(MsgType::Inval, 0);
    settle();
    EXPECT_EQ(cache->lineState(0), LineState::Invalid);
    ASSERT_EQ(outbox.size(), 2u);
    EXPECT_EQ(outbox[1].type, MsgType::InvAck);
    EXPECT_TRUE(outbox[1].hadCopy);
    EXPECT_TRUE(outbox[1].copyReferenced);
}

TEST_F(CacheFixture, RecallWritesBackAndInvalidates)
{
    cache->access(0, true, done());
    settle();
    deliver(MsgType::DataExcl, 0);
    settle();
    EXPECT_EQ(cache->lineState(0), LineState::Modified);
    deliver(MsgType::Recall, 0);
    settle();
    EXPECT_EQ(cache->lineState(0), LineState::Invalid);
    ASSERT_EQ(outbox.size(), 2u);
    EXPECT_EQ(outbox[1].type, MsgType::WriteBack);
}

TEST_F(CacheFixture, SpecDataInstallsUnreferencedSpecLine)
{
    deliver(MsgType::SpecData, 0, SpecTrigger::Swi);
    settle();
    EXPECT_EQ(cache->lineState(0), LineState::Shared);
    EXPECT_TRUE(cache->hasUnreferencedSpec(0));
}

TEST_F(CacheFixture, SpecHitCountsByTriggerAndCostsLocalAccess)
{
    deliver(MsgType::SpecData, 0, SpecTrigger::Swi);
    settle();
    const Tick before = eq.curTick();
    cache->access(0, false, done());
    settle();
    EXPECT_EQ(completions, 1);
    EXPECT_FALSE(lastRemote); // remote-cache hit counts as local
    // First touch of a pushed copy: remote-cache access (104).
    EXPECT_EQ(eq.curTick() - before, cfg.memAccess);
    EXPECT_EQ(cache->stats().specServedSwi.value(), 1u);
    EXPECT_FALSE(cache->hasUnreferencedSpec(0));
}

TEST_F(CacheFixture, SpecDataDroppedWhenDemandInFlight)
{
    cache->access(0, false, done());
    settle();
    deliver(MsgType::SpecData, 0, SpecTrigger::FirstRead);
    settle();
    EXPECT_EQ(cache->stats().specDropped.value(), 1u);
    // The demand fill still completes normally afterwards.
    deliver(MsgType::DataShared, 0);
    settle();
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(cache->lineState(0), LineState::Shared);
    EXPECT_FALSE(cache->hasUnreferencedSpec(0));
}

TEST_F(CacheFixture, SpecDataDroppedWhenCopyPresent)
{
    cache->access(0, false, done());
    settle();
    deliver(MsgType::DataShared, 0);
    settle();
    deliver(MsgType::SpecData, 0, SpecTrigger::FirstRead);
    settle();
    EXPECT_EQ(cache->stats().specDropped.value(), 1u);
    EXPECT_FALSE(cache->hasUnreferencedSpec(0));
}

TEST_F(CacheFixture, UnreferencedSpecAckReportsUnreferenced)
{
    deliver(MsgType::SpecData, 0, SpecTrigger::Swi);
    settle();
    deliver(MsgType::Inval, 0);
    settle();
    ASSERT_EQ(outbox.size(), 1u);
    EXPECT_EQ(outbox[0].type, MsgType::InvAck);
    EXPECT_TRUE(outbox[0].copyWasSpec);
    EXPECT_FALSE(outbox[0].copyReferenced);
}

TEST_F(CacheFixture, ReferencedSpecAckReportsReferenced)
{
    deliver(MsgType::SpecData, 0, SpecTrigger::Swi);
    settle();
    cache->access(0, false, done());
    settle();
    deliver(MsgType::Inval, 0);
    settle();
    ASSERT_EQ(outbox.size(), 1u);
    EXPECT_TRUE(outbox[0].copyWasSpec);
    EXPECT_TRUE(outbox[0].copyReferenced);
}

TEST_F(CacheFixture, InvalRacingFillConsumesButDoesNotKeep)
{
    cache->access(0, false, done());
    settle();
    deliver(MsgType::Inval, 0); // races the in-flight fill
    settle();
    ASSERT_EQ(outbox.size(), 2u);
    EXPECT_EQ(outbox[1].type, MsgType::InvAck);
    EXPECT_TRUE(outbox[1].copyReferenced); // demand access is the use
    deliver(MsgType::DataShared, 0);
    settle();
    EXPECT_EQ(completions, 1); // the blocked read completes...
    EXPECT_EQ(cache->lineState(0), LineState::Invalid); // ...copyless
}

TEST_F(CacheFixture, UpgradeConvertedToDataExclFill)
{
    cache->access(0, false, done());
    settle();
    deliver(MsgType::DataShared, 0);
    settle();
    cache->access(0, true, done());
    settle();
    // The directory decided a full transfer was needed.
    deliver(MsgType::DataExcl, 0);
    settle();
    EXPECT_EQ(completions, 2);
    EXPECT_EQ(cache->lineState(0), LineState::Modified);
}

TEST_F(CacheFixture, WriteHitOnModifiedIsSilent)
{
    cache->access(0, true, done());
    settle();
    deliver(MsgType::DataExcl, 0);
    settle();
    const std::size_t msgs = outbox.size();
    cache->access(0, true, done());
    settle();
    EXPECT_EQ(outbox.size(), msgs); // no new traffic
    EXPECT_EQ(cache->stats().writeHits.value(), 1u);
}

TEST_F(CacheFixture, DistinctBlocksTrackIndependently)
{
    deliver(MsgType::SpecData, 3, SpecTrigger::FirstRead);
    settle();
    EXPECT_EQ(cache->lineState(3), LineState::Shared);
    EXPECT_EQ(cache->lineState(4), LineState::Invalid);
    cache->access(4 * 32, false, done());
    settle();
    deliver(MsgType::DataShared, 4);
    settle();
    EXPECT_EQ(cache->lineState(4), LineState::Shared);
    EXPECT_TRUE(cache->hasUnreferencedSpec(3));
    EXPECT_FALSE(cache->hasUnreferencedSpec(4));
}
