/** @file Directory-level behaviours: observation hooks, request
 * counting, transaction serialization. */

#include <gtest/gtest.h>

#include "testutil.hh"

using namespace mspdsm;
using namespace mspdsm::test;

namespace
{

DsmConfig
observedConfig(unsigned nodes = 4)
{
    DsmConfig cfg = smallConfig(nodes);
    cfg.observers = {{PredKind::Cosmos, 1},
                     {PredKind::Msp, 1},
                     {PredKind::Vmsp, 1}};
    return cfg;
}

} // namespace

TEST(Directory, CountsRequestsByType)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    Trace t{TraceOp::read(a), TraceOp::write(a)};
    sys.run(soloTrace(4, 1, t));
    EXPECT_EQ(sys.directory(0).stats().reqGetS.value(), 1u);
    EXPECT_EQ(sys.directory(0).stats().reqUpgrade.value(), 1u);
    EXPECT_EQ(sys.directory(0).stats().reqGetX.value(), 0u);
}

TEST(Directory, ObserversSeeRequestStream)
{
    DsmConfig cfg = observedConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    Trace t{TraceOp::read(a), TraceOp::write(a)};
    const RunResult r = sys.run(soloTrace(4, 1, t));
    ASSERT_EQ(r.observers.size(), 3u);
    // MSP and VMSP observe the 2 requests.
    EXPECT_EQ(r.observers[1].stats.observed.value(), 2u);
    EXPECT_EQ(r.observers[2].stats.observed.value(), 2u);
    // Cosmos sees the same messages here (no acks were generated:
    // sole-sharer upgrade).
    EXPECT_EQ(r.observers[0].stats.observed.value(), 2u);
}

TEST(Directory, CosmosSeesAcksToo)
{
    DsmConfig cfg = observedConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    std::vector<Trace> ts(4);
    ts[1] = {TraceOp::read(a), TraceOp::barrier()};
    ts[2] = {TraceOp::read(a), TraceOp::barrier()};
    ts[3] = {TraceOp::barrier(), TraceOp::write(a)};
    ts[0] = {TraceOp::barrier()};
    const RunResult r = sys.run(ts);
    // 2 reads + 1 write + 2 invalidation acks = 5 for Cosmos,
    // 3 requests for MSP/VMSP.
    EXPECT_EQ(r.observers[0].stats.observed.value(), 5u);
    EXPECT_EQ(r.observers[1].stats.observed.value(), 3u);
    EXPECT_EQ(r.observers[2].stats.observed.value(), 3u);
}

TEST(Directory, WritebacksObservedByCosmosOnly)
{
    DsmConfig cfg = observedConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    std::vector<Trace> ts(4);
    ts[1] = {TraceOp::write(a), TraceOp::barrier()};
    ts[2] = {TraceOp::barrier(), TraceOp::read(a)};
    ts[0] = {TraceOp::barrier()};
    ts[3] = {TraceOp::barrier()};
    const RunResult r = sys.run(ts);
    // Cosmos: GetX + GetS + WriteBack = 3; requests only = 2.
    EXPECT_EQ(r.observers[0].stats.observed.value(), 3u);
    EXPECT_EQ(r.observers[1].stats.observed.value(), 2u);
}

TEST(Directory, HomeAssignmentIsPageInterleaved)
{
    ProtoConfig proto;
    const unsigned bpp = proto.blocksPerPage();
    EXPECT_EQ(proto.homeOf(0), 0);
    EXPECT_EQ(proto.homeOf(bpp - 1), 0);
    EXPECT_EQ(proto.homeOf(bpp), 1);
    EXPECT_EQ(proto.homeOf(static_cast<BlockId>(bpp) * 16), 0);
}

TEST(Directory, DeferredRequestsAllComplete)
{
    // Hammer one block from every node simultaneously, mixing reads
    // and writes: the per-block transaction serialization must not
    // lose or deadlock any request.
    DsmConfig cfg = smallConfig(8);
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    std::vector<Trace> ts(8);
    for (unsigned q = 0; q < 8; ++q) {
        for (int i = 0; i < 10; ++i) {
            if ((q + i) % 3 == 0)
                ts[q].push_back(TraceOp::write(a));
            else
                ts[q].push_back(TraceOp::read(a));
            ts[q].push_back(TraceOp::compute(30 + 7 * q));
        }
    }
    const RunResult r = sys.run(ts);
    EXPECT_GT(r.reads + r.writes, 0u);
    // run() panics internally on deadlock; reaching here is the test.
}

TEST(Directory, SoleUpgradeGeneratesNoInvals)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    Trace t{TraceOp::read(a), TraceOp::write(a)};
    sys.run(soloTrace(4, 1, t));
    EXPECT_EQ(sys.directory(0).stats().invals.value(), 0u);
    EXPECT_EQ(sys.directory(0).stats().recalls.value(), 0u);
}

TEST(Directory, WriteToSharedSendsInvalPerSharer)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    std::vector<Trace> ts(4);
    ts[1] = {TraceOp::read(a), TraceOp::barrier()};
    ts[2] = {TraceOp::read(a), TraceOp::barrier()};
    ts[3] = {TraceOp::read(a), TraceOp::barrier(), TraceOp::write(a)};
    ts[0] = {TraceOp::barrier()};
    sys.run(ts);
    // Upgrade by 3 invalidates sharers 1 and 2 (not itself).
    EXPECT_EQ(sys.directory(0).stats().invals.value(), 2u);
}
