/** @file End-to-end protocol transactions on a small system:
 * latencies, state transitions and message flows of Figure 1. */

#include <gtest/gtest.h>

#include "testutil.hh"

using namespace mspdsm;
using namespace mspdsm::test;

TEST(Protocol, RemoteReadMissCostsPaperLatency)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    // Node 1 reads a block homed at node 0 (Idle at the directory).
    Trace t{TraceOp::read(blockOn(cfg.proto, 0))};
    const RunResult r = sys.run(soloTrace(4, 1, t));
    // Table 1: round-trip miss latency 418 cycles.
    EXPECT_NEAR(static_cast<double>(r.execTicks), 418.0, 6.0);
    EXPECT_EQ(r.reads, 1u);
}

TEST(Protocol, LocalReadIsRoughlyMemoryLatency)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    Trace t{TraceOp::read(blockOn(cfg.proto, 1))};
    const RunResult r = sys.run(soloTrace(4, 1, t));
    // Table 1: local access ~104 cycles; small bus/dir overhead on
    // top. The remote-to-local ratio of ~4 is the key property.
    EXPECT_NEAR(static_cast<double>(r.execTicks), 104.0, 8.0);
}

TEST(Protocol, RemoteToLocalRatioIsAboutFour)
{
    DsmConfig cfg = smallConfig();
    Tick local = 0, remote = 0;
    {
        DsmSystem sys(cfg);
        local = sys.run(soloTrace(4, 1,
                                  Trace{TraceOp::read(
                                      blockOn(cfg.proto, 1))}))
                    .execTicks;
    }
    {
        DsmSystem sys(cfg);
        remote = sys.run(soloTrace(4, 1,
                                   Trace{TraceOp::read(
                                       blockOn(cfg.proto, 0))}))
                     .execTicks;
    }
    const double rtl =
        static_cast<double>(remote) / static_cast<double>(local);
    EXPECT_GT(rtl, 3.5);
    EXPECT_LT(rtl, 4.5);
}

TEST(Protocol, ReadThenCacheHit)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    Trace t{TraceOp::read(blockOn(cfg.proto, 0)),
            TraceOp::read(blockOn(cfg.proto, 0))};
    const RunResult r = sys.run(soloTrace(4, 1, t));
    // The second read hits in the processor cache: one extra cycle.
    EXPECT_NEAR(static_cast<double>(r.execTicks), 419.0, 6.0);
    EXPECT_EQ(r.reads, 1u);
}

TEST(Protocol, WriteMissGetsExclusive)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    Trace t{TraceOp::write(a)};
    sys.run(soloTrace(4, 1, t));
    EXPECT_EQ(sys.cache(1).lineState(cfg.proto.blockOf(a)),
              LineState::Modified);
    EXPECT_EQ(sys.directory(0).ownerOf(cfg.proto.blockOf(a)), 1);
    EXPECT_EQ(sys.directory(0).blockState(cfg.proto.blockOf(a)),
              DirState::Excl);
}

TEST(Protocol, ReadSharersAccumulateInDirectory)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    std::vector<Trace> ts(4);
    ts[1] = {TraceOp::read(a)};
    ts[2] = {TraceOp::read(a)};
    ts[3] = {TraceOp::read(a)};
    sys.run(ts);
    const BlockId blk = cfg.proto.blockOf(a);
    EXPECT_EQ(sys.directory(0).blockState(blk), DirState::Shared);
    const NodeSet sharers = sys.directory(0).sharersOf(blk);
    EXPECT_TRUE(sharers.contains(1));
    EXPECT_TRUE(sharers.contains(2));
    EXPECT_TRUE(sharers.contains(3));
}

TEST(Protocol, WriteInvalidatesAllSharers)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    std::vector<Trace> ts(4);
    ts[1] = {TraceOp::read(a), TraceOp::barrier()};
    ts[2] = {TraceOp::read(a), TraceOp::barrier()};
    ts[3] = {TraceOp::barrier(), TraceOp::write(a)};
    ts[0] = {TraceOp::barrier()};
    sys.run(ts);
    const BlockId blk = cfg.proto.blockOf(a);
    EXPECT_EQ(sys.cache(1).lineState(blk), LineState::Invalid);
    EXPECT_EQ(sys.cache(2).lineState(blk), LineState::Invalid);
    EXPECT_EQ(sys.cache(3).lineState(blk), LineState::Modified);
    EXPECT_EQ(sys.directory(0).ownerOf(blk), 3);
}

TEST(Protocol, UpgradeFromSoleSharerNeedsNoData)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    // Read then write: the write is an upgrade.
    Trace t{TraceOp::read(a), TraceOp::write(a)};
    const RunResult r = sys.run(soloTrace(4, 1, t));
    EXPECT_EQ(sys.cache(1).lineState(cfg.proto.blockOf(a)),
              LineState::Modified);
    // Upgrade round trip is two control hops + dir lookup: cheaper
    // than a full data miss.
    EXPECT_LT(r.execTicks, 418 + 418);
}

TEST(Protocol, ReadFromExclusiveForcesWriteback)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    std::vector<Trace> ts(4);
    ts[1] = {TraceOp::write(a), TraceOp::barrier()};
    ts[2] = {TraceOp::barrier(), TraceOp::read(a)};
    ts[0] = {TraceOp::barrier()};
    ts[3] = {TraceOp::barrier()};
    sys.run(ts);
    const BlockId blk = cfg.proto.blockOf(a);
    // Figure 1 right: the writer is invalidated and the reader gets
    // a shared copy; the directory ends in Shared{2}.
    EXPECT_EQ(sys.cache(1).lineState(blk), LineState::Invalid);
    EXPECT_EQ(sys.cache(2).lineState(blk), LineState::Shared);
    EXPECT_EQ(sys.directory(0).blockState(blk), DirState::Shared);
    EXPECT_TRUE(sys.directory(0).sharersOf(blk).contains(2));
    EXPECT_FALSE(sys.directory(0).sharersOf(blk).contains(1));
}

TEST(Protocol, ThreeHopReadIsSlowerThanTwoHop)
{
    DsmConfig cfg = smallConfig();
    Tick two_hop = 0, three_hop = 0;
    {
        DsmSystem sys(cfg);
        two_hop = sys.run(soloTrace(4, 2,
                                    Trace{TraceOp::read(
                                        blockOn(cfg.proto, 0))}))
                      .execTicks;
    }
    {
        DsmSystem sys(cfg);
        const Addr a = blockOn(cfg.proto, 0);
        std::vector<Trace> ts(4);
        ts[1] = {TraceOp::write(a), TraceOp::barrier()};
        ts[2] = {TraceOp::barrier(), TraceOp::read(a)};
        ts[0] = {TraceOp::barrier()};
        ts[3] = {TraceOp::barrier()};
        const RunResult r = sys.run(ts);
        three_hop = r.execTicks;
    }
    EXPECT_GT(three_hop, two_hop);
}

TEST(Protocol, MigratoryHandoffConverges)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    // Three processors pass the block around with ample spacing.
    std::vector<Trace> ts(4);
    for (int round = 0; round < 6; ++round) {
        const NodeId q = NodeId(1 + round % 3);
        ts[q].push_back(TraceOp::read(a));
        ts[q].push_back(TraceOp::write(a));
        for (unsigned n = 0; n < 4; ++n)
            ts[n].push_back(TraceOp::barrier());
    }
    sys.run(ts);
    const BlockId blk = cfg.proto.blockOf(a);
    EXPECT_EQ(sys.directory(0).ownerOf(blk), 3); // last in rotation
    EXPECT_EQ(sys.cache(3).lineState(blk), LineState::Modified);
}

TEST(Protocol, ConcurrentWritersSerialize)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    std::vector<Trace> ts(4);
    for (unsigned q = 0; q < 4; ++q)
        ts[q] = {TraceOp::write(a)};
    const RunResult r = sys.run(ts);
    // All four writes complete; exactly one final owner.
    EXPECT_EQ(r.writes, 4u);
    const BlockId blk = cfg.proto.blockOf(a);
    const NodeId owner = sys.directory(0).ownerOf(blk);
    ASSERT_NE(owner, invalidNode);
    int modified = 0;
    for (NodeId q = 0; q < 4; ++q)
        modified +=
            sys.cache(q).lineState(blk) == LineState::Modified;
    EXPECT_EQ(modified, 1);
    EXPECT_EQ(sys.cache(owner).lineState(blk), LineState::Modified);
}

TEST(Protocol, UpgradeRaceFallsBackToFullWrite)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    std::vector<Trace> ts(4);
    // Both read (becoming sharers), then both upgrade concurrently:
    // the loser's copy is invalidated mid-flight and its upgrade is
    // converted to a full write by the directory.
    ts[1] = {TraceOp::read(a), TraceOp::barrier(), TraceOp::write(a)};
    ts[2] = {TraceOp::read(a), TraceOp::barrier(), TraceOp::write(a)};
    ts[0] = {TraceOp::barrier()};
    ts[3] = {TraceOp::barrier()};
    const RunResult r = sys.run(ts);
    EXPECT_EQ(r.writes, 2u);
    const BlockId blk = cfg.proto.blockOf(a);
    const NodeId owner = sys.directory(0).ownerOf(blk);
    ASSERT_NE(owner, invalidNode);
    EXPECT_EQ(sys.cache(owner).lineState(blk), LineState::Modified);
    const NodeId loser = owner == 1 ? 2 : 1;
    EXPECT_EQ(sys.cache(loser).lineState(blk), LineState::Invalid);
}

TEST(Protocol, RequestWaitOnlyCountsRemoteWork)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    // Node 1 only touches its own home memory: no remote waiting.
    Trace t;
    for (unsigned i = 0; i < 8; ++i)
        t.push_back(TraceOp::read(blockOn(cfg.proto, 1, i)));
    const RunResult r = sys.run(soloTrace(4, 1, t));
    EXPECT_DOUBLE_EQ(r.avgRequestWait, 0.0);
    EXPECT_GT(r.avgMemWait, 0.0);
}

TEST(Protocol, BarrierSynchronizesAllProcessors)
{
    DsmConfig cfg = smallConfig();
    DsmSystem sys(cfg);
    std::vector<Trace> ts(4);
    // One processor computes for long; everyone meets at the barrier.
    ts[0] = {TraceOp::compute(10000), TraceOp::barrier()};
    for (unsigned q = 1; q < 4; ++q)
        ts[q] = {TraceOp::barrier()};
    const RunResult r = sys.run(ts);
    EXPECT_GE(r.execTicks, 10000u);
    EXPECT_EQ(r.barrierEpisodes, 1u);
}
