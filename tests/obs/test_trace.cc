/** @file Observability layer: trace-JSON round trip (balanced spans,
 * paired flow arrows, tick-window filtering), inertness of the gated
 * instruments, the interval time-series bracketing a fault outage,
 * and the always-on latency histograms' tail under link loss.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "harness/experiment.hh"

using namespace mspdsm;

namespace
{

ExperimentConfig
tiny()
{
    ExperimentConfig ec;
    ec.scale = 0.25;
    ec.iterations = 2;
    return ec;
}

/** One parsed trace record (only the fields the checks need). */
struct TraceEvent
{
    std::string name;
    char ph = '?';
    unsigned tid = 0;
    std::uint64_t ts = 0;
    std::uint64_t id = 0;  //!< flow id (ph s/f only)
    bool hasTs = false;
    bool hasId = false;
};

/** Extract the string value of @p key from a single-line record. */
std::string
strField(const std::string &line, const std::string &key)
{
    const std::string pat = "\"" + key + "\":\"";
    const auto p = line.find(pat);
    if (p == std::string::npos)
        return "";
    const auto q = line.find('"', p + pat.size());
    return line.substr(p + pat.size(), q - p - pat.size());
}

/** Extract the numeric value of @p key; @p found reports presence. */
std::uint64_t
numField(const std::string &line, const std::string &key, bool &found)
{
    const std::string pat = "\"" + key + "\":";
    const auto p = line.find(pat);
    found = p != std::string::npos;
    if (!found)
        return 0;
    return std::strtoull(line.c_str() + p + pat.size(), nullptr, 10);
}

/**
 * Line-oriented parse of the emitted trace file: one record per line,
 * trailing commas stripped, metadata (ph M) records skipped. Fails
 * the test on any structural surprise.
 */
std::vector<TraceEvent>
parseTrace(const std::string &path)
{
    std::ifstream f(path);
    EXPECT_TRUE(f.is_open()) << path;
    std::vector<std::string> lines;
    for (std::string line; std::getline(f, line);)
        if (!line.empty())
            lines.push_back(line);
    EXPECT_GE(lines.size(), 2u);
    EXPECT_EQ(lines.front(), "{\"traceEvents\":[");
    EXPECT_EQ(lines.back(), "]}");

    std::vector<TraceEvent> evs;
    for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
        std::string line = lines[i];
        if (!line.empty() && line.back() == ',')
            line.pop_back();
        EXPECT_TRUE(line.front() == '{' && line.back() == '}')
            << line;
        TraceEvent e;
        e.name = strField(line, "name");
        const std::string ph = strField(line, "ph");
        EXPECT_EQ(ph.size(), 1u) << line;
        e.ph = ph.empty() ? '?' : ph[0];
        bool found = false;
        e.tid = static_cast<unsigned>(numField(line, "tid", found));
        e.ts = numField(line, "ts", e.hasTs);
        e.id = numField(line, "id", e.hasId);
        if (e.ph == 'M')
            continue; // metadata carries no ts; not an event
        EXPECT_TRUE(e.hasTs) << line;
        evs.push_back(e);
    }
    return evs;
}

} // namespace

TEST(Trace, RoundTripBalancedAndPaired)
{
    const std::string path = testing::TempDir() + "mspdsm_trace.json";
    ExperimentConfig ec = tiny();
    ec.tracePath = path;
    const RunResult traced =
        runSpec("em3d", SpecMode::SwiFirstRead, ec);
    EXPECT_EQ(traced.status, RunStatus::Completed);

    // The tracer is read-only: the traced run matches the golden
    // fixed-seed numbers (tests/integration/test_golden.cc) exactly.
    EXPECT_EQ(traced.execTicks, 120022u);
    EXPECT_EQ(traced.messages, 1984u);

    const std::vector<TraceEvent> evs = parseTrace(path);
    ASSERT_FALSE(evs.empty());

    // B/E spans balance and never nest on one track (one MSHR per
    // node); flow arrows pair 1:1 by id, start before they finish.
    std::map<unsigned, int> depth;
    std::map<std::uint64_t, std::uint64_t> flowStart;
    std::set<std::uint64_t> flowDone;
    std::size_t spans = 0, flows = 0, instants = 0;
    for (const TraceEvent &e : evs) {
        switch (e.ph) {
          case 'B':
            EXPECT_EQ(depth[e.tid], 0) << "nested span on tid "
                                       << e.tid;
            ++depth[e.tid];
            ++spans;
            break;
          case 'E':
            EXPECT_EQ(depth[e.tid], 1) << "E without B on tid "
                                       << e.tid;
            --depth[e.tid];
            break;
          case 's':
            ASSERT_TRUE(e.hasId);
            EXPECT_FALSE(flowStart.count(e.id)) << "flow id reused";
            flowStart[e.id] = e.ts;
            break;
          case 'f':
            ASSERT_TRUE(e.hasId);
            ASSERT_TRUE(flowStart.count(e.id))
                << "finish before start, id " << e.id;
            EXPECT_GE(e.ts, flowStart[e.id]);
            EXPECT_TRUE(flowDone.insert(e.id).second);
            ++flows;
            break;
          case 'i':
            ++instants;
            break;
          case 'X':
            break;
          default:
            ADD_FAILURE() << "unexpected ph '" << e.ph << "'";
        }
    }
    for (const auto &[tid, d] : depth)
        EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
    EXPECT_EQ(flowDone.size(), flowStart.size());
    EXPECT_GT(spans, 0u);
    EXPECT_GT(flows, 0u);
    EXPECT_GT(instants, 0u); // spec outcomes, dir grants, trace done
}

TEST(Trace, WindowFiltersEverything)
{
    const std::string path =
        testing::TempDir() + "mspdsm_trace_window.json";
    ExperimentConfig ec = tiny();
    ec.tracePath = path;
    ec.traceFrom = 30000;
    ec.traceTo = 80000;
    const RunResult r = runSpec("em3d", SpecMode::SwiFirstRead, ec);
    EXPECT_EQ(r.status, RunStatus::Completed);

    const std::vector<TraceEvent> evs = parseTrace(path);
    ASSERT_FALSE(evs.empty()); // the window covers mid-run activity
    for (const TraceEvent &e : evs) {
        EXPECT_GE(e.ts, 30000u) << e.name;
        EXPECT_LE(e.ts, 80000u) << e.name;
    }
    // Spans/flows are emitted at completion with both endpoints
    // checked, so a window can never strand a begin or a start.
    std::map<unsigned, int> depth;
    std::map<std::uint64_t, unsigned> flowCount;
    for (const TraceEvent &e : evs) {
        if (e.ph == 'B')
            ++depth[e.tid];
        else if (e.ph == 'E')
            --depth[e.tid];
        else if (e.ph == 's' || e.ph == 'f')
            ++flowCount[e.id];
    }
    for (const auto &[tid, d] : depth)
        EXPECT_EQ(d, 0);
    for (const auto &[id, c] : flowCount)
        EXPECT_EQ(c, 2u) << "flow id " << id;
}

TEST(Trace, SeriesBracketsTheOutage)
{
    // A sampled fault run: the time-series must show the throughput
    // dip between kill and restart and the recovery after it -- the
    // timeline fig11's three-point phase readout only summarizes.
    ExperimentConfig ec = tiny();
    ec.failNode = 3;
    ec.failTick = 40000;
    ec.recoverTick = 70000;
    ec.sampleInterval = 5000;
    const RunResult r = runSpec("em3d", SpecMode::SwiFirstRead, ec);
    EXPECT_EQ(r.status, RunStatus::Completed);
    EXPECT_EQ(r.seriesInterval, 5000u);
    ASSERT_GE(r.series.size(), 4u);

    EXPECT_EQ(r.series.front().tick, 0u);
    for (std::size_t i = 1; i < r.series.size(); ++i) {
        EXPECT_GT(r.series[i].tick, r.series[i - 1].tick);
        EXPECT_GE(r.series[i].ops, r.series[i - 1].ops);
        EXPECT_GE(r.series[i].messages, r.series[i - 1].messages);
    }

    // Mean ops/tick of the series samples inside each phase.
    auto rate = [&](Tick from, Tick to) {
        const IntervalSample *lo = nullptr, *hi = nullptr;
        for (const IntervalSample &s : r.series) {
            if (s.tick < from || s.tick > to)
                continue;
            if (!lo)
                lo = &s;
            hi = &s;
        }
        if (!lo || hi->tick == lo->tick)
            return 0.0;
        return static_cast<double>(hi->ops - lo->ops) /
               static_cast<double>(hi->tick - lo->tick);
    };
    const double before = rate(0, 40000);
    const double during = rate(40000, 70000);
    const double after = rate(70000, r.execTicks);
    EXPECT_GT(before, 0.0);
    EXPECT_GT(after, 0.0);
    EXPECT_LT(during, before); // survivors stall behind the outage
    EXPECT_GT(after, during);  // and pick back up once it restarts
}

TEST(Trace, UnconfiguredRunCarriesNoObsState)
{
    // Gating: no instrument configured -> no sampler artifacts, empty
    // series -- while the always-on histograms still filled in.
    const RunResult r = runSpec("em3d", SpecMode::SwiFirstRead, tiny());
    EXPECT_EQ(r.seriesInterval, 0u);
    EXPECT_TRUE(r.series.empty());
    EXPECT_GT(r.missLat.count(), 0u);
    EXPECT_GT(r.missLatP99, 0.0);
    EXPECT_LE(r.missLatP50, r.missLatP90);
    EXPECT_LE(r.missLatP90, r.missLatP99);
    EXPECT_GT(r.swiLat.count(), 0u);
}

TEST(Trace, SamplerPerturbsNothingButTheEndTick)
{
    // The sampler reads counters and schedules only its own timer, so
    // a sampled run does the same work as an unsampled one; the lone
    // permitted artifact is the final re-armed firing stretching the
    // end tick by at most one interval.
    const RunResult plain =
        runSpec("em3d", SpecMode::SwiFirstRead, tiny());
    ExperimentConfig ec = tiny();
    ec.sampleInterval = 7000;
    const RunResult sampled =
        runSpec("em3d", SpecMode::SwiFirstRead, ec);
    EXPECT_EQ(sampled.messages, plain.messages);
    EXPECT_EQ(sampled.reads, plain.reads);
    EXPECT_EQ(sampled.writes, plain.writes);
    EXPECT_EQ(sampled.specServedSwi, plain.specServedSwi);
    EXPECT_GE(sampled.execTicks, plain.execTicks);
    EXPECT_LE(sampled.execTicks, plain.execTicks + 7000);
}

TEST(Trace, LossyLinkStretchesTheLatencyTail)
{
    // The acceptance shape for the new percentile columns: each
    // retransmitted miss pays the drop-to-reinjection delay, so link
    // loss stretches the p99 beyond the fault-free fabric's.
    ExperimentConfig clean = tiny();
    clean.topo.kind = TopoKind::Mesh2D;
    ExperimentConfig lossy = clean;
    lossy.linkLoss = {{0, maxTick, 0, 3}};
    const RunResult rc = runSpec("em3d", SpecMode::SwiFirstRead, clean);
    const RunResult rl = runSpec("em3d", SpecMode::SwiFirstRead, lossy);
    EXPECT_EQ(rc.status, RunStatus::Completed);
    EXPECT_EQ(rl.status, RunStatus::Completed);
    EXPECT_GT(rl.fault.linkDrops, 0u);
    EXPECT_GT(rc.missLatP99, 0.0);
    EXPECT_GT(rl.missLatP99, rc.missLatP99);
}
