/** @file Stress tests for the hierarchical event queue: dense and
 * sparse far schedules, cancel/reschedule across wheel levels, and
 * the per-tick FIFO tie-break surviving cascades and migrations.
 *
 * Level geometry under test (see sim/eventq.hh): near wheel covers
 * gigaticks curG and curG+1 (one gigatick = 4096 ticks), the far
 * wheel gigaticks curG+2 .. curG+255, and the overflow heap
 * everything beyond (~1M+ ticks).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/eventq.hh"

using namespace mspdsm;

namespace
{

constexpr Tick giga = 4096;

/** Records its fire time and order into shared logs. */
struct Probe final : public Event
{
    Probe() = default;
    Probe(std::vector<int> *order, int id) : log(order), tag(id) {}

    void
    process() override
    {
        ++fired;
        lastTick = when();
        if (log)
            log->push_back(tag);
    }

    std::vector<int> *log = nullptr;
    int tag = 0;
    int fired = 0;
    Tick lastTick = 0;
};

} // namespace

TEST(FarWheel, DenseFarScheduleFiresInTimeOrder)
{
    // The eventq/far bench pattern: thousands of events spread far
    // beyond the near window, scheduled in scrambled order.
    constexpr int n = 20000;
    EventQueue eq;
    std::vector<Probe> probes(n);
    for (int i = 0; i < n; ++i)
        eq.schedule(Tick((i * 131) % 65536), probes[i]);
    EXPECT_EQ(eq.pending(), std::size_t(n));

    EXPECT_TRUE(eq.run());
    Tick last = 0;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(probes[i].fired, 1);
        EXPECT_EQ(probes[i].lastTick, Tick((i * 131) % 65536));
        last = std::max(last, probes[i].lastTick);
        fired += probes[i].fired;
    }
    EXPECT_EQ(fired, n);
    EXPECT_EQ(eq.curTick(), last);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(FarWheel, SparseSchedulesAcrossAllLevels)
{
    // One event per level plus one far past the far-wheel horizon.
    EventQueue eq;
    std::vector<int> order;
    Probe near(&order, 0);
    Probe nextGiga(&order, 1);
    Probe farWheel(&order, 2);
    Probe heap(&order, 3);
    eq.schedule(5, near);
    eq.schedule(giga + 7, nextGiga);         // near wheel, gigatick 1
    eq.schedule(40 * giga + 3, farWheel);    // far wheel
    eq.schedule(5000 * giga + 1, heap);      // overflow heap
    EXPECT_EQ(eq.pending(), 4u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 5000 * giga + 1);
}

TEST(FarWheel, FifoTieBreakSurvivesCascade)
{
    // Two events for the same distant tick, scheduled far apart in
    // time: A goes through the far wheel, B is inserted directly
    // once the window is close. A was scheduled first and must fire
    // first, even though it reaches the near wheel via a cascade.
    EventQueue eq;
    std::vector<int> order;
    const Tick target = 50 * giga + 123;
    Probe a(&order, 1);
    Probe b(&order, 2);
    Probe c(&order, 3);

    struct Inserter final : public Event
    {
        void
        process() override
        {
            eq->schedule(when_, *later);
        }
        EventQueue *eq;
        Tick when_;
        Event *later;
    } inserter;

    eq.schedule(target, a); // far wheel
    eq.schedule(target, c); // far wheel, same bucket, after a
    inserter.eq = &eq;
    inserter.when_ = target;
    inserter.later = &b;
    // Fires in the same gigatick as the target: a and c have been
    // cascaded by then, b lands behind them.
    eq.schedule(target - 100, inserter);

    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(FarWheel, FifoTieBreakSurvivesHeapMigration)
{
    // Same-tick events in the overflow heap migrate to the far wheel
    // and then cascade, preserving schedule order throughout.
    EventQueue eq;
    std::vector<int> order;
    const Tick target = 400 * giga + 9;
    std::vector<Probe> probes;
    probes.reserve(6);
    for (int i = 0; i < 6; ++i) {
        probes.emplace_back(&order, i);
        eq.schedule(target, probes[i]);
    }
    // A pacemaker walks the window forward so the heap events migrate
    // through the far wheel rather than jumping straight to the near
    // wheel.
    struct Pacer final : public Event
    {
        void
        process() override
        {
            if (when() + step < stop)
                eq->schedule(when() + step, *this);
        }
        EventQueue *eq;
        Tick step;
        Tick stop;
    } pacer;
    pacer.eq = &eq;
    pacer.step = 100 * giga;
    pacer.stop = target;
    eq.schedule(1, pacer);

    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(FarWheel, DescheduleAcrossLevels)
{
    EventQueue eq;
    Probe near, farw, heap, keep;
    eq.schedule(10, near);
    eq.schedule(30 * giga, farw);
    eq.schedule(3000 * giga, heap);
    eq.schedule(20, keep);
    EXPECT_EQ(eq.pending(), 4u);

    EXPECT_TRUE(eq.deschedule(near));
    EXPECT_TRUE(eq.deschedule(farw));
    EXPECT_TRUE(eq.deschedule(heap));
    EXPECT_FALSE(near.scheduled());
    EXPECT_FALSE(eq.deschedule(near)); // no-op the second time
    EXPECT_EQ(eq.pending(), 1u);

    EXPECT_TRUE(eq.run());
    EXPECT_EQ(near.fired, 0);
    EXPECT_EQ(farw.fired, 0);
    EXPECT_EQ(heap.fired, 0);
    EXPECT_EQ(keep.fired, 1);
    EXPECT_EQ(eq.curTick(), 20u);
}

TEST(FarWheel, RescheduleMovesBetweenLevels)
{
    // One event object walks heap -> far wheel -> near wheel via
    // deschedule + reschedule, then fires exactly once.
    EventQueue eq;
    Probe p;
    eq.schedule(4000 * giga, p); // heap
    EXPECT_TRUE(eq.deschedule(p));
    eq.schedule(100 * giga, p); // far wheel
    EXPECT_TRUE(eq.deschedule(p));
    eq.schedule(42, p); // near wheel
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(p.fired, 1);
    EXPECT_EQ(p.lastTick, 42u);
    EXPECT_EQ(eq.curTick(), 42u);
}

TEST(FarWheel, DescheduleMidBucketPreservesRemainingOrder)
{
    // Five same-tick events; the middle one is cancelled before the
    // tick arrives. The rest keep their schedule order.
    EventQueue eq;
    std::vector<int> order;
    std::vector<Probe> probes;
    probes.reserve(5);
    const Tick target = 20 * giga + 5; // far wheel
    for (int i = 0; i < 5; ++i) {
        probes.emplace_back(&order, i);
        eq.schedule(target, probes[i]);
    }
    EXPECT_TRUE(eq.deschedule(probes[2]));
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 3, 4}));
}

TEST(FarWheel, CancelledEventCanBeRescheduledIntoSameBucket)
{
    EventQueue eq;
    std::vector<int> order;
    Probe a(&order, 1);
    Probe b(&order, 2);
    const Tick target = 10 * giga;
    eq.schedule(target, a);
    eq.schedule(target, b);
    // Cancel a and re-add it: it now comes *after* b.
    EXPECT_TRUE(eq.deschedule(a));
    eq.schedule(target, a);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(FarWheel, RunLimitStopsBeforeFarEvents)
{
    EventQueue eq;
    Probe near, farw;
    eq.schedule(100, near);
    eq.schedule(80 * giga, farw);
    EXPECT_FALSE(eq.run(1000));
    EXPECT_EQ(near.fired, 1);
    EXPECT_EQ(farw.fired, 0);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(farw.fired, 1);
}

TEST(FarWheel, BigJumpCascadesEverything)
{
    // The window leaps past the entire far horizon in one advance
    // (empty near wheel): every live far bucket and the heap must
    // fold over correctly.
    EventQueue eq;
    std::vector<int> order;
    std::vector<Probe> probes;
    probes.reserve(8);
    for (int i = 0; i < 8; ++i) {
        probes.emplace_back(&order, i);
        // All land in the overflow heap, two adjacent distant ticks.
        const Tick when = 600 * giga + 50 * (i % 2);
        eq.schedule(when, probes[i]);
    }
    EXPECT_TRUE(eq.run());
    // Ticks 600*giga (even tags) then 600*giga+50 (odd tags).
    EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 1, 3, 5, 7}));
}

TEST(FarWheel, SelfRescheduleWalksThroughGigatickBoundaries)
{
    // A component-timer pattern crossing many cascade points.
    EventQueue eq;
    struct Timer final : public Event
    {
        void
        process() override
        {
            ++count;
            if (count < 1000)
                eq->scheduleAfter(1000, *this); // crosses gigaticks
        }
        EventQueue *eq;
        int count = 0;
    } timer;
    timer.eq = &eq;
    eq.schedule(0, timer);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(timer.count, 1000);
    EXPECT_EQ(eq.curTick(), 999u * 1000u);
    EXPECT_EQ(eq.executed(), 1000u);
}
