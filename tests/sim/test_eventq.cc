/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/eventq.hh"

using namespace mspdsm;

TEST(EventQueue, StartsAtTickZeroEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.run());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(5, [&] { ++fired; });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 5u);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(10, [&] {
        eq.scheduleAfter(7, [&] { seen = eq.curTick(); });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(seen, 17u);
}

TEST(EventQueue, RunHonoursLimit)
{
    EventQueue eq;
    bool late = false;
    eq.schedule(5, [] {});
    eq.schedule(100, [&] { late = true; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_FALSE(late);
    EXPECT_EQ(eq.pending(), 1u);
    // Resume past the limit.
    EXPECT_TRUE(eq.run());
    EXPECT_TRUE(late);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [] {});
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(eq.executed(), 10u);
}

TEST(EventQueue, ZeroDelaySelfScheduleChain)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 1000)
            eq.scheduleAfter(0, chain);
    };
    eq.schedule(0, chain);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(depth, 1000);
    EXPECT_EQ(eq.curTick(), 0u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [&] {
        eq.schedule(50, [] {}); // in the past relative to tick 100
    });
    EXPECT_DEATH(eq.run(), "past");
}
