/** @file Mass-cancellation stress tests for the event queue: the
 * fault layer's failover sweep deschedules whole pools of events at
 * once (EventPool::forEach + deschedule), and every queue query --
 * nextTick(), pending(), canFuseBefore() -- must stay *exact*
 * afterwards, across all three queue levels and regardless of what
 * the min-tick memo held before the sweep.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "base/random.hh"
#include "net/network.hh"
#include "sim/eventq.hh"

using namespace mspdsm;

namespace
{

constexpr Tick giga = 4096;

struct Probe final : public Event
{
    void process() override { ++fired; }

    int fired = 0;
};

} // namespace

TEST(MassCancel, NextTickExactAfterCancellingTheMinimum)
{
    // The memoized minimum is the cancelled event: nextTick() must
    // recompute, not serve the stale hint.
    EventQueue eq;
    Probe a, b, c;
    eq.schedule(10, a);
    eq.schedule(500, b);
    eq.schedule(900, c);
    EXPECT_EQ(eq.nextTick(), 10u); // memoize the minimum
    EXPECT_TRUE(eq.deschedule(a));
    EXPECT_EQ(eq.nextTick(), 500u);
    EXPECT_TRUE(eq.deschedule(b));
    EXPECT_EQ(eq.nextTick(), 900u);
    EXPECT_TRUE(eq.deschedule(c));
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.nextTick(), maxTick);
}

TEST(MassCancel, NextTickExactAcrossLevels)
{
    // Cancel the minimum at each level in turn; the next minimum may
    // live one level further out every time.
    EventQueue eq;
    Probe near, farw, heap;
    eq.schedule(42, near);             // near wheel
    eq.schedule(80 * giga + 7, farw);  // far wheel
    eq.schedule(5000 * giga, heap);    // overflow heap
    EXPECT_EQ(eq.nextTick(), 42u);
    EXPECT_TRUE(eq.deschedule(near));
    EXPECT_EQ(eq.nextTick(), 80u * giga + 7u);
    EXPECT_TRUE(eq.deschedule(farw));
    EXPECT_EQ(eq.nextTick(), 5000u * giga);
    EXPECT_TRUE(eq.deschedule(heap));
    EXPECT_EQ(eq.nextTick(), maxTick);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(MassCancel, BulkCancelKeepsSurvivorsAndOrder)
{
    // Kill every third event of a dense schedule spanning near wheel,
    // far wheel, and heap; the survivors fire exactly once, in time
    // order, and the executed count is exact.
    constexpr int n = 3000;
    EventQueue eq;
    std::vector<Probe> probes(n);
    for (int i = 0; i < n; ++i)
        eq.schedule(Tick(i) * 1500, probes[i]); // spans ~1100 gigaticks
    for (int i = 0; i < n; i += 3)
        EXPECT_TRUE(eq.deschedule(probes[i]));
    EXPECT_EQ(eq.pending(), std::size_t(n - n / 3));

    EXPECT_TRUE(eq.run());
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(probes[i].fired, i % 3 == 0 ? 0 : 1) << "probe " << i;
    EXPECT_EQ(eq.executed(), std::size_t(n - n / 3));
}

TEST(MassCancel, PoolSweepFromInsideProcess)
{
    // The Directory::failover pattern, mid-run: an event's process()
    // walks an EventPool, descheduling and releasing everything still
    // pending -- including events in the *current* tick's bucket that
    // were scheduled behind the sweeper.
    EventQueue eq;
    EventPool<Probe> pool;

    struct Sweeper final : public Event
    {
        void
        process() override
        {
            pool->forEach([this](Probe &p) {
                if (p.scheduled()) {
                    eq->deschedule(p);
                    pool->release(p);
                }
            });
        }
        EventQueue *eq;
        EventPool<Probe> *pool;
    } sweeper;
    sweeper.eq = &eq;
    sweeper.pool = &pool;
    eq.schedule(100, sweeper); // scheduled first: same-tick probes
                               // land behind it in the bucket

    std::vector<Probe *> carved;
    for (int i = 0; i < 64; ++i) {
        Probe &p = pool.acquire();
        carved.push_back(&p);
        // Same tick as the sweeper (still in the current bucket when
        // the sweep runs), near wheel, far wheel, overflow heap.
        const Tick when = i % 4 == 0   ? 100
                          : i % 4 == 1 ? 3000
                          : i % 4 == 2 ? 90 * giga
                                       : 2000 * giga;
        eq.schedule(when, p);
    }

    EXPECT_TRUE(eq.run());
    for (Probe *p : carved)
        EXPECT_EQ(p->fired, 0);
    EXPECT_EQ(eq.executed(), 1u); // only the sweeper
    EXPECT_EQ(eq.curTick(), 100u);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(MassCancel, NextTickExactAfterSweepInsideProcess)
{
    // After an in-process() mass cancel, the queue's own main loop
    // relies on the next-tick scan to find the surviving event.
    EventQueue eq;
    Probe victims[8];
    Probe survivor;
    for (auto &v : victims)
        eq.schedule(200 + (&v - victims) * 700, v);
    eq.schedule(400 * giga + 13, survivor);

    struct Sweeper final : public Event
    {
        void
        process() override
        {
            for (int i = 0; i < 8; ++i)
                eq->deschedule(victims[i]);
            EXPECT_EQ(eq->nextTick(), 400u * giga + 13u);
        }
        EventQueue *eq;
        Probe *victims;
    } sweeper;
    sweeper.eq = &eq;
    sweeper.victims = victims;
    eq.schedule(50, sweeper);

    EXPECT_TRUE(eq.run());
    for (auto &v : victims)
        EXPECT_EQ(v.fired, 0);
    EXPECT_EQ(survivor.fired, 1);
    EXPECT_EQ(eq.curTick(), 400u * giga + 13u);
}

TEST(MassCancel, CanFuseBeforeStaysExactAfterCancel)
{
    // canFuseBefore must never say "yes" with an event still pending
    // at or before the probe tick, and must recover the "yes" answer
    // once that event is cancelled (after a nextTick() revalidation:
    // the guard itself is allowed to decline while cold).
    EventQueue eq;
    Probe a, b;
    eq.schedule(100, a);
    eq.schedule(5000, b);
    EXPECT_EQ(eq.nextTick(), 100u);
    EXPECT_FALSE(eq.canFuseBefore(100));
    EXPECT_FALSE(eq.canFuseBefore(2000));
    EXPECT_TRUE(eq.canFuseBefore(99));

    EXPECT_TRUE(eq.deschedule(a));
    EXPECT_EQ(eq.nextTick(), 5000u); // revalidate the memo
    EXPECT_TRUE(eq.canFuseBefore(2000));
    EXPECT_FALSE(eq.canFuseBefore(5000));
}

TEST(MassCancel, FaultHorizonCapsFusionRegardlessOfQueueState)
{
    // The fault layer's hard guarantee: no fused work at or past the
    // next scheduled fault tick, even on an otherwise empty queue
    // whose memo would happily say yes.
    EventQueue eq;
    EXPECT_EQ(eq.faultHorizon(), maxTick);
    eq.setFaultHorizon(1000);
    EXPECT_FALSE(eq.canFuseBefore(1000));
    EXPECT_FALSE(eq.canFuseBefore(maxTick));
    Probe a;
    eq.schedule(600, a);
    EXPECT_EQ(eq.nextTick(), 600u);
    EXPECT_TRUE(eq.canFuseBefore(599)); // below both horizon and min
    EXPECT_FALSE(eq.canFuseBefore(600));
    eq.setFaultHorizon(maxTick);
    EXPECT_TRUE(eq.deschedule(a));
    EXPECT_EQ(eq.nextTick(), maxTick);
    EXPECT_TRUE(eq.canFuseBefore(1000)); // horizon lifted
}

namespace
{

/** Raw network sink: records (tick, blk) per delivery. */
struct SinkLog
{
    EventQueue *eq;
    std::vector<std::pair<Tick, BlockId>> log;

    static void
    record(void *ctx, const CohMsg &m)
    {
        auto *s = static_cast<SinkLog *>(ctx);
        s->log.emplace_back(s->eq->curTick(), m.blk);
    }
};

CohMsg
toZero(NodeId src, BlockId blk)
{
    CohMsg m;
    m.type = MsgType::GetS;
    m.src = src;
    m.dst = 0;
    m.blk = blk;
    return m;
}

/** Fires once at its scheduled tick and runs a callback. */
template <typename Fn>
struct At final : public Event
{
    explicit At(Fn f) : fn(std::move(f)) {}

    void process() override { fn(); }

    Fn fn;
};

} // namespace

TEST(MassCancel, ForeignPoolSweepLeavesTheDrainFifoIntact)
{
    // A directory failover sweeps *its own* event pool
    // (EventPool::forEach + deschedule) while a destination's ingress
    // FIFO is non-empty and its drain event is pending. The sweep
    // must not perturb the drain: every queued arrival still delivers
    // at exactly the tick an undisturbed run produces.
    auto run = [](bool sweep) {
        EventQueue eq;
        ProtoConfig cfg;
        Network net(eq, cfg, Rng(7));
        SinkLog sink{&eq, {}};
        for (NodeId n = 0; n < cfg.numNodes; ++n)
            net.attach(n, &SinkLog::record, &sink);

        auto send = At([&] {
            for (int i = 0; i < 12; ++i)
                net.send(toZero(NodeId(1 + i % 3), BlockId(i)));
        });
        eq.schedule(5, send);

        EventPool<Probe> pool;
        auto sweeper = At([&] {
            // The backlog is in flight: pending arrivals queued, the
            // drain armed. Sweep a 64-event pool spanning all three
            // queue levels, failover-style.
            EXPECT_GT(net.inFlightTo(0), 0u);
            EXPECT_TRUE(net.drainEvent(0).scheduled());
            pool.forEach([&](Probe &p) {
                if (p.scheduled()) {
                    eq.deschedule(p);
                    pool.release(p);
                }
            });
        });
        if (sweep) {
            eq.schedule(20, sweeper);
            for (int i = 0; i < 64; ++i) {
                Probe &p = pool.acquire();
                const Tick when = i % 4 == 0   ? 20
                                  : i % 4 == 1 ? 3000
                                  : i % 4 == 2 ? 90 * giga
                                               : 2000 * giga;
                eq.schedule(when, p);
            }
        }

        EXPECT_TRUE(eq.run());
        EXPECT_EQ(net.inFlightTo(0), 0u);
        return sink.log;
    };

    const auto undisturbed = run(false);
    const auto swept = run(true);
    EXPECT_EQ(undisturbed.size(), 12u);
    EXPECT_EQ(swept, undisturbed);
}

TEST(MassCancel, DeschedulingTheDrainStrandsNothingPastTheNextPush)
{
    // The hostile case the failover path must never create but the
    // network has to survive anyway: the drain event itself is
    // descheduled while the per-destination FIFO holds arrivals. The
    // queue then runs dry with the backlog stranded -- until the next
    // push to that destination, whose !scheduled() branch re-arms the
    // drain (clamped to the current tick, long past the stranded
    // arrival times) and every queued message delivers, in order.
    EventQueue eq;
    ProtoConfig cfg;
    cfg.netJitter = 0; // deterministic cross-source arrival order
    Network net(eq, cfg, Rng(7));
    SinkLog sink{&eq, {}};
    for (NodeId n = 0; n < cfg.numNodes; ++n)
        net.attach(n, &SinkLog::record, &sink);

    auto send = At([&] {
        for (int i = 0; i < 12; ++i)
            net.send(toZero(NodeId(1 + i % 3), BlockId(i)));
    });
    eq.schedule(5, send);

    auto cancel = At([&] {
        ASSERT_EQ(net.inFlightTo(0), 12u);
        ASSERT_TRUE(net.drainEvent(0).scheduled());
        EXPECT_TRUE(eq.deschedule(net.drainEvent(0)));
    });
    eq.schedule(20, cancel);

    EXPECT_TRUE(eq.run());
    // Stranded: the queue is empty, the backlog is not.
    EXPECT_EQ(sink.log.size(), 0u);
    EXPECT_EQ(net.inFlightTo(0), 12u);
    EXPECT_FALSE(net.drainEvent(0).scheduled());

    // One late push heals the node: it re-arms the drain and the
    // whole backlog drains behind it.
    const Tick healTick = 5000;
    auto heal = At([&] { net.send(toZero(3, BlockId(99))); });
    eq.schedule(healTick, heal);
    EXPECT_TRUE(eq.run());

    ASSERT_EQ(sink.log.size(), 13u);
    EXPECT_EQ(net.inFlightTo(0), 0u);
    for (std::size_t i = 0; i < 12; ++i) {
        // Stranded arrivals deliver at/after the heal (never at a
        // stale pre-strand tick) and keep their push order.
        EXPECT_GE(sink.log[i].first, healTick) << "delivery " << i;
        EXPECT_EQ(sink.log[i].second, BlockId(i));
    }
    EXPECT_EQ(sink.log.back().second, BlockId(99));
}

TEST(MassCancel, CancelAllThenRescheduleReusesTheQueue)
{
    // A restart after failover: the same queue keeps running with
    // fresh schedules, and per-tick FIFO order starts clean.
    EventQueue eq;
    std::vector<Probe> gen1(50), gen2(50);
    for (int i = 0; i < 50; ++i)
        eq.schedule(Tick(10 + i * 37), gen1[i]);
    for (auto &p : gen1)
        EXPECT_TRUE(eq.deschedule(p));
    EXPECT_EQ(eq.pending(), 0u);
    for (int i = 0; i < 50; ++i)
        eq.schedule(Tick(10 + i * 37), gen2[i]);
    EXPECT_TRUE(eq.run());
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(gen1[i].fired, 0);
        EXPECT_EQ(gen2[i].fired, 1);
    }
    EXPECT_EQ(eq.executed(), 50u);
}
