/** @file Unit tests for EventQueue::nextTick() (peek without pop).
 *
 * The peek is the safety guard of the processor's fused-run fast
 * path: executing trace operations ahead of the clock is only legal
 * while no other event can fire first, so the peek must be exact in
 * every queue state -- empty, near wheel, far wheel, overflow heap,
 * and (the subtle one) from inside a handler while same-tick events
 * are still pending.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/eventq.hh"

using namespace mspdsm;

TEST(NextTick, EmptyQueueReportsMaxTick)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextTick(), maxTick);
}

TEST(NextTick, ReportsEarliestWithoutPopping)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(30, [&] { ++fired; });
    eq.schedule(10, [&] { ++fired; });
    EXPECT_EQ(eq.nextTick(), 10u);
    EXPECT_EQ(eq.pending(), 2u);
    EXPECT_EQ(fired, 0); // peek must not execute anything
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(eq.nextTick(), maxTick);
}

TEST(NextTick, CoversFarWheelAndOverflowHeap)
{
    // Far wheel: a few gigaticks out. Overflow heap: beyond ~1M.
    {
        EventQueue eq;
        eq.schedule(Tick{50} << 12, [] {});
        EXPECT_EQ(eq.nextTick(), Tick{50} << 12);
    }
    {
        EventQueue eq;
        eq.schedule(Tick{1} << 40, [] {});
        EXPECT_EQ(eq.nextTick(), Tick{1} << 40);
    }
    {
        // Both levels populated: the near one wins.
        EventQueue eq;
        eq.schedule(Tick{1} << 40, [] {});
        eq.schedule(Tick{50} << 12, [] {});
        eq.schedule(77, [] {});
        EXPECT_EQ(eq.nextTick(), 77u);
    }
}

TEST(NextTick, SeesRemainingSameTickEventsFromInsideHandler)
{
    EventQueue eq;
    std::vector<Tick> peeks;
    eq.schedule(5, [&] { peeks.push_back(eq.nextTick()); });
    eq.schedule(5, [&] { peeks.push_back(eq.nextTick()); });
    eq.schedule(40, [&] { peeks.push_back(eq.nextTick()); });
    EXPECT_TRUE(eq.run());
    // First handler still has a tick-5 sibling pending; the second
    // sees only the tick-40 event; the last sees an empty queue.
    EXPECT_EQ(peeks, (std::vector<Tick>{5, 40, maxTick}));
}

TEST(NextTick, SameTickScheduleFromHandlerIsVisible)
{
    EventQueue eq;
    std::vector<Tick> peeks;
    eq.schedule(9, [&] {
        eq.scheduleAfter(0, [&] { peeks.push_back(eq.nextTick()); });
        peeks.push_back(eq.nextTick());
    });
    eq.schedule(25, [] {});
    EXPECT_TRUE(eq.run());
    // The outer handler's peek sees the same-tick event it just
    // scheduled; the inner one sees only the tick-25 event.
    EXPECT_EQ(peeks, (std::vector<Tick>{9, 25}));
}

TEST(NextTick, DescheduleUpdatesThePeek)
{
    struct Noop final : Event
    {
        void process() override {}
    } a, b;

    EventQueue eq;
    eq.schedule(3, a);
    eq.schedule(8, b);
    EXPECT_EQ(eq.nextTick(), 3u);
    EXPECT_TRUE(eq.deschedule(a));
    EXPECT_EQ(eq.nextTick(), 8u);
    EXPECT_TRUE(eq.deschedule(b));
    EXPECT_EQ(eq.nextTick(), maxTick);
}
