/** @file Shared helpers for simulator-level tests. */

#ifndef MSPDSM_TESTS_TESTUTIL_HH
#define MSPDSM_TESTS_TESTUTIL_HH

#include <vector>

#include "dsm/system.hh"
#include "workload/layout.hh"

namespace mspdsm::test
{

/** A default small config: 4 nodes unless overridden. */
inline DsmConfig
smallConfig(unsigned nodes = 4)
{
    DsmConfig cfg;
    cfg.proto.numNodes = nodes;
    cfg.proto.netJitter = 0;
    return cfg;
}

/** Empty traces for all processors. */
inline std::vector<Trace>
idleTraces(unsigned nodes)
{
    return std::vector<Trace>(nodes);
}

/**
 * Byte address of the i-th block on the first page homed at @p home
 * (given page-interleaved assignment).
 */
inline Addr
blockOn(const ProtoConfig &cfg, NodeId home, unsigned i = 0)
{
    return static_cast<Addr>(home) * cfg.pageSize +
           static_cast<Addr>(i) * cfg.blockSize;
}

/** Traces where only processor @p who runs @p t. */
inline std::vector<Trace>
soloTrace(unsigned nodes, NodeId who, Trace t)
{
    std::vector<Trace> ts(nodes);
    ts[who] = std::move(t);
    return ts;
}

} // namespace mspdsm::test

#endif // MSPDSM_TESTS_TESTUTIL_HH
