/** @file Full-system prediction accuracy: the orderings the paper's
 * Figures 7-8 and Tables 3-4 report must hold on the synthesized
 * workloads. Exact percentages are checked loosely (they are
 * emergent); orderings and gaps are the reproduction targets. */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

using namespace mspdsm;

namespace
{

ExperimentConfig
smallRun()
{
    ExperimentConfig ec;
    ec.scale = 0.5;
    ec.iterations = 10;
    return ec;
}

struct Acc
{
    double cosmos, msp, vmsp;
};

Acc
accuracy(const char *app, std::size_t depth = 1)
{
    const RunResult r = runAccuracy(app, depth, smallRun());
    return {r.observers[0].stats.accuracyPct(),
            r.observers[1].stats.accuracyPct(),
            r.observers[2].stats.accuracyPct()};
}

} // namespace

TEST(Accuracy, Em3dMspFixesAckPerturbation)
{
    const Acc a = accuracy("em3d");
    // Paper: Cosmos suffers from ack re-ordering; MSP ~99%.
    EXPECT_GT(a.msp, 92.0);
    EXPECT_GT(a.vmsp, 92.0);
    EXPECT_LT(a.cosmos, a.msp - 8.0);
}

TEST(Accuracy, TomcatvAllPredictorsNearPerfect)
{
    const Acc a = accuracy("tomcatv");
    EXPECT_GT(a.cosmos, 95.0);
    EXPECT_GT(a.msp, 95.0);
    EXPECT_GT(a.vmsp, 95.0);
}

TEST(Accuracy, UnstructuredVmspBeatsMspWidely)
{
    const Acc a = accuracy("unstructured");
    // Paper: wide read re-ordering keeps MSP under ~65%, VMSP ~87%.
    EXPECT_LT(a.msp, 75.0);
    EXPECT_GT(a.vmsp, a.msp + 12.0);
}

TEST(Accuracy, AppbtAcksHelpCosmos)
{
    const Acc a = accuracy("appbt");
    // Paper: the only app where Cosmos slightly beats MSP.
    EXPECT_GT(a.cosmos, a.msp);
    EXPECT_LT(a.vmsp, 97.0); // depth 1 cannot separate dimensions
}

TEST(Accuracy, BarnesMspDoesNotImproveOnCosmos)
{
    const Acc a = accuracy("barnes");
    // Paper: acks arrive in order, so MSP ~ Cosmos; VMSP gains by
    // removing read re-ordering.
    EXPECT_NEAR(a.msp, a.cosmos, 6.0);
    EXPECT_GT(a.vmsp, a.msp + 4.0);
}

TEST(Accuracy, MoldynMspAndVmspHigh)
{
    const Acc a = accuracy("moldyn");
    EXPECT_GT(a.msp, 90.0);
    EXPECT_GT(a.vmsp, 90.0);
    EXPECT_LT(a.cosmos, a.msp);
}

TEST(Accuracy, SuiteAveragesOrderCosmosMspVmsp)
{
    // The headline result: Cosmos ~81% < MSP ~86% < VMSP ~93%.
    double c = 0, m = 0, v = 0;
    for (const AppInfo &info : appSuite()) {
        const Acc a = accuracy(info.name.c_str());
        c += a.cosmos;
        m += a.msp;
        v += a.vmsp;
    }
    c /= 7;
    m /= 7;
    v /= 7;
    EXPECT_GT(m, c + 2.0);
    EXPECT_GT(v, m + 4.0);
    EXPECT_GT(v, 85.0);
    EXPECT_LT(c, 90.0);
}

TEST(Accuracy, DepthImprovesAppbtToNearPerfect)
{
    // Paper Figure 8: depth 2 separates appbt's alternating edge
    // consumers (for the vector predictor).
    const Acc d1 = accuracy("appbt", 1);
    const Acc d2 = accuracy("appbt", 2);
    EXPECT_GT(d2.vmsp, d1.vmsp + 3.0);
    EXPECT_GT(d2.vmsp, 96.0);
}

TEST(Accuracy, DepthImprovesUnstructured)
{
    const Acc d1 = accuracy("unstructured", 1);
    const Acc d4 = accuracy("unstructured", 4);
    EXPECT_GT(d4.vmsp, d1.vmsp + 5.0);
}

TEST(Accuracy, CoverageHighForIterativeApps)
{
    // Table 3: the iterative apps reuse pattern entries heavily.
    for (const char *app : {"em3d", "moldyn", "tomcatv"}) {
        const RunResult r = runAccuracy(app, 1, smallRun());
        for (const ObserverResult &o : r.observers)
            EXPECT_GT(o.stats.coveragePct(), 80.0)
                << app << "/" << o.name;
    }
}

TEST(Accuracy, BarnesCoverageIsLow)
{
    // Table 3: rapidly changing sharing -> little pattern reuse.
    const RunResult r = runAccuracy("barnes", 1, smallRun());
    for (const ObserverResult &o : r.observers)
        EXPECT_LT(o.stats.coveragePct(), 80.0) << o.name;
}

TEST(Accuracy, StorageOrderingMatchesTable4)
{
    // MSP and VMSP need fewer pattern entries than Cosmos; VMSP the
    // fewest. Ocean's large private set keeps its average under ~1.
    for (const AppInfo &info : appSuite()) {
        const RunResult r =
            runAccuracy(info.name.c_str(), 1, smallRun());
        const double cosmos_pte = r.observers[0].storage.avgPte;
        const double msp_pte = r.observers[1].storage.avgPte;
        const double vmsp_pte = r.observers[2].storage.avgPte;
        EXPECT_LE(msp_pte, cosmos_pte + 1e-9) << info.name;
        EXPECT_LE(vmsp_pte, msp_pte + 1e-9) << info.name;
    }
    const RunResult ocean = runAccuracy("ocean", 1, smallRun());
    EXPECT_LT(ocean.observers[2].storage.avgPte, 1.5);
}

TEST(Accuracy, VmspBytesBeatCosmosOnWideSharing)
{
    const RunResult r = runAccuracy("unstructured", 1, smallRun());
    EXPECT_LT(r.observers[2].storage.avgBytesPerBlock,
              r.observers[0].storage.avgBytesPerBlock);
}
