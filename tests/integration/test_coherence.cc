/** @file Coherence invariants under randomized full-system load.
 *
 * These are the safety properties the protocol must uphold with and
 * without speculation: a single writer at a time, directory state
 * consistent with cache states, no stuck transactions.
 */

#include <gtest/gtest.h>

#include <set>

#include "testutil.hh"
#include "workload/suite.hh"

using namespace mspdsm;
using namespace mspdsm::test;

namespace
{

/**
 * Random mixed workload over a handful of blocks, designed to
 * maximize conflicts.
 */
std::vector<Trace>
randomTraffic(const ProtoConfig &proto, unsigned nodes,
              unsigned blocks, int ops_per_proc, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Trace> ts(nodes);
    for (unsigned q = 0; q < nodes; ++q) {
        for (int i = 0; i < ops_per_proc; ++i) {
            const Addr a = blockOn(
                proto,
                NodeId(rng.uniform(0, nodes - 1)),
                static_cast<unsigned>(rng.uniform(0, blocks - 1)));
            if (rng.chance(0.3))
                ts[q].push_back(TraceOp::write(a));
            else
                ts[q].push_back(TraceOp::read(a));
            if (rng.chance(0.5))
                ts[q].push_back(
                    TraceOp::compute(rng.uniform(1, 300)));
            if (rng.chance(0.05))
                for (unsigned all = 0; all < nodes; ++all)
                    ts[all].push_back(TraceOp::barrier());
        }
    }
    return ts;
}

/** All blocks the workload touches. */
std::set<BlockId>
touchedBlocks(const ProtoConfig &proto, const std::vector<Trace> &ts)
{
    std::set<BlockId> blocks;
    for (const Trace &t : ts)
        for (const TraceOp &op : t)
            if (op.kind == OpKind::Read || op.kind == OpKind::Write)
                blocks.insert(proto.blockOf(op.addr));
    return blocks;
}

/** Verify end-state invariants for every touched block. */
void
checkInvariants(DsmSystem &sys, const ProtoConfig &proto,
                const std::set<BlockId> &blocks)
{
    for (BlockId blk : blocks) {
        const NodeId home = proto.homeOf(blk);
        Directory &dir = sys.directory(home);
        const DirState ds = dir.blockState(blk);
        // 1. No transaction left hanging.
        EXPECT_TRUE(ds == DirState::Idle || ds == DirState::Shared ||
                    ds == DirState::Excl)
            << "block " << blk << " stuck in transient state";

        int modified = 0, shared = 0;
        for (NodeId q = 0; q < proto.numNodes; ++q) {
            const LineState ls = sys.cache(q).lineState(blk);
            modified += ls == LineState::Modified;
            shared += ls == LineState::Shared;
            // 2. Single-writer: a modified copy excludes all others.
            if (ls == LineState::Modified) {
                EXPECT_EQ(dir.ownerOf(blk), q);
                EXPECT_EQ(ds, DirState::Excl);
            }
            // 3. Every valid cache copy is known to the directory.
            if (ls == LineState::Shared) {
                EXPECT_TRUE(dir.sharersOf(blk).contains(q))
                    << "stale copy of " << blk << " at " << q;
            }
        }
        EXPECT_LE(modified, 1) << "two writers for block " << blk;
        if (modified == 1) {
            EXPECT_EQ(shared, 0)
                << "reader coexists with writer for " << blk;
        }
    }
}

} // namespace

class CoherenceFuzz
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
};

TEST_P(CoherenceFuzz, InvariantsHoldUnderRandomTraffic)
{
    const auto [mode_int, seed] = GetParam();
    DsmConfig cfg = smallConfig(8);
    cfg.proto.netJitter = 24; // stress re-ordering
    cfg.spec = static_cast<SpecMode>(mode_int);
    if (cfg.spec != SpecMode::None) {
        cfg.pred = PredKind::Vmsp;
        cfg.historyDepth = 1;
    }
    DsmSystem sys(cfg);
    const auto ts = randomTraffic(cfg.proto, 8, 6, 120, seed);
    sys.run(ts); // panics internally on protocol violations/deadlock
    checkInvariants(sys, cfg.proto, touchedBlocks(cfg.proto, ts));
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, CoherenceFuzz,
    ::testing::Combine(::testing::Values(0, 1, 2), // None/FR/SWI+FR
                       ::testing::Values(1ull, 7ull, 42ull, 1234ull,
                                         98765ull)));

TEST(Coherence, HotBlockAllModes)
{
    // Everyone hammers one block with no compute padding at all.
    for (int mode = 0; mode < 3; ++mode) {
        DsmConfig cfg = smallConfig(8);
        cfg.proto.netJitter = 16;
        cfg.spec = static_cast<SpecMode>(mode);
        if (cfg.spec != SpecMode::None) {
            cfg.pred = PredKind::Vmsp;
            cfg.historyDepth = 1;
        }
        DsmSystem sys(cfg);
        const Addr a = blockOn(cfg.proto, 0);
        std::vector<Trace> ts(8);
        for (unsigned q = 0; q < 8; ++q)
            for (int i = 0; i < 40; ++i)
                ts[q].push_back(i % 4 == int(q % 4)
                                    ? TraceOp::write(a)
                                    : TraceOp::read(a));
        sys.run(ts);
        checkInvariants(sys, cfg.proto,
                        {cfg.proto.blockOf(a)});
    }
}

TEST(Coherence, FullAppSuiteRunsCleanBase)
{
    // Every generated application completes on the base system.
    for (const AppInfo &info : appSuite()) {
        AppParams p;
        p.scale = 0.25;
        p.iterations = 2;
        const Workload w = info.make(p);
        DsmConfig cfg;
        cfg.proto.netJitter = w.netJitter;
        DsmSystem sys(cfg);
        const RunResult r = sys.run(w.traces);
        EXPECT_GT(r.execTicks, 0u) << info.name;
        EXPECT_GT(r.reads, 0u) << info.name;
    }
}

TEST(Coherence, FullAppSuiteRunsCleanSwi)
{
    for (const AppInfo &info : appSuite()) {
        AppParams p;
        p.scale = 0.25;
        p.iterations = 2;
        const Workload w = info.make(p);
        DsmConfig cfg;
        cfg.proto.netJitter = w.netJitter;
        cfg.pred = PredKind::Vmsp;
        cfg.historyDepth = 1;
        cfg.spec = SpecMode::SwiFirstRead;
        DsmSystem sys(cfg);
        const RunResult r = sys.run(w.traces);
        EXPECT_GT(r.execTicks, 0u) << info.name;
    }
}
