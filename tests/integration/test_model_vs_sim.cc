/** @file Cross-validation: the Section 5 analytic model against the
 * simulator. The model predicts the speedup from (c, f, p, rtl, n);
 * we fit its parameters from a measured base run and check that the
 * measured speculative run falls in the model's predicted range.
 * This is the ablation DESIGN.md calls A2/A5: it ties the two
 * independent implementations of the paper's performance story
 * together.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "model/analytic.hh"

using namespace mspdsm;

namespace
{

ExperimentConfig
smallRun()
{
    ExperimentConfig ec;
    ec.scale = 0.5;
    ec.iterations = 10;
    return ec;
}

/** Model inputs measured from simulator runs. */
struct Fit
{
    double c;   //!< communication ratio of the base run
    double f;   //!< fraction of reads served speculatively
    double rtl; //!< machine remote-to-local ratio
};

Fit
fit(const RunResult &base, const RunResult &spec)
{
    Fit out;
    out.c = base.avgRequestWait / static_cast<double>(base.execTicks);
    const double served = static_cast<double>(
        spec.specServedFr + spec.specServedSwi);
    out.f = served / static_cast<double>(spec.reads);
    out.rtl = 4.0; // Table 1 calibration
    return out;
}

} // namespace

TEST(ModelVsSim, SpeculativeSpeedupTracksEquation2)
{
    // For the well-behaved producer/consumer apps, the measured
    // SWI-DSM speedup should be bracketed by Equation 2 evaluated at
    // the measured coverage with perfect accuracy (upper bound-ish)
    // and at conservative accuracy (lower bound). Reads are the only
    // speculated requests, so f is scaled by the read share.
    for (const char *app : {"em3d", "tomcatv", "unstructured"}) {
        const RunResult base =
            runSpec(app, SpecMode::None, smallRun());
        const RunResult swi =
            runSpec(app, SpecMode::SwiFirstRead, smallRun());
        const Fit f = fit(base, swi);

        const double measured =
            static_cast<double>(base.execTicks) /
            static_cast<double>(swi.execTicks);

        ModelParams mp;
        mp.c = f.c;
        mp.rtl = f.rtl;
        mp.n = 2.0;
        // Reads dominate the request mix; weight coverage by it.
        const double read_share =
            static_cast<double>(base.reads) /
            static_cast<double>(base.reads + base.writes);
        mp.f = f.f * read_share;

        mp.p = 1.0;
        const double upper = speedup(mp) * 1.10; // +10% slack
        mp.p = 0.7;
        const double lower = speedup(mp) * 0.82; // -18% slack

        EXPECT_GT(measured, lower) << app;
        EXPECT_LT(measured, upper) << app;
        EXPECT_GT(measured, 1.0) << app;
    }
}

TEST(ModelVsSim, CommunicationRatioOrdersTheGains)
{
    // Equation 2: at similar coverage/accuracy, apps with a higher
    // communication ratio gain more. barnes (compute-bound) must
    // gain less than em3d (communication-bound).
    const RunResult bb = runSpec("barnes", SpecMode::None, smallRun());
    const RunResult bs =
        runSpec("barnes", SpecMode::SwiFirstRead, smallRun());
    const RunResult eb = runSpec("em3d", SpecMode::None, smallRun());
    const RunResult es =
        runSpec("em3d", SpecMode::SwiFirstRead, smallRun());

    const double barnes_c =
        bb.avgRequestWait / static_cast<double>(bb.execTicks);
    const double em3d_c =
        eb.avgRequestWait / static_cast<double>(eb.execTicks);
    ASSERT_LT(barnes_c, em3d_c);

    const double barnes_gain =
        static_cast<double>(bb.execTicks) /
        static_cast<double>(bs.execTicks);
    const double em3d_gain = static_cast<double>(eb.execTicks) /
                             static_cast<double>(es.execTicks);
    EXPECT_LT(barnes_gain, em3d_gain);
}

TEST(ModelVsSim, MeasuredRtlMatchesTable1)
{
    // The model's rtl input comes from the machine calibration; make
    // sure the simulated machine still delivers it end to end.
    DsmConfig cfg;
    cfg.proto.netJitter = 0;
    Tick local = 0, remote = 0;
    {
        DsmSystem sys(cfg);
        std::vector<Trace> ts(cfg.proto.numNodes);
        ts[1] = {TraceOp::read(1 * cfg.proto.pageSize)};
        local = sys.run(ts).execTicks;
    }
    {
        DsmSystem sys(cfg);
        std::vector<Trace> ts(cfg.proto.numNodes);
        ts[1] = {TraceOp::read(0)};
        remote = sys.run(ts).execTicks;
    }
    const double rtl =
        static_cast<double>(remote) / static_cast<double>(local);
    EXPECT_NEAR(rtl, 4.0, 0.5);
}
