/** @file Bit-exact determinism of full-system runs. */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "testutil.hh"

using namespace mspdsm;
using namespace mspdsm::test;

namespace
{

ExperimentConfig
tiny()
{
    ExperimentConfig ec;
    ec.scale = 0.25;
    ec.iterations = 2;
    return ec;
}

} // namespace

TEST(Determinism, AccuracyRunsAreRepeatable)
{
    for (const char *app : {"em3d", "barnes"}) {
        const RunResult a = runAccuracy(app, 1, tiny());
        const RunResult b = runAccuracy(app, 1, tiny());
        EXPECT_EQ(a.execTicks, b.execTicks) << app;
        EXPECT_EQ(a.messages, b.messages) << app;
        ASSERT_EQ(a.observers.size(), b.observers.size());
        for (std::size_t i = 0; i < a.observers.size(); ++i) {
            EXPECT_EQ(a.observers[i].stats.predicted.value(),
                      b.observers[i].stats.predicted.value());
            EXPECT_EQ(a.observers[i].stats.correct.value(),
                      b.observers[i].stats.correct.value());
        }
    }
}

TEST(Determinism, SpecRunsAreRepeatable)
{
    const RunResult a = runSpec("em3d", SpecMode::SwiFirstRead, tiny());
    const RunResult b = runSpec("em3d", SpecMode::SwiFirstRead, tiny());
    EXPECT_EQ(a.execTicks, b.execTicks);
    EXPECT_EQ(a.swiSent, b.swiSent);
    EXPECT_EQ(a.specSentSwi, b.specSentSwi);
    EXPECT_EQ(a.specServedSwi, b.specServedSwi);
}

TEST(Determinism, SeedChangesJitteredRun)
{
    ExperimentConfig e1 = tiny();
    ExperimentConfig e2 = tiny();
    e2.seed = 777;
    const RunResult a = runAccuracy("em3d", 1, e1);
    const RunResult b = runAccuracy("em3d", 1, e2);
    // Different jitter stream: some timing difference is expected.
    EXPECT_NE(a.execTicks, b.execTicks);
}

TEST(Determinism, ObserversDoNotPerturbExecution)
{
    // The paper's methodology measures all predictors on one run;
    // observation must not change timing.
    const Workload w = buildWorkload("em3d", tiny());
    DsmConfig with;
    with.proto.netJitter = w.netJitter;
    with.observers = {{PredKind::Cosmos, 1},
                      {PredKind::Msp, 2},
                      {PredKind::Vmsp, 4}};
    DsmConfig without;
    without.proto.netJitter = w.netJitter;
    DsmSystem s1(with), s2(without);
    EXPECT_EQ(s1.run(w.traces).execTicks,
              s2.run(w.traces).execTicks);
}
