/** @file Full-system speculation: Figure 9 / Table 5 shapes on the
 * synthesized workloads. */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

using namespace mspdsm;

namespace
{

ExperimentConfig
smallRun()
{
    ExperimentConfig ec;
    ec.scale = 0.5;
    ec.iterations = 10;
    return ec;
}

struct Modes
{
    RunResult base, fr, swi;
};

Modes
runModes(const char *app)
{
    return {runSpec(app, SpecMode::None, smallRun()),
            runSpec(app, SpecMode::FirstRead, smallRun()),
            runSpec(app, SpecMode::SwiFirstRead, smallRun())};
}

double
execRatio(const RunResult &r, const RunResult &base)
{
    return static_cast<double>(r.execTicks) /
           static_cast<double>(base.execTicks);
}

} // namespace

TEST(Speculation, Em3dSwiGivesLargeReduction)
{
    const Modes m = runModes("em3d");
    // Paper: FR cuts waiting ~50%, SWI ~70%; exec reductions are the
    // largest of the suite (up to ~24%).
    EXPECT_LT(execRatio(m.fr, m.base), 0.97);
    EXPECT_LT(execRatio(m.swi, m.base), execRatio(m.fr, m.base));
    // SWI invalidates nearly all writes.
    EXPECT_GT(pct(m.swi.swiSent, m.swi.writes), 70.0);
    // And covers most reads; FR alone covers ~58%.
    EXPECT_GT(pct(m.swi.specServedSwi, m.swi.reads), 60.0);
}

TEST(Speculation, NoAppSlowsDown)
{
    for (const AppInfo &info : appSuite()) {
        const Modes m = runModes(info.name.c_str());
        EXPECT_LT(execRatio(m.fr, m.base), 1.02) << info.name;
        EXPECT_LT(execRatio(m.swi, m.base), 1.02) << info.name;
    }
}

TEST(Speculation, SwiAtLeastMatchesFrEverywhere)
{
    // SWI-DSM includes FR as fallback; it should never lose to
    // FR-DSM by more than noise.
    for (const AppInfo &info : appSuite()) {
        const Modes m = runModes(info.name.c_str());
        EXPECT_LT(execRatio(m.swi, m.base),
                  execRatio(m.fr, m.base) + 0.02)
            << info.name;
    }
}

TEST(Speculation, SwiFailsInAppbtButFrHelps)
{
    const Modes m = runModes("appbt");
    // Paper: the producer reads right after writing, SWI is
    // suppressed (sent ~10%), yet FR covers ~half the reads.
    EXPECT_LT(pct(m.swi.swiSent, m.swi.writes), 35.0);
    EXPECT_GT(pct(m.fr.specServedFr, m.fr.reads), 25.0);
}

TEST(Speculation, MoldynSwiCoversMigratoryReads)
{
    const Modes m = runModes("moldyn");
    // SWI succeeds only in the migratory phase: a meaningful but
    // partial fraction of writes.
    const double sent = pct(m.swi.swiSent, m.swi.writes);
    EXPECT_GT(sent, 25.0);
    EXPECT_LT(sent, 95.0);
    EXPECT_GT(m.swi.specServedSwi, 0u);
    // FR adds the producer/consumer phase reads.
    EXPECT_GT(m.swi.specServedFr + m.swi.specServedSwi,
              m.fr.specServedFr);
}

TEST(Speculation, UnstructuredFrCoversWideReads)
{
    const Modes m = runModes("unstructured");
    // Paper: FR triggers eleven of every twelve wide-shared reads
    // (~46% of all reads, the other half being migratory).
    const double fr_cov = pct(m.fr.specServedFr, m.fr.reads);
    EXPECT_GT(fr_cov, 30.0);
    // SWI lifts total coverage far beyond FR.
    const double swi_cov =
        pct(m.swi.specServedFr + m.swi.specServedSwi, m.swi.reads);
    EXPECT_GT(swi_cov, fr_cov + 15.0);
}

TEST(Speculation, TomcatvSwiSucceedsOnAboutHalfTheWrites)
{
    const Modes m = runModes("tomcatv");
    const double sent = pct(m.swi.swiSent, m.swi.writes);
    // Paper: ~48%. The correction-phase half is premature-suppressed.
    EXPECT_GT(sent, 25.0);
    EXPECT_LT(sent, 75.0);
    EXPECT_GT(m.swi.swiSuppressed + m.swi.swiPremature, 0u);
}

TEST(Speculation, MisspeculationRateIsLow)
{
    // Table 5: write-invalidate misses are minimal everywhere, and
    // read misses small except in low-accuracy apps. (The threshold
    // is looser than the paper's <1% because short test runs are
    // dominated by the learning transient; the full-scale benches
    // converge lower.)
    for (const char *app : {"em3d", "moldyn", "tomcatv"}) {
        const RunResult r = runSpec(app, SpecMode::SwiFirstRead,
                                    smallRun());
        EXPECT_LT(pct(r.swiPremature, r.writes), 12.0) << app;
        EXPECT_LT(pct(r.specMissFr + r.specMissSwi, r.reads), 10.0)
            << app;
    }
}

TEST(Speculation, WaitingTimeDropsWithSpeculation)
{
    for (const char *app : {"em3d", "unstructured", "tomcatv"}) {
        const Modes m = runModes(app);
        EXPECT_LT(m.fr.avgRequestWait, m.base.avgRequestWait) << app;
        EXPECT_LT(m.swi.avgRequestWait,
                  m.fr.avgRequestWait * 1.05)
            << app;
    }
}

TEST(Speculation, BarnesBenefitsLittle)
{
    // Paper: barnes has a low communication ratio; speculation
    // barely moves execution time.
    const Modes m = runModes("barnes");
    EXPECT_GT(execRatio(m.swi, m.base), 0.93);
}

TEST(Speculation, RequestVolumeConsistentAcrossModes)
{
    // Speculation converts remote misses into local hits but must
    // not change how many reads the application performs (within
    // noise from premature invalidations).
    for (const AppInfo &info : appSuite()) {
        const Modes m = runModes(info.name.c_str());
        const double base = static_cast<double>(m.base.reads);
        EXPECT_NEAR(static_cast<double>(m.fr.reads), base,
                    base * 0.05 + 8)
            << info.name;
        EXPECT_NEAR(static_cast<double>(m.swi.reads), base,
                    base * 0.10 + 8)
            << info.name;
    }
}

TEST(Speculation, AverageExecutionReductionInPaperBallpark)
{
    // Paper: FR-DSM 8% average reduction, SWI-DSM 12% (on their
    // testbed). We require the same ordering with material effect.
    double fr_sum = 0, swi_sum = 0;
    for (const AppInfo &info : appSuite()) {
        const Modes m = runModes(info.name.c_str());
        fr_sum += 1.0 - execRatio(m.fr, m.base);
        swi_sum += 1.0 - execRatio(m.swi, m.base);
    }
    const double fr_avg = fr_sum / 7.0, swi_avg = swi_sum / 7.0;
    EXPECT_GT(fr_avg, 0.03);
    EXPECT_GT(swi_avg, fr_avg);
    EXPECT_LT(swi_avg, 0.35);
}
