/** @file Steady-state zero-allocation assertion for the message path.
 *
 * This binary replaces the global allocation functions with counting
 * wrappers. The test warms a two-node network + cache + directory
 * assembly until every pool, map, and queue has reached its working
 * size, snapshots the allocation counter, then pushes thousands more
 * coherence transactions through the *entire* per-message path --
 * processor-side access issue, request/recall/invalidation messages,
 * NI contention events, directory FSM events, intrusive completion --
 * and asserts that not a single allocation happened. This pins the
 * PR-chain's core perf invariant: simulating one message allocates
 * nothing in steady state (static delivery sinks, intrusive
 * completions, pooled events, open-addressing tables).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "dsm/cache.hh"
#include "dsm/directory.hh"
#include "net/network.hh"

namespace
{

/** Allocations observed process-wide (single-threaded test). */
std::uint64_t g_allocs = 0;

void *
countedAlloc(std::size_t n, std::size_t align)
{
    ++g_allocs;
    void *p = align > alignof(std::max_align_t)
                  ? std::aligned_alloc(align, (n + align - 1) / align * align)
                  : std::malloc(n);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // namespace

// Counting overrides for every allocation form the simulator (and the
// standard library underneath it) can reach.
void *operator new(std::size_t n) { return countedAlloc(n, 0); }
void *operator new[](std::size_t n) { return countedAlloc(n, 0); }
void *
operator new(std::size_t n, std::align_val_t a)
{
    return countedAlloc(n, static_cast<std::size_t>(a));
}
void *
operator new[](std::size_t n, std::align_val_t a)
{
    return countedAlloc(n, static_cast<std::size_t>(a));
}
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

using namespace mspdsm;

namespace
{

/**
 * Two nodes ping-ponging ownership of one block: node 1 reads (GetS,
 * recall + writeback once node 0 owns it), node 0 writes (GetX,
 * invalidation + ack). One full cycle exercises every protocol
 * message type on the demand path.
 */
struct PingPong
{
    explicit PingPong(unsigned cycles)
        : reader(&PingPong::readerDone), writer(&PingPong::writerDone),
          cyclesLeft(cycles)
    {
        cfg.numNodes = 2;
        cfg.netJitter = 0;
        net = std::make_unique<Network>(eq, cfg, Rng(7));
        for (NodeId n = 0; n < 2; ++n) {
            caches.push_back(
                std::make_unique<CacheCtrl>(n, eq, *net, cfg));
            dirs.push_back(std::make_unique<Directory>(
                n, eq, *net, cfg, std::vector<PredictorBase *>{},
                nullptr, SpecMode::None));
        }
        for (NodeId n = 0; n < 2; ++n)
            net->attach(n, *caches[n], *dirs[n]);
        reader.owner = this;
        writer.owner = this;
    }

    struct ReaderDone final : MemCompletion
    {
        using MemCompletion::MemCompletion;
        PingPong *owner = nullptr;
    };
    struct WriterDone final : MemCompletion
    {
        using MemCompletion::MemCompletion;
        PingPong *owner = nullptr;
    };

    static void
    readerDone(MemCompletion &self, bool, Tick base)
    {
        PingPong *pp = static_cast<ReaderDone &>(self).owner;
        // Node 0 (the home) writes the block next. The completion may
        // arrive through the fused fast path (ahead of the clock), so
        // the follow-on access anchors on the completion tick.
        pp->caches[0]->accessAt(0, true, pp->writer, base);
    }

    static void
    writerDone(MemCompletion &self, bool, Tick base)
    {
        PingPong *pp = static_cast<WriterDone &>(self).owner;
        if (--pp->cyclesLeft == 0)
            return;
        // Node 1 reads it back: recall + writeback at the home.
        pp->caches[1]->accessAt(0, false, pp->reader, base);
    }

    /** Run @p cycles full read/write cycles to completion. */
    void
    go()
    {
        caches[1]->access(0, false, reader);
        ASSERT_TRUE(eq.run());
        ASSERT_EQ(cyclesLeft, 0u);
    }

    EventQueue eq;
    ProtoConfig cfg;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<CacheCtrl>> caches;
    std::vector<std::unique_ptr<Directory>> dirs;
    ReaderDone reader;
    WriterDone writer;
    unsigned cyclesLeft;
};

} // namespace

TEST(ZeroAlloc, SteadyStateMessagePathDoesNotAllocate)
{
    // Warm-up: first transactions populate the line/entry tables,
    // event pools, and NI state.
    PingPong warm(16);
    warm.go();
    const std::uint64_t mark = g_allocs;

    warm.cyclesLeft = 2000;
    warm.caches[1]->access(0, false, warm.reader);
    ASSERT_TRUE(warm.eq.run());
    ASSERT_EQ(warm.cyclesLeft, 0u);

    EXPECT_EQ(g_allocs, mark)
        << "steady-state message path performed "
        << (g_allocs - mark) << " allocations";

    // Sanity: the warm phase itself did allocate (the hook works).
    EXPECT_GT(mark, 0u);
}

TEST(ZeroAlloc, HitPathDoesNotAllocate)
{
    // Node-local hits: access -> pooled HitEvent -> completion.
    PingPong warm(4);
    warm.go();

    struct HitLoop final : MemCompletion
    {
        explicit HitLoop(CacheCtrl *c)
            : MemCompletion(&HitLoop::fired), cache(c)
        {}

        static void
        fired(MemCompletion &self, bool, Tick base)
        {
            auto &h = static_cast<HitLoop &>(self);
            if (--h.left > 0)
                h.cache->accessAt(0, true, h, base);
        }

        CacheCtrl *cache;
        int left = 0;
    } loop(warm.caches[0].get());

    // Node 0 owns the block after go(); repeated writes are hits.
    loop.left = 1;
    warm.caches[0]->access(0, true, loop);
    ASSERT_TRUE(warm.eq.run());

    const std::uint64_t mark = g_allocs;
    loop.left = 5000;
    warm.caches[0]->access(0, true, loop);
    ASSERT_TRUE(warm.eq.run());
    EXPECT_EQ(g_allocs, mark);
}
