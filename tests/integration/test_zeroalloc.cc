/** @file Steady-state zero-allocation assertion for the message path.
 *
 * This binary replaces the global allocation functions with counting
 * wrappers. The test warms a two-node network + cache + directory
 * assembly until every pool, map, and queue has reached its working
 * size, snapshots the allocation counter, then pushes thousands more
 * coherence transactions through the *entire* per-message path --
 * processor-side access issue, request/recall/invalidation messages,
 * NI contention events, directory FSM events, intrusive completion --
 * and asserts that not a single allocation happened. This pins the
 * PR-chain's core perf invariant: simulating one message allocates
 * nothing in steady state (static delivery sinks, intrusive
 * completions, pooled events, open-addressing tables).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "dsm/cache.hh"
#include "dsm/directory.hh"
#include "net/network.hh"

namespace
{

/** Allocations observed process-wide (single-threaded test). */
std::uint64_t g_allocs = 0;

void *
countedAlloc(std::size_t n, std::size_t align)
{
    ++g_allocs;
    void *p = align > alignof(std::max_align_t)
                  ? std::aligned_alloc(align, (n + align - 1) / align * align)
                  : std::malloc(n);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // namespace

// Counting overrides for every allocation form the simulator (and the
// standard library underneath it) can reach.
void *operator new(std::size_t n) { return countedAlloc(n, 0); }
void *operator new[](std::size_t n) { return countedAlloc(n, 0); }
void *
operator new(std::size_t n, std::align_val_t a)
{
    return countedAlloc(n, static_cast<std::size_t>(a));
}
void *
operator new[](std::size_t n, std::align_val_t a)
{
    return countedAlloc(n, static_cast<std::size_t>(a));
}
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

using namespace mspdsm;

namespace
{

/**
 * Two nodes ping-ponging ownership of one block: the reader node
 * reads (GetS, recall + writeback once node 0 owns it), node 0 (the
 * home) writes (GetX, invalidation + ack). One full cycle exercises
 * every protocol message type on the demand path. The topology and
 * node count are parameters so the same cycle can run over multi-hop
 * routes (ring/mesh), pinning the zero-allocation invariant on the
 * link-walk path too.
 */
struct PingPong
{
    explicit PingPong(unsigned cycles,
                      TopoKind topo = TopoKind::Crossbar,
                      unsigned nodes = 2, NodeId readerAt = 1)
        : reader(&PingPong::readerDone), writer(&PingPong::writerDone),
          readerNode(readerAt), cyclesLeft(cycles)
    {
        cfg.numNodes = nodes;
        cfg.netJitter = 0;
        cfg.topo.kind = topo;
        net = std::make_unique<Network>(eq, cfg, Rng(7));
        for (NodeId n = 0; n < nodes; ++n) {
            caches.push_back(
                std::make_unique<CacheCtrl>(n, eq, *net, cfg));
            dirs.push_back(std::make_unique<Directory>(
                n, eq, *net, cfg, std::vector<PredictorBase *>{},
                nullptr, SpecMode::None));
        }
        for (NodeId n = 0; n < nodes; ++n)
            net->attach(n, *caches[n], *dirs[n]);
        reader.owner = this;
        writer.owner = this;
    }

    struct ReaderDone final : MemCompletion
    {
        using MemCompletion::MemCompletion;
        PingPong *owner = nullptr;
    };
    struct WriterDone final : MemCompletion
    {
        using MemCompletion::MemCompletion;
        PingPong *owner = nullptr;
    };

    static void
    readerDone(MemCompletion &self, bool, Tick base)
    {
        PingPong *pp = static_cast<ReaderDone &>(self).owner;
        // Node 0 (the home) writes the block next. The completion may
        // arrive through the fused fast path (ahead of the clock), so
        // the follow-on access anchors on the completion tick.
        pp->caches[0]->accessAt(0, true, pp->writer, base);
    }

    static void
    writerDone(MemCompletion &self, bool, Tick base)
    {
        PingPong *pp = static_cast<WriterDone &>(self).owner;
        if (--pp->cyclesLeft == 0)
            return;
        // The reader node reads it back: recall + writeback at home.
        pp->caches[pp->readerNode]->accessAt(0, false, pp->reader,
                                             base);
    }

    /** Run @p cycles full read/write cycles to completion. */
    void
    go()
    {
        caches[readerNode]->access(0, false, reader);
        ASSERT_TRUE(eq.run());
        ASSERT_EQ(cyclesLeft, 0u);
    }

    EventQueue eq;
    ProtoConfig cfg;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<CacheCtrl>> caches;
    std::vector<std::unique_ptr<Directory>> dirs;
    ReaderDone reader;
    WriterDone writer;
    NodeId readerNode;
    unsigned cyclesLeft;
};

} // namespace

TEST(ZeroAlloc, SteadyStateMessagePathDoesNotAllocate)
{
    // Warm-up: first transactions populate the line/entry tables,
    // event pools, and NI state.
    PingPong warm(16);
    warm.go();
    const std::uint64_t mark = g_allocs;

    warm.cyclesLeft = 2000;
    warm.caches[1]->access(0, false, warm.reader);
    ASSERT_TRUE(warm.eq.run());
    ASSERT_EQ(warm.cyclesLeft, 0u);

    EXPECT_EQ(g_allocs, mark)
        << "steady-state message path performed "
        << (g_allocs - mark) << " allocations";

    // Sanity: the warm phase itself did allocate (the hook works).
    EXPECT_GT(mark, 0u);
}

TEST(ZeroAlloc, MultiHopRoutingDoesNotAllocate)
{
    // Five-node ring with the reader two hops from the home: every
    // remote message walks a multi-link route, so the link
    // reservations and hop-composed flight arithmetic are on the
    // measured path. The invariant must not shrink to the crossbar.
    PingPong warm(16, TopoKind::Ring, 5, 2);
    warm.go();
    ASSERT_GT(warm.net->topology().hops(0, warm.readerNode), 1u);
    const std::uint64_t mark = g_allocs;

    warm.cyclesLeft = 2000;
    warm.caches[warm.readerNode]->access(0, false, warm.reader);
    ASSERT_TRUE(warm.eq.run());
    ASSERT_EQ(warm.cyclesLeft, 0u);

    EXPECT_EQ(g_allocs, mark)
        << "multi-hop message path performed " << (g_allocs - mark)
        << " allocations";
    // The route walk was actually on the measured path: the ring has
    // real links, unlike the crossbar's dedicated paths.
    EXPECT_GT(warm.net->topology().numLinks(), 0u);
}

TEST(ZeroAlloc, HitPathDoesNotAllocate)
{
    // Node-local hits: access -> pooled HitEvent -> completion.
    PingPong warm(4);
    warm.go();

    struct HitLoop final : MemCompletion
    {
        explicit HitLoop(CacheCtrl *c)
            : MemCompletion(&HitLoop::fired), cache(c)
        {}

        static void
        fired(MemCompletion &self, bool, Tick base)
        {
            auto &h = static_cast<HitLoop &>(self);
            if (--h.left > 0)
                h.cache->accessAt(0, true, h, base);
        }

        CacheCtrl *cache;
        int left = 0;
    } loop(warm.caches[0].get());

    // Node 0 owns the block after go(); repeated writes are hits.
    loop.left = 1;
    warm.caches[0]->access(0, true, loop);
    ASSERT_TRUE(warm.eq.run());

    const std::uint64_t mark = g_allocs;
    loop.left = 5000;
    warm.caches[0]->access(0, true, loop);
    ASSERT_TRUE(warm.eq.run());
    EXPECT_EQ(g_allocs, mark);
}
