/** @file Golden-value determinism: fixed-seed runs must stay
 * bit-identical across data-structure and event-kernel rewrites.
 *
 * The constants below were captured from the original seed
 * implementation (std::function binary-heap event queue, node-based
 * std::unordered_map predictor tables) and verified unchanged after
 * the timing-wheel / flat-table rewrite. Any future change to event
 * ordering, tie-breaking, or predictor learning that perturbs these
 * numbers is a behavioral change, not a refactor, and must be
 * justified (and these constants re-captured) explicitly.
 *
 * Re-captured once (execTicks only, PR 7): the batched event layer
 * -- the per-destination NI drain, the machine-wide local-delivery
 * flush, and the per-home directory due-queues -- performs every
 * piece of work at the identical tick the per-message/per-action
 * events did (tests/net/test_drain_diff.cc proves the transport leg
 * against a reference reimplementation on every topology), but work
 * units landing on the *same* tick across different nodes or
 * components now run in batch order instead of per-event schedule
 * order. Both orders are legal (each stream's internal FIFO is
 * preserved; nothing ever promised a cross-stream tie order); the
 * handler interleave at equal ticks shifts the em3d critical path by
 * a few tens of ticks. Message counts and every predictor and
 * speculation counter were unchanged, as was the fully-jittered
 * barnes run. Details in the ROADMAP perf log.
 *
 * Re-captured a second time (execTicks only, same PR): the optimistic
 * single-slot ingress reservation books the NI in strict
 * (arrival, seq) order for every message -- the order the retired
 * per-message arrival events fired in -- where the send-time elision
 * used to commit a reservation early under a fusion guard that a
 * deeper fused chain could still undercut (the guard rules out
 * *events* before the arrival, but a fused handler chain sends
 * without scheduling events, and a later send in the chain can carry
 * a smaller jittered arrival). A per-destination reservation-order
 * trace pinned the divergence to exactly those early commits; the
 * slot's undercut rollback restores the reference order. Message
 * counts, every predictor and speculation counter, and the jittered
 * barnes run were again unchanged.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "testutil.hh"

using namespace mspdsm;

namespace
{

ExperimentConfig
tiny()
{
    ExperimentConfig ec;
    ec.scale = 0.25;
    ec.iterations = 2;
    return ec;
}

} // namespace

TEST(Golden, Em3dAccuracyRunMatchesSeedKernel)
{
    const RunResult r = runAccuracy("em3d", 1, tiny());
    EXPECT_EQ(r.status, RunStatus::Completed);
    EXPECT_EQ(r.execTicks, 124574u);
    EXPECT_EQ(r.messages, 2208u);
    ASSERT_EQ(r.observers.size(), 3u);
    // Cosmos, MSP, VMSP at depth 1, in harness order.
    EXPECT_EQ(r.observers[0].stats.predicted.value(), 336u);
    EXPECT_EQ(r.observers[0].stats.correct.value(), 240u);
    EXPECT_EQ(r.observers[0].storage.pteTotal, 672u);
    EXPECT_EQ(r.observers[1].stats.predicted.value(), 240u);
    EXPECT_EQ(r.observers[1].stats.correct.value(), 240u);
    EXPECT_EQ(r.observers[1].storage.pteTotal, 336u);
    EXPECT_EQ(r.observers[2].stats.predicted.value(), 240u);
    EXPECT_EQ(r.observers[2].stats.correct.value(), 240u);
    EXPECT_EQ(r.observers[2].storage.pteTotal, 192u);
}

TEST(Golden, Em3dSpeculativeRunMatchesSeedKernel)
{
    const RunResult r = runSpec("em3d", SpecMode::SwiFirstRead, tiny());
    EXPECT_EQ(r.status, RunStatus::Completed);
    EXPECT_EQ(r.execTicks, 120022u);
    EXPECT_EQ(r.messages, 1984u);
    EXPECT_EQ(r.swiSent, 80u);
    EXPECT_EQ(r.specSentSwi, 192u);
    EXPECT_EQ(r.specServedSwi, 192u);
    EXPECT_EQ(r.specServedFr, 32u);
    EXPECT_EQ(r.storage.pteTotal, 192u);
}

TEST(Golden, BarnesDeepHistoryRunMatchesSeedKernel)
{
    // Depth-2 history with jittered ack reordering: exercises the
    // multi-slot HistoryKey path end to end.
    const RunResult r = runAccuracy("barnes", 2, tiny());
    EXPECT_EQ(r.status, RunStatus::Completed);
    EXPECT_EQ(r.execTicks, 446220u);
    EXPECT_EQ(r.messages, 1210u);
    ASSERT_EQ(r.observers.size(), 3u);
    EXPECT_EQ(r.observers[0].stats.predicted.value(), 53u);
    EXPECT_EQ(r.observers[0].stats.correct.value(), 46u);
    EXPECT_EQ(r.observers[0].storage.pteTotal, 452u);
    EXPECT_EQ(r.observers[1].stats.predicted.value(), 56u);
    EXPECT_EQ(r.observers[1].stats.correct.value(), 48u);
    EXPECT_EQ(r.observers[1].storage.pteTotal, 215u);
    EXPECT_EQ(r.observers[2].stats.predicted.value(), 0u);
    EXPECT_EQ(r.observers[2].stats.correct.value(), 0u);
    EXPECT_EQ(r.observers[2].storage.pteTotal, 50u);
}
