/** @file Speculation verification plumbing (paper Section 4.2): the
 * reference bit travels from the consumer's cache to the home, feeds
 * the predictor, and removes misspeculated sequences. */

#include <gtest/gtest.h>

#include "testutil.hh"

using namespace mspdsm;
using namespace mspdsm::test;

namespace
{

DsmConfig
frConfig()
{
    DsmConfig cfg = smallConfig(8);
    cfg.pred = PredKind::Vmsp;
    cfg.historyDepth = 1;
    cfg.spec = SpecMode::FirstRead;
    return cfg;
}

} // namespace

TEST(Verification, UsedCopiesAreCountedUsed)
{
    DsmConfig cfg = frConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    std::vector<Trace> ts(8);
    for (int r = 0; r < 10; ++r) {
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[1].push_back(TraceOp::write(a));
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[2].push_back(TraceOp::read(a));
        ts[3].push_back(TraceOp::compute(900));
        ts[3].push_back(TraceOp::read(a));
    }
    const RunResult r = sys.run(ts);
    EXPECT_GT(r.specServedFr, 0u);
    EXPECT_EQ(r.specMissFr, 0u);
}

TEST(Verification, StalePredictionIsRemovedAfterMiss)
{
    // Train {2,3}, then 3 leaves. The first write after a missed
    // push verifies the unreferenced copy and erases the entry, so
    // later rounds stop pushing to 3.
    DsmConfig cfg = frConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    std::vector<Trace> ts(8);
    auto round = [&](bool with3) {
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[1].push_back(TraceOp::write(a));
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[2].push_back(TraceOp::read(a));
        if (with3) {
            ts[3].push_back(TraceOp::compute(900));
            ts[3].push_back(TraceOp::read(a));
        }
    };
    for (int i = 0; i < 6; ++i)
        round(true);
    for (int i = 0; i < 10; ++i)
        round(false);
    const RunResult r = sys.run(ts);
    // Misses happen but are bounded: after the erase the predictor
    // must relearn from scratch, not keep pushing to the stale set.
    EXPECT_GT(r.specMissFr, 0u);
    EXPECT_LE(r.specMissFr, 4u);
}

TEST(Verification, MigratoryUpgradeVerifiesInPlace)
{
    // A consumer that reads its pushed copy and then upgrades it
    // reports the reference on the upgrade itself (no invalidation
    // needed): the push must be verified used, not leaked.
    DsmConfig cfg = frConfig();
    cfg.spec = SpecMode::SwiFirstRead;
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 1, 0);
    const Addr b = blockOn(cfg.proto, 1, 1);
    std::vector<Trace> ts(8);
    for (int r = 0; r < 12; ++r) {
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        for (int j = 0; j < 2; ++j) {
            const NodeId q = NodeId(2 + j);
            ts[q].push_back(TraceOp::compute(1 + 3200 * j));
            ts[q].push_back(TraceOp::read(a));
            ts[q].push_back(TraceOp::write(a));
            ts[q].push_back(TraceOp::compute(20));
            ts[q].push_back(TraceOp::read(b));
            ts[q].push_back(TraceOp::write(b));
        }
    }
    const RunResult r = sys.run(ts);
    EXPECT_GT(r.specServedSwi, 0u);
    // Served copies must not be double-counted as misses when the
    // consumer's own upgrade invalidates them.
    EXPECT_EQ(r.specMissSwi, 0u);
}

TEST(Verification, DroppedCopiesAreNotMisses)
{
    // Simultaneous readers: the push for the second races its demand
    // read and is dropped; that must not count as a misspeculation
    // (the prediction was right).
    DsmConfig cfg = frConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    std::vector<Trace> ts(8);
    for (int r = 0; r < 12; ++r) {
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[1].push_back(TraceOp::write(a));
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[2].push_back(TraceOp::read(a));
        ts[3].push_back(TraceOp::read(a)); // no stagger
    }
    const RunResult r = sys.run(ts);
    EXPECT_GT(r.specDropped, 0u);
    EXPECT_EQ(r.specMissFr, 0u);
}

TEST(Verification, SpecCopiesNeverOutliveInvalidation)
{
    // After every write transaction, no cache may retain a valid
    // copy other than the writer's: pushes must be invalidated like
    // ordinary sharers.
    DsmConfig cfg = frConfig();
    cfg.spec = SpecMode::SwiFirstRead;
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 1, 0);
    const Addr b = blockOn(cfg.proto, 1, 1);
    std::vector<Trace> ts(8);
    for (int r = 0; r < 8; ++r) {
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[1].push_back(TraceOp::write(a));
        ts[1].push_back(TraceOp::write(b));
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[2].push_back(TraceOp::read(a));
        ts[3].push_back(TraceOp::compute(900));
        ts[3].push_back(TraceOp::read(a));
    }
    // End on a write so the final state is exclusive.
    for (unsigned q = 0; q < 8; ++q)
        ts[q].push_back(TraceOp::barrier());
    ts[1].push_back(TraceOp::write(a));
    sys.run(ts);
    const BlockId blk = cfg.proto.blockOf(a);
    for (NodeId q = 0; q < 8; ++q) {
        if (q == 1)
            continue;
        EXPECT_EQ(sys.cache(q).lineState(blk), LineState::Invalid)
            << "node " << q;
    }
    EXPECT_EQ(sys.cache(1).lineState(blk), LineState::Modified);
}
