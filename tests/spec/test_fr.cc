/** @file First-Read triggering: the first read of a predicted
 * sequence forwards the block to the remaining readers. */

#include <gtest/gtest.h>

#include "testutil.hh"

using namespace mspdsm;
using namespace mspdsm::test;

namespace
{

DsmConfig
frConfig(unsigned nodes = 8)
{
    DsmConfig cfg = smallConfig(nodes);
    cfg.pred = PredKind::Vmsp;
    cfg.historyDepth = 1;
    cfg.spec = SpecMode::FirstRead;
    return cfg;
}

/**
 * Producer/consumer rounds: node 1 writes, nodes 2..2+deg-1 read in
 * rank order with ample spacing.
 */
std::vector<Trace>
pcRounds(const ProtoConfig &proto, unsigned nodes, int rounds,
         int degree)
{
    const Addr a = blockOn(proto, 0);
    std::vector<Trace> ts(nodes);
    for (int r = 0; r < rounds; ++r) {
        for (unsigned q = 0; q < nodes; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[1].push_back(TraceOp::write(a));
        for (unsigned q = 0; q < nodes; ++q)
            ts[q].push_back(TraceOp::barrier());
        for (int k = 0; k < degree; ++k) {
            ts[2 + k].push_back(TraceOp::compute(1 + 800 * k));
            ts[2 + k].push_back(TraceOp::read(a));
        }
    }
    return ts;
}

} // namespace

TEST(FirstRead, PushesRestOfPredictedSequence)
{
    DsmConfig cfg = frConfig();
    DsmSystem sys(cfg);
    const RunResult r = sys.run(pcRounds(cfg.proto, 8, 10, 3));
    // After the first round the vector {2,3,4} is known: each later
    // round's first read triggers pushes to the other two readers.
    EXPECT_GT(r.specSentFr, 10u);
    EXPECT_GT(r.specServedFr, 10u);
    EXPECT_EQ(r.specSentSwi, 0u); // SWI disabled in FR-DSM
    EXPECT_EQ(r.swiSent, 0u);
}

TEST(FirstRead, CoversAboutOneMinusOneOverDegree)
{
    DsmConfig cfg = frConfig();
    DsmSystem sys(cfg);
    const int rounds = 30, degree = 3;
    const RunResult r =
        sys.run(pcRounds(cfg.proto, 8, rounds, degree));
    // Of each round's 3 reads, 2 can be served speculatively.
    const double covered = static_cast<double>(r.specServedFr) /
                           static_cast<double>(r.reads);
    EXPECT_GT(covered, 0.5);
    EXPECT_LT(covered, 0.72);
}

TEST(FirstRead, SingleReaderGainsNothing)
{
    DsmConfig cfg = frConfig();
    DsmSystem sys(cfg);
    const RunResult r = sys.run(pcRounds(cfg.proto, 8, 10, 1));
    EXPECT_EQ(r.specSentFr, 0u);
    EXPECT_EQ(r.specServedFr, 0u);
}

TEST(FirstRead, ReducesExecutionTime)
{
    Tick base = 0, fr = 0;
    {
        DsmConfig cfg = frConfig();
        cfg.spec = SpecMode::None;
        DsmSystem sys(cfg);
        base = sys.run(pcRounds(cfg.proto, 8, 20, 4)).execTicks;
    }
    {
        DsmConfig cfg = frConfig();
        DsmSystem sys(cfg);
        fr = sys.run(pcRounds(cfg.proto, 8, 20, 4)).execTicks;
    }
    EXPECT_LT(fr, base);
}

TEST(FirstRead, SpeculativeCopyIsRealSharer)
{
    DsmConfig cfg = frConfig();
    DsmSystem sys(cfg);
    sys.run(pcRounds(cfg.proto, 8, 5, 3));
    // At the end of the last round all three readers hold the block
    // and the directory tracks every copy (pushed or demanded).
    const BlockId blk = cfg.proto.blockOf(blockOn(cfg.proto, 0));
    const NodeSet sharers = sys.directory(0).sharersOf(blk);
    for (NodeId q = 2; q <= 4; ++q) {
        if (sys.cache(q).lineState(blk) != LineState::Invalid) {
            EXPECT_TRUE(sharers.contains(q));
        }
    }
}

TEST(FirstRead, MispredictedPushIsVerifiedAndRemoved)
{
    DsmConfig cfg = frConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    std::vector<Trace> ts(8);
    // Train vector {2,3}; then reader 3 stops participating.
    auto round = [&](bool with3) {
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[1].push_back(TraceOp::write(a));
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[2].push_back(TraceOp::read(a));
        if (with3) {
            ts[3].push_back(TraceOp::compute(900));
            ts[3].push_back(TraceOp::read(a));
        }
    };
    for (int i = 0; i < 5; ++i)
        round(true);
    for (int i = 0; i < 5; ++i)
        round(false);
    const RunResult r = sys.run(ts);
    // Pushes to node 3 after it stopped reading are verified as
    // misses when the next write invalidates the unreferenced copy.
    EXPECT_GT(r.specMissFr, 0u);
    EXPECT_GT(r.specServedFr, 0u);
}

TEST(FirstRead, RacingPushIsDropped)
{
    // Two readers arrive nearly simultaneously: the push for the
    // second can race its own demand read and must be dropped, not
    // double-installed.
    DsmConfig cfg = frConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 0);
    std::vector<Trace> ts(8);
    for (int r = 0; r < 10; ++r) {
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[1].push_back(TraceOp::write(a));
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[2].push_back(TraceOp::read(a));
        ts[3].push_back(TraceOp::read(a)); // no stagger: races
    }
    const RunResult r = sys.run(ts);
    EXPECT_GT(r.specDropped, 0u);
    // Dropped copies never count as served.
    EXPECT_LE(r.specServedFr, r.specSentFr);
}

TEST(FirstRead, NoSpeculationWithoutPrediction)
{
    DsmConfig cfg = frConfig();
    DsmSystem sys(cfg);
    // Single cold round: nothing learned yet, nothing pushed.
    const RunResult r = sys.run(pcRounds(cfg.proto, 8, 1, 3));
    EXPECT_EQ(r.specSentFr, 0u);
}
