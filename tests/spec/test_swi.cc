/** @file Speculative Write-Invalidation: early invalidation on the
 * producer's next write, premature detection, suppression. */

#include <gtest/gtest.h>

#include "testutil.hh"

using namespace mspdsm;
using namespace mspdsm::test;

namespace
{

DsmConfig
swiConfig(unsigned nodes = 8)
{
    DsmConfig cfg = smallConfig(nodes);
    cfg.pred = PredKind::Vmsp;
    cfg.historyDepth = 1;
    cfg.spec = SpecMode::SwiFirstRead;
    return cfg;
}

/**
 * em3d-style rounds: producer 1 writes two blocks (same home)
 * back-to-back -- the write to b arms SWI for a -- and consumers 2
 * and 3 later read a in stable rank order.
 */
std::vector<Trace>
producerRounds(const ProtoConfig &proto, unsigned nodes, int rounds)
{
    const Addr a = blockOn(proto, 1, 0);
    const Addr b = blockOn(proto, 1, 1);
    std::vector<Trace> ts(nodes);
    for (int r = 0; r < rounds; ++r) {
        for (unsigned q = 0; q < nodes; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[1].push_back(TraceOp::write(a));
        ts[1].push_back(TraceOp::compute(10));
        ts[1].push_back(TraceOp::write(b));
        for (unsigned q = 0; q < nodes; ++q)
            ts[q].push_back(TraceOp::barrier());
        // Consumer 2 reads a first (the FR trigger; late enough for
        // an SWI push to land first) and later b (keeping b's writes
        // visible so they re-arm the SWI table); consumer 3's
        // staggered read of a is FR-coverable.
        ts[2].push_back(TraceOp::compute(650));
        ts[2].push_back(TraceOp::read(a));
        ts[2].push_back(TraceOp::compute(600));
        ts[2].push_back(TraceOp::read(b));
        ts[3].push_back(TraceOp::compute(1800));
        ts[3].push_back(TraceOp::read(a));
    }
    return ts;
}

} // namespace

TEST(Swi, WriteToSecondBlockInvalidatesFirstEarly)
{
    DsmConfig cfg = swiConfig();
    DsmSystem sys(cfg);
    const RunResult r = sys.run(producerRounds(cfg.proto, 8, 10));
    EXPECT_GT(r.swiSent, 5u);
    EXPECT_EQ(r.swiPremature, 0u); // producer never comes back early
    EXPECT_GT(r.specSentSwi, 0u);  // pushes follow the invalidation
    EXPECT_GT(r.specServedSwi, 0u);
}

TEST(Swi, CoversMoreReadsThanFrAlone)
{
    std::uint64_t served_fr = 0, served_swi = 0;
    double covered_fr = 0, covered_swi = 0;
    {
        DsmConfig cfg = swiConfig();
        cfg.spec = SpecMode::FirstRead;
        DsmSystem sys(cfg);
        const RunResult r = sys.run(producerRounds(cfg.proto, 8, 20));
        served_fr = r.specServedFr;
        covered_fr = static_cast<double>(r.specServedFr) /
                     static_cast<double>(r.reads);
    }
    {
        DsmConfig cfg = swiConfig();
        DsmSystem sys(cfg);
        const RunResult r = sys.run(producerRounds(cfg.proto, 8, 20));
        served_swi = r.specServedSwi + r.specServedFr;
        covered_swi = static_cast<double>(r.specServedSwi +
                                          r.specServedFr) /
                      static_cast<double>(r.reads);
    }
    // FR can cover at most 1-1/degree of the reads (never the
    // trigger read); SWI covers the whole sequence.
    EXPECT_GT(served_swi, served_fr);
    EXPECT_GT(covered_swi, covered_fr + 0.2);
    (void)covered_fr;
}

TEST(Swi, ReducesWaitingBeyondFr)
{
    // The paper's Figure 9 metric: remote request waiting time. FR
    // covers the staggered reader; SWI additionally covers the
    // trigger read, so waiting drops strictly at each step (and
    // execution time never increases).
    double base_w = 0, fr_w = 0, swi_w = 0;
    Tick base_t = 0, fr_t = 0, swi_t = 0;
    for (SpecMode mode : {SpecMode::None, SpecMode::FirstRead,
                          SpecMode::SwiFirstRead}) {
        DsmConfig cfg = swiConfig();
        cfg.spec = mode;
        DsmSystem sys(cfg);
        const RunResult r = sys.run(producerRounds(cfg.proto, 8, 20));
        if (mode == SpecMode::None) {
            base_w = r.avgRequestWait;
            base_t = r.execTicks;
        } else if (mode == SpecMode::FirstRead) {
            fr_w = r.avgRequestWait;
            fr_t = r.execTicks;
        } else {
            swi_w = r.avgRequestWait;
            swi_t = r.execTicks;
        }
    }
    EXPECT_LT(fr_w, base_w);
    EXPECT_LT(swi_w, fr_w);
    EXPECT_LE(fr_t, base_t);
    EXPECT_LE(swi_t, fr_t);
}

TEST(Swi, ProducerReadingBackIsPremature)
{
    DsmConfig cfg = swiConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 1, 0);
    const Addr b = blockOn(cfg.proto, 1, 1);
    std::vector<Trace> ts(8);
    // moldyn-style: producer writes a then b, then re-reads a while
    // the SWI recall has landed but its push has not: robbed.
    for (int r = 0; r < 10; ++r) {
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[1].push_back(TraceOp::write(a));
        ts[1].push_back(TraceOp::write(b));
        ts[1].push_back(TraceOp::compute(150));
        ts[1].push_back(TraceOp::read(a)); // robbed by SWI
        // A consumer keeps the read prediction alive.
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[2].push_back(TraceOp::read(a));
        ts[2].push_back(TraceOp::read(b));
    }
    const RunResult r = sys.run(ts);
    EXPECT_GT(r.swiPremature, 0u);
    // After the premature bit is set, SWI stops for that write.
    EXPECT_GT(r.swiSuppressed, 0u);
}

TEST(Swi, SuppressionThrottlesRepeatOffenders)
{
    DsmConfig cfg = swiConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 1, 0);
    const Addr b = blockOn(cfg.proto, 1, 1);
    std::vector<Trace> ts(8);
    const int rounds = 12;
    for (int r = 0; r < rounds; ++r) {
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[1].push_back(TraceOp::write(a));
        ts[1].push_back(TraceOp::write(b));
        ts[1].push_back(TraceOp::compute(150));
        ts[1].push_back(TraceOp::read(a));
        ts[1].push_back(TraceOp::read(b));
    }
    const RunResult r = sys.run(ts);
    // SWI fires at most a few times before the premature bit stops
    // it; most rounds see no speculative invalidation at all.
    EXPECT_LT(r.swiSent, static_cast<std::uint64_t>(rounds));
}

TEST(Swi, StableProducerConsumerIsNotFlaggedPremature)
{
    // tomcatv success-half analogue: the producer's next write comes
    // an iteration later, after the consumer referenced its copy; the
    // deferred verdict must clear SWI.
    DsmConfig cfg = swiConfig();
    DsmSystem sys(cfg);
    const RunResult r = sys.run(producerRounds(cfg.proto, 8, 15));
    EXPECT_EQ(r.swiPremature, 0u);
    EXPECT_EQ(r.swiSuppressed, 0u);
}

TEST(Swi, MigratoryUpgradesAreCoveredBySwi)
{
    DsmConfig cfg = swiConfig();
    DsmSystem sys(cfg);
    // Two migratory blocks homed at node 1, visited by 2 -> 3 -> 4;
    // each visitor's write to the second block SWIs the first.
    const Addr a = blockOn(cfg.proto, 1, 0);
    const Addr b = blockOn(cfg.proto, 1, 1);
    std::vector<Trace> ts(8);
    for (int round = 0; round < 12; ++round) {
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        for (int j = 0; j < 3; ++j) {
            const NodeId q = NodeId(2 + j);
            ts[q].push_back(TraceOp::compute(1 + 3200 * j));
            ts[q].push_back(TraceOp::read(a));
            ts[q].push_back(TraceOp::write(a));
            ts[q].push_back(TraceOp::compute(20));
            ts[q].push_back(TraceOp::read(b));
            ts[q].push_back(TraceOp::write(b));
        }
    }
    const RunResult r = sys.run(ts);
    // The next visitor's read is served from its pushed copy.
    EXPECT_GT(r.swiSent, 0u);
    EXPECT_GT(r.specServedSwi, 0u);
}

TEST(Swi, NoSwiAcrossDifferentHomes)
{
    // The early-write-invalidate table is per home node: writes by
    // the same producer to blocks of *different* homes must not arm
    // SWI (a hardware-implementability constraint; see DESIGN.md).
    DsmConfig cfg = swiConfig();
    DsmSystem sys(cfg);
    const Addr a = blockOn(cfg.proto, 1, 0); // home 1
    const Addr b = blockOn(cfg.proto, 2, 0); // home 2
    std::vector<Trace> ts(8);
    for (int r = 0; r < 8; ++r) {
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[1].push_back(TraceOp::write(a));
        ts[1].push_back(TraceOp::write(b));
        for (unsigned q = 0; q < 8; ++q)
            ts[q].push_back(TraceOp::barrier());
        ts[2].push_back(TraceOp::read(a));
        ts[2].push_back(TraceOp::read(b));
    }
    const RunResult r = sys.run(ts);
    EXPECT_EQ(r.swiSent, 0u);
}

TEST(Swi, BaseDsmDoesNoSpeculation)
{
    DsmConfig cfg = swiConfig();
    cfg.spec = SpecMode::None;
    DsmSystem sys(cfg);
    const RunResult r = sys.run(producerRounds(cfg.proto, 8, 10));
    EXPECT_EQ(r.swiSent, 0u);
    EXPECT_EQ(r.specSentFr, 0u);
    EXPECT_EQ(r.specSentSwi, 0u);
}
