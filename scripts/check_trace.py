#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file written by --trace.

Checks, against the trace the obs layer (src/obs/obs.cc) emits:

 1. the file is valid JSON of the object form {"traceEvents": [...]};
 2. duration events balance: every B has its E on the same (pid, tid)
    track, in order, and tracks end at depth 0 (the simulator has one
    MSHR per node, so spans on a track must not nest either);
 3. flow events pair: every flow id carries exactly one start (ph s)
    and one finish (ph f), and the finish does not precede the start;
 4. timestamps are non-negative, and with --from/--to given, every
    event's ts (and ts+dur for X spans) lies inside the window --
    the emitter filters at completion time, so a windowed trace must
    contain no out-of-window residue at all;
 5. metadata records (ph M) are exempt from 2-4 but must name a track.

Exit status: 0 ok, 1 validation failure, 2 usage error.

CI runs this on the trace a smoke-scale fig11 run writes, so the
emitter cannot silently drift away from the trace-event contract that
Perfetto / chrome://tracing loads.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def main():
    ap = argparse.ArgumentParser(
        description="Validate a --trace Chrome trace-event JSON file.")
    ap.add_argument("trace", help="trace JSON to check")
    ap.add_argument("--from", dest="lo", type=int, default=None,
                    help="expected lower bound of every event ts")
    ap.add_argument("--to", dest="hi", type=int, default=None,
                    help="expected upper bound of every event ts")
    ap.add_argument("--min-events", type=int, default=1,
                    help="fail if fewer non-metadata events (default 1)")
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot read {args.trace}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail("top level is not {\"traceEvents\": [...]}")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail("'traceEvents' is not a list")

    errs = []
    depth = {}        # (pid, tid) -> open span count
    flow_start = {}   # flow id -> start ts
    flow_done = set()
    counted = 0
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            errs.append(f"{where}: not an object")
            continue
        ph = e.get("ph")
        name = e.get("name")
        if not isinstance(name, str) or not name:
            errs.append(f"{where}: bad name {name!r}")
        if ph == "M":
            if "args" not in e or "name" not in e["args"]:
                errs.append(f"{where}: metadata without args.name")
            continue
        counted += 1
        ts = e.get("ts")
        if not isinstance(ts, int) or ts < 0:
            errs.append(f"{where}: bad ts {ts!r}")
            continue
        end = ts
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, int) or dur < 0:
                errs.append(f"{where}: X span with bad dur {dur!r}")
            else:
                end = ts + dur
        if args.lo is not None and ts < args.lo:
            errs.append(f"{where}: ts {ts} below window {args.lo}")
        if args.hi is not None and end > args.hi:
            errs.append(f"{where}: ts {end} above window {args.hi}")
        track = (e.get("pid"), e.get("tid"))
        if ph == "B":
            if depth.get(track, 0) != 0:
                errs.append(f"{where}: nested B on track {track}")
            depth[track] = depth.get(track, 0) + 1
        elif ph == "E":
            if depth.get(track, 0) < 1:
                errs.append(f"{where}: E without B on track {track}")
            depth[track] = depth.get(track, 0) - 1
        elif ph in ("s", "f"):
            fid = e.get("id")
            if not isinstance(fid, int):
                errs.append(f"{where}: flow without id")
            elif ph == "s":
                if fid in flow_start:
                    errs.append(f"{where}: flow id {fid} started twice")
                flow_start[fid] = ts
            else:
                if fid not in flow_start:
                    errs.append(f"{where}: flow id {fid} finished "
                                f"before starting")
                elif ts < flow_start[fid]:
                    errs.append(f"{where}: flow id {fid} finishes at "
                                f"{ts} before its start "
                                f"{flow_start[fid]}")
                elif fid in flow_done:
                    errs.append(f"{where}: flow id {fid} finished "
                                f"twice")
                flow_done.add(fid)
        elif ph not in ("i", "X"):
            errs.append(f"{where}: unexpected ph {ph!r}")

    for track, d in depth.items():
        if d != 0:
            errs.append(f"track {track}: {d} unbalanced span(s)")
    for fid in set(flow_start) - flow_done:
        errs.append(f"flow id {fid}: started but never finished")
    if counted < args.min_events:
        errs.append(f"only {counted} event(s), expected at least "
                    f"{args.min_events}")

    for e in errs:
        print(f"check_trace: {e}", file=sys.stderr)
    if errs:
        return fail(f"{args.trace} is not a valid trace")
    print(f"check_trace: {args.trace} validates "
          f"({counted} events, {len(flow_done)} flows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
