#!/usr/bin/env python3
"""Validate a BENCH_core.json record and gate on perf regressions.

Two jobs, both against the mspdsm-bench-core-v1 schema that
bench/bench_common.hh writes:

 1. schema validation -- the record must carry the schema tag, the
    headline metrics, and a well-formed bench list (every entry named,
    with consistent items/seconds/items_per_sec numbers);
 2. regression gate -- when --baseline is given (normally the
    BENCH_core.json committed at the repo root), any bench whose
    items_per_sec fell more than --max-regression below the baseline
    fails the check.

Exit status: 0 ok, 1 validation/regression failure, 2 usage error.

CI runs this against a --smoke record produced on the runner itself.
Absolute throughput differs between the perf-log container and CI
machines, so the committed baseline is only a coarse tripwire there;
the authoritative numbers are the ROADMAP perf log's, measured on one
container. Regenerate the committed record with `bench_core -o
BENCH_core.json` on that container when the hot path changes.
"""

import argparse
import json
import math
import sys

SCHEMA = "mspdsm-bench-core-v1"
REQUIRED_TOP = ["schema", "events_per_sec", "lookups_per_sec",
                "sim_events_per_message", "peak_rss_bytes", "benches"]
REQUIRED_BENCH = ["name", "items", "seconds", "items_per_sec"]

# Benches every record must carry: dropping one silently would blind
# the regression gate to that path. Extend when bench_core grows.
REQUIRED_BENCH_NAMES = [
    "eventq/throughput",
    "eventq/far",
    "eventq/self_chain",
    "sim/messages",
    "sim/messages_compiled",
    "sim/messages_spec",
    "net/route",
    "net/ingress_batch",
    "workload/compile",
    "pred/observe_mix",
    "pred/observe_cold",
    "pred/observe_deep",
    "pred/spec_query",
]


def fail(msg):
    print(f"check_bench_core: FAIL: {msg}", file=sys.stderr)
    return 1


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_core: cannot read {path}: {e}",
              file=sys.stderr)
        return None


def validate(rec, path):
    """Schema-validate one record; returns a list of error strings."""
    errs = []
    if not isinstance(rec, dict):
        return [f"{path}: top level is not an object"]
    for key in REQUIRED_TOP:
        if key not in rec:
            errs.append(f"{path}: missing key '{key}'")
    if rec.get("schema") != SCHEMA:
        errs.append(f"{path}: schema is '{rec.get('schema')}', "
                    f"expected '{SCHEMA}'")
    for key in ("events_per_sec", "lookups_per_sec",
                "sim_events_per_message", "peak_rss_bytes"):
        v = rec.get(key)
        if not isinstance(v, (int, float)) or not math.isfinite(v) \
                or v < 0:
            errs.append(f"{path}: '{key}' is not a finite "
                        f"non-negative number: {v!r}")
    # The deterministic transport-efficiency headline: unlike the
    # throughput benches this ratio is machine-independent, so it is
    # pinned absolutely. The batched event layer holds the dense em3d
    # run at ~1.47 dispatches per message; anything above 1.6 means a
    # per-message event population grew back.
    evpm = rec.get("sim_events_per_message")
    if isinstance(evpm, (int, float)) and evpm > 1.6:
        errs.append(f"{path}: sim_events_per_message {evpm} exceeds "
                    f"the 1.6 ceiling")
    benches = rec.get("benches")
    if not isinstance(benches, list) or not benches:
        errs.append(f"{path}: 'benches' is not a non-empty list")
        return errs
    seen = set()
    for i, b in enumerate(benches):
        where = f"{path}: benches[{i}]"
        if not isinstance(b, dict):
            errs.append(f"{where}: not an object")
            continue
        for key in REQUIRED_BENCH:
            if key not in b:
                errs.append(f"{where}: missing key '{key}'")
        name = b.get("name")
        if not isinstance(name, str) or not name:
            errs.append(f"{where}: bad name {name!r}")
        elif name in seen:
            errs.append(f"{where}: duplicate bench '{name}'")
        else:
            seen.add(name)
        for key in ("items", "seconds", "items_per_sec"):
            v = b.get(key)
            if not isinstance(v, (int, float)) \
                    or not math.isfinite(v) or v < 0:
                errs.append(f"{where}: '{key}' is not a finite "
                            f"non-negative number: {v!r}")
    for name in REQUIRED_BENCH_NAMES:
        if name not in seen:
            errs.append(f"{path}: required bench '{name}' is missing")
    return errs


def main():
    ap = argparse.ArgumentParser(
        description="Validate BENCH_core.json; optionally gate "
                    "against a baseline record.")
    ap.add_argument("record", help="BENCH_core.json to check")
    ap.add_argument("--baseline",
                    help="committed BENCH_core.json to compare against")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="fail if a bench drops more than this "
                         "fraction below baseline (default 0.20)")
    args = ap.parse_args()

    rec = load(args.record)
    if rec is None:
        return 1
    errs = validate(rec, args.record)
    for e in errs:
        print(f"check_bench_core: {e}", file=sys.stderr)
    if errs:
        return fail(f"{args.record} does not validate as {SCHEMA}")
    print(f"check_bench_core: {args.record} validates as {SCHEMA} "
          f"({len(rec['benches'])} benches)")

    if not args.baseline:
        return 0
    base = load(args.baseline)
    if base is None:
        return 1
    base_errs = validate(base, args.baseline)
    for e in base_errs:
        print(f"check_bench_core: {e}", file=sys.stderr)
    if base_errs:
        return fail(f"{args.baseline} does not validate as {SCHEMA}")

    floor = 1.0 - args.max_regression
    new = {b["name"]: b["items_per_sec"] for b in rec["benches"]}
    regressions = []
    for b in base["benches"]:
        name, old = b["name"], b["items_per_sec"]
        if name not in new:
            regressions.append(f"{name}: present in baseline but "
                               f"missing from {args.record}")
            continue
        if old > 0 and new[name] < old * floor:
            regressions.append(
                f"{name}: {new[name]:.3g} items/s is "
                f"{100 * (1 - new[name] / old):.1f}% below baseline "
                f"{old:.3g}")
        else:
            delta = 100 * (new[name] / old - 1) if old > 0 else 0.0
            print(f"check_bench_core: {name}: {new[name]:.3g} "
                  f"items/s ({delta:+.1f}% vs baseline)")
    for r in regressions:
        print(f"check_bench_core: REGRESSION {r}", file=sys.stderr)
    if regressions:
        return fail(f"{len(regressions)} bench(es) regressed more "
                    f"than {100 * args.max_regression:.0f}% vs "
                    f"{args.baseline}")
    print("check_bench_core: no bench regressed beyond "
          f"{100 * args.max_regression:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
